#!/usr/bin/env python
"""Gate simulator-performance regressions against the committed baseline.

Usage::

    python tools/check_e23_regression.py FRESH.json [BASELINE.json]

Compares the throughput rates (events/sec, item-stages/sec) of a fresh
``bench_e23`` run against the committed ``BENCH_e23.json`` and exits
non-zero if any rate dropped more than the tolerance (default 30%;
override with ``REPRO_PERF_TOLERANCE=0.5`` etc.).  Rates are
size-independent, so a smoke run can be checked against the committed
full run; the generous tolerance absorbs host-speed variation between
the baseline machine and CI runners.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

_RATES = (
    ("timeout storm events/sec", ("timeout_storm", "events_per_sec")),
    ("pipeline engine item-stages/sec",
     ("deep_pipeline", "engine", "item_stages_per_sec")),
    ("pipeline fastpath item-stages/sec",
     ("deep_pipeline", "fastpath", "item_stages_per_sec")),
)


def _dig(payload: dict, path: tuple[str, ...]) -> float:
    for key in path:
        payload = payload[key]
    return float(payload)


def main(argv: list[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__, file=sys.stderr)
        return 2
    fresh_path = Path(argv[0])
    baseline_path = (
        Path(argv[1]) if len(argv) == 2
        else Path(__file__).resolve().parents[1] / "BENCH_e23.json"
    )
    tolerance = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.30"))
    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    failed = False
    for label, path in _RATES:
        base = _dig(baseline, path)
        now = _dig(fresh, path)
        ratio = now / base
        status = "ok"
        if ratio < 1.0 - tolerance:
            status = "REGRESSION"
            failed = True
        print(f"{label:<40} baseline {base:>14,.0f}  fresh {now:>14,.0f}  "
              f"({ratio:.2f}x) {status}")

    # The golden completion time only transfers between runs of the
    # same pipeline size (smoke runs use fewer items than the committed
    # full run); engine/fastpath agreement within a run is asserted by
    # the bench itself.
    if fresh["deep_pipeline"]["item_stages"] == \
            baseline["deep_pipeline"]["item_stages"]:
        golden = baseline["deep_pipeline"]["engine"]["done_at_ps"]
        for mode in ("engine", "fastpath"):
            got = fresh["deep_pipeline"][mode]["done_at_ps"]
            if got != golden:
                print(f"pipeline {mode} done_at_ps {got} != golden {golden}")
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
