"""E4 — multi-operator offload pipelines on smart memory (Use Case I).

Farview composes operators in the datapath.  This bench runs pipelines
of growing depth (decrypt -> filter -> project -> grouped aggregate)
and checks the composability claims: results stay exact, node-side
resources grow roughly linearly with the pipeline, and throughput stays
at the streaming rate of the slowest stage instead of degrading with
depth.

The per-pipeline cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e4 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_pipelines() -> ResultTable:
    return build_spec("e4").tables()[0]


def test_e4_pipelines(benchmark):
    table = benchmark.pedantic(_run_pipelines, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_pipelines().show()
