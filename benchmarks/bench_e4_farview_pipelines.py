"""E4 — multi-operator offload pipelines on smart memory (Use Case I).

Farview composes operators in the datapath.  This bench runs pipelines
of growing depth (decrypt -> filter -> project -> grouped aggregate)
and checks the composability claims: results stay exact, node-side
resources grow roughly linearly with the pipeline, and throughput stays
at the streaming rate of the slowest stage instead of degrading with
depth.
"""

import pytest

from repro.bench import ResultTable
from repro.farview import FarviewClient, FarviewServer
from repro.relational import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    GroupByAggregate,
    Project,
    QueryPlan,
    Table,
    Transform,
    col,
    execute,
)
from repro.workloads import grouped_table

_N_ROWS = 1_000_000


def _pipelines() -> list[tuple[str, QueryPlan]]:
    return [
        ("filter", QueryPlan((Filter(col("value") > 0.5),))),
        ("filter+project", QueryPlan((
            Filter(col("value") > 0.5), Project(("group",)),
        ))),
        ("decrypt+filter+agg", QueryPlan((
            Transform("decrypt", ops_per_byte=2.0),
            Filter(col("value") > 0.5),
            Aggregate((AggSpec(AggFunc.SUM, "value"),)),
        ))),
        ("decrypt+filter+groupby", QueryPlan((
            Transform("decrypt", ops_per_byte=2.0),
            Filter(col("value") > 0.5),
            GroupByAggregate("group", (
                AggSpec(AggFunc.SUM, "value"),
                AggSpec(AggFunc.COUNT, "value", alias="n"),
            )),
        ))),
    ]


def _run_pipelines() -> ResultTable:
    server = FarviewServer()
    data = Table(grouped_table(_N_ROWS, n_groups=256, seed=4))
    server.store("t", data)
    client = FarviewClient(server)

    report = ResultTable(
        "E4: offload pipelines of growing depth (1M-row table)",
        ("pipeline", "ops", "latency ms", "node LUTs", "bottleneck"),
    )
    latencies = []
    for name, plan in _pipelines():
        outcome = client.query_offload(plan, "t")
        assert outcome.result.equals(execute(plan, data)), name
        resources = server.pipeline_resources(plan, "t")
        execution = server.execute(plan, "t")
        latencies.append(outcome.latency_s)
        report.add(
            name, len(plan.operators), outcome.latency_s * 1e3,
            resources.lut, execution.report.bottleneck,
        )
    # Depth must not collapse throughput: the deepest pipeline is within
    # 2x of the shallowest (streaming, not serial re-scans).
    assert max(latencies) < 2.0 * min(latencies)
    report.note("all results verified against the CPU engine")
    return report


def test_e4_pipelines(benchmark):
    table = benchmark.pedantic(_run_pipelines, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_pipelines().show()
