"""E5 — FANNS QPS-vs-recall Pareto (Figure 3, Use Case II).

The accelerator and the CPU baseline run the identical IVF-PQ search
over an nprobe sweep; we record recall@10, QPS and latency on both
sides.  Shape claims: recall rises monotonically with nprobe; the FPGA
holds an order-of-magnitude latency advantage across the sweep; both
QPS curves fall as nprobe buys recall.

The per-nprobe cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e5 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_sweep(index, data) -> ResultTable:
    return build_spec("e5").tables({"index": index, "data": data})[0]


def test_e5_qps_recall(benchmark, ivfpq_index, vector_data):
    table = benchmark.pedantic(
        _run_sweep, args=(ivfpq_index, vector_data), rounds=1, iterations=1
    )
    table.show()
