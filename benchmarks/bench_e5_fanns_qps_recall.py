"""E5 — FANNS QPS-vs-recall Pareto (Figure 3, Use Case II).

The accelerator and the CPU baseline run the identical IVF-PQ search
over an nprobe sweep; we record recall@10, QPS and latency on both
sides.  Shape claims: recall rises monotonically with nprobe; the FPGA
holds an order-of-magnitude latency advantage across the sweep; both
QPS curves fall as nprobe buys recall.

The per-nprobe cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e5 --parallel N`` executes
the exact same code this bench does.
"""

import pytest

from conftest import FANNS_LIST_SCALE
from repro.bench import ResultTable
from repro.exec.experiments import _E5_NPROBES, e5_assemble, e5_cell


def _run_sweep(index, data) -> ResultTable:
    rows = [
        e5_cell(index, data, nprobe, list_scale=FANNS_LIST_SCALE)
        for nprobe in _E5_NPROBES
    ]
    return e5_assemble(rows)[0]


def test_e5_qps_recall(benchmark, ivfpq_index, vector_data):
    table = benchmark.pedantic(
        _run_sweep, args=(ivfpq_index, vector_data), rounds=1, iterations=1
    )
    table.show()
