"""E5 — FANNS QPS-vs-recall Pareto (Figure 3, Use Case II).

The accelerator and the CPU baseline run the identical IVF-PQ search
over an nprobe sweep; we record recall@10, QPS and latency on both
sides.  Shape claims: recall rises monotonically with nprobe; the FPGA
holds an order-of-magnitude latency advantage across the sweep; both
QPS curves fall as nprobe buys recall.
"""

import pytest

from conftest import FANNS_LIST_SCALE
from repro.bench import ResultTable
from repro.fanns import (
    CpuAnnSearcher,
    FannsAccelerator,
    GpuAnnSearcher,
    recall_at_k,
)

_NPROBES = (1, 2, 4, 8, 16, 32)
_K = 10


def _run_sweep(index, data) -> ResultTable:
    accel = FannsAccelerator(index, list_scale=FANNS_LIST_SCALE)
    cpu = CpuAnnSearcher(index, list_scale=FANNS_LIST_SCALE)
    gpu = GpuAnnSearcher(index, list_scale=FANNS_LIST_SCALE)
    report = ResultTable(
        "E5: QPS vs recall@10 (FPGA vs CPU vs GPU, modeled 40M vectors)",
        ("nprobe", "recall@10", "FPGA QPS", "CPU QPS", "GPU QPS",
         "FPGA lat us", "CPU lat us", "GPU lat us"),
    )
    recalls, latency_gains = [], []
    for nprobe in _NPROBES:
        f = accel.search(data.queries, _K, nprobe)
        c = cpu.search(data.queries, _K, nprobe)
        g = gpu.search(data.queries, _K, nprobe)
        assert (f.ids == c.ids).all(), "engines must agree exactly"
        assert (f.ids == g.ids).all()
        recall = recall_at_k(f.ids, data.ground_truth)
        recalls.append(recall)
        latency_gains.append(c.query_latency_s / f.query_latency_s)
        report.add(
            nprobe, round(recall, 3), f.qps, c.qps, g.qps,
            f.query_latency_s * 1e6, c.query_latency_s * 1e6,
            g.query_latency_s * 1e6,
        )
        # The SLA triangle: FPGA holds the latency edge over both.
        assert f.query_latency_s < g.query_latency_s
    assert recalls == sorted(recalls), "recall monotone in nprobe"
    assert recalls[-1] > 0.85, "high-recall regime reachable"
    assert min(latency_gains) > 5, "FPGA latency advantage holds"
    return report


def test_e5_qps_recall(benchmark, ivfpq_index, vector_data):
    table = benchmark.pedantic(
        _run_sweep, args=(ivfpq_index, vector_data), rounds=1, iterations=1
    )
    table.show()
