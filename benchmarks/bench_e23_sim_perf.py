"""E23 — simulator performance: engine hot path, fast-forward, sweeps.

Not a paper experiment: this benchmarks the *reproduction machinery*
itself, so simulator-speed regressions are caught the same way model
regressions are.  Three microbenchmarks:

* **timeout storm** — many concurrent processes sleeping in short
  timeouts; stresses the heap/dispatch hot path (events/sec);
* **deep pipeline** — Source → 8 ItemKernels → Sink over depth-4
  streams, measured twice: with analytic fast-forward disabled (pure
  event engine) and enabled (steady-state solved in closed form).
  Both runs must agree with the golden completion time;
* **sweep runner** — the e22 grid through
  :class:`~repro.exec.SweepRunner` serially and with 4 workers; rows
  must match exactly (determinism) while the wall clock drops.

The workloads live in the registry spec (``repro.exec.experiments.perf``,
``repro run e23``); this shim adds the JSON side effects.  Results are
written as JSON (``BENCH_e23.json`` in the repository root by default;
override with ``REPRO_BENCH_OUT``).  CI runs the smoke variant
(``REPRO_BENCH_SMOKE=1``, smaller sizes) and fails if events/sec
regresses more than 30% against the committed baseline — see
``tools/check_e23_regression.py``.
"""

import json
import os
from pathlib import Path

from repro.bench import ResultTable
from repro.exec import build_spec
from repro.exec.experiments.perf import E23_SEED_BASELINE, e23_smoke

# Smoke sizes for the bench smoke suite (no JSON, CI-fast).
_SMOKE_CONFIG = {"storm_procs": 100, "storm_timeouts": 20, "pipe_items": 500}


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[1] / "BENCH_e23.json"


def _run_sim_perf(
    write: bool = True, config: dict | None = None
) -> ResultTable:
    spec = build_spec("e23")
    if config is None:
        config = spec.grid[0]
    row = spec.rows(configs=[config])[0]
    report = spec.assemble([row])[0]

    if write:
        storm, pipe = row["storm"], row["pipe"]
        payload = {
            "schema": "bench_e23/1",
            "mode": "smoke" if e23_smoke() else "full",
            "cpus": os.cpu_count(),
            "timeout_storm": storm,
            "deep_pipeline": pipe,
            "sweep": row["sweep"],
            "end_to_end": row["e2e"],
            "seed_baseline": E23_SEED_BASELINE,
            "speedup_vs_seed": {
                "timeout_storm": storm["events_per_sec"]
                / E23_SEED_BASELINE["timeout_storm_events_per_sec"],
                "pipeline_engine": pipe["engine"]["item_stages_per_sec"]
                / E23_SEED_BASELINE["pipeline_item_stages_per_sec"],
                "pipeline_fastpath": pipe["fastpath"]["item_stages_per_sec"]
                / E23_SEED_BASELINE["pipeline_item_stages_per_sec"],
            },
        }
        out = _out_path()
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        report.note(f"written to {out}")
    return report


def _run_smoke() -> ResultTable:
    """Small sizes, no JSON side effects — for the bench smoke suite."""
    return _run_sim_perf(write=False, config=_SMOKE_CONFIG)


def test_e23_sim_perf(benchmark):
    table = benchmark.pedantic(_run_sim_perf, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_sim_perf().show()
