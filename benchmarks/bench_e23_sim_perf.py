"""E23 — simulator performance: engine hot path, fast-forward, sweeps.

Not a paper experiment: this benchmarks the *reproduction machinery*
itself, so simulator-speed regressions are caught the same way model
regressions are.  Three microbenchmarks:

* **timeout storm** — many concurrent processes sleeping in short
  timeouts; stresses the heap/dispatch hot path (events/sec);
* **deep pipeline** — Source → 8 ItemKernels → Sink over depth-4
  streams, measured twice: with analytic fast-forward disabled (pure
  event engine) and enabled (steady-state solved in closed form).
  Both runs must agree with the golden completion time;
* **sweep runner** — the e22 grid through
  :class:`~repro.exec.SweepRunner` serially and with 4 workers; rows
  must match exactly (determinism) while the wall clock drops.

Results are written as JSON (``BENCH_e23.json`` in the repository root
by default; override with ``REPRO_BENCH_OUT``).  CI runs the smoke
variant (``REPRO_BENCH_SMOKE=1``, smaller sizes) and fails if
events/sec regresses more than 30% against the committed baseline —
see ``tools/check_e23_regression.py``.
"""

import json
import os
import time
from pathlib import Path

from repro.bench import ResultTable
from repro.core import ItemKernel, KernelSpec, Simulator, Sink, Source, Stream
from repro.core.fastpath import set_fast_forward
from repro.exec import SweepRunner, build_spec

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

# Workload sizes (smoke keeps CI fast; full mode produces the numbers
# committed in BENCH_e23.json).
_STORM_PROCS = 200 if _SMOKE else 1_000
_STORM_TIMEOUTS = 50 if _SMOKE else 400
_PIPE_ITEMS = 2_000 if _SMOKE else 20_000
_PIPE_KERNELS = 8
_SWEEP_WORKERS = 4

# Seed-engine throughput on this workload shape, measured before the
# hot-path/fast-forward work landed ("before" for the JSON's speedup
# block; the committed "after" numbers live next to it).
_SEED_BASELINE = {
    "timeout_storm_events_per_sec": 348_622,
    "pipeline_item_stages_per_sec": 69_593,
    "pipeline_done_at_ps": 66_763_323,
}


def _timeout_storm(procs: int, timeouts: int) -> dict:
    """Events/sec through the heap with nothing but pooled timeouts."""
    sim = Simulator()

    def sleeper(pid: int):
        # Vary the delay so heap order actually churns.
        step = 100 + (pid % 7) * 13
        for _ in range(timeouts):
            yield sim.delay(step)

    for pid in range(procs):
        sim.spawn(sleeper(pid), name=f"sleeper{pid}")
    events = procs * timeouts
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
    }


def _build_pipeline(sim: Simulator, n_items: int) -> Sink:
    streams = [
        Stream(sim, depth=4, name=f"s{i}") for i in range(_PIPE_KERNELS + 1)
    ]
    Source(sim, streams[0], range(n_items))
    for i in range(_PIPE_KERNELS):
        ItemKernel(
            sim,
            KernelSpec(name=f"k{i}", ii=1, depth=4),
            lambda x: x,
            streams[i],
            streams[i + 1],
        )
    return Sink(sim, streams[-1])


def _deep_pipeline(n_items: int) -> dict:
    """Item-stages/sec for the same pipeline, engine vs fast-forward."""
    item_stages = n_items * _PIPE_KERNELS
    modes = {}
    for mode, enabled in (("engine", False), ("fastpath", True)):
        set_fast_forward(enabled)
        try:
            sim = Simulator()
            sink = _build_pipeline(sim, n_items)
            t0 = time.perf_counter()
            sim.run()
            wall = time.perf_counter() - t0
        finally:
            set_fast_forward(None)
        assert sink.items == n_items
        modes[mode] = {
            "wall_s": wall,
            "item_stages_per_sec": item_stages / wall,
            "done_at_ps": sink.done_at_ps,
        }
    assert modes["engine"]["done_at_ps"] == modes["fastpath"]["done_at_ps"], (
        "fast-forward must preserve the exact completion time"
    )
    return {"item_stages": item_stages, **modes}


def _sweep_runner() -> dict:
    """e22 grid: serial vs parallel wall clock, identical rows."""
    t0 = time.perf_counter()
    serial = SweepRunner(build_spec("e22")).run()
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = SweepRunner(build_spec("e22"), parallel=_SWEEP_WORKERS).run()
    parallel_s = time.perf_counter() - t0
    assert par.rows == serial.rows, "parallel sweep must match serial"
    return {
        "experiment": "e22",
        "cells": serial.cells,
        "workers": _SWEEP_WORKERS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "rows_match": True,
    }


def _cached_rerun(exp_id: str) -> dict:
    """Cold compute vs warm cached re-run for one experiment."""
    import tempfile

    from repro.exec import ResultCache

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        t0 = time.perf_counter()
        cold = SweepRunner(build_spec(exp_id), cache=cache).run()
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = SweepRunner(build_spec(exp_id), cache=cache).run()
        warm_s = time.perf_counter() - t0
    assert cold.rows == warm.rows
    assert warm.hits == warm.cells and warm.computed == 0
    return {
        "cold_s": cold_s,
        "cached_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def _end_to_end() -> dict:
    """Experiment-level wins: cached re-runs of e11 and e22.

    The parallel pool can only beat serial with more than one CPU
    (``cpus`` is recorded at the top level so the sweep timings are
    interpretable); the cache pays off regardless.
    """
    return {
        "e11": _cached_rerun("e11"),
        "e22": _cached_rerun("e22"),
    }


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[1] / "BENCH_e23.json"


def _run_sim_perf(
    write: bool = True,
    storm_procs: int = _STORM_PROCS,
    storm_timeouts: int = _STORM_TIMEOUTS,
    pipe_items: int = _PIPE_ITEMS,
) -> ResultTable:
    storm = _timeout_storm(storm_procs, storm_timeouts)
    pipe = _deep_pipeline(pipe_items)
    sweep = _sweep_runner()
    e2e = _end_to_end()

    report = ResultTable(
        "E23: simulator performance (events/sec and sweep wall clock)",
        ("workload", "metric", "value"),
    )
    report.add("timeout storm", "events/sec",
               round(storm["events_per_sec"]))
    report.add("deep pipeline (engine)", "item-stages/sec",
               round(pipe["engine"]["item_stages_per_sec"]))
    report.add("deep pipeline (fastpath)", "item-stages/sec",
               round(pipe["fastpath"]["item_stages_per_sec"]))
    report.add("e22 sweep serial", "seconds",
               round(sweep["serial_s"], 3))
    report.add(f"e22 sweep x{sweep['workers']}", "seconds",
               round(sweep["parallel_s"], 3))
    report.add("e11 end-to-end cached", "speedup",
               round(e2e["e11"]["speedup"], 1))
    report.add("e22 end-to-end cached", "speedup",
               round(e2e["e22"]["speedup"], 1))
    report.note(
        "fastpath and engine agree on done_at_ps="
        f"{pipe['engine']['done_at_ps']}; sweep rows byte-identical "
        "serial vs parallel"
    )

    if write:
        payload = {
            "schema": "bench_e23/1",
            "mode": "smoke" if _SMOKE else "full",
            "cpus": os.cpu_count(),
            "timeout_storm": storm,
            "deep_pipeline": pipe,
            "sweep": sweep,
            "end_to_end": e2e,
            "seed_baseline": _SEED_BASELINE,
            "speedup_vs_seed": {
                "timeout_storm": storm["events_per_sec"]
                / _SEED_BASELINE["timeout_storm_events_per_sec"],
                "pipeline_engine": pipe["engine"]["item_stages_per_sec"]
                / _SEED_BASELINE["pipeline_item_stages_per_sec"],
                "pipeline_fastpath": pipe["fastpath"]["item_stages_per_sec"]
                / _SEED_BASELINE["pipeline_item_stages_per_sec"],
            },
        }
        out = _out_path()
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        report.note(f"written to {out}")
    return report


def _run_smoke() -> ResultTable:
    """Small sizes, no JSON side effects — for the bench smoke suite."""
    return _run_sim_perf(
        write=False, storm_procs=100, storm_timeouts=20, pipe_items=500
    )


def test_e23_sim_perf(benchmark):
    table = benchmark.pedantic(_run_sim_perf, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_sim_perf().show()
