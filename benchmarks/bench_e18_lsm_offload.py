"""E18 — LSM compaction offload (introduction: X-Engine / FAST'20).

(a) Measure real write amplification from the LSM store, then (b) run
the write-burst study under CPU compaction (various core splits) and
the FPGA merge-tree offload.  Shape claims: the offload sustains the
highest write throughput; CPU splits face the stall-vs-ingest dilemma.
"""

import numpy as np
import pytest

from repro.baselines import xeon_server
from repro.bench import ResultTable
from repro.lsm import (
    CompactionExecutor,
    LsmStore,
    cpu_compaction_bandwidth,
    fpga_compaction_bandwidth,
    run_offload_study,
)


def _measure_write_amplification() -> tuple[float, ResultTable]:
    store = LsmStore(memtable_limit=512, level0_limit=4, fanout=4)
    rng = np.random.default_rng(3)
    n = 60_000
    keys = rng.integers(0, 20_000, size=n)
    values = rng.integers(0, 1 << 30, size=n)
    store.put_batch(keys, values)
    store.flush()
    table = ResultTable(
        "E18a: LSM trace (real store, 60k writes, 20k key space)",
        ("metric", "value"),
    )
    table.add("flushes (bytes)", store.bytes_flushed)
    table.add("compactions", len(store.compactions))
    table.add("compacted (bytes)", store.bytes_compacted)
    table.add("write amplification", store.write_amplification)
    table.add("live keys", store.n_live_keys)
    assert store.write_amplification > 1.0
    assert store.n_live_keys == len(np.unique(keys))
    return store.write_amplification, table


def _run_offload(write_amplification: float) -> ResultTable:
    cpu = xeon_server()
    n_writes = 60_000_000
    executors = [
        CompactionExecutor(
            "cpu 4 cores", cpu_compaction_bandwidth(cpu, 4), 4
        ),
        CompactionExecutor(
            "cpu 8 cores", cpu_compaction_bandwidth(cpu, 8), 8
        ),
        CompactionExecutor(
            "cpu 16 cores", cpu_compaction_bandwidth(cpu, 16), 16
        ),
        CompactionExecutor(
            "fpga 2 merge trees", fpga_compaction_bandwidth(2), 0
        ),
    ]
    report = ResultTable(
        f"E18b: sustained writes under compaction "
        f"(WA={write_amplification:.1f})",
        ("executor", "M writes/s", "stall %", "total s"),
    )
    rates = {}
    for executor in executors:
        result = run_offload_study(n_writes, write_amplification, executor)
        rates[executor.name] = result.sustained_writes_per_sec
        report.add(
            executor.name, result.sustained_writes_per_sec / 1e6,
            result.stall_fraction * 100, result.total_time_s,
        )
    assert rates["fpga 2 merge trees"] == max(rates.values()), \
        "offload sustains the highest ingest"
    report.note("fpga keeps all foreground cores AND drains at 19.2 GB/s")
    return report


def test_e18_lsm_trace_and_offload(benchmark):
    def run():
        wa, trace_table = _measure_write_amplification()
        offload_table = _run_offload(wa)
        return trace_table, offload_table

    trace_table, offload_table = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    trace_table.show()
    offload_table.show()


if __name__ == "__main__":
    wa, t = _measure_write_amplification()
    t.show()
    _run_offload(wa).show()
