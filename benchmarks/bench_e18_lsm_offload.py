"""E18 — LSM compaction offload (introduction: X-Engine / FAST'20).

(a) Measure real write amplification from the LSM store, then (b) run
the write-burst study under CPU compaction (various core splits) and
the FPGA merge-tree offload.  Shape claims: the offload sustains the
highest write throughput; CPU splits face the stall-vs-ingest dilemma.

The WA measurement lives in the spec's ``prepare()``; the cells and
table assembly live in ``repro.exec.experiments`` so
``repro run e18 --parallel N`` executes the exact same code this bench
does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _spec():
    return build_spec("e18")


def _run_trace() -> ResultTable:
    spec = _spec()
    return spec.tables(configs=spec.part(part="trace"))[0]


def _run_offload() -> ResultTable:
    spec = _spec()
    return spec.tables(configs=spec.part(part="offload"))[0]


def _run_both() -> tuple[ResultTable, ResultTable]:
    # One prepare() (the LSM trace) feeds both tables.
    tables = _spec().tables()
    return tables[0], tables[1]


def test_e18_lsm_trace_and_offload(benchmark):
    trace_table, offload_table = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )
    trace_table.show()
    offload_table.show()


if __name__ == "__main__":
    for t in _spec().tables():
        t.show()
