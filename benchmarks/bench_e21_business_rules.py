"""E21 — business-rule matching (presenters' Amadeus case study [27]).

Rule-count sweep: CPU evaluation time grows linearly with the rule set;
the spatial matcher's per-query latency stays flat (rules evaluate in
parallel comparator banks) until the fabric runs out — which the device
model locates.
"""

import numpy as np
import pytest

from repro.baselines import xeon_server
from repro.bench import ResultTable
from repro.core import ALVEO_U250
from repro.operators import (
    cpu_match_time_s,
    random_rules,
    rules_kernel_spec,
)

_N_ATTRS = 8
_N_QUERIES = 100_000


def _run_rules_sweep() -> ResultTable:
    cpu = xeon_server()
    report = ResultTable(
        "E21: rule matching, 100k queries over growing rule sets",
        ("rules", "CPU ms (1 core)", "FPGA ms", "speedup",
         "FPGA LUTs", "fits U250"),
    )
    # Functional spot check on a small set.
    rules = random_rules(200, _N_ATTRS, seed=7)
    rng = np.random.default_rng(8)
    queries = rng.random((500, _N_ATTRS))
    best = rules.best_match(queries)
    match = rules.matches(queries)
    assert ((best >= 0) == match.any(axis=1)).all()

    fpga_times = []
    speedups = []
    for n_rules in (256, 1024, 4096, 16384):
        spec = rules_kernel_spec(n_rules, _N_ATTRS)
        fpga_s = spec.latency_seconds(_N_QUERIES)
        cpu_s = cpu_match_time_s(cpu, _N_QUERIES, n_rules, _N_ATTRS)
        fits = ALVEO_U250.fits(spec.resources)
        fpga_times.append(fpga_s)
        speedups.append(cpu_s / fpga_s)
        report.add(n_rules, cpu_s * 1e3, fpga_s * 1e3, cpu_s / fpga_s,
                   spec.resources.lut, "yes" if fits else "no")
    # Flat FPGA time, linear CPU time -> speedup grows with rules.
    assert max(fpga_times) < 1.02 * min(fpga_times)
    assert speedups == sorted(speedups)
    assert speedups[-1] > 50
    # The fabric eventually caps the rule count.
    assert not ALVEO_U250.fits(
        rules_kernel_spec(300_000, _N_ATTRS).resources
    )
    report.note("spatial evaluation: latency independent of rule count")
    return report


def test_e21_business_rules(benchmark):
    table = benchmark.pedantic(_run_rules_sweep, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_rules_sweep().show()
