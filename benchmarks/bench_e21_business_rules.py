"""E21 — business-rule matching (presenters' Amadeus case study [27]).

Rule-count sweep: CPU evaluation time grows linearly with the rule set;
the spatial matcher's per-query latency stays flat (rules evaluate in
parallel comparator banks) until the fabric runs out — which the device
model locates.

The functional spot check lives in the spec's ``prepare()``; the cells
and table assembly live in ``repro.exec.experiments`` so
``repro run e21 --parallel N`` executes the exact same code this bench
does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_rules_sweep() -> ResultTable:
    return build_spec("e21").tables()[0]


def test_e21_business_rules(benchmark):
    table = benchmark.pedantic(_run_rules_sweep, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_rules_sweep().show()
