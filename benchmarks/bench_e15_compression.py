"""E15 — column compression offload (SAP HANA use case, Resources §).

Dictionary and RLE codecs: compression ratios on typical column shapes
(functional, exact round-trip) and the codec throughput comparison that
justifies offloading them from HANA's CPUs to the accelerator.
"""

import numpy as np
import pytest

from repro.baselines import xeon_server
from repro.bench import ResultTable
from repro.operators import (
    codec_kernel_spec,
    cpu_codec_time_s,
    dict_decode,
    dict_encode,
    rle_decode,
    rle_encode,
)
from repro.workloads import ZipfSampler, grouped_table


def _run_ratios() -> ResultTable:
    rng = np.random.default_rng(9)
    report = ResultTable(
        "E15a: compression ratios (functional codecs, exact round-trip)",
        ("column", "rows", "codec", "ratio"),
    )
    low_card = rng.integers(0, 50, size=1_000_000)
    encoded = dict_encode(low_card)
    assert np.array_equal(dict_decode(encoded), low_card)
    report.add("50 distinct values", 1_000_000, "dict", encoded.ratio)
    assert encoded.ratio > 6

    sorted_col = np.sort(ZipfSampler(200, 1.2, rng).sample(1_000_000))
    rle = rle_encode(sorted_col)
    assert np.array_equal(rle_decode(rle), sorted_col)
    ratio = sorted_col.nbytes / rle.nbytes
    report.add("sorted Zipf keys", 1_000_000, "rle", ratio)
    assert ratio > 100

    grouped = grouped_table(1_000_000, n_groups=1000, seed=1)["group"]
    d = dict_encode(grouped)
    report.add("1000-group fact key", 1_000_000, "dict", d.ratio)
    return report


def _run_throughput() -> ResultTable:
    cpu = xeon_server()
    report = ResultTable(
        "E15b: codec throughput (GB/s of decoded data)",
        ("codec", "FPGA GB/s", "1 core GB/s", "32 cores GB/s",
         "FPGA vs core"),
    )
    n_values = 1 << 28  # 2 GiB of int64 values
    nbytes = n_values * 8
    for kind in ("dict-decode", "dict-encode", "rle-decode", "aes-encrypt"):
        spec = codec_kernel_spec(kind)
        fpga = nbytes / spec.latency_seconds(n_values)
        core = nbytes / cpu_codec_time_s(cpu, nbytes, kind, parallel=False)
        socket = nbytes / cpu_codec_time_s(cpu, nbytes, kind, parallel=True)
        report.add(kind, fpga / 1e9, core / 1e9, socket / 1e9, fpga / core)
        if kind in ("dict-encode", "aes-encrypt"):
            # The compute-heavy directions are what HANA offloads.
            assert fpga > core, f"{kind}: datapath beats a core"
    report.note("FPGA codecs: 512-bit datapath, II=1 per 8 values")
    report.note("decode directions are bandwidth-bound on both sides")
    return report


def test_e15_ratios(benchmark):
    table = benchmark.pedantic(_run_ratios, rounds=1, iterations=1)
    table.show()


def test_e15_throughput(benchmark):
    table = benchmark.pedantic(_run_throughput, rounds=1, iterations=1)
    table.show()
