"""E15 — column compression offload (SAP HANA use case, Resources §).

Dictionary and RLE codecs: compression ratios on typical column shapes
(functional, exact round-trip) and the codec throughput comparison that
justifies offloading them from HANA's CPUs to the accelerator.

The cells and table assembly live in ``repro.exec.experiments`` so
``repro run e15 --parallel N`` executes the exact same code this bench
does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _spec():
    return build_spec("e15")


def _run_ratios() -> ResultTable:
    spec = _spec()
    return spec.tables(configs=spec.part(part="ratios"))[0]


def _run_throughput() -> ResultTable:
    spec = _spec()
    return spec.tables(configs=spec.part(part="throughput"))[0]


def test_e15_ratios(benchmark):
    table = benchmark.pedantic(_run_ratios, rounds=1, iterations=1)
    table.show()


def test_e15_throughput(benchmark):
    table = benchmark.pedantic(_run_throughput, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_ratios().show()
    _run_throughput().show()
