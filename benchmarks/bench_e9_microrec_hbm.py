"""E9 — HBM banking sweep and SRAM placement ablation (Use Case III).

(a) Lookup-stage speedup vs number of HBM channels: grows with the
channel count and saturates once every table has its own channel —
memory-level parallelism is the win, and it runs out.
(b) SRAM placement ablation: moving small tables on-chip removes their
HBM row cycles entirely.
"""

import pytest

from repro.bench import ResultTable
from repro.microrec import EmbeddingTables, MicroRecAccelerator, MicroRecConfig
from repro.workloads import lookup_trace, production_like_model

_BATCH = 256


def _run_channel_sweep(rec_model, rec_tables) -> ResultTable:
    # A model small enough to fit a single HBM pseudo-channel, so the
    # sweep can start at 1 channel.
    spec = production_like_model(n_tables=32, max_rows=100_000, seed=9)
    tables = EmbeddingTables(spec, seed=9)
    trace_batch = _BATCH
    report = ResultTable(
        "E9a: lookup stage vs HBM channel count (no SRAM)",
        ("channels", "lookup stage us", "speedup vs 1 channel"),
    )
    times = []
    for channels in (1, 2, 4, 8, 16, 32):
        config = MicroRecConfig(sram_budget_bytes=0, n_hbm_channels=channels)
        accel = MicroRecAccelerator(tables, config=config, seed=5)
        t = accel.lookup_time_s(trace_batch)
        times.append(t)
        report.add(channels, t * 1e6, times[0] / t)
    assert times == sorted(times, reverse=True), "more channels never hurt"
    assert times[0] / times[-1] > 4, "banking parallelism pays off"
    # Saturation: the last doubling helps less than the first.
    first_gain = times[0] / times[1]
    last_gain = times[-2] / times[-1]
    assert last_gain < first_gain
    return report


def _run_sram_ablation(rec_model, rec_tables) -> ResultTable:
    trace = lookup_trace(rec_model, batch_size=_BATCH, seed=33)
    report = ResultTable(
        "E9b: SRAM placement ablation (32 HBM channels)",
        ("SRAM budget MB", "tables in SRAM", "HBM lookups/inf",
         "lookup stage us"),
    )
    times = []
    for budget_mb in (0, 1, 4, 16, 32):
        config = MicroRecConfig(
            sram_budget_bytes=budget_mb << 20, n_hbm_channels=32
        )
        accel = MicroRecAccelerator(rec_tables, config=config, seed=5)
        out = accel.infer(trace)
        times.append(out.lookup_s)
        report.add(
            budget_mb, len(accel.placement.sram_tables),
            accel.hbm_lookups_per_inference, out.lookup_s * 1e6,
        )
    assert times[-1] <= times[0], "SRAM placement never hurts"
    return report


def test_e9_channel_sweep(benchmark, rec_model, rec_tables):
    table = benchmark.pedantic(
        _run_channel_sweep, args=(rec_model, rec_tables),
        rounds=1, iterations=1,
    )
    table.show()


def test_e9_sram_ablation(benchmark, rec_model, rec_tables):
    table = benchmark.pedantic(
        _run_sram_ablation, args=(rec_model, rec_tables),
        rounds=1, iterations=1,
    )
    table.show()
