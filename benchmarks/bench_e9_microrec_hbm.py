"""E9 — HBM banking sweep and SRAM placement ablation (Use Case III).

(a) Lookup-stage speedup vs number of HBM channels: grows with the
channel count and saturates once every table has its own channel —
memory-level parallelism is the win, and it runs out.
(b) SRAM placement ablation: moving small tables on-chip removes their
HBM row cycles entirely.

The per-config cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e9 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec
from repro.exec.experiments import e9_context


def _run_channel_sweep(rec_model, rec_tables) -> ResultTable:
    spec = build_spec("e9")
    return spec.tables(
        e9_context(rec_model, rec_tables),
        configs=spec.part(part="channels"),
    )[0]


def _run_sram_ablation(rec_model, rec_tables) -> ResultTable:
    spec = build_spec("e9")
    return spec.tables(
        e9_context(rec_model, rec_tables),
        configs=spec.part(part="sram"),
    )[0]


def test_e9_channel_sweep(benchmark, rec_model, rec_tables):
    table = benchmark.pedantic(
        _run_channel_sweep, args=(rec_model, rec_tables),
        rounds=1, iterations=1,
    )
    table.show()


def test_e9_sram_ablation(benchmark, rec_model, rec_tables):
    table = benchmark.pedantic(
        _run_sram_ablation, args=(rec_model, rec_tables),
        rounds=1, iterations=1,
    )
    table.show()
