"""Shared fixtures for the experiment benchmarks.

The fixtures delegate to the spec context builders in
``repro.exec.experiments.contexts`` — the single source of truth for
dataset/index/model construction parameters — so the pytest bench path
and ``repro run eN`` always operate on identical artifacts.  The
builders are ``lru_cache``d, so the whole
``pytest benchmarks/ --benchmark-only`` run builds each once (the
session scope here just avoids re-entering the cached call).
"""

import os

import pytest

from repro.exec.experiments import (
    FANNS_LIST_SCALE,  # noqa: F401  (re-export for bench modules)
    fanns_dataset,
    fanns_index,
    microrec_model,
    microrec_tables,
    microrec_trace,
)


@pytest.fixture(scope="session", autouse=True)
def _obs_trace():
    """Trace the whole bench session when ``REPRO_TRACE`` is set.

    ``python -m repro run <ids> --trace OUT.json`` sets the variable;
    every Simulator/BankedMemory the experiments construct then records
    through one shared default tracer, and the collected events are
    exported as Chrome ``trace_event`` JSON with a utilisation summary
    printed at the end of the session.
    """
    path = os.environ.get("REPRO_TRACE")
    if not path:
        yield
        return
    from repro.obs import Tracer, set_default_tracer

    tracer = Tracer()
    set_default_tracer(tracer)
    try:
        yield
    finally:
        set_default_tracer(None)
        tracer.export_chrome(path)
        print()
        print(tracer.utilisation_summary())


@pytest.fixture(scope="session")
def vector_data():
    """Clustered dataset + ground truth for the FANNS experiments."""
    return fanns_dataset()


@pytest.fixture(scope="session")
def ivfpq_index(vector_data):
    """A trained IVF-PQ index over the session dataset."""
    return fanns_index()


@pytest.fixture(scope="session")
def rec_model():
    """A production-shaped recommendation model spec."""
    return microrec_model()


@pytest.fixture(scope="session")
def rec_tables(rec_model):
    """Materialised embedding tables for the MicroRec experiments."""
    return microrec_tables()


@pytest.fixture(scope="session")
def rec_trace(rec_model):
    """A 256-inference lookup trace."""
    return microrec_trace()
