"""Shared fixtures for the experiment benchmarks.

Expensive artifacts (datasets, trained indexes, embedding tables) are
session-scoped so the whole ``pytest benchmarks/ --benchmark-only`` run
builds each once.
"""

import os

import pytest

from repro.fanns import build_ivfpq
from repro.microrec import EmbeddingTables
from repro.workloads import (
    clustered_dataset,
    lookup_trace,
    production_like_model,
)

# Deployment-scale multiplier for FANNS timing (see DESIGN.md §1: the
# functional index is small; the papers' datasets are 1e8-1e9 vectors).
FANNS_LIST_SCALE = 2_000


@pytest.fixture(scope="session", autouse=True)
def _obs_trace():
    """Trace the whole bench session when ``REPRO_TRACE`` is set.

    ``python -m repro run <ids> --trace OUT.json`` sets the variable;
    every Simulator/BankedMemory the experiments construct then records
    through one shared default tracer, and the collected events are
    exported as Chrome ``trace_event`` JSON with a utilisation summary
    printed at the end of the session.
    """
    path = os.environ.get("REPRO_TRACE")
    if not path:
        yield
        return
    from repro.obs import Tracer, set_default_tracer

    tracer = Tracer()
    set_default_tracer(tracer)
    try:
        yield
    finally:
        set_default_tracer(None)
        tracer.export_chrome(path)
        print()
        print(tracer.utilisation_summary())


@pytest.fixture(scope="session")
def vector_data():
    """Clustered dataset + ground truth for the FANNS experiments."""
    return clustered_dataset(
        n=20_000, dim=32, n_queries=100, gt_k=10, n_clusters=64,
        cluster_std=0.25, seed=13,
    )


@pytest.fixture(scope="session")
def ivfpq_index(vector_data):
    """A trained IVF-PQ index over the session dataset."""
    return build_ivfpq(vector_data.base, nlist=256, m=16, ksub=256, seed=13)


@pytest.fixture(scope="session")
def rec_model():
    """A production-shaped recommendation model spec."""
    return production_like_model(n_tables=47, max_rows=2_000_000, seed=21)


@pytest.fixture(scope="session")
def rec_tables(rec_model):
    """Materialised embedding tables for the MicroRec experiments."""
    return EmbeddingTables(rec_model, seed=21)


@pytest.fixture(scope="session")
def rec_trace(rec_model):
    """A 256-inference lookup trace."""
    return lookup_trace(rec_model, batch_size=256, seed=22)
