"""E6 — FANNS hardware-generator design-space exploration (Use Case II).

Per recall target, the generator enumerates hardware configurations,
drops the ones that do not fit the Alveo U55C, and picks the
QPS-maximal feasible design.  Shape claims: higher recall targets force
larger nprobe and cost QPS; at least part of the space is infeasible
(the resource budget binds); the chosen designs fit the device.

The per-target cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e6 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_generator(index, data) -> ResultTable:
    return build_spec("e6").tables({"index": index, "data": data})[0]


def test_e6_generator(benchmark, ivfpq_index, vector_data):
    table = benchmark.pedantic(
        _run_generator, args=(ivfpq_index, vector_data),
        rounds=1, iterations=1,
    )
    table.show()
