"""E6 — FANNS hardware-generator design-space exploration (Use Case II).

Per recall target, the generator enumerates hardware configurations,
drops the ones that do not fit the Alveo U55C, and picks the
QPS-maximal feasible design.  Shape claims: higher recall targets force
larger nprobe and cost QPS; at least part of the space is infeasible
(the resource budget binds); the chosen designs fit the device.
"""

import pytest

from conftest import FANNS_LIST_SCALE
from repro.bench import ResultTable
from repro.core import ALVEO_U55C
from repro.fanns import FannsConfig, HardwareGenerator

_TARGETS = (0.5, 0.7, 0.8, 0.9)


def _run_generator(index, data) -> ResultTable:
    generator = HardwareGenerator(
        index, data.queries, data.ground_truth, k=10,
        device=ALVEO_U55C, list_scale=FANNS_LIST_SCALE,
    )
    report = ResultTable(
        "E6: best feasible U55C design per recall target",
        ("target", "nprobe", "recall", "QPS", "lat us",
         "dist PEs", "ADC PEs", "HBM ch", "feasible/total"),
    )
    qps_series = []
    for target in _TARGETS:
        best, points = generator.explore(recall_target=target)
        assert best is not None, f"target {target} unreachable"
        assert best.fits
        demand = best.config.resources(index.pq.m)
        assert ALVEO_U55C.fits(demand)
        feasible = sum(1 for p in points if p.fits)
        qps_series.append(best.qps)
        report.add(
            target, best.nprobe, round(best.recall, 3), best.qps,
            best.latency_s * 1e6, best.config.n_distance_pes,
            best.config.n_adc_pes, best.config.n_hbm_channels,
            f"{feasible}/{len(points)}",
        )
    assert qps_series == sorted(qps_series, reverse=True), \
        "recall costs QPS"

    # The resource budget must actually bind somewhere in the space.
    monster = FannsConfig(n_distance_pes=32, n_lut_pes=32,
                          n_adc_pes=4096, n_hbm_channels=32)
    assert not ALVEO_U55C.fits(monster.resources(index.pq.m))
    return report


def test_e6_generator(benchmark, ivfpq_index, vector_data):
    table = benchmark.pedantic(
        _run_generator, args=(ivfpq_index, vector_data),
        rounds=1, iterations=1,
    )
    table.show()
