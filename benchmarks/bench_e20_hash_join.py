"""E20 — "Is FPGA useful for hash joins?" (tutorial citation [5]).

The CIDR'20 study's nuanced answer, regenerated: (a) for standalone
large in-memory joins, CPU and FPGA land within a small factor of each
other (both memory-bound); (b) the FPGA is genuinely useful when the
build side fits on-chip or the join is fused into a streaming
pipeline, where probes ride along at line rate.

The functional spot check lives in the spec's ``prepare()``; the cells
and table assembly live in ``repro.exec.experiments`` so
``repro run e20 --parallel N`` executes the exact same code this bench
does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_join_study() -> ResultTable:
    return build_spec("e20").tables()[0]


def test_e20_hash_join(benchmark):
    table = benchmark.pedantic(_run_join_study, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_join_study().show()
