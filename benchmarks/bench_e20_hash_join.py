"""E20 — "Is FPGA useful for hash joins?" (tutorial citation [5]).

The CIDR'20 study's nuanced answer, regenerated: (a) for standalone
large in-memory joins, CPU and FPGA land within a small factor of each
other (both memory-bound); (b) the FPGA is genuinely useful when the
build side fits on-chip or the join is fused into a streaming
pipeline, where probes ride along at line rate.
"""

import numpy as np
import pytest

from repro.baselines import xeon_server
from repro.bench import ResultTable
from repro.relational import (
    FpgaJoinModel,
    Table,
    cpu_join_time_s,
    hash_join,
)


def _run_functional_check() -> None:
    rng = np.random.default_rng(2)
    probe = Table({
        "k": rng.integers(0, 1000, size=50_000).astype(np.int64),
        "p": rng.random(50_000),
    })
    build = Table({
        "k": np.arange(1000, dtype=np.int64),
        "b": rng.integers(0, 100, size=1000).astype(np.int64),
    })
    out = hash_join(probe, build, "k", "k")
    assert out.n_rows == probe.n_rows  # unique build keys cover everything
    assert np.array_equal(out["b"], build["b"][probe["k"]])


def _run_join_study() -> ResultTable:
    _run_functional_check()
    cpu = xeon_server()
    model = FpgaJoinModel()
    n_probe = 100_000_000
    report = ResultTable(
        "E20: hash join, 100M probes (modeled)",
        ("build rows", "placement", "FPGA M tuples/s", "CPU M tuples/s",
         "FPGA/CPU"),
    )
    ratios = {}
    for n_build in (100_000, 1_000_000, 100_000_000):
        timing = model.join_time(n_probe, n_build, 16, 16)
        fpga_rate = (n_probe + n_build) / timing.total_s
        cpu_rate = (n_probe + n_build) / cpu_join_time_s(
            cpu, n_probe, n_build, 16, 16
        )
        ratios[timing.placement] = fpga_rate / cpu_rate
        report.add(n_build, timing.placement, fpga_rate / 1e6,
                   cpu_rate / 1e6, fpga_rate / cpu_rate)
    # The CIDR verdict: small build sides (BRAM) strongly favor the
    # FPGA; huge standalone joins are contested, not dominated.
    assert ratios["bram"] > 2
    assert 0.2 < ratios["hbm"] < 5
    report.note("streaming-fused probes additionally ride at line rate "
                f"({model.streaming_probe_rate(100_000, 16) / 1e6:.0f} M/s)")
    return report


def test_e20_hash_join(benchmark):
    table = benchmark.pedantic(_run_join_study, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_join_study().show()
