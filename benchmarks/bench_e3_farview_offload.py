"""E3 — Farview operator offload vs fetch-all (Figure 2, Use Case I).

Selectivity sweep of a filter+aggregate query on a disaggregated table:
query latency and bytes moved, offloaded vs fetched.  Shape claims:
offload wins everywhere for aggregations, by orders of magnitude on
bytes moved; for projections the advantage narrows to ~1x as
selectivity approaches 1 (the crossover).

The per-selectivity cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e3 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _spec():
    return build_spec("e3")


def _run_aggregate_sweep() -> ResultTable:
    spec = _spec()
    return spec.tables(configs=spec.part(part="agg"))[0]


def _run_projection_crossover() -> ResultTable:
    spec = _spec()
    return spec.tables(configs=spec.part(part="proj"))[0]


def test_e3_aggregate_sweep(benchmark):
    table = benchmark.pedantic(_run_aggregate_sweep, rounds=1, iterations=1)
    table.show()


def test_e3_projection_crossover(benchmark):
    table = benchmark.pedantic(
        _run_projection_crossover, rounds=1, iterations=1
    )
    table.show()


if __name__ == "__main__":
    _run_aggregate_sweep().show()
    _run_projection_crossover().show()
