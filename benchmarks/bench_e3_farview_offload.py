"""E3 — Farview operator offload vs fetch-all (Figure 2, Use Case I).

Selectivity sweep of a filter+aggregate query on a disaggregated table:
query latency and bytes moved, offloaded vs fetched.  Shape claims:
offload wins everywhere for aggregations, by orders of magnitude on
bytes moved; for projections the advantage narrows to ~1x as
selectivity approaches 1 (the crossover).
"""

import pytest

from repro.bench import ResultTable
from repro.farview import FarviewClient, FarviewServer
from repro.relational import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    Project,
    QueryPlan,
    Table,
    col,
)
from repro.workloads import uniform_table

_N_ROWS = 2_000_000
_KEY_MAX = 1_000_000


def _client() -> FarviewClient:
    server = FarviewServer()
    server.store(
        "t", Table(uniform_table(_N_ROWS, n_payload_cols=4, key_max=_KEY_MAX))
    )
    return FarviewClient(server)


def _run_aggregate_sweep() -> ResultTable:
    client = _client()
    report = ResultTable(
        "E3a: offload vs fetch, SELECT sum(val0) WHERE key < t",
        ("selectivity", "offload ms", "fetch ms", "speedup",
         "offload B", "fetch B"),
    )
    speedups = []
    for selectivity in (0.001, 0.01, 0.1, 0.5, 1.0):
        plan = QueryPlan((
            Filter(col("key") < int(selectivity * _KEY_MAX)),
            Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
        ))
        off = client.query_offload(plan, "t")
        fetch = client.query_fetch(plan, "t")
        assert off.result.equals(fetch.result)
        s = fetch.latency_s / off.latency_s
        speedups.append(s)
        report.add(selectivity, off.latency_s * 1e3, fetch.latency_s * 1e3,
                   s, off.bytes_over_network, fetch.bytes_over_network)
    assert all(s > 1.0 for s in speedups), "offloaded agg always wins"
    return report


def _run_projection_crossover() -> ResultTable:
    client = _client()
    report = ResultTable(
        "E3b: crossover, SELECT key, val0 WHERE key < t",
        ("selectivity", "offload ms", "fetch ms", "speedup"),
    )
    speedups = []
    for selectivity in (0.01, 0.25, 0.5, 1.0):
        plan = QueryPlan((
            Filter(col("key") < int(selectivity * _KEY_MAX)),
            Project(("key", "val0")),
        ))
        off = client.query_offload(plan, "t")
        fetch = client.query_fetch(plan, "t")
        s = fetch.latency_s / off.latency_s
        speedups.append(s)
        report.add(selectivity, off.latency_s * 1e3,
                   fetch.latency_s * 1e3, s)
    assert speedups[0] > speedups[-1], "advantage shrinks with selectivity"
    assert speedups[-1] == pytest.approx(1.0, abs=0.15), "crossover at 1.0"
    return report


def test_e3_aggregate_sweep(benchmark):
    table = benchmark.pedantic(_run_aggregate_sweep, rounds=1, iterations=1)
    table.show()


def test_e3_projection_crossover(benchmark):
    table = benchmark.pedantic(
        _run_projection_crossover, rounds=1, iterations=1
    )
    table.show()


if __name__ == "__main__":
    _run_aggregate_sweep().show()
    _run_projection_crossover().show()
