"""E8 — Cartesian-product ablation (Use Case III).

Sweeping the Cartesian byte budget in the channel-constrained regime
(8 HBM channels, no SRAM): lookups per inference fall, the lookup stage
gets faster, logits stay bit-identical, and the capacity overhead grows
— the memory-for-accesses trade MicroRec describes.
"""

import numpy as np
import pytest

from repro.bench import ResultTable
from repro.microrec import MicroRecAccelerator, MicroRecConfig, plan_cartesian

_CONFIG = MicroRecConfig(sram_budget_bytes=0, n_hbm_channels=8)


def _run_cartesian(rec_model, rec_tables, rec_trace) -> ResultTable:
    report = ResultTable(
        "E8: Cartesian budget sweep (8 HBM channels, no SRAM)",
        ("byte budget", "lookups/inf", "capacity overhead",
         "lookup stage us", "batch QPS"),
    )
    baseline = MicroRecAccelerator(rec_tables, config=_CONFIG, seed=5)
    base_out = baseline.infer(rec_trace)
    lookups, stage_times = [], []
    for mult in (1.0, 1.5, 2.0, 4.0):
        plan = plan_cartesian(
            rec_model, byte_budget=int(mult * rec_model.total_embedding_bytes)
        )
        accel = MicroRecAccelerator(
            rec_tables, plan=plan, config=_CONFIG, seed=5
        )
        out = accel.infer(rec_trace)
        assert np.allclose(out.logits, base_out.logits, rtol=1e-4, atol=1e-4)
        lookups.append(accel.lookups_per_inference)
        stage_times.append(out.lookup_s)
        report.add(
            f"{mult:.1f}x", accel.lookups_per_inference,
            round(plan.capacity_overhead, 2), out.lookup_s * 1e6, out.qps,
        )
    assert lookups[-1] < lookups[0], "budget buys fewer lookups"
    assert stage_times[-1] < stage_times[0], "fewer lookups -> faster stage"
    assert lookups == sorted(lookups, reverse=True)
    return report


def test_e8_cartesian(benchmark, rec_model, rec_tables, rec_trace):
    table = benchmark.pedantic(
        _run_cartesian, args=(rec_model, rec_tables, rec_trace),
        rounds=1, iterations=1,
    )
    table.show()
