"""E8 — Cartesian-product ablation (Use Case III).

Sweeping the Cartesian byte budget in the channel-constrained regime
(8 HBM channels, no SRAM): lookups per inference fall, the lookup stage
gets faster, logits stay bit-identical, and the capacity overhead grows
— the memory-for-accesses trade MicroRec describes.

The per-budget cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e8 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec
from repro.exec.experiments import e8_context


def _run_cartesian(rec_model, rec_tables, rec_trace) -> ResultTable:
    return build_spec("e8").tables(
        e8_context(rec_model, rec_tables, rec_trace)
    )[0]


def test_e8_cartesian(benchmark, rec_model, rec_tables, rec_trace):
    table = benchmark.pedantic(
        _run_cartesian, args=(rec_model, rec_tables, rec_trace),
        rounds=1, iterations=1,
    )
    table.show()
