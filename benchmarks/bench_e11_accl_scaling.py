"""E11 — allreduce scaling and algorithm comparison (Use Case IV).

(a) Allreduce time vs cluster size for ring and tree schedules on the
FPGA cluster: the tree grows ~log P for small payloads; the ring stays
near-flat for large payloads (bandwidth-optimal).
(b) The ring/tree crossover moves with payload size.
"""

import numpy as np
import pytest

from repro.accl import FpgaCluster
from repro.bench import ResultTable

_SMALL_FLOATS = 1 << 7    # 1 KiB per node
_LARGE_FLOATS = 1 << 20   # 8 MiB per node


def _buffers(p: int, n_floats: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    # Keep sizes divisible by every cluster size in the sweep.
    return [rng.random(n_floats) for _ in range(p)]


def _run_scaling() -> ResultTable:
    report = ResultTable(
        "E11a: allreduce time vs cluster size (FPGA cluster)",
        ("nodes", "tree small us", "ring small us",
         "tree 8MiB us", "ring 8MiB us"),
    )
    ring_large_series = []
    tree_small_series = []
    for p in (2, 4, 8, 16, 32):
        cluster = FpgaCluster(p)
        small = _buffers(p, _SMALL_FLOATS)
        large = _buffers(p, _LARGE_FLOATS)
        t_tree_small = cluster.allreduce(small, algorithm="tree").time_s
        t_ring_small = cluster.allreduce(small, algorithm="ring").time_s
        t_tree_large = cluster.allreduce(large, algorithm="tree").time_s
        t_ring_large = cluster.allreduce(large, algorithm="ring").time_s
        tree_small_series.append(t_tree_small)
        ring_large_series.append(t_ring_large)
        report.add(p, t_tree_small * 1e6, t_ring_small * 1e6,
                   t_tree_large * 1e6, t_ring_large * 1e6)
    # Tree latency grows with log P.
    assert tree_small_series == sorted(tree_small_series)
    # Ring bandwidth time is near-flat: 32 nodes < 2.5x the 2-node time.
    assert ring_large_series[-1] < 2.5 * ring_large_series[0]
    return report


def _run_crossover() -> ResultTable:
    p = 16
    cluster = FpgaCluster(p)
    report = ResultTable(
        "E11b: ring vs tree crossover (16 nodes)",
        ("floats/node", "ring us", "tree us", "winner"),
    )
    winners = []
    for n_floats in (16, 1 << 10, 1 << 14, 1 << 18, 1 << 21):
        buffers = _buffers(p, n_floats)
        ring = cluster.allreduce(buffers, algorithm="ring")
        tree = cluster.allreduce(buffers, algorithm="tree")
        assert np.allclose(ring.buffers[0], tree.buffers[0])
        winner = "ring" if ring.time_s < tree.time_s else "tree"
        winners.append(winner)
        report.add(n_floats, ring.time_s * 1e6, tree.time_s * 1e6, winner)
    assert winners[0] == "tree" and winners[-1] == "ring", \
        "crossover between small and large payloads"
    return report


def test_e11_scaling(benchmark):
    table = benchmark.pedantic(_run_scaling, rounds=1, iterations=1)
    table.show()


def test_e11_crossover(benchmark):
    table = benchmark.pedantic(_run_crossover, rounds=1, iterations=1)
    table.show()
