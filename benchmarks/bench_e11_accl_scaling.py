"""E11 — allreduce scaling and algorithm comparison (Use Case IV).

(a) Allreduce time vs cluster size for ring and tree schedules on the
FPGA cluster: the tree grows ~log P for small payloads; the ring stays
near-flat for large payloads (bandwidth-optimal).
(b) The ring/tree crossover moves with payload size.

The per-cell logic and table assembly live in
``repro.exec.experiments`` so ``repro run e11 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_scaling() -> ResultTable:
    spec = build_spec("e11")
    return spec.tables(configs=spec.part(kind="scaling"))[0]


def _run_crossover() -> ResultTable:
    # e11's assemble always emits both tables; the crossover is [1].
    spec = build_spec("e11")
    return spec.tables(configs=spec.part(kind="crossover"))[1]


def test_e11_scaling(benchmark):
    table = benchmark.pedantic(_run_scaling, rounds=1, iterations=1)
    table.show()


def test_e11_crossover(benchmark):
    table = benchmark.pedantic(_run_crossover, rounds=1, iterations=1)
    table.show()
