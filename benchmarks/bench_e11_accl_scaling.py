"""E11 — allreduce scaling and algorithm comparison (Use Case IV).

(a) Allreduce time vs cluster size for ring and tree schedules on the
FPGA cluster: the tree grows ~log P for small payloads; the ring stays
near-flat for large payloads (bandwidth-optimal).
(b) The ring/tree crossover moves with payload size.

The per-cell logic and table assembly live in
``repro.exec.experiments`` so ``repro run e11 --parallel N`` executes
the exact same code this bench does.
"""

import pytest

from repro.bench import ResultTable
from repro.exec.experiments import (
    _E11_CROSSOVER_SIZES,
    _E11_NODES,
    e11_assemble,
    e11_cell,
)


def _run_scaling() -> ResultTable:
    rows = [e11_cell({"kind": "scaling", "p": p}) for p in _E11_NODES]
    return e11_assemble(rows)[0]


def _run_crossover() -> ResultTable:
    rows = [
        e11_cell({"kind": "crossover", "n_floats": n})
        for n in _E11_CROSSOVER_SIZES
    ]
    return e11_assemble(rows)[1]


def test_e11_scaling(benchmark):
    table = benchmark.pedantic(_run_scaling, rounds=1, iterations=1)
    table.show()


def test_e11_crossover(benchmark):
    table = benchmark.pedantic(_run_crossover, rounds=1, iterations=1)
    table.show()
