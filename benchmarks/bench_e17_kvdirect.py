"""E17 — smart-NIC key-value serving (introduction: KV-Direct, SOSP'17).

The NIC-side KV server vs a software server over value sizes: identical
results, ~10x throughput (requests never touch host cores) and
several-fold latency.
"""

import numpy as np
import pytest

from repro.bench import ResultTable
from repro.kvstore import HashTable, SmartNicKvServer, SoftwareKvServer


def _ops(n, seed=0):
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n):
        key = int(rng.integers(0, 10_000))
        if i % 10 == 0:
            ops.append(("put", key, int(rng.integers(0, 1 << 30))))
        else:
            ops.append(("get", key, 0))
    return ops


def _run_kvdirect() -> ResultTable:
    report = ResultTable(
        "E17: KV serving, smart NIC vs software server (90% GET)",
        ("value B", "NIC Mops/s", "SW Mops/s", "throughput x",
         "NIC lat us", "SW lat us"),
    )
    ops = _ops(20_000)
    gains = []
    for value_bytes in (16, 64, 256, 1024):
        nic = SmartNicKvServer(
            HashTable(1 << 15, 8), value_bytes=value_bytes,
            n_memory_channels=4,
        )
        sw = SoftwareKvServer(HashTable(1 << 15, 8), value_bytes=value_bytes)
        nic_out = nic.serve(ops)
        sw_out = sw.serve(ops)
        assert nic_out.values == sw_out.values
        gain = nic_out.ops_per_sec / sw_out.ops_per_sec
        gains.append(gain)
        report.add(
            value_bytes, nic_out.ops_per_sec / 1e6,
            sw_out.ops_per_sec / 1e6, gain,
            nic_out.op_latency_s * 1e6, sw_out.op_latency_s * 1e6,
        )
    assert min(gains) > 3, "NIC serving wins at every value size"
    assert max(gains) > 8, "order-of-magnitude regime exists"
    report.note("software server is capped by per-request kernel-stack work")
    return report


def test_e17_kvdirect(benchmark):
    table = benchmark.pedantic(_run_kvdirect, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_kvdirect().show()
