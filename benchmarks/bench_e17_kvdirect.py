"""E17 — smart-NIC key-value serving (introduction: KV-Direct, SOSP'17).

The NIC-side KV server vs a software server over value sizes: identical
results, ~10x throughput (requests never touch host cores) and
several-fold latency.

The per-size cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e17 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_kvdirect() -> ResultTable:
    return build_spec("e17").tables()[0]


def test_e17_kvdirect(benchmark):
    table = benchmark.pedantic(_run_kvdirect, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_kvdirect().show()
