"""E1 — HLS pipelining study (tutorial §2, Programming).

Regenerates the spatial-vs-temporal argument: operator throughput as a
function of initiation interval and unroll factor, plus the ablation
that the burst-granular event simulation agrees with the per-item one
and with the analytic dataflow solver.

The per-pragma cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e1 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _spec():
    return build_spec("e1")


def _run_pipeline_sweep() -> ResultTable:
    spec = _spec()
    return spec.tables(configs=spec.part(part="sweep"))[0]


def _run_timing_ablation() -> ResultTable:
    """Burst-mode, item-mode and the analytic solver must agree."""
    spec = _spec()
    return spec.tables(configs=spec.part(part="ablation"))[0]


def test_e1_pipeline_sweep(benchmark):
    table = benchmark.pedantic(_run_pipeline_sweep, rounds=1, iterations=1)
    table.show()


def test_e1_timing_ablation(benchmark):
    table = benchmark.pedantic(_run_timing_ablation, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_pipeline_sweep().show()
    _run_timing_ablation().show()
