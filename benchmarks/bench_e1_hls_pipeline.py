"""E1 — HLS pipelining study (tutorial §2, Programming).

Regenerates the spatial-vs-temporal argument: operator throughput as a
function of initiation interval and unroll factor, plus the ablation
that the burst-granular event simulation agrees with the per-item one
and with the analytic dataflow solver.
"""

import pytest

from repro.bench import ResultTable
from repro.core import (
    Burst,
    BurstKernel,
    DataflowGraph,
    ItemKernel,
    LoopNest,
    Pragmas,
    Simulator,
    Sink,
    Source,
    Stream,
    synthesize,
)

_LOOP = LoopNest(
    name="stream-op",
    trip_count=1_000_000,
    ops={"mem_read": 2, "mul": 1, "add": 1, "mem_write": 1},
)


def _run_pipeline_sweep() -> ResultTable:
    table = ResultTable(
        "E1: throughput vs pragmas (1M-item streaming operator)",
        ("pragmas", "II", "unroll", "M items/s", "speedup vs temporal",
         "LUTs"),
    )
    temporal = synthesize(_LOOP, Pragmas(pipeline=False))
    base_rate = temporal.throughput_items_per_sec()
    sweeps = [
        ("temporal", Pragmas(pipeline=False)),
        ("II=4", Pragmas(pipeline=True, pipeline_ii=4)),
        ("II=2", Pragmas(pipeline=True, pipeline_ii=2)),
        ("II=1", Pragmas(pipeline=True, pipeline_ii=1)),
        ("II=1 x4", Pragmas(pipeline=True, unroll=4)),
        ("II=1 x16", Pragmas(pipeline=True, unroll=16)),
        ("II=1 x64", Pragmas(pipeline=True, unroll=64)),
    ]
    rates = []
    for label, pragmas in sweeps:
        spec = synthesize(_LOOP, pragmas)
        rate = spec.throughput_items_per_sec()
        rates.append(rate)
        table.add(
            label, spec.ii, spec.unroll, rate / 1e6, rate / base_rate,
            spec.resources.lut,
        )
    assert rates == sorted(rates), "more parallelism must not slow down"
    assert rates[-1] / rates[0] > 100, "unrolled pipeline >100x temporal"
    return table


def _run_timing_ablation() -> ResultTable:
    """Burst-mode, item-mode and the analytic solver must agree."""
    table = ResultTable(
        "E1b: timing-model ablation (same kernel, three models)",
        ("model", "time for 20k items (us)"),
    )
    spec = synthesize(_LOOP, Pragmas(pipeline=True, pipeline_ii=2))
    n = 20_000

    sim_item = Simulator()
    a_in, a_out = Stream(sim_item, 4), Stream(sim_item, 4)
    Source(sim_item, a_in, range(n))
    ItemKernel(sim_item, spec, lambda x: x, a_in, a_out)
    sink_item = Sink(sim_item, a_out)
    sim_item.run()
    t_item = sink_item.done_at_ps / 1e6

    sim_burst = Simulator()
    b_in, b_out = Stream(sim_burst, 4), Stream(sim_burst, 4)
    Source(sim_burst, b_in, [Burst(payload=None, count=n)])
    BurstKernel(sim_burst, spec, lambda b: b, b_in, b_out)
    sink_burst = Sink(sim_burst, b_out)
    sim_burst.run()
    t_burst = sink_burst.done_at_ps / 1e6

    graph = DataflowGraph()
    graph.add(spec, source=True)
    t_solver = graph.solve().time_for_items(n) * 1e6

    table.add("per-item events", t_item)
    table.add("burst events", t_burst)
    table.add("analytic solver", t_solver)
    assert t_item == t_burst, "burst abstraction changed total cycles"
    assert abs(t_solver - t_item) / t_item < 0.01
    return table


def test_e1_pipeline_sweep(benchmark):
    table = benchmark.pedantic(_run_pipeline_sweep, rounds=1, iterations=1)
    table.show()


def test_e1_timing_ablation(benchmark):
    table = benchmark.pedantic(_run_timing_ablation, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_pipeline_sweep().show()
    _run_timing_ablation().show()
