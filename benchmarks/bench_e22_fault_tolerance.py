"""E22 — fault tolerance: tail latency and goodput under injected faults.

The paper's use cases assume disaggregated components on a 100 Gbps
network; this experiment measures what link drops, latency spikes, and
node crashes cost once clients must detect and retry them.

Two workloads per fault rate (0%, 0.1%, 1% by default; override with
``python -m repro run e22 --faults RATE``):

* **Farview scans** — an event-driven simulation of 4 clients issuing
  back-to-back scan requests against one smart-memory node whose
  egress is a :class:`~repro.faults.FaultyLink` (silent drops: the
  client only learns of a loss when its per-attempt timeout fires);
* **ACCL allreduce** — repeated ring allreduces on an 8-FPGA cluster,
  with dropped steps retransmitted and (at the 1% rate) a scheduled
  mid-run node crash that forces the ring to degrade to a binomial
  tree over the 7 survivors.

Shape claims: the 0% row shows no retries and no give-ups; fault rows
inflate p99 far more than p50 (tail amplification); the crash round
completes via the reroute with the survivors' sum intact.

Everything is seeded through one :class:`~repro.faults.FaultPlan` per
rate, so the whole table is byte-identical across runs — the property
the deterministic-replay test locks in.
"""

import os

import numpy as np

from repro.accl import FpgaCluster, allreduce_with_faults
from repro.bench import ResultTable
from repro.core import Simulator
from repro.faults import (
    FaultPlan,
    FaultyLink,
    NodeOutage,
    RetryPolicy,
    call_with_retries,
)
from repro.network.link import ethernet_100g

_PS_PER_S = 1_000_000_000_000
_SEED = 22

# Farview workload shape.
_N_CLIENTS = 4
_REQUESTS_PER_CLIENT = 30
_RESULT_BYTES = 64 * 1024
_SCAN_PS = 8_000_000  # node-side scan pipeline per request
_POLICY = RetryPolicy(
    max_attempts=4,
    timeout_ps=60_000_000,
    backoff_base_ps=2_000_000,
    jitter=0.2,
)

# ACCL workload shape.
_N_NODES = 8
_N_ROUNDS = 10
_BUFFER_ELEMS = 64 * 1024  # 512 KiB per node (float64)


def _fault_rates() -> tuple[float, ...]:
    override = os.environ.get("REPRO_FAULT_RATE")
    if override:
        return (0.0, float(override))
    return (0.0, 0.001, 0.01)


def _percentiles_us(latencies_ps: list[int]) -> tuple[float, float]:
    arr = np.array(latencies_ps, dtype=np.float64) / 1e6
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def _simulate_farview(rate: float) -> dict:
    """Event-driven: clients retrying scans over one faulty egress."""
    sim = Simulator()
    plan = FaultPlan(
        seed=_SEED,
        drop_rate=rate,
        spike_rate=rate,
        spike_ps=(2_000_000, 20_000_000),
    )
    link = FaultyLink(
        sim, ethernet_100g(), plan, name="farview.egress", mode="silent"
    )
    outcomes = []

    def attempt():
        yield sim.timeout(_SCAN_PS)
        nbytes = yield link.transfer(_RESULT_BYTES)
        return nbytes

    def client(cid: int):
        rng = plan.stream(f"client{cid}.backoff")
        for _ in range(_REQUESTS_PER_CLIENT):
            out = yield from call_with_retries(
                sim, attempt, _POLICY, rng, site=f"client{cid}"
            )
            outcomes.append(out)

    for cid in range(_N_CLIENTS):
        sim.spawn(client(cid), name=f"client{cid}")
    sim.run()

    ok = [o for o in outcomes if o.ok]
    p50, p99 = _percentiles_us([o.latency_ps for o in outcomes])
    wall_s = sim.now / _PS_PER_S
    goodput = len(ok) * _RESULT_BYTES / wall_s / 1e6 if wall_s else 0.0
    return {
        "p50_us": p50,
        "p99_us": p99,
        "goodput": f"{goodput:8.1f} MB/s",
        "retries": sum(o.retries for o in outcomes),
        "gave_up": sum(1 for o in outcomes if not o.ok),
        "n": len(outcomes),
    }


def _simulate_allreduce(rate: float) -> dict:
    """Analytic: repeated ring allreduces, with a crash at the 1% rate."""
    outages = ()
    if rate >= 0.01:
        # Node 3 dies partway through the run and stays down.
        outages = (NodeOutage(node=3, down_at_ps=400_000_000),)
    plan = FaultPlan(seed=_SEED, drop_rate=rate, outages=outages)
    cluster = FpgaCluster(_N_NODES)
    buffers = [
        np.full(_BUFFER_ELEMS, float(i + 1), dtype=np.float64)
        for i in range(_N_NODES)
    ]
    round_ps: list[int] = []
    retries = 0
    reroutes = 0
    reduced_bytes = 0
    t_ps = 0
    for _ in range(_N_ROUNDS):
        result = allreduce_with_faults(cluster, buffers, plan, start_ps=t_ps)
        expected = sum(
            float(i + 1) for i in range(_N_NODES) if i in result.survivors
        )
        assert np.allclose(result.outcome.buffers[0], expected), (
            "allreduce result must be the survivors' sum"
        )
        step_ps = int(result.time_s * _PS_PER_S)
        round_ps.append(step_ps)
        t_ps += step_ps
        retries += result.retries
        reroutes += int(result.rerouted)
        reduced_bytes += len(result.survivors) * buffers[0].nbytes
    p50, p99 = _percentiles_us(round_ps)
    wall_s = t_ps / _PS_PER_S
    goodput = reduced_bytes / wall_s / 1e9 if wall_s else 0.0
    return {
        "p50_us": p50,
        "p99_us": p99,
        "goodput": f"{goodput:8.2f} GB/s",
        "retries": retries,
        "gave_up": 0,
        "reroutes": reroutes,
    }


def _run_fault_tolerance() -> ResultTable:
    report = ResultTable(
        "E22: tail latency and goodput under injected faults",
        ("workload", "fault %", "p50 us", "p99 us", "goodput",
         "retries", "gave up"),
    )
    rates = _fault_rates()
    farview = {rate: _simulate_farview(rate) for rate in rates}
    accl = {rate: _simulate_allreduce(rate) for rate in rates}
    for rate in rates:
        row = farview[rate]
        report.add(
            "farview scans", f"{100 * rate:g}", round(row["p50_us"], 2),
            round(row["p99_us"], 2), row["goodput"], row["retries"],
            row["gave_up"],
        )
    for rate in rates:
        row = accl[rate]
        report.add(
            "accl allreduce", f"{100 * rate:g}", round(row["p50_us"], 2),
            round(row["p99_us"], 2), row["goodput"], row["retries"],
            row["gave_up"],
        )

    clean_fv, clean_ar = farview[rates[0]], accl[rates[0]]
    assert clean_fv["retries"] == 0 and clean_fv["gave_up"] == 0, (
        "the 0% row must be fault-free"
    )
    assert clean_ar["retries"] == 0 and clean_ar["reroutes"] == 0
    worst = max(rates)
    if worst >= 0.01:
        assert farview[worst]["retries"] > 0, (
            "the worst fault rate must actually trigger retries"
        )
        assert accl[worst]["reroutes"] > 0, (
            "the scheduled crash must force a ring->tree reroute"
        )
    for row in list(farview.values()) + list(accl.values()):
        assert row["p99_us"] >= row["p50_us"]
    report.note(
        "farview: 4 clients x 30 scans, silent drops, 60 us attempt "
        "timeout, <=4 attempts; accl: 10 ring allreduces on 8 nodes, "
        "crash at 0.4 ms for the 1% row (ring degrades to survivor tree)"
    )
    return report


def test_e22_fault_tolerance(benchmark):
    table = benchmark.pedantic(_run_fault_tolerance, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_fault_tolerance().show()
