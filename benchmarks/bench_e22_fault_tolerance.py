"""E22 — fault tolerance: tail latency and goodput under injected faults.

The paper's use cases assume disaggregated components on a 100 Gbps
network; this experiment measures what link drops, latency spikes, and
node crashes cost once clients must detect and retry them.

Two workloads per fault rate (0%, 0.1%, 1% by default; override with
``python -m repro run e22 --faults RATE``):

* **Farview scans** — an event-driven simulation of 4 clients issuing
  back-to-back scan requests against one smart-memory node whose
  egress is a :class:`~repro.faults.FaultyLink` (silent drops: the
  client only learns of a loss when its per-attempt timeout fires);
* **ACCL allreduce** — repeated ring allreduces on an 8-FPGA cluster,
  with dropped steps retransmitted and (at the 1% rate) a scheduled
  mid-run node crash that forces the ring to degrade to a binomial
  tree over the 7 survivors.

Shape claims: the 0% row shows no retries and no give-ups; fault rows
inflate p99 far more than p50 (tail amplification); the crash round
completes via the reroute with the survivors' sum intact.

Everything is seeded through one :class:`~repro.faults.FaultPlan` per
rate, so the whole table is byte-identical across runs — the property
the deterministic-replay test locks in.

The per-(workload, rate) cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e22 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_fault_tolerance() -> ResultTable:
    # build_spec reads REPRO_FAULT_RATE at call time, like the CLI.
    return build_spec("e22").tables()[0]


def test_e22_fault_tolerance(benchmark):
    table = benchmark.pedantic(_run_fault_tolerance, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_fault_tolerance().show()
