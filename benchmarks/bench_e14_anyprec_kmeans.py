"""E14 — BiS-KM any-precision k-means (Resources section).

Precision sweep: clustering quality (objective on full-precision data,
relative to the 32-bit run) vs the memory-traffic speedup of reading
fewer bit planes.  Shape claims: traffic speedup is 32/bits by
construction; quality converges to full precision within a handful of
bits on clusterable data.
"""

import numpy as np
import pytest

from repro.bench import ResultTable
from repro.operators import anyprec_kmeans


def _blobs(seed=2):
    rng = np.random.default_rng(seed)
    centers = rng.random((8, 16)).astype(np.float32) * 10
    return np.concatenate(
        [c + rng.normal(0, 0.15, (150, 16)).astype(np.float32)
         for c in centers]
    )


def _run_precision_sweep() -> ResultTable:
    points = _blobs()
    report = ResultTable(
        "E14: any-precision k-means (k=8, 1200 x 16 points)",
        ("bits", "traffic speedup", "objective vs 32-bit", "iterations"),
    )
    full = anyprec_kmeans(points, k=8, bits=32, seed=3)
    baseline = max(full.full_precision_inertia, 1e-12)
    ratios = []
    for bits in (1, 2, 4, 8, 16, 32):
        out = anyprec_kmeans(points, k=8, bits=bits, seed=3)
        ratio = out.full_precision_inertia / baseline
        ratios.append(ratio)
        report.add(bits, out.traffic_speedup, ratio,
                   out.result.n_iterations)
    assert ratios[-1] == pytest.approx(1.0)
    # A handful of bits reaches within 10% of full quality...
    assert min(r for b, r in zip((1, 2, 4, 8, 16, 32), ratios)
               if b >= 8) < 1.1
    # ...while 1-bit data is measurably worse on this geometry.
    assert ratios[0] > ratios[-1]
    report.note("objective = full-precision inertia of learned centroids")
    return report


def test_e14_precision_sweep(benchmark):
    table = benchmark.pedantic(_run_precision_sweep, rounds=1, iterations=1)
    table.show()
