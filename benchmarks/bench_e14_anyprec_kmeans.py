"""E14 — BiS-KM any-precision k-means (Resources section).

Precision sweep: clustering quality (objective on full-precision data,
relative to the 32-bit run) vs the memory-traffic speedup of reading
fewer bit planes.  Shape claims: traffic speedup is 32/bits by
construction; quality converges to full precision within a handful of
bits on clusterable data.

The per-precision cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e14 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_precision_sweep() -> ResultTable:
    return build_spec("e14").tables()[0]


def test_e14_precision_sweep(benchmark):
    table = benchmark.pedantic(_run_precision_sweep, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_precision_sweep().show()
