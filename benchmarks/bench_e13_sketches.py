"""E13 — sketch operators at line rate (Resources section: HLL, Scotch).

HyperLogLog and Count-Min maintenance as stream kernels vs CPU cores:
accuracy of the functional sketches plus the throughput comparison that
motivates putting them in the datapath.
"""

import numpy as np
import pytest

from repro.baselines import xeon_server
from repro.bench import ResultTable
from repro.operators import (
    CountMinSketch,
    HyperLogLog,
    cpu_insert_time_s,
    cpu_update_time_s,
    hll_kernel_spec,
    sketch_kernel_spec,
)
from repro.workloads import ZipfSampler


def _run_accuracy() -> ResultTable:
    rng = np.random.default_rng(7)
    report = ResultTable(
        "E13a: sketch accuracy (functional)",
        ("sketch", "workload", "truth", "estimate", "rel err"),
    )
    for true_n in (10_000, 1_000_000):
        hll = HyperLogLog(precision=12)
        hll.add(rng.integers(0, 1 << 62, size=true_n))
        est = hll.estimate()
        err = abs(est - true_n) / true_n
        report.add("HLL p=12", f"{true_n:,} distinct", true_n, est, err)
        assert err < 4 * hll.relative_error_bound()
    stream = ZipfSampler(100_000, 1.1, rng).sample(500_000)
    cm = CountMinSketch(width=8192, depth=4)
    cm.add(stream)
    hot = np.arange(5)
    true = np.array([(stream == key).sum() for key in hot])
    est = cm.query(hot)
    for key in range(5):
        rel = (est[key] - true[key]) / max(1, true[key])
        report.add("CM 8192x4", f"hot key {key}", int(true[key]),
                   int(est[key]), rel)
        assert est[key] >= true[key]
        assert est[key] - true[key] <= cm.error_bound()
    return report


def _run_throughput() -> ResultTable:
    cpu = xeon_server()
    report = ResultTable(
        "E13b: sketch maintenance throughput (1B items)",
        ("engine", "G items/s", "vs 1 CPU core"),
    )
    n = 1_000_000_000
    hll_spec = hll_kernel_spec(precision=12)
    fpga_rate = n / hll_spec.latency_seconds(n)
    core_rate = n / cpu_insert_time_s(cpu, n, parallel=False)
    socket_rate = n / cpu_insert_time_s(cpu, n, parallel=True)
    report.add("FPGA HLL kernel", fpga_rate / 1e9, fpga_rate / core_rate)
    report.add("1 CPU core", core_rate / 1e9, 1.0)
    report.add("32 CPU cores", socket_rate / 1e9, socket_rate / core_rate)
    cm_spec = sketch_kernel_spec(counters_per_item=4,
                                 counter_bytes_total=256 * 1024)
    cm_fpga = n / cm_spec.latency_seconds(n)
    cm_core = n / cpu_update_time_s(cpu, n, 4, parallel=False)
    report.add("FPGA CM kernel", cm_fpga / 1e9, cm_fpga / cm_core)
    report.add("1 CPU core (CM)", cm_core / 1e9, 1.0)
    assert fpga_rate > 4 * core_rate
    assert cm_fpga > 4 * cm_core
    report.note("FPGA kernels: II=1, 300 MHz, 8-lane (HLL) / banked (CM)")
    return report


def test_e13_accuracy(benchmark):
    table = benchmark.pedantic(_run_accuracy, rounds=1, iterations=1)
    table.show()


def test_e13_throughput(benchmark):
    table = benchmark.pedantic(_run_throughput, rounds=1, iterations=1)
    table.show()
