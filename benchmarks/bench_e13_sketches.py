"""E13 — sketch operators at line rate (Resources section: HLL, Scotch).

HyperLogLog and Count-Min maintenance as stream kernels vs CPU cores:
accuracy of the functional sketches plus the throughput comparison that
motivates putting them in the datapath.

The cells and table assembly live in ``repro.exec.experiments`` so
``repro run e13 --parallel N`` executes the exact same code this bench
does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _spec():
    return build_spec("e13")


def _run_accuracy() -> ResultTable:
    spec = _spec()
    return spec.tables(configs=spec.part(part="accuracy"))[0]


def _run_throughput() -> ResultTable:
    spec = _spec()
    return spec.tables(configs=spec.part(part="throughput"))[0]


def test_e13_accuracy(benchmark):
    table = benchmark.pedantic(_run_accuracy, rounds=1, iterations=1)
    table.show()


def test_e13_throughput(benchmark):
    table = benchmark.pedantic(_run_throughput, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_accuracy().show()
    _run_throughput().show()
