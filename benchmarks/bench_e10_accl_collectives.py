"""E10 — collective latency vs message size (Use Case IV / Figure 1).

Broadcast and allreduce over an 8-node HACC-style rack, FPGA-direct
(ACCL) vs host-staged (PCIe + kernel TCP).  Shape claims: FPGA wins at
every size; the advantage is largest for small messages (stack latency
dominates) and persists at bulk sizes (PCIe staging still costs).
"""

import numpy as np
import pytest

from repro.accl import FpgaCluster, HostStagedCluster
from repro.bench import ResultTable

_NODES = 8
_SIZES = (1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 23)  # bytes per node


def _buffers(nbytes: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    n_floats = max(_NODES, nbytes // 8)
    return [rng.random(n_floats) for _ in range(_NODES)]


def _run_collectives() -> ResultTable:
    fpga = FpgaCluster(_NODES)
    host = HostStagedCluster(_NODES)
    report = ResultTable(
        f"E10: collectives on {_NODES} nodes, FPGA-direct vs host-staged",
        ("collective", "message B", "FPGA us", "host us", "speedup"),
    )
    small_gain = large_gain = None
    for nbytes in _SIZES:
        buffers = _buffers(nbytes)
        fb = fpga.broadcast(buffers)
        hb = host.broadcast(buffers)
        assert np.array_equal(fb.buffers[-1], hb.buffers[-1])
        report.add("broadcast", buffers[0].nbytes, fb.time_s * 1e6,
                   hb.time_s * 1e6, hb.time_s / fb.time_s)
        fa = fpga.allreduce(buffers)
        ha = host.allreduce(buffers)
        assert np.allclose(fa.buffers[0], ha.buffers[0])
        gain = ha.time_s / fa.time_s
        if nbytes == _SIZES[0]:
            small_gain = gain
        if nbytes == _SIZES[-1]:
            large_gain = gain
        report.add("allreduce", buffers[0].nbytes, fa.time_s * 1e6,
                   ha.time_s * 1e6, gain)
    assert small_gain is not None and large_gain is not None
    assert small_gain > 3, "stack overheads dominate small messages"
    assert large_gain > 1.5, "PCIe staging still costs at bulk sizes"
    assert small_gain > large_gain, "advantage peaks at small messages"
    return report


def test_e10_collectives(benchmark):
    table = benchmark.pedantic(_run_collectives, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_collectives().show()
