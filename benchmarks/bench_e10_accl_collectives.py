"""E10 — collective latency vs message size (Use Case IV / Figure 1).

Broadcast and allreduce over an 8-node HACC-style rack, FPGA-direct
(ACCL) vs host-staged (PCIe + kernel TCP).  Shape claims: FPGA wins at
every size; the advantage is largest for small messages (stack latency
dominates) and persists at bulk sizes (PCIe staging still costs).

The per-size cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e10 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_collectives() -> ResultTable:
    return build_spec("e10").tables()[0]


def test_e10_collectives(benchmark):
    table = benchmark.pedantic(_run_collectives, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_collectives().show()
