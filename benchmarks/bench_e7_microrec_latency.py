"""E7 — MicroRec end-to-end inference latency (Figures 4-5, Use Case III).

CPU vs MicroRec on a production-shaped CTR model across batch sizes.
Shape claims: identical logits; the FPGA holds roughly an order of
magnitude single-inference latency advantage (the paper's headline);
throughput grows with batch on both sides.
"""

import numpy as np
import pytest

from repro.bench import ResultTable
from repro.microrec import CpuRecommender, MicroRecAccelerator
from repro.obs import Profiler
from repro.workloads import lookup_trace


def _run_latency(rec_model, rec_tables) -> ResultTable:
    prof = Profiler()
    accel = MicroRecAccelerator(rec_tables, seed=5, tracer=prof.tracer)
    cpu = CpuRecommender(rec_tables, seed=5)
    report = ResultTable(
        "E7: CTR inference latency & throughput, CPU vs MicroRec",
        ("batch", "CPU lat us", "FPGA lat us", "lat speedup",
         "CPU QPS", "FPGA QPS"),
    )
    gains = []
    for batch in (1, 16, 64, 256):
        trace = lookup_trace(rec_model, batch_size=batch, seed=31)
        c = cpu.infer(trace)
        f = accel.infer(trace)
        assert np.allclose(c.logits, f.logits, rtol=1e-4, atol=1e-4)
        gain = c.latency_s / f.latency_s
        gains.append(gain)
        report.add(batch, c.latency_s * 1e6, f.latency_s * 1e6,
                   gain, c.qps, f.qps)
    assert min(gains) > 5, "order-of-magnitude-class latency win"
    report.note(
        f"model: {rec_model.n_tables} tables, "
        f"{rec_model.total_embedding_bytes / 1e6:.0f} MB embeddings"
    )

    # Per-channel busy/stall breakdown of the HBM feature-retrieval
    # stage, profiler-derived from the banked-memory trace.
    profile = prof.report()
    print()
    print(profile.render())
    snapshot = prof.tracer.registry.snapshot()
    accesses = sum(
        v for k, v in snapshot.items()
        if k.startswith("memory.bank_accesses")
    )
    conflicts = sum(
        v for k, v in snapshot.items()
        if k.startswith("memory.bank_conflicts")
    )
    assert accesses > 0, "HBM lookups were traced"
    report.add_metrics(
        {"hbm.lookups": accesses, "hbm.bank_conflicts": conflicts},
        title="obs metrics",
    )
    return report


def test_e7_latency(benchmark, rec_model, rec_tables):
    table = benchmark.pedantic(
        _run_latency, args=(rec_model, rec_tables), rounds=1, iterations=1
    )
    table.show()
