"""E7 — MicroRec end-to-end inference latency (Figures 4-5, Use Case III).

CPU vs MicroRec on a production-shaped CTR model across batch sizes.
Shape claims: identical logits; the FPGA holds roughly an order of
magnitude single-inference latency advantage (the paper's headline);
throughput grows with batch on both sides.

The per-batch cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e7 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_latency(rec_model, rec_tables) -> ResultTable:
    return build_spec("e7").tables(
        {"model": rec_model, "tables": rec_tables}
    )[0]


def test_e7_latency(benchmark, rec_model, rec_tables):
    table = benchmark.pedantic(
        _run_latency, args=(rec_model, rec_tables), rounds=1, iterations=1
    )
    table.show()
