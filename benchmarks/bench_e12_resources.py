"""E12 — resource-utilization table (tutorial §2, Resources/devices).

For each use-case accelerator, the fabric demand and its utilization on
each card of the device catalog — the feasibility table a deployment
study leads with.  Shape claims: every default design fits at least one
card; HBM-dependent designs are infeasible on the U250 (it has no HBM);
utilization is non-trivial (>1% of some resource) but under budget.
"""

import pytest

from repro.bench import ResultTable
from repro.core import DEVICE_CATALOG, ResourceVector
from repro.fanns import FannsConfig
from repro.relational import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    GroupByAggregate,
    QueryPlan,
    Transform,
    col,
    plan_kernels,
)


def _farview_pipeline_resources() -> ResourceVector:
    plan = QueryPlan((
        Transform("decrypt", ops_per_byte=2.0),
        Filter((col("key") < 10) & (col("val0") > 0.5)),
        GroupByAggregate("group", (
            AggSpec(AggFunc.SUM, "value"),
            AggSpec(AggFunc.COUNT, "value", alias="n"),
        )),
    ))
    total = ResourceVector()
    for kernel in plan_kernels(plan, row_nbytes=24):
        total = total + kernel.spec.resources
    return total


def _microrec_resources() -> ResourceVector:
    # Lookup control + DNN systolic array + HBM channels.
    return ResourceVector(
        lut=180_000, ff=260_000, bram_36k=400, uram=320, dsp=2_048,
        hbm_channels=32,
    )


def _run_resources() -> ResultTable:
    designs = {
        "farview offload pipeline": _farview_pipeline_resources(),
        "fanns (default config)": FannsConfig().resources(m=16),
        "fanns (generator max)": FannsConfig(
            n_distance_pes=32, n_lut_pes=32, n_adc_pes=64,
            n_hbm_channels=32,
        ).resources(m=16),
        "microrec": _microrec_resources(),
    }
    report = ResultTable(
        "E12: accelerator resource demand vs device budgets",
        ("design", "LUT", "DSP", "BRAM", "HBM ch",
         "u250", "u280", "u55c"),
    )
    for name, demand in designs.items():
        fits = {
            key: device.fits(demand) for key, device in DEVICE_CATALOG.items()
        }
        report.add(
            name, demand.lut, demand.dsp, demand.bram_36k,
            demand.hbm_channels,
            "fits" if fits["u250"] else "no",
            "fits" if fits["u280"] else "no",
            "fits" if fits["u55c"] else "no",
        )
        assert any(fits.values()), f"{name} fits nowhere"
        if demand.hbm_channels > 0:
            assert not fits["u250"], "U250 has no HBM"
        util = demand.utilization(DEVICE_CATALOG["u55c"].budget)
        finite = [v for v in util.values() if v != float("inf")]
        # Fitting designs stay within budget (HBM may be fully used).
        assert max(finite) <= 1.0 or not fits["u55c"]
    report.note("budgets assume an 80% usable fraction after the shell")
    return report


def test_e12_resources(benchmark):
    table = benchmark.pedantic(_run_resources, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_resources().show()
