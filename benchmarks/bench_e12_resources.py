"""E12 — resource-utilization table (tutorial §2, Resources/devices).

For each use-case accelerator, the fabric demand and its utilization on
each card of the device catalog — the feasibility table a deployment
study leads with.  Shape claims: every default design fits at least one
card; HBM-dependent designs are infeasible on the U250 (it has no HBM);
utilization is non-trivial (>1% of some resource) but under budget.

The per-design cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e12 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_resources() -> ResultTable:
    return build_spec("e12").tables()[0]


def test_e12_resources(benchmark):
    table = benchmark.pedantic(_run_resources, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_resources().show()
