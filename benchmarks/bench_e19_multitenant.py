"""E19 — multi-tenant smart memory (Use Case I, event-driven).

Concurrent clients issuing back-to-back queries contend for the node's
shared DRAM scan and network egress inside the discrete-event engine.
Shape claims: offloaded tenants aggregate several-fold more QPS than
fetch-all tenants on the same node (the wire, not the memory, is what
fetch saturates), and per-query latency under load is several-fold
lower.

The per-load cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e19 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_multitenant() -> ResultTable:
    return build_spec("e19").tables()[0]


def test_e19_multitenant(benchmark):
    table = benchmark.pedantic(_run_multitenant, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_multitenant().show()
