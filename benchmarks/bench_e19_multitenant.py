"""E19 — multi-tenant smart memory (Use Case I, event-driven).

Concurrent clients issuing back-to-back queries contend for the node's
shared DRAM scan and network egress inside the discrete-event engine.
Shape claims: offloaded tenants aggregate several-fold more QPS than
fetch-all tenants on the same node (the wire, not the memory, is what
fetch saturates), and per-query latency under load is several-fold
lower.
"""

import pytest

from repro.bench import ResultTable
from repro.farview import FarviewServer, simulate_clients
from repro.obs import Profiler
from repro.relational import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    QueryPlan,
    Table,
    col,
)
from repro.workloads import uniform_table


def _run_multitenant() -> ResultTable:
    server = FarviewServer()
    server.store("t", Table(uniform_table(500_000, n_payload_cols=2)))
    plan = QueryPlan((
        Filter(col("key") < 10_000),
        Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
    ))
    report = ResultTable(
        "E19: tenants on one smart-memory node (event simulation)",
        ("clients", "mode", "agg QPS", "mean lat ms",
         "mem busy", "net busy"),
    )
    ratios = []
    for n_clients in (1, 4, 16):
        off = simulate_clients(server, plan, "t", n_clients, mode="offload")
        fetch = simulate_clients(server, plan, "t", n_clients, mode="fetch")
        ratios.append(off.aggregate_qps / fetch.aggregate_qps)
        for out in (off, fetch):
            report.add(
                n_clients, out.mode, out.aggregate_qps,
                out.mean_latency_s * 1e3,
                round(out.memory_busy_fraction, 2),
                round(out.network_busy_fraction, 2),
            )
    assert min(ratios) > 3, "offload tenants aggregate much more QPS"
    report.note("offload is DRAM-scan bound; fetch saturates the 100G wire")

    # Busy/stall breakdown of the most contended point: a profiled rerun
    # of the 16-client offload case puts the shared DRAM and egress
    # ports on trace tracks.
    prof = Profiler()
    simulate_clients(server, plan, "t", 16, mode="offload",
                     tracer=prof.tracer)
    profile = prof.report()
    print()
    print(profile.render())
    snapshot = {
        key: value
        for key, value in prof.tracer.registry.snapshot().items()
        if key.startswith(("memory.", "sim.events"))
    }
    report.add_metrics(snapshot, title="obs metrics (16-client offload)")
    dram = profile.component("memory:dram-agg")
    assert dram.busy_fraction > 0.5, "offload at 16 clients is DRAM-bound"
    return report


def test_e19_multitenant(benchmark):
    table = benchmark.pedantic(_run_multitenant, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_multitenant().show()
