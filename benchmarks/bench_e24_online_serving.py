"""E24 — online serving: latency percentiles and goodput vs offered load.

Each paper use case (FANNS, MicroRec, Farview) runs as an online
service — open-loop Poisson-burst arrivals, dynamic batching,
SLO-aware admission — across offered loads from 0.4x to 1.4x the
backend's full-batch capacity.  Shape claims: every backend shows the
saturation knee (p99 inflects upward past capacity), no shedding while
underloaded, mandatory shedding at overload, and goodput that plateaus
at capacity instead of collapsing.

The per-load cells and the table assembly live in
``repro.exec.experiments`` so ``repro run e24 --parallel N`` executes
the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_online_serving() -> ResultTable:
    return build_spec("e24").tables()[0]


def test_e24_online_serving(benchmark):
    table = benchmark.pedantic(_run_online_serving, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_online_serving().show()
