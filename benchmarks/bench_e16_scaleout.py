"""E16 — scale-out composition: distributed FANNS and FleetRec.

The tutorial's Use Case IV exists so Use Cases II and III can scale
past one card.  (a) Sharded FANNS over the FPGA cluster: QPS grows
with nodes while results stay exactly equal to the single-node index.
(b) FleetRec: the hybrid GPU-FPGA pipeline against the single-FPGA
MicroRec and the CPU baseline on a large-MLP model, where the GPU tier
pays off.

The cells and table assembly live in ``repro.exec.experiments`` so
``repro run e16 --parallel N`` executes the exact same code this bench
does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec
from repro.exec.experiments import e16_context


def _run_distributed_fanns(ivfpq_index, vector_data) -> ResultTable:
    spec = build_spec("e16")
    return spec.tables(
        e16_context(ivfpq_index, vector_data),
        configs=spec.part(part="fanns"),
    )[0]


def _run_fleetrec() -> ResultTable:
    # The FleetRec cell builds its own model and ignores the FANNS
    # context, so skip prepare() by passing an empty one.
    spec = build_spec("e16")
    return spec.tables({}, configs=spec.part(part="fleetrec"))[0]


def test_e16_distributed_fanns(benchmark, ivfpq_index, vector_data):
    table = benchmark.pedantic(
        _run_distributed_fanns, args=(ivfpq_index, vector_data),
        rounds=1, iterations=1,
    )
    table.show()


def test_e16_fleetrec(benchmark):
    table = benchmark.pedantic(_run_fleetrec, rounds=1, iterations=1)
    table.show()
