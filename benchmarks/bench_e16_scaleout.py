"""E16 — scale-out composition: distributed FANNS and FleetRec.

The tutorial's Use Case IV exists so Use Cases II and III can scale
past one card.  (a) Sharded FANNS over the FPGA cluster: QPS grows
with nodes while results stay exactly equal to the single-node index.
(b) FleetRec: the hybrid GPU-FPGA pipeline against the single-FPGA
MicroRec and the CPU baseline on a large-MLP model, where the GPU tier
pays off.
"""

import numpy as np
import pytest

from conftest import FANNS_LIST_SCALE
from repro.bench import ResultTable
from repro.fanns import DistributedFanns
from repro.microrec import (
    CpuRecommender,
    EmbeddingTables,
    FleetRecCluster,
    MicroRecAccelerator,
    V100,
)
from repro.workloads import lookup_trace, production_like_model


def _run_distributed_fanns(ivfpq_index, vector_data) -> ResultTable:
    report = ResultTable(
        "E16a: sharded FANNS scale-out (nprobe=16, modeled 40M vectors)",
        ("nodes", "QPS", "latency us", "speedup vs 1 node"),
    )
    single_ids = ivfpq_index.search(vector_data.queries, 10, 16)
    qps_series = []
    for nodes in (1, 2, 4, 8):
        dist = DistributedFanns(
            ivfpq_index, n_nodes=nodes, list_scale=FANNS_LIST_SCALE
        )
        out = dist.search(vector_data.queries, 10, 16)
        assert np.array_equal(out.ids, single_ids), "sharding changed results"
        qps_series.append(out.qps)
        report.add(nodes, out.qps, out.query_latency_s * 1e6,
                   out.qps / qps_series[0])
    assert qps_series == sorted(qps_series), "QPS grows with nodes"
    assert qps_series[-1] > 3 * qps_series[0]
    return report


def _run_fleetrec() -> ResultTable:
    # A large-MLP model: the regime where a GPU DNN tier pays off.
    spec = production_like_model(n_tables=47, max_rows=500_000, seed=51)
    spec = type(spec)(
        table_rows=spec.table_rows,
        embedding_dim=spec.embedding_dim,
        mlp_layers=(4096, 2048, 1024),
    )
    tables = EmbeddingTables(spec, seed=51)
    trace = lookup_trace(spec, batch_size=512, seed=52)
    report = ResultTable(
        "E16b: FleetRec vs MicroRec vs CPU (4096-2048-1024 MLP, batch 512)",
        ("engine", "latency us", "QPS"),
    )
    cpu_out = CpuRecommender(tables, seed=6).infer(trace)
    micro_out = MicroRecAccelerator(tables, seed=6).infer(trace)
    fleet = FleetRecCluster(tables, n_lookup_nodes=2, n_gpu_nodes=2,
                            gpu=V100, seed=6)
    fleet_out = fleet.infer(trace)
    assert np.allclose(fleet_out.logits, cpu_out.logits, rtol=1e-3,
                       atol=1e-3)
    report.add("CPU", cpu_out.latency_s * 1e6, cpu_out.qps)
    report.add("MicroRec (1 FPGA)", micro_out.latency_s * 1e6, micro_out.qps)
    report.add("FleetRec (2 FPGA + 2 GPU)", fleet_out.latency_s * 1e6,
               fleet_out.qps)
    assert fleet_out.qps > micro_out.qps, \
        "GPU DNN tier lifts throughput for big MLPs"
    assert micro_out.latency_s < cpu_out.latency_s
    return report


def test_e16_distributed_fanns(benchmark, ivfpq_index, vector_data):
    table = benchmark.pedantic(
        _run_distributed_fanns, args=(ivfpq_index, vector_data),
        rounds=1, iterations=1,
    )
    table.show()


def test_e16_fleetrec(benchmark):
    table = benchmark.pedantic(_run_fleetrec, rounds=1, iterations=1)
    table.show()
