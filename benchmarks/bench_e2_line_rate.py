"""E2 — line-rate stream processing (tutorial §1/§2).

The tutorial's core FPGA argument: a stream operator placed in the
datapath processes data at the wire's rate with no loss, while a CPU
tops out on per-frame stack overheads and core limits.  We push a
filter+aggregate over a 100 GbE stream through (a) the FPGA operator
pipeline and (b) the CPU model behind a kernel TCP stack, and compare
sustained goodput.

The cell and table assembly live in ``repro.exec.experiments`` so
``repro run e2`` executes the exact same code this bench does.
"""

from repro.bench import ResultTable
from repro.exec import build_spec


def _run_line_rate() -> ResultTable:
    return build_spec("e2").tables()[0]


def test_e2_line_rate(benchmark):
    table = benchmark.pedantic(_run_line_rate, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_line_rate().show()
