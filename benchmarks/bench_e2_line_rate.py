"""E2 — line-rate stream processing (tutorial §1/§2).

The tutorial's core FPGA argument: a stream operator placed in the
datapath processes data at the wire's rate with no loss, while a CPU
tops out on per-frame stack overheads and core limits.  We push a
filter+aggregate over a 100 GbE stream through (a) the FPGA operator
pipeline and (b) the CPU model behind a kernel TCP stack, and compare
sustained goodput.
"""

import pytest

from repro.baselines import xeon_server
from repro.bench import ResultTable
from repro.network import ethernet_100g, fpga_tcp, kernel_tcp
from repro.relational import (
    Filter,
    Project,
    QueryPlan,
    Table,
    col,
    cpu_cost_s,
    make_operator_kernel,
)
from repro.workloads import uniform_table

_N_ROWS = 4_000_000


def _run_line_rate() -> ResultTable:
    table_data = Table(uniform_table(_N_ROWS, n_payload_cols=2, seed=2))
    row_bytes = table_data.schema.row_nbytes
    plan = QueryPlan((
        Filter(col("key") < 500_000),
        Project(("key", "val0")),
    ))
    line = ethernet_100g()
    stream_bytes = table_data.nbytes

    # FPGA: operator kernels in the network datapath.
    filter_kernel = make_operator_kernel(plan.operators[0], row_bytes)
    fpga_rate_rows = filter_kernel.spec.throughput_items_per_sec()
    fpga_goodput = min(
        fpga_rate_rows * row_bytes,
        fpga_tcp().goodput_bytes_per_sec(64 * 1024),
    )

    # CPU: frames cross the kernel stack, then the engine scans.
    cpu = xeon_server()
    stack_goodput = kernel_tcp().goodput_bytes_per_sec(64 * 1024)
    engine_s = cpu_cost_s(plan, table_data, cpu)
    engine_goodput = stream_bytes / engine_s
    cpu_goodput = min(stack_goodput, engine_goodput)

    report = ResultTable(
        "E2: sustained goodput for an in-stream filter+project",
        ("engine", "goodput GB/s", "fraction of 100G line rate"),
    )
    wire = line.bandwidth_bytes_per_sec
    report.add("100 GbE line rate", wire / 1e9, 1.0)
    report.add("FPGA datapath", fpga_goodput / 1e9, fpga_goodput / wire)
    report.add("CPU + kernel TCP", cpu_goodput / 1e9, cpu_goodput / wire)
    report.note("FPGA kernel: 512-bit datapath, II=1, 300 MHz")

    assert fpga_goodput >= 0.9 * wire, "FPGA must sustain ~line rate"
    assert cpu_goodput < 0.6 * wire, "kernel stack caps CPU goodput"
    return report


def test_e2_line_rate(benchmark):
    table = benchmark.pedantic(_run_line_rate, rounds=1, iterations=1)
    table.show()


if __name__ == "__main__":
    _run_line_rate().show()
