#!/usr/bin/env python3
"""Use Case IV — ACCL: collectives for a cluster of FPGAs.

An 8-node HACC-style rack allreduces gradient-sized buffers two ways:
with the collective engine on the FPGA NICs (ACCL) and staged through
the host CPUs (PCIe + kernel TCP).  Also shows the ring-vs-tree
algorithm crossover over message sizes.

Run:  python examples/distributed_collectives.py
"""

import numpy as np

from repro.accl import FpgaCluster, HostStagedCluster
from repro.bench import ResultTable, speedup

NODES = 8


def _buffers(n_floats: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.random(n_floats) for _ in range(NODES)]


def main() -> None:
    fpga = FpgaCluster(NODES)
    host = HostStagedCluster(NODES)

    report = ResultTable(
        f"Allreduce on {NODES} nodes: FPGA-direct vs host-staged",
        ("message", "FPGA us", "host us", "speedup"),
    )
    for n_floats in (1 << 5, 1 << 10, 1 << 15, 1 << 20):
        buffers = _buffers(n_floats)
        f = fpga.allreduce(buffers)
        h = host.allreduce(buffers)
        assert np.allclose(f.buffers[0], h.buffers[0])
        label = f"{buffers[0].nbytes:,} B"
        report.add(label, f.time_s * 1e6, h.time_s * 1e6,
                   speedup(h.time_s, f.time_s))
    report.note("host staging pays 2x PCIe + kernel TCP per step")
    report.show()

    crossover = ResultTable(
        "Ring vs tree allreduce (FPGA cluster)",
        ("message", "ring us", "tree us", "winner"),
    )
    for n_floats in (NODES, 1 << 10, 1 << 14, 1 << 18, 1 << 21):
        buffers = _buffers(n_floats)
        ring = fpga.allreduce(buffers, algorithm="ring")
        tree = fpga.allreduce(buffers, algorithm="tree")
        assert np.allclose(ring.buffers[0], tree.buffers[0])
        winner = "ring" if ring.time_s < tree.time_s else "tree"
        crossover.add(
            f"{buffers[0].nbytes:,} B",
            ring.time_s * 1e6, tree.time_s * 1e6, winner,
        )
    crossover.note("tree: 2 log2(P) full-message steps; ring: 2(P-1) of n/P")
    crossover.show()

    # The full collective repertoire, functionally verified.
    buffers = _buffers(1 << 12, seed=3)
    bcast = fpga.broadcast(buffers, root=2)
    gathered = fpga.gather(buffers, root=0)
    allg = fpga.allgather(buffers)
    print(
        f"broadcast {bcast.time_s * 1e6:.1f} us | "
        f"gather {gathered.time_s * 1e6:.1f} us | "
        f"allgather {allg.time_s * 1e6:.1f} us "
        f"({NODES} nodes, {buffers[0].nbytes:,} B each)"
    )


if __name__ == "__main__":
    main()
