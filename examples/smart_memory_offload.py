#!/usr/bin/env python3
"""Use Case I — Farview: offloading operators to disaggregated memory.

A database engine keeps a 100 M-row table in a network-attached smart
memory node.  This example runs the same filter+aggregate query two
ways — offloaded to the node's FPGA datapath vs fetched raw and
processed on the local CPU — across a selectivity sweep, and prints the
latency/bytes-moved comparison (the Figure-2 argument of the tutorial).

Run:  python examples/smart_memory_offload.py
"""

from repro.bench import ResultTable, speedup
from repro.farview import FarviewClient, FarviewServer
from repro.relational import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    QueryPlan,
    Table,
    col,
)
from repro.workloads import uniform_table

N_ROWS = 2_000_000
KEY_MAX = 1_000_000


def main() -> None:
    server = FarviewServer()
    table = Table(uniform_table(N_ROWS, n_payload_cols=4, key_max=KEY_MAX))
    server.store("lineitems", table)
    client = FarviewClient(server)

    report = ResultTable(
        "Offload vs fetch-all: SELECT sum(val0) WHERE key < t",
        ("selectivity", "offload ms", "fetch ms", "speedup",
         "offload bytes", "fetch bytes"),
    )
    for selectivity in (0.001, 0.01, 0.1, 0.5, 1.0):
        plan = QueryPlan((
            Filter(col("key") < int(selectivity * KEY_MAX)),
            Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
        ))
        off = client.query_offload(plan, "lineitems")
        fetch = client.query_fetch(plan, "lineitems")
        assert off.result.equals(fetch.result), "engines disagree!"
        report.add(
            selectivity,
            off.latency_s * 1e3,
            fetch.latency_s * 1e3,
            speedup(fetch.latency_s, off.latency_s),
            off.bytes_over_network,
            fetch.bytes_over_network,
        )
    report.note(
        "offload returns one aggregate row regardless of selectivity; "
        "fetch must move the touched columns either way"
    )
    report.show()

    # A projection query: the offload's result volume now *grows* with
    # selectivity, so its advantage shrinks toward the crossover where
    # nearly every row comes back anyway.
    from repro.relational import Project

    crossover = ResultTable(
        "Offload advantage vs selectivity: SELECT key, val0 WHERE key < t",
        ("selectivity", "offload ms", "fetch ms", "speedup",
         "bytes ratio (fetch/offload)"),
    )
    for selectivity in (0.01, 0.1, 0.25, 0.5, 0.75, 1.0):
        plan = QueryPlan((
            Filter(col("key") < int(selectivity * KEY_MAX)),
            Project(("key", "val0")),
        ))
        off = client.query_offload(plan, "lineitems")
        fetch = client.query_fetch(plan, "lineitems")
        crossover.add(
            selectivity,
            off.latency_s * 1e3,
            fetch.latency_s * 1e3,
            speedup(fetch.latency_s, off.latency_s),
            fetch.bytes_over_network / off.bytes_over_network,
        )
    crossover.note("at selectivity 1.0 the offload ships ~the whole table too")
    crossover.show()

    # The same query can be posed in SQL and routed by the cost-based
    # planner, which predicts both modes and picks the cheaper one.
    from repro.farview import OffloadPlanner
    from repro.relational import parse_query

    planner = OffloadPlanner(client)
    planned = planner.query(
        parse_query("SELECT sum(val0) AS s WHERE key < 10000"), "lineitems"
    )
    print(
        f"planner chose {planned.chose!r} "
        f"(predicted offload {planned.predicted_offload_s * 1e3:.2f} ms vs "
        f"fetch {planned.predicted_fetch_s * 1e3:.2f} ms, "
        f"estimated selectivity {planned.estimated_selectivity:.3f})"
    )

    # The block-storage variant: the table is moved as a unit.
    plan = QueryPlan((
        Filter(col("key") < KEY_MAX // 100),
        Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
    ))
    blocks = client.query_fetch(plan, "lineitems", fetch_granularity="table")
    off = client.query_offload(plan, "lineitems")
    print(
        f"block-granularity fetch moves {blocks.bytes_over_network:,} B; "
        f"offload moves {off.bytes_over_network:,} B "
        f"({blocks.bytes_over_network / off.bytes_over_network:,.0f}x less)"
    )


if __name__ == "__main__":
    main()
