#!/usr/bin/env python3
"""Introduction deployments: LSM compaction offload and smart-NIC KV.

The paper's introduction motivates FPGAs with production deployments:
Alibaba's X-Engine offloads LSM compactions to keep latency SLAs, and
Microsoft's KV-Direct serves key-value requests from an FPGA NIC.
This example runs both reproductions end to end.

Run:  python examples/storage_offload.py
"""

import numpy as np

from repro.baselines import xeon_server
from repro.bench import ResultTable
from repro.kvstore import HashTable, SmartNicKvServer, SoftwareKvServer
from repro.lsm import (
    CompactionExecutor,
    LsmStore,
    cpu_compaction_bandwidth,
    fpga_compaction_bandwidth,
    run_offload_study,
)


def lsm_demo() -> None:
    # 1. Build a real LSM store and measure its write amplification.
    store = LsmStore(memtable_limit=512, level0_limit=4, fanout=4)
    rng = np.random.default_rng(5)
    n = 40_000
    store.put_batch(
        rng.integers(0, 15_000, size=n), rng.integers(0, 1 << 30, size=n)
    )
    store.flush()
    wa = store.write_amplification
    print(
        f"LSM trace: {n:,} writes -> {len(store.compactions)} compactions, "
        f"write amplification {wa:.2f}, {store.n_live_keys:,} live keys"
    )

    # 2. Replay a burst under CPU vs FPGA compaction.
    cpu = xeon_server()
    table = ResultTable(
        "Write burst under compaction (X-Engine scenario)",
        ("executor", "M writes/s", "stall %"),
    )
    executors = [
        CompactionExecutor("cpu 8 cores",
                           cpu_compaction_bandwidth(cpu, 8), 8),
        CompactionExecutor("cpu 16 cores",
                           cpu_compaction_bandwidth(cpu, 16), 16),
        CompactionExecutor("fpga merge trees",
                           fpga_compaction_bandwidth(2), 0),
    ]
    for executor in executors:
        result = run_offload_study(40_000_000, wa, executor)
        table.add(executor.name, result.sustained_writes_per_sec / 1e6,
                  result.stall_fraction * 100)
    table.show()


def kv_demo() -> None:
    rng = np.random.default_rng(6)
    ops = []
    for i in range(30_000):
        key = int(rng.integers(0, 50_000))
        if i % 10 == 0:
            ops.append(("put", key, int(rng.integers(0, 1 << 30))))
        else:
            ops.append(("get", key, 0))

    nic = SmartNicKvServer(HashTable(1 << 16, 8), value_bytes=64)
    sw = SoftwareKvServer(HashTable(1 << 16, 8), value_bytes=64)
    nic_out = nic.serve(ops)
    sw_out = sw.serve(ops)
    assert nic_out.values == sw_out.values
    print(
        f"KV serving (90% GET, 64 B values): smart NIC "
        f"{nic_out.ops_per_sec / 1e6:.1f} Mops/s @ "
        f"{nic_out.op_latency_s * 1e6:.1f} us vs software "
        f"{sw_out.ops_per_sec / 1e6:.1f} Mops/s @ "
        f"{sw_out.op_latency_s * 1e6:.1f} us "
        f"({nic_out.ops_per_sec / sw_out.ops_per_sec:.0f}x throughput)"
    )


if __name__ == "__main__":
    lsm_demo()
    kv_demo()
