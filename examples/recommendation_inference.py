#!/usr/bin/env python3
"""Use Case III — MicroRec: low-latency recommendation inference.

Serves a production-shaped CTR model (47 embedding tables, 16-dim
embeddings, a 1024-512-256 MLP head) three ways: CPU baseline, plain
MicroRec (SRAM + HBM placement), and MicroRec with Cartesian-product
table combining — and prints the latency ladder behind the tutorial's
"one order of magnitude" claim (Figures 4-5).

Run:  python examples/recommendation_inference.py
"""

from repro.bench import ResultTable, speedup
from repro.microrec import (
    CpuRecommender,
    EmbeddingTables,
    MicroRecAccelerator,
    plan_cartesian,
)
from repro.workloads import lookup_trace, production_like_model

BATCH = 256


def main() -> None:
    spec = production_like_model(n_tables=47, max_rows=2_000_000, seed=21)
    print(
        f"model: {spec.n_tables} tables, "
        f"{spec.total_embedding_bytes / 1e6:.1f} MB of embeddings, "
        f"{spec.mlp_flops():,} MLP MACs/inference"
    )
    tables = EmbeddingTables(spec, seed=21)
    trace = lookup_trace(spec, batch_size=BATCH, seed=22)

    cpu = CpuRecommender(tables, seed=5)
    plain = MicroRecAccelerator(tables, seed=5)
    cartesian = MicroRecAccelerator(
        tables,
        plan=plan_cartesian(spec, byte_budget=3 * spec.total_embedding_bytes),
        seed=5,
    )

    cpu_out = cpu.infer(trace)
    plain_out = plain.infer(trace)
    cart_out = cartesian.infer(trace)
    for name, out in (("plain", plain_out), ("cartesian", cart_out)):
        if not abs(out.logits - cpu_out.logits).max() < 1e-3:
            raise AssertionError(f"{name} logits diverge from CPU")

    report = ResultTable(
        f"CTR inference, batch={BATCH}",
        ("engine", "lookups/inf", "HBM lookups/inf",
         "latency us", "QPS", "speedup vs CPU"),
    )
    report.add("CPU (2-socket Xeon)", spec.n_tables, spec.n_tables,
               cpu_out.latency_s * 1e6, cpu_out.qps, 1.0)
    report.add(
        "MicroRec", plain.lookups_per_inference,
        plain.hbm_lookups_per_inference,
        plain_out.latency_s * 1e6, plain_out.qps,
        speedup(cpu_out.latency_s, plain_out.latency_s),
    )
    report.add(
        "MicroRec + Cartesian", cartesian.lookups_per_inference,
        cartesian.hbm_lookups_per_inference,
        cart_out.latency_s * 1e6, cart_out.qps,
        speedup(cpu_out.latency_s, cart_out.latency_s),
    )
    report.note(
        f"placement: {len(plain.placement.sram_tables)} tables in SRAM "
        f"({plain.placement.sram_bytes / 1e6:.1f} MB), "
        f"{len(plain.placement.hbm_tables)} in HBM"
    )
    report.note(
        f"Cartesian capacity overhead: "
        f"{cartesian.plan.capacity_overhead:.2f}x"
    )
    report.show()

    # Where Cartesian products really pay: more tables than channels and
    # no SRAM headroom, so every saved lookup is a saved HBM row cycle.
    from repro.microrec import MicroRecConfig

    constrained = MicroRecConfig(sram_budget_bytes=0, n_hbm_channels=8)
    ablation = ResultTable(
        "Cartesian ablation (8 HBM channels, no SRAM)",
        ("byte budget", "lookups/inf", "capacity overhead",
         "lookup stage us (batch)"),
    )
    for mult in (1.0, 1.5, 2.0, 4.0):
        plan = plan_cartesian(
            spec, byte_budget=int(mult * spec.total_embedding_bytes)
        )
        accel = MicroRecAccelerator(
            tables, plan=plan, config=constrained, seed=5
        )
        out = accel.infer(trace)
        ablation.add(
            f"{mult:.1f}x",
            accel.lookups_per_inference,
            round(plan.capacity_overhead, 2),
            out.lookup_s * 1e6,
        )
    ablation.note("fewer lookups -> fewer serialized HBM row cycles per channel")
    ablation.show()


if __name__ == "__main__":
    main()
