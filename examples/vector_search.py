#!/usr/bin/env python3
"""Use Case II — FANNS: accelerated vector search with hardware co-design.

Builds an IVF-PQ index over a clustered synthetic dataset, measures the
recall/QPS trade-off of the FPGA accelerator against the CPU baseline,
then lets the hardware generator pick the best feasible accelerator
configuration on an Alveo U55C for a recall target (Figure 3 of the
tutorial).

Run:  python examples/vector_search.py
"""

from repro.bench import ResultTable
from repro.core import ALVEO_U55C
from repro.fanns import (
    CpuAnnSearcher,
    FannsAccelerator,
    HardwareGenerator,
    build_ivfpq,
    recall_at_k,
)
from repro.workloads import clustered_dataset

K = 10


# The functional index is small (it must train in seconds); LIST_SCALE
# models deployment-scale inverted lists (paper datasets: 1e8-1e9
# vectors).  Recall comes from the functional index; timing behaves as
# if each probed list were LIST_SCALE times longer on both sides.
LIST_SCALE = 2_000


def main() -> None:
    print("generating dataset and training IVF-PQ index...")
    dataset = clustered_dataset(
        n=20_000, dim=32, n_queries=100, gt_k=K, n_clusters=64,
        cluster_std=0.25, seed=13,
    )
    index = build_ivfpq(dataset.base, nlist=256, m=16, ksub=256, seed=13)
    print(
        f"functional index: {index.n_vectors:,} vectors; modeled scale: "
        f"{index.n_vectors * LIST_SCALE:,} vectors"
    )
    accel = FannsAccelerator(index, list_scale=LIST_SCALE)
    cpu = CpuAnnSearcher(index, list_scale=LIST_SCALE)

    sweep = ResultTable(
        "QPS vs recall@10 (FPGA accelerator vs CPU IVF-PQ)",
        ("nprobe", "recall@10", "FPGA QPS", "CPU QPS",
         "FPGA latency us", "CPU latency us"),
    )
    for nprobe in (1, 2, 4, 8, 16, 32, 64):
        fpga_out = accel.search(dataset.queries, K, nprobe)
        cpu_out = cpu.search(dataset.queries, K, nprobe)
        recall = recall_at_k(fpga_out.ids, dataset.ground_truth)
        sweep.add(
            nprobe,
            round(recall, 3),
            fpga_out.qps,
            cpu_out.qps,
            fpga_out.query_latency_s * 1e6,
            cpu_out.query_latency_s * 1e6,
        )
    sweep.note("identical ids on both sides: same algorithm, different hardware")
    sweep.show()

    print("running the hardware generator (design-space exploration)...")
    generator = HardwareGenerator(
        index, dataset.queries, dataset.ground_truth, k=K,
        device=ALVEO_U55C, list_scale=LIST_SCALE,
    )
    targets = ResultTable(
        "Best feasible U55C design per recall target",
        ("recall target", "nprobe", "achieved recall", "QPS",
         "latency us", "ADC PEs", "HBM channels"),
    )
    for target in (0.5, 0.7, 0.8, 0.9):
        best, points = generator.explore(recall_target=target)
        if best is None:
            targets.add(target, "-", "unreachable", 0.0, 0.0, "-", "-")
            continue
        targets.add(
            target,
            best.nprobe,
            round(best.recall, 3),
            best.qps,
            best.latency_s * 1e6,
            best.config.n_adc_pes,
            best.config.n_hbm_channels,
        )
    targets.note(
        f"{len(generator._recall_cache)} recall evaluations, "
        "one per distinct nprobe (cached)"
    )
    targets.show()


if __name__ == "__main__":
    main()
