#!/usr/bin/env python3
"""Quickstart: the FPGA execution model in five minutes.

This walks the tutorial's *Programming* section: describe a loop,
apply HLS pragmas, see how pipelining and unrolling trade resources for
throughput against temporal (CPU-style) execution — then run the same
kernel as a live dataflow region in the event simulator.

Run:  python examples/quickstart.py
"""

from repro.bench import ResultTable
from repro.core import (
    ALVEO_U280,
    Burst,
    BurstKernel,
    LoopNest,
    Pragmas,
    Simulator,
    Sink,
    Source,
    Stream,
    synthesize,
)


def main() -> None:
    # A simple data-processing loop: read two values, multiply-add,
    # write one — think "apply a price * (1 - discount) projection".
    loop = LoopNest(
        name="price-calc",
        trip_count=1_000_000,
        ops={"mem_read": 2, "mul": 1, "add": 1, "mem_write": 1},
    )

    table = ResultTable(
        "Pragmas turn a temporal loop into a spatial pipeline",
        ("variant", "II", "depth", "cycles for 1M items", "LUTs", "DSPs"),
    )
    variants = [
        ("no pragma (temporal)", Pragmas(pipeline=False)),
        ("pipeline II=1", Pragmas(pipeline=True, pipeline_ii=1)),
        ("pipeline + unroll 4", Pragmas(pipeline=True, unroll=4)),
        ("pipeline + unroll 16", Pragmas(pipeline=True, unroll=16)),
    ]
    for label, pragmas in variants:
        spec = synthesize(loop, pragmas)
        table.add(
            label,
            spec.ii,
            spec.depth,
            spec.latency_cycles(loop.trip_count),
            spec.resources.lut,
            spec.resources.dsp,
        )
    table.note(
        f"sequential (CPU-style) execution: {loop.sequential_cycles():,} cycles"
    )
    table.show()

    # The same kernel, live: a dataflow region in the event simulator.
    spec = synthesize(loop, Pragmas(pipeline=True, unroll=4))
    sim = Simulator()
    s_in = Stream(sim, depth=4, name="in")
    s_out = Stream(sim, depth=4, name="out")
    items = [Burst(payload=None, count=250_000) for _ in range(4)]
    Source(sim, s_in, items)
    BurstKernel(sim, spec, lambda burst: burst, s_in, s_out)
    sink = Sink(sim, s_out)
    sim.run()
    seconds = sink.done_at_ps / 1e12
    print(f"dataflow simulation: {sink.items:,} items in {seconds * 1e3:.3f} ms "
          f"({sink.items / seconds / 1e6:.0f} M items/s)")

    # And the resource check a real deployment would run.
    demand = spec.resources
    report = ALVEO_U280.utilization_report(demand)
    print(f"fits an Alveo U280: {ALVEO_U280.fits(demand)} "
          f"(LUT {report['lut']:.2%}, DSP {report['dsp']:.2%})")


if __name__ == "__main__":
    main()
