#!/usr/bin/env python3
"""Operator examples: sketches, any-precision k-means, compression.

The tutorial's Resources section points to open-source FPGA operator
examples (HyperLogLog sketches, Scotch line-rate sketching, BiS-KM
any-precision k-means, SAP HANA's compression/encryption offload).
This example exercises all of them through the library's functional
implementations and prints the offload arguments.

Run:  python examples/stream_analytics.py
"""

import numpy as np

from repro.baselines import xeon_server
from repro.bench import ResultTable
from repro.operators import (
    CountMinSketch,
    HyperLogLog,
    anyprec_kmeans,
    codec_kernel_spec,
    cpu_codec_time_s,
    cpu_insert_time_s,
    dict_encode,
    hll_kernel_spec,
    rle_encode,
)
from repro.workloads import ZipfSampler


def sketch_demo() -> None:
    rng = np.random.default_rng(17)
    stream = ZipfSampler(1_000_000, 1.05, rng).sample(2_000_000)

    hll = HyperLogLog(precision=14)
    hll.add(stream)
    true_distinct = len(np.unique(stream))
    print(
        f"HLL: {true_distinct:,} distinct -> estimate "
        f"{hll.estimate():,.0f} "
        f"({abs(hll.estimate() - true_distinct) / true_distinct:.2%} err, "
        f"{hll.nbytes // 1024} KiB sketch)"
    )

    cm = CountMinSketch.from_error(eps=1e-4, delta=1e-3)
    cm.add(stream)
    hottest = int(np.bincount(stream[:100_000]).argmax())
    true_count = int((stream == hottest).sum())
    print(
        f"Count-Min: hottest key {hottest} x{true_count:,} -> "
        f"estimate {int(cm.query(np.array([hottest]))[0]):,} "
        f"(bound +{cm.error_bound():,.0f})"
    )

    cpu = xeon_server()
    spec = hll_kernel_spec(precision=14)
    n = len(stream)
    print(
        f"maintenance for {n:,} items: FPGA "
        f"{spec.latency_seconds(n) * 1e3:.2f} ms vs one core "
        f"{cpu_insert_time_s(cpu, n, parallel=False) * 1e3:.2f} ms"
    )


def kmeans_demo() -> None:
    rng = np.random.default_rng(18)
    centers = rng.random((8, 16)).astype(np.float32) * 10
    points = np.concatenate(
        [c + rng.normal(0, 0.15, (200, 16)).astype(np.float32)
         for c in centers]
    )
    table = ResultTable(
        "BiS-KM: precision vs quality (k=8)",
        ("bits", "traffic speedup", "objective vs full precision"),
    )
    full = anyprec_kmeans(points, k=8, bits=32, seed=1)
    for bits in (2, 4, 8, 32):
        out = anyprec_kmeans(points, k=8, bits=bits, seed=1)
        table.add(bits, out.traffic_speedup,
                  out.full_precision_inertia
                  / max(full.full_precision_inertia, 1e-12))
    table.show()


def compression_demo() -> None:
    rng = np.random.default_rng(19)
    column = np.sort(rng.integers(0, 200, size=2_000_000))
    d = dict_encode(column)
    r = rle_encode(column)
    print(
        f"compression of a sorted 200-distinct column: dict "
        f"{d.ratio:.1f}x, rle {column.nbytes / r.nbytes:.1f}x"
    )
    cpu = xeon_server()
    nbytes = 1 << 31
    spec = codec_kernel_spec("aes-encrypt")
    fpga_s = spec.latency_seconds(nbytes // 8)
    core_s = cpu_codec_time_s(cpu, nbytes, "aes-encrypt", parallel=False)
    print(
        f"encrypting 2 GiB: FPGA datapath {fpga_s * 1e3:.0f} ms vs one "
        f"core {core_s * 1e3:.0f} ms ({core_s / fpga_s:.1f}x)"
    )


if __name__ == "__main__":
    sketch_demo()
    kmeans_demo()
    compression_demo()
