"""Benchmark harness utilities shared by the scripts in ``benchmarks/``."""

from .reporting import ResultTable, format_quantity, speedup

__all__ = ["ResultTable", "format_quantity", "speedup"]
