"""Result tables and series for the benchmark harness.

Every bench in ``benchmarks/`` builds a :class:`ResultTable` and prints
it, so regenerated experiments come out as the rows/series the paper's
claims are stated in.  Formatting is plain monospace text (no deps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ResultTable", "format_quantity", "speedup"]


_SUFFIX_SCALES = (
    (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K"),
    # the [1e-2, 1e3) band prints plain (0.5 -> "0.5", not "500m")
    (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"),
)


def format_quantity(value: Any, digits: int = 3) -> str:
    """Human formatting with engineering suffixes for floats.

    The suffix band is chosen *after* rounding to ``digits`` significant
    figures, so values that round across a decade boundary promote to
    the next suffix instead of falling through inconsistently: 999.9996
    prints ``1K`` (not ``1e+03``) and 9.9999e-13 prints ``1p`` (not
    ``1e-12``), while anything that stays below 1e-12 after rounding is
    plain scientific (``9e-13``).
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if not isinstance(value, float):
        return str(value)
    if value == 0:
        return "0"
    rounded = float(f"{value:.{digits}g}")
    magnitude = abs(rounded)
    if 1e-2 <= magnitude < 1e3:
        return f"{rounded:.{digits}g}"
    for cut, suffix in _SUFFIX_SCALES:
        if magnitude >= cut:
            return f"{rounded / cut:.{digits}g}{suffix}"
    return f"{rounded:.{digits}g}"


def speedup(baseline: float, accelerated: float) -> float:
    """Baseline time over accelerated time (>1 means the accelerator wins)."""
    if accelerated <= 0:
        raise ValueError("accelerated time must be positive")
    return baseline / accelerated


@dataclass
class ResultTable:
    """A titled table of experiment rows."""

    title: str
    columns: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    metrics_sections: list[tuple[str, dict[str, Any]]] = field(
        default_factory=list
    )

    def add(self, *values: Any) -> None:
        """Append a row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def note(self, text: str) -> None:
        """Attach a footnote."""
        self.notes.append(text)

    def add_metrics(self, snapshot: dict[str, Any], title: str = "metrics") -> None:
        """Append an observability metrics section to the table.

        ``snapshot`` is a :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
        dict (``name{labels}`` -> value, histograms as sub-dicts); it is
        rendered after the rows and footnotes.
        """
        self.metrics_sections.append((title, dict(snapshot)))

    def _render_metrics(self) -> list[str]:
        lines: list[str] = []
        for title, snapshot in self.metrics_sections:
            lines.append(f"-- {title} --")
            if not snapshot:
                lines.append("  (empty)")
                continue
            width = max(len(k) for k in snapshot)
            for key in sorted(snapshot):
                value = snapshot[key]
                if isinstance(value, dict):  # histogram snapshot
                    rendered = (
                        f"count={format_quantity(value.get('count', 0))} "
                        f"mean={format_quantity(float(value.get('mean', 0.0)))}"
                    )
                else:
                    rendered = format_quantity(value)
                lines.append(f"  {key.ljust(width)}  {rendered}")
        return lines

    def render(self) -> str:
        """The table as monospace text."""
        cells = [
            [format_quantity(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells), 1)
            if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            name.ljust(w) for name, w in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"* {note}")
        lines.extend(self._render_metrics())
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table (benches call this)."""
        print()
        print(self.render())
        print()
