"""Result tables and series for the benchmark harness.

Every bench in ``benchmarks/`` builds a :class:`ResultTable` and prints
it, so regenerated experiments come out as the rows/series the paper's
claims are stated in.  Formatting is plain monospace text (no deps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ResultTable", "format_quantity", "speedup"]


def format_quantity(value: Any, digits: int = 3) -> str:
    """Human formatting with engineering suffixes for floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        for cut, suffix, scale in (
            (1e12, "T", 1e12), (1e9, "G", 1e9), (1e6, "M", 1e6),
            (1e3, "K", 1e3),
        ):
            if magnitude >= cut:
                return f"{value / scale:.{digits}g}{suffix}"
        if magnitude >= 1e-2:
            return f"{value:.{digits}g}"
        for cut, suffix, scale in (
            (1e-3, "m", 1e-3), (1e-6, "u", 1e-6), (1e-9, "n", 1e-9),
            (1e-12, "p", 1e-12),
        ):
            if magnitude >= cut:
                return f"{value / scale:.{digits}g}{suffix}"
        return f"{value:.{digits}g}"
    return str(value)


def speedup(baseline: float, accelerated: float) -> float:
    """Baseline time over accelerated time (>1 means the accelerator wins)."""
    if accelerated <= 0:
        raise ValueError("accelerated time must be positive")
    return baseline / accelerated


@dataclass
class ResultTable:
    """A titled table of experiment rows."""

    title: str
    columns: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        """Append a row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def note(self, text: str) -> None:
        """Attach a footnote."""
        self.notes.append(text)

    def render(self) -> str:
        """The table as monospace text."""
        cells = [
            [format_quantity(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells), 1)
            if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            name.ljust(w) for name, w in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"* {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table (benches call this)."""
        print()
        print(self.render())
        print()
