"""HyperLogLog cardinality sketches — the FPL'20 operator example.

The tutorial's resources section points to HLL sketch acceleration on
FPGAs (Kulkarni et al., FPL 2020): the sketch ingests a stream at line
rate because each item is one hash + one register max — a perfect
II=1 pipeline — while CPUs spend a multiply-chain per item.

:class:`HyperLogLog` is the functional sketch (dense, 2^p registers,
the standard bias-corrected estimator); :func:`hll_kernel_spec` is the
synthesized stream kernel and :func:`cpu_insert_time_s` the baseline
cost.  Merging sketches is register-wise max, which is what makes the
operator distributable (and usable inside ACCL reductions).
"""

from __future__ import annotations

import math

import numpy as np

from ..baselines.cpu import CpuModel
from ..core.clocking import FABRIC_300MHZ, ClockDomain
from ..core.device import ResourceVector
from ..core.kernel import KernelSpec

__all__ = ["HyperLogLog", "cpu_insert_time_s", "hll_kernel_spec"]

_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash64(values: np.ndarray) -> np.ndarray:
    """A deterministic 64-bit mix hash (splitmix64 finalizer)."""
    x = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x = (x + _HASH_MULT)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x


class HyperLogLog:
    """A dense HyperLogLog sketch with ``2**precision`` registers."""

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in 4..18")
        self.precision = precision
        self.m = 1 << precision
        self.registers = np.zeros(self.m, dtype=np.uint8)

    @property
    def nbytes(self) -> int:
        """Sketch memory footprint."""
        return self.registers.nbytes

    def add(self, values: np.ndarray) -> None:
        """Insert a batch of integer items."""
        values = np.asarray(values)
        if values.size == 0:
            return
        hashed = _hash64(values.reshape(-1))
        bucket = (hashed >> np.uint64(64 - self.precision)).astype(np.int64)
        remainder = hashed << np.uint64(self.precision)
        # rho: position of the leftmost 1 bit in the remaining bits (+1);
        # a zero remainder means all 64-p bits were zero.
        width = 64 - self.precision
        rho = np.where(
            remainder == 0,
            width + 1,
            _leading_zeros64(remainder) + 1,
        ).astype(np.uint8)
        np.maximum.at(self.registers, bucket, rho)

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union of two sketches (register-wise max); same precision only."""
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches of different precision")
        merged = HyperLogLog(self.precision)
        np.maximum(self.registers, other.registers, out=merged.registers)
        return merged

    def estimate(self) -> float:
        """Bias-corrected cardinality estimate."""
        m = float(self.m)
        inverse_sum = float(np.sum(2.0 ** (-self.registers.astype(np.float64))))
        alpha = _alpha(self.m)
        raw = alpha * m * m / inverse_sum
        zeros = int(np.count_nonzero(self.registers == 0))
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)  # linear counting
        return raw

    def relative_error_bound(self) -> float:
        """The theoretical standard error ~= 1.04 / sqrt(m)."""
        return 1.04 / math.sqrt(self.m)


def _leading_zeros64(x: np.ndarray) -> np.ndarray:
    """Count of leading zero bits of nonzero uint64 values."""
    # 63 - floor(log2(x)), computed through float64 exponent extraction
    # is unsafe for >2^53; use a bit-halving ladder instead.
    x = x.copy()
    n = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        mask = x < (np.uint64(1) << np.uint64(64 - shift))
        n = np.where(mask, n + shift, n)
        x = np.where(mask, x << np.uint64(shift), x)
    return n


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1 + 1.079 / m)


def hll_kernel_spec(
    precision: int = 12, clock: ClockDomain = FABRIC_300MHZ
) -> KernelSpec:
    """The synthesized HLL insertion kernel.

    Eight items per cycle (a 512-bit bus of 64-bit keys, as in the
    FPL'20 design): per lane a hash (pipelined multiply chain), bucket
    index and leading-zero count, then a banked register-max stage that
    resolves same-bucket conflicts in the pipeline.  Registers live in
    BRAM (one RAMB36 per 4 KiB of registers, replicated per bank).
    """
    lanes = 8
    brams = lanes * max(1, (1 << precision) // 4096)
    return KernelSpec(
        name=f"hll-p{precision}",
        ii=1,
        depth=18,  # 3-stage multiply x2 + lzc + banked register update
        unroll=lanes,
        clock=clock,
        resources=ResourceVector(
            lut=6_000 * lanes, ff=9_000 * lanes, dsp=12 * lanes,
            bram_36k=brams,
        ),
    )


def cpu_insert_time_s(cpu: CpuModel, n_items: int,
                      parallel: bool = True) -> float:
    """CPU insertion cost: ~12 scalar ops per item (hash + lzc + max),
    poorly vectorisable due to the scatter update."""
    if n_items <= 0:
        return 0.0
    return cpu.compute_time_s(
        12 * n_items, element_bytes=cpu.simd_bytes, parallel=parallel
    )
