"""Dictionary + run-length codecs — the SAP HANA offload example.

Chiosa et al. (VLDB 2022, cited by the tutorial) accelerate column
compression/decompression (and encryption) for SAP HANA on FPGAs: the
codecs are cheap per value, so at column-scan volumes the CPU pays
real core-time while an FPGA datapath applies them at line rate.

Functional codecs here are exact and invertible (tested round-trip);
kernel specs and CPU costs follow the usual pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.cpu import CpuModel
from ..core.clocking import FABRIC_300MHZ, ClockDomain
from ..core.device import ResourceVector
from ..core.kernel import KernelSpec

__all__ = [
    "DictEncoded",
    "RleEncoded",
    "codec_kernel_spec",
    "cpu_codec_time_s",
    "dict_decode",
    "dict_encode",
    "rle_decode",
    "rle_encode",
]


@dataclass(frozen=True)
class DictEncoded:
    """A dictionary-encoded column: codes index into ``dictionary``."""

    dictionary: np.ndarray
    codes: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.dictionary.nbytes + self.codes.nbytes

    @property
    def ratio(self) -> float:
        """Original bytes / encoded bytes."""
        original = self.codes.size * self.dictionary.dtype.itemsize
        return original / max(1, self.nbytes)


def dict_encode(column: np.ndarray) -> DictEncoded:
    """Dictionary-encode a column; code width shrinks to fit."""
    column = np.asarray(column)
    dictionary, inverse = np.unique(column, return_inverse=True)
    n = len(dictionary)
    if n <= 1 << 8:
        codes = inverse.astype(np.uint8)
    elif n <= 1 << 16:
        codes = inverse.astype(np.uint16)
    else:
        codes = inverse.astype(np.uint32)
    return DictEncoded(dictionary=dictionary, codes=codes)


def dict_decode(encoded: DictEncoded) -> np.ndarray:
    """Materialise the original column."""
    return encoded.dictionary[encoded.codes]


@dataclass(frozen=True)
class RleEncoded:
    """Run-length encoding: parallel arrays of values and run lengths."""

    values: np.ndarray
    lengths: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.lengths.nbytes

    @property
    def n_rows(self) -> int:
        return int(self.lengths.sum())


def rle_encode(column: np.ndarray) -> RleEncoded:
    """Run-length encode a column."""
    column = np.asarray(column)
    if column.size == 0:
        return RleEncoded(
            values=column[:0], lengths=np.zeros(0, dtype=np.int64)
        )
    change = np.flatnonzero(column[1:] != column[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [column.size]))
    return RleEncoded(
        values=column[starts], lengths=(ends - starts).astype(np.int64)
    )


def rle_decode(encoded: RleEncoded) -> np.ndarray:
    """Materialise the original column."""
    return np.repeat(encoded.values, encoded.lengths)


def codec_kernel_spec(
    kind: str, clock: ClockDomain = FABRIC_300MHZ
) -> KernelSpec:
    """The synthesized codec datapath.

    ``kind`` in {'dict-decode', 'rle-decode', 'dict-encode',
    'rle-encode'}; decoders are a BRAM lookup / counter per value
    (II=1, 8 values per cycle on a 512-bit bus), encoders add a
    hash/compare stage.
    """
    kinds = {
        "dict-decode": (6, ResourceVector(lut=5_000, ff=8_000, bram_36k=64)),
        "rle-decode": (4, ResourceVector(lut=3_000, ff=5_000)),
        "dict-encode": (20, ResourceVector(lut=22_000, ff=30_000,
                                           bram_36k=128)),
        "rle-encode": (6, ResourceVector(lut=4_000, ff=6_000)),
        # AES-256-GCM at one 512-bit beat per cycle (HANA's crypto path).
        "aes-encrypt": (42, ResourceVector(lut=60_000, ff=90_000,
                                           bram_36k=16)),
    }
    if kind not in kinds:
        raise ValueError(f"unknown codec {kind!r}; have {sorted(kinds)}")
    depth, resources = kinds[kind]
    return KernelSpec(
        name=kind, ii=1, depth=depth, unroll=8, clock=clock,
        resources=resources,
    )


def cpu_codec_time_s(
    cpu: CpuModel, nbytes: int, kind: str, parallel: bool = True
) -> float:
    """CPU codec cost: ops-per-byte roofline per codec kind."""
    ops_per_byte = {
        "dict-decode": 0.5, "rle-decode": 0.4,
        "dict-encode": 3.0, "rle-encode": 0.6,
        # AES-NI sustains a few GB/s per core: ~10 lane-ops per byte in
        # this model's units.
        "aes-encrypt": 10.0,
    }
    if kind not in ops_per_byte:
        raise ValueError(f"unknown codec {kind!r}")
    return cpu.scan_time_s(nbytes, ops_per_byte=ops_per_byte[kind],
                           parallel=parallel)
