"""Business-rule matching — the Amadeus search-engine case study.

Maschi et al. (SIGMOD 2020, one of the presenters' industry
collaborations) accelerate *business-rule evaluation* for travel
search: every query must be checked against thousands of rules (each a
conjunction of attribute ranges) before results can be priced.  On a
CPU the cost grows with the rule count; on an FPGA every rule is its
own comparator bank evaluated **in parallel**, so a query takes one
pipeline traversal regardless of how many rules are loaded — until the
fabric runs out of comparators, which is a resource question the
device model answers.

:class:`RuleSet` is the functional matcher (vectorised numpy, exact);
:func:`rules_kernel_spec` and :func:`cpu_match_time_s` price the two
platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines.cpu import CpuModel
from ..core.clocking import FABRIC_300MHZ, ClockDomain
from ..core.device import ResourceVector
from ..core.kernel import KernelSpec

__all__ = [
    "RuleSet",
    "cpu_match_time_s",
    "random_rules",
    "rules_kernel_spec",
]


@dataclass(frozen=True)
class RuleSet:
    """``n_rules`` conjunctive range rules over ``n_attrs`` attributes.

    ``lows``/``highs`` have shape ``(n_rules, n_attrs)``; a rule
    matches a query when ``lows <= query <= highs`` on every attribute
    (wildcards are encoded as ``-inf``/``+inf`` bounds).
    ``priorities`` breaks ties: :meth:`best_match` returns the matching
    rule with the highest priority (lowest index wins ties).
    """

    lows: np.ndarray
    highs: np.ndarray
    priorities: np.ndarray

    def __post_init__(self) -> None:
        if self.lows.shape != self.highs.shape:
            raise ValueError("lows and highs must have identical shape")
        if self.lows.ndim != 2:
            raise ValueError("bounds must be (n_rules, n_attrs)")
        if self.priorities.shape != (self.lows.shape[0],):
            raise ValueError("priorities must be (n_rules,)")
        if (self.lows > self.highs).any():
            raise ValueError("every rule needs lows <= highs")

    @property
    def n_rules(self) -> int:
        return self.lows.shape[0]

    @property
    def n_attrs(self) -> int:
        return self.lows.shape[1]

    def matches(self, queries: np.ndarray) -> np.ndarray:
        """Boolean match matrix of shape ``(n_queries, n_rules)``."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.n_attrs:
            raise ValueError(f"queries must be (q, {self.n_attrs})")
        ok_low = queries[:, None, :] >= self.lows[None, :, :]
        ok_high = queries[:, None, :] <= self.highs[None, :, :]
        return (ok_low & ok_high).all(axis=2)

    def best_match(self, queries: np.ndarray) -> np.ndarray:
        """Highest-priority matching rule per query (-1 for none)."""
        match = self.matches(queries)
        scores = np.where(match, self.priorities[None, :], -np.inf)
        best = scores.argmax(axis=1)
        any_match = match.any(axis=1)
        return np.where(any_match, best, -1)


def random_rules(
    n_rules: int,
    n_attrs: int,
    selectivity: float = 0.3,
    wildcard_fraction: float = 0.3,
    seed: int = 0,
) -> RuleSet:
    """Generate rules whose per-attribute ranges cover ``selectivity``
    of a unit domain, with some attributes wildcarded."""
    if n_rules < 1 or n_attrs < 1:
        raise ValueError("need at least one rule and one attribute")
    if not 0 < selectivity <= 1:
        raise ValueError("selectivity must be in (0, 1]")
    if not 0 <= wildcard_fraction <= 1:
        raise ValueError("wildcard_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    lows = rng.random((n_rules, n_attrs)) * (1 - selectivity)
    highs = lows + selectivity
    wild = rng.random((n_rules, n_attrs)) < wildcard_fraction
    lows[wild] = -np.inf
    highs[wild] = np.inf
    priorities = rng.permutation(n_rules).astype(np.float64)
    return RuleSet(lows=lows, highs=highs, priorities=priorities)


def rules_kernel_spec(
    n_rules: int,
    n_attrs: int,
    clock: ClockDomain = FABRIC_300MHZ,
) -> KernelSpec:
    """The spatial rule-matching datapath.

    Every rule instantiates ``2 * n_attrs`` comparators plus a
    priority-resolution tree; a query enters per cycle (II=1) and the
    answer emerges after the tree's depth.  Resources grow linearly
    with rules x attributes — the feasibility boundary of the design.
    """
    if n_rules < 1 or n_attrs < 1:
        raise ValueError("need at least one rule and one attribute")
    comparators = 2 * n_rules * n_attrs
    tree_depth = max(1, math.ceil(math.log2(max(2, n_rules))))
    # Rules use narrow encoded attributes (the SIGMOD'20 design packs
    # domains into ~16-bit codes), so a comparator is ~10 LUTs.
    return KernelSpec(
        name=f"rules-{n_rules}x{n_attrs}",
        ii=1,
        depth=4 + tree_depth,
        unroll=1,
        clock=clock,
        resources=ResourceVector(
            lut=10 * comparators + 4 * n_rules,
            ff=12 * comparators,
            bram_36k=max(1, comparators // 4096),
        ),
    )


def cpu_match_time_s(
    cpu: CpuModel,
    n_queries: int,
    n_rules: int,
    n_attrs: int,
    short_circuit: float = 0.5,
    parallel: bool = False,
) -> float:
    """CPU rule evaluation: sequential per rule, with short-circuiting.

    ``short_circuit`` is the average fraction of a rule's attribute
    comparisons actually executed before a miss is known.
    """
    if min(n_queries, n_rules, n_attrs) < 0:
        raise ValueError("counts must be >= 0")
    if not 0 < short_circuit <= 1:
        raise ValueError("short_circuit must be in (0, 1]")
    comparisons = n_queries * n_rules * n_attrs * short_circuit * 2
    return cpu.compute_time_s(
        int(comparisons), element_bytes=8, parallel=parallel
    )
