"""Count-Min and AGMS sketches — Scotch-style line-rate sketching.

Scotch (VLDB 2020, cited by the tutorial as the line-rate example)
generates FPGA accelerators for sketch maintenance: every arriving
tuple updates a few hashed counters, which pipelines at II=1 per row
regardless of the sketch's analytical purpose.  Two classics:

* :class:`CountMinSketch` — point frequency estimation with one-sided
  error ``<= eps * N`` at confidence ``1 - delta``;
* :class:`AgmsSketch` — an AGMS/tug-of-war sketch of the second
  frequency moment (self-join size).

Both are mergeable (linear sketches), keep exact numpy state, and ship
kernel specs + CPU costs like :mod:`repro.operators.hll`.
"""

from __future__ import annotations

import math

import numpy as np

from ..baselines.cpu import CpuModel
from ..core.clocking import FABRIC_300MHZ, ClockDomain
from ..core.device import ResourceVector
from ..core.kernel import KernelSpec

__all__ = [
    "AgmsSketch",
    "CountMinSketch",
    "cpu_update_time_s",
    "sketch_kernel_spec",
]


def _row_hash(values: np.ndarray, seed: int, buckets: int) -> np.ndarray:
    """Per-row 64-bit multiply-shift hash into [0, buckets)."""
    x = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x = (x + np.uint64(seed * 2 + 1)) * np.uint64(0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(29)
        x *= np.uint64(0xBF58476D1CE4E5B9 + seed)
        x ^= x >> np.uint64(32)
    return (x % np.uint64(buckets)).astype(np.int64)


def _sign_hash(values: np.ndarray, seed: int) -> np.ndarray:
    """+-1 hash for AGMS."""
    bits = _row_hash(values, seed + 101, 2)
    return (2 * bits - 1).astype(np.int64)


class CountMinSketch:
    """A Count-Min sketch with ``depth`` rows of ``width`` counters."""

    def __init__(self, width: int = 2048, depth: int = 4) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self.counters = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    @classmethod
    def from_error(cls, eps: float, delta: float) -> "CountMinSketch":
        """Dimension the sketch for error ``eps*N`` at confidence 1-delta."""
        if not 0 < eps < 1 or not 0 < delta < 1:
            raise ValueError("eps and delta must be in (0, 1)")
        return cls(
            width=math.ceil(math.e / eps),
            depth=math.ceil(math.log(1.0 / delta)),
        )

    @property
    def nbytes(self) -> int:
        return self.counters.nbytes

    def add(self, values: np.ndarray) -> None:
        """Insert a batch of integer items (count 1 each)."""
        values = np.asarray(values).reshape(-1)
        if values.size == 0:
            return
        for row in range(self.depth):
            buckets = _row_hash(values, row, self.width)
            np.add.at(self.counters[row], buckets, 1)
        self.total += values.size

    def query(self, values: np.ndarray) -> np.ndarray:
        """Estimated frequencies (never underestimates)."""
        values = np.asarray(values).reshape(-1)
        estimates = np.full(values.size, np.iinfo(np.int64).max)
        for row in range(self.depth):
            buckets = _row_hash(values, row, self.width)
            estimates = np.minimum(estimates, self.counters[row][buckets])
        return estimates

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Sum of two sketches over the same dimensions."""
        if (self.width, self.depth) != (other.width, other.depth):
            raise ValueError("sketch dimensions must match")
        merged = CountMinSketch(self.width, self.depth)
        merged.counters = self.counters + other.counters
        merged.total = self.total + other.total
        return merged

    def error_bound(self) -> float:
        """The eps*N additive error bound of point queries."""
        return math.e / self.width * self.total


class AgmsSketch:
    """An AGMS sketch of the second frequency moment (F2)."""

    def __init__(self, n_estimators: int = 64) -> None:
        if n_estimators < 1:
            raise ValueError("need at least one estimator")
        self.n_estimators = n_estimators
        self.sums = np.zeros(n_estimators, dtype=np.int64)

    @property
    def nbytes(self) -> int:
        return self.sums.nbytes

    def add(self, values: np.ndarray) -> None:
        """Insert a batch of integer items."""
        values = np.asarray(values).reshape(-1)
        if values.size == 0:
            return
        for est in range(self.n_estimators):
            self.sums[est] += int(_sign_hash(values, est).sum())

    def estimate_f2(self) -> float:
        """Median-of-means estimate of sum of squared frequencies."""
        squares = self.sums.astype(np.float64) ** 2
        groups = max(1, self.n_estimators // 8)
        means = [
            squares[g::groups].mean() for g in range(groups)
        ]
        return float(np.median(means))

    def merge(self, other: "AgmsSketch") -> "AgmsSketch":
        """Sum of two sketches (linear)."""
        if self.n_estimators != other.n_estimators:
            raise ValueError("estimator counts must match")
        merged = AgmsSketch(self.n_estimators)
        merged.sums = self.sums + other.sums
        return merged


def sketch_kernel_spec(
    counters_per_item: int,
    counter_bytes_total: int,
    lanes: int = 8,
    clock: ClockDomain = FABRIC_300MHZ,
) -> KernelSpec:
    """A Scotch-style sketch-update kernel.

    ``lanes`` items enter per cycle (a 512-bit bus of 64-bit keys at
    line rate); for each, ``counters_per_item`` hash/update units run
    in parallel (one per sketch row / estimator bank), so the kernel
    stays II=1.  Counters live in BRAM, banked per lane so concurrent
    updates do not conflict.
    """
    if counters_per_item < 1:
        raise ValueError("need at least one update lane")
    if lanes < 1:
        raise ValueError("need at least one input lane")
    units = counters_per_item * lanes
    brams = lanes * max(1, counter_bytes_total // (36 * 1024 // 8))
    return KernelSpec(
        name=f"sketch-x{counters_per_item}x{lanes}",
        ii=1,
        depth=14,
        unroll=lanes,
        clock=clock,
        resources=ResourceVector(
            lut=3_000 * units,
            ff=4_500 * units,
            dsp=8 * units,
            bram_36k=brams,
        ),
    )


def cpu_update_time_s(
    cpu: CpuModel,
    n_items: int,
    counters_per_item: int,
    parallel: bool = True,
) -> float:
    """CPU sketch maintenance: ~10 scalar ops per counter touched,
    scatter-bound (one dependent cache access per counter)."""
    if n_items <= 0:
        return 0.0
    ops = 10 * counters_per_item * n_items
    return cpu.compute_time_s(
        ops, element_bytes=cpu.simd_bytes, parallel=parallel
    )
