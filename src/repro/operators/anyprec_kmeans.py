"""BiS-KM: any-precision k-means (FPGA'20 operator example).

BiS-KM stores the dataset bit-serially so one FPGA design can run
k-means at *any* precision from 1 bit up to full: reading fewer bit
planes moves proportionally fewer bytes, and for k-means the low-order
bits rarely change the converged clustering.  The trade is precision
vs throughput — the knob this module exposes:

* :func:`quantize` — reduce a dataset to its top ``bits`` bit planes;
* :func:`anyprec_kmeans` — run Lloyd's on the quantized data and
  report clustering quality against the full-precision objective;
* :func:`scan_speedup` — the memory-traffic speedup of reading only
  ``bits`` planes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fanns.kmeans import KMeansResult, kmeans

__all__ = ["AnyPrecisionResult", "anyprec_kmeans", "quantize", "scan_speedup"]

_FULL_BITS = 32


def quantize(points: np.ndarray, bits: int) -> np.ndarray:
    """Keep the ``bits`` most significant bits of a fixed-point encoding.

    Data is min-max scaled to [0, 1), encoded on ``_FULL_BITS`` bits,
    truncated, and decoded back — exactly the effect of streaming only
    the top bit planes of a bit-serial layout.
    """
    if not 1 <= bits <= _FULL_BITS:
        raise ValueError(f"bits must be in 1..{_FULL_BITS}")
    points = np.asarray(points, dtype=np.float64)
    low = points.min(axis=0, keepdims=True)
    span = points.max(axis=0, keepdims=True) - low
    span = np.where(span == 0, 1.0, span)
    unit = (points - low) / span
    levels = 2.0 ** bits
    truncated = np.floor(np.clip(unit, 0.0, 1.0 - 1e-12) * levels) / levels
    return (truncated * span + low).astype(np.float32)


@dataclass(frozen=True)
class AnyPrecisionResult:
    """Outcome of a reduced-precision k-means run."""

    bits: int
    result: KMeansResult
    full_precision_inertia: float  # quantized centroids scored on raw data
    traffic_speedup: float

    @property
    def quality_ratio(self) -> float:
        """Full-precision objective of this run vs its own inertia floor;
        compare across runs to see precision's effect."""
        return self.full_precision_inertia


def scan_speedup(bits: int) -> float:
    """Memory-traffic speedup of reading ``bits`` of 32 bit planes."""
    if not 1 <= bits <= _FULL_BITS:
        raise ValueError(f"bits must be in 1..{_FULL_BITS}")
    return _FULL_BITS / bits


def anyprec_kmeans(
    points: np.ndarray,
    k: int,
    bits: int,
    max_iterations: int = 25,
    seed: int = 0,
) -> AnyPrecisionResult:
    """Run k-means on the top ``bits`` bit planes of ``points``.

    The returned ``full_precision_inertia`` scores the learned
    centroids against the *unquantized* data, which is the quality
    metric BiS-KM reports.
    """
    points = np.ascontiguousarray(points, dtype=np.float32)
    reduced = quantize(points, bits)
    result = kmeans(reduced, k, max_iterations=max_iterations, seed=seed)
    # Score on full-precision data.
    d = (
        (points ** 2).sum(axis=1)[:, None]
        - 2.0 * points @ result.centroids.T
        + (result.centroids ** 2).sum(axis=1)[None, :]
    )
    full_inertia = float(np.maximum(d.min(axis=1), 0.0).sum())
    return AnyPrecisionResult(
        bits=bits,
        result=result,
        full_precision_inertia=full_inertia,
        traffic_speedup=scan_speedup(bits),
    )
