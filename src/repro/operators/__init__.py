"""Operator coding examples from the tutorial's Resources section:
HyperLogLog sketch acceleration (FPL'20), Scotch-style line-rate
sketches (VLDB'20), BiS-KM any-precision k-means (FPGA'20), and the
SAP-HANA compression codecs (VLDB'22).
"""

from .anyprec_kmeans import (
    AnyPrecisionResult,
    anyprec_kmeans,
    quantize,
    scan_speedup,
)
from .compression import (
    DictEncoded,
    RleEncoded,
    codec_kernel_spec,
    cpu_codec_time_s,
    dict_decode,
    dict_encode,
    rle_decode,
    rle_encode,
)
from .hll import HyperLogLog, cpu_insert_time_s, hll_kernel_spec
from .rules import RuleSet, cpu_match_time_s, random_rules, rules_kernel_spec
from .sketches import (
    AgmsSketch,
    CountMinSketch,
    cpu_update_time_s,
    sketch_kernel_spec,
)

__all__ = [
    "AgmsSketch",
    "AnyPrecisionResult",
    "CountMinSketch",
    "DictEncoded",
    "HyperLogLog",
    "RleEncoded",
    "RuleSet",
    "anyprec_kmeans",
    "codec_kernel_spec",
    "cpu_codec_time_s",
    "cpu_insert_time_s",
    "cpu_match_time_s",
    "cpu_update_time_s",
    "dict_decode",
    "dict_encode",
    "hll_kernel_spec",
    "quantize",
    "random_rules",
    "rle_decode",
    "rle_encode",
    "rules_kernel_spec",
    "scan_speedup",
    "sketch_kernel_spec",
]
