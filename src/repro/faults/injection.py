"""Fault-injecting wrappers for the network resources.

:class:`FaultyLink` and :class:`FaultyNodePort` are drop-in subclasses
of :class:`~repro.network.link.SimLink` and
:class:`~repro.network.fabric.NodePort` that consult a
:class:`~repro.faults.plan.FaultPlan` on every transfer:

* a **dropped** transfer still occupies the wire (the bytes left the
  sender) but is never delivered — in ``"silent"`` mode the returned
  event simply never fires (the realistic case, which is why callers
  need timeouts), in ``"error"`` mode it fails with
  :class:`TransferDropped` at the would-be delivery time (convenient
  for tests);
* a **latency spike** delays delivery by the plan's drawn magnitude;
* a transfer to/from a node inside an outage window behaves like a
  drop (``NodeDown`` in error mode).

Every injection lands on the tracer's ``faults:{site}`` track as an
instant event, so Chrome traces show exactly where the plan struck.
"""

from __future__ import annotations

from ..core.sim import Event, SimulationError, Simulator
from ..network.fabric import NodePort, SwitchedFabric
from ..network.link import LinkModel, SimLink
from .plan import FaultPlan

__all__ = ["FaultyLink", "FaultyNodePort", "NodeDown", "TransferDropped"]


class TransferDropped(SimulationError):
    """An injected link fault swallowed this transfer."""

    def __init__(self, site: str, nbytes: int) -> None:
        super().__init__(f"transfer of {nbytes} bytes dropped on {site!r}")
        self.site = site
        self.nbytes = nbytes


class NodeDown(SimulationError):
    """The transfer touched a node inside an outage window."""

    def __init__(self, node: int, at_ps: int) -> None:
        super().__init__(f"node {node} is down at t={at_ps} ps")
        self.node = node
        self.at_ps = at_ps


class FaultyLink(SimLink):
    """A :class:`SimLink` whose transfers consult a :class:`FaultPlan`.

    ``mode`` selects what a dropped transfer looks like to the caller:
    ``"silent"`` (event never fires) or ``"error"`` (event fails with
    :class:`TransferDropped` at delivery time).
    """

    def __init__(
        self,
        sim: Simulator,
        model: LinkModel,
        plan: FaultPlan,
        name: str | None = None,
        mode: str = "silent",
    ) -> None:
        if mode not in ("silent", "error"):
            raise ValueError(f"mode must be 'silent' or 'error', got {mode!r}")
        super().__init__(sim, model, name)
        self.plan = plan
        self.mode = mode
        self.drops = 0
        self.spikes = 0

    def transfer(self, nbytes: int, dst: object = None) -> Event:
        base = super().transfer(nbytes, dst)
        tracer = self.sim._tracer
        if self.plan.drop(self.name):
            self.drops += 1
            if tracer is not None:
                tracer.fault_injected("drop", self.name, nbytes=nbytes)
            # The wire time was already spent; only delivery is lost.
            out = Event(self.sim)
            if self.mode == "error":
                def _fail(ev: Event, out: Event = out) -> None:
                    if not out._cancelled:
                        out.fail(TransferDropped(self.name, ev.value))
                base.callbacks.append(_fail)
            return out
        spike = self.plan.spike_delay_ps(self.name)
        if spike:
            self.spikes += 1
            if tracer is not None:
                tracer.fault_injected(
                    "latency_spike", self.name, delay_ps=spike
                )
            out = Event(self.sim)

            def _deliver(ev: Event, out: Event = out, spike: int = spike) -> None:
                if not out._cancelled:
                    out.succeed(ev.value, delay=spike)

            base.callbacks.append(_deliver)
            return out
        return base


class FaultyNodePort(NodePort):
    """A :class:`NodePort` subject to the plan's drops, spikes, outages.

    A send from a down node, or to a node that will be down at delivery
    time, is treated as a drop.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: SwitchedFabric,
        node: int,
        plan: FaultPlan,
        mode: str = "silent",
    ) -> None:
        if mode not in ("silent", "error"):
            raise ValueError(f"mode must be 'silent' or 'error', got {mode!r}")
        super().__init__(sim, fabric, node)
        self.plan = plan
        self.mode = mode
        self.drops = 0
        self.spikes = 0

    @property
    def site(self) -> str:
        return f"node{self.node}.egress"

    def send(self, dst: int, nbytes: int) -> Event:
        base = super().send(dst, nbytes)
        tracer = self.sim._tracer
        down = None
        if self.plan.node_down(self.node, self.sim.now):
            down = self.node
        elif self.plan.node_down(dst, self.sim.now):
            down = dst
        if down is not None:
            self.drops += 1
            if tracer is not None:
                tracer.fault_injected("node_down", self.site, node=down)
            out = Event(self.sim)
            if self.mode == "error":
                at = self.sim.now

                def _fail(ev: Event, out: Event = out) -> None:
                    if not out._cancelled:
                        out.fail(NodeDown(down, at))

                base.callbacks.append(_fail)
            return out
        if self.plan.drop(self.site):
            self.drops += 1
            if tracer is not None:
                tracer.fault_injected("drop", self.site, nbytes=nbytes)
            out = Event(self.sim)
            if self.mode == "error":
                def _fail(ev: Event, out: Event = out) -> None:
                    if not out._cancelled:
                        out.fail(TransferDropped(self.site, ev.value))

                base.callbacks.append(_fail)
            return out
        spike = self.plan.spike_delay_ps(self.site)
        if spike:
            self.spikes += 1
            if tracer is not None:
                tracer.fault_injected("latency_spike", self.site, delay_ps=spike)
            out = Event(self.sim)

            def _deliver(ev: Event, out: Event = out, spike: int = spike) -> None:
                if not out._cancelled:
                    out.succeed(ev.value, delay=spike)

            base.callbacks.append(_deliver)
            return out
        return base
