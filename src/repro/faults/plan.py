"""Deterministic fault schedules.

A :class:`FaultPlan` is the single source of randomness for a
fault-injection run.  It is seeded, and every injection *site* (a link
name, a node port, a client) draws from its own ``random.Random``
stream derived from ``(seed, site)`` — so whether site A consults the
plan before or after site B cannot perturb either schedule.  Two plans
built with the same configuration produce byte-identical fault
sequences, which is what the deterministic-replay tests (and the
``e22`` acceptance criterion) rely on.

Fault kinds:

* **drops** — a transfer vanishes (probability ``drop_rate`` per
  consult);
* **latency spikes** — a transfer is delayed by a uniform draw from
  ``spike_ps`` (probability ``spike_rate``);
* **node outages** — a statically scheduled :class:`NodeOutage`
  interval during which a node neither sends nor receives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["FaultPlan", "NodeOutage"]


@dataclass(frozen=True, slots=True)
class NodeOutage:
    """A node crash interval: down at ``down_at_ps``, back at ``up_at_ps``.

    ``up_at_ps=None`` means the node never recovers (fail-stop).
    """

    node: int
    down_at_ps: int
    up_at_ps: int | None = None

    def __post_init__(self) -> None:
        if self.down_at_ps < 0:
            raise ValueError("down_at_ps must be >= 0")
        if self.up_at_ps is not None and self.up_at_ps <= self.down_at_ps:
            raise ValueError("up_at_ps must be after down_at_ps")

    def covers(self, t_ps: int) -> bool:
        """True if the node is down at time ``t_ps``."""
        if t_ps < self.down_at_ps:
            return False
        return self.up_at_ps is None or t_ps < self.up_at_ps


@dataclass
class FaultPlan:
    """A seeded, per-site-deterministic schedule of injected faults.

    Parameters
    ----------
    seed:
        Root seed; combined with each site name to derive independent
        streams.
    drop_rate:
        Probability that a consulted transfer is dropped.
    spike_rate:
        Probability that a consulted transfer suffers a latency spike.
    spike_ps:
        ``(lo, hi)`` uniform range for spike magnitudes.
    outages:
        Statically scheduled :class:`NodeOutage` intervals.
    """

    seed: int = 0
    drop_rate: float = 0.0
    spike_rate: float = 0.0
    spike_ps: tuple[int, int] = (1_000_000, 10_000_000)
    outages: tuple[NodeOutage, ...] = ()
    injected: dict[str, int] = field(default_factory=dict, compare=False)
    _streams: dict[str, random.Random] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be in [0, 1]")
        if not 0.0 <= self.spike_rate <= 1.0:
            raise ValueError("spike_rate must be in [0, 1]")
        lo, hi = self.spike_ps
        if lo < 0 or hi < lo:
            raise ValueError("spike_ps must be a (lo, hi) range with 0 <= lo <= hi")
        self.outages = tuple(self.outages)

    # -- per-site randomness ------------------------------------------------

    def stream(self, site: str) -> random.Random:
        """The site's private random stream (created on first use).

        Seeding with a string goes through ``random``'s sha512 path, so
        the stream depends only on ``(seed, site)`` — never on how many
        draws other sites made first.
        """
        rng = self._streams.get(site)
        if rng is None:
            rng = random.Random(f"faultplan:{self.seed}:{site}")
            self._streams[site] = rng
        return rng

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    # -- fault draws --------------------------------------------------------

    def drop(self, site: str) -> bool:
        """Consult the plan: is this transfer at ``site`` dropped?"""
        if self.drop_rate <= 0.0:
            return False
        hit = self.stream(site).random() < self.drop_rate
        if hit:
            self._count("drop")
        return hit

    def spike_delay_ps(self, site: str) -> int:
        """Extra latency injected on this transfer (0 = no spike).

        Two draws per consult — probability, then magnitude — so the
        schedule is stable even if ``spike_ps`` changes between runs.
        """
        if self.spike_rate <= 0.0:
            return 0
        rng = self.stream(site)
        hit = rng.random() < self.spike_rate
        lo, hi = self.spike_ps
        magnitude = rng.randint(lo, hi) if hi > lo else lo
        if not hit:
            return 0
        self._count("latency_spike")
        return magnitude

    # -- outages ------------------------------------------------------------

    def node_down(self, node: int, t_ps: int) -> bool:
        """True if ``node`` is inside one of its outage windows."""
        return any(
            o.node == node and o.covers(t_ps) for o in self.outages
        )

    def down_nodes(self, t_ps: int) -> frozenset[int]:
        """All nodes down at ``t_ps``."""
        return frozenset(o.node for o in self.outages if o.covers(t_ps))

    # -- replay -------------------------------------------------------------

    def replay(self) -> "FaultPlan":
        """A fresh plan with identical configuration and virgin streams."""
        return FaultPlan(
            seed=self.seed,
            drop_rate=self.drop_rate,
            spike_rate=self.spike_rate,
            spike_ps=self.spike_ps,
            outages=self.outages,
        )
