"""Fault injection and recovery: deterministic chaos for the simulator.

The paper's use cases assume disaggregated components on a 100 Gbps
network; this package supplies the unhappy path the happy-path models
omit.  A seeded :class:`FaultPlan` decides — deterministically, per
injection site — which transfers drop, which suffer latency spikes,
and which nodes crash; :class:`FaultyLink` / :class:`FaultyNodePort`
apply those decisions to the network layer; :func:`call_with_retries`
and :class:`RetryPolicy` give clients exponential-backoff recovery
under per-request deadlines.  Experiment ``e22`` measures the cost.
"""

from .injection import FaultyLink, FaultyNodePort, NodeDown, TransferDropped
from .plan import FaultPlan, NodeOutage
from .retry import (
    CallOutcome,
    DeadlineExceeded,
    RetryPolicy,
    analytic_retries,
    call_with_retries,
)

__all__ = [
    "CallOutcome",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultyLink",
    "FaultyNodePort",
    "NodeDown",
    "NodeOutage",
    "RetryPolicy",
    "TransferDropped",
    "analytic_retries",
    "call_with_retries",
]
