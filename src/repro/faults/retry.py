"""Retry with exponential backoff + jitter, under per-call deadlines.

:func:`call_with_retries` is the event-driven recovery loop the fault
experiments share: spawn an attempt process, bound it with
:func:`~repro.core.sim.with_timeout`, and on failure (injected drop,
node down, or timeout) back off and try again — until the policy's
attempt budget or the caller's deadline runs out.  It is written as a
generator so client processes use it transparently::

    outcome = yield from call_with_retries(sim, make_attempt, policy, rng)

Backoff draws come from a caller-supplied ``random.Random`` (usually a
:meth:`FaultPlan.stream <repro.faults.plan.FaultPlan.stream>` site
stream), keeping retry schedules as deterministic as the faults that
trigger them.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any

from ..core.sim import SimulationError, Simulator, WaitTimeout, with_timeout

__all__ = [
    "CallOutcome",
    "DeadlineExceeded",
    "RetryPolicy",
    "analytic_retries",
    "call_with_retries",
]

_PS_PER_S = 1_000_000_000_000


class DeadlineExceeded(SimulationError):
    """An analytic-layer request exhausted its retries or deadline."""

    def __init__(self, site: str, deadline_s: float | None = None) -> None:
        budget = "" if deadline_s is None else f" (deadline {deadline_s:.6f} s)"
        super().__init__(f"request at {site!r} gave up{budget}")
        self.site = site
        self.deadline_s = deadline_s


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How a client retries a failed request.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (1 = no retries).
    timeout_ps:
        Per-attempt budget; ``None`` waits indefinitely.
    backoff_base_ps:
        Sleep before the second attempt.
    backoff_multiplier:
        Growth factor per further retry.
    jitter:
        Fractional uniform jitter (0.2 = ±20%) applied to each backoff.
    """

    max_attempts: int = 3
    timeout_ps: int | None = 50_000_000  # 50 us
    backoff_base_ps: int = 1_000_000  # 1 us
    backoff_multiplier: float = 2.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_ps is not None and self.timeout_ps <= 0:
            raise ValueError("timeout_ps must be positive")
        if self.backoff_base_ps < 0:
            raise ValueError("backoff_base_ps must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_ps(self, attempt: int, rng: random.Random) -> int:
        """Backoff before attempt ``attempt + 1`` (attempts count from 1)."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        delay = self.backoff_base_ps * self.backoff_multiplier ** (attempt - 1)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0, int(delay))


@dataclass(frozen=True, slots=True)
class CallOutcome:
    """What one retried call cost.

    ``ok=False`` means the call gave up (attempts or deadline
    exhausted); ``deadline_missed`` distinguishes a blown deadline from
    exhausted attempts.
    """

    ok: bool
    value: Any
    attempts: int
    retries: int
    latency_ps: int
    deadline_missed: bool = False


def call_with_retries(
    sim: Simulator,
    make_attempt: Callable[[], Generator],
    policy: RetryPolicy,
    rng: random.Random,
    deadline_ps: int | None = None,
    site: str = "call",
    retry_on: tuple[type[BaseException], ...] = (SimulationError,),
) -> Generator[Any, Any, CallOutcome]:
    """Run ``make_attempt`` until it succeeds or the budget runs out.

    Each attempt is spawned as a fresh process and bounded by the
    policy's per-attempt timeout (clamped to the remaining deadline).
    A timed-out attempt is interrupted and defused so it cannot leak an
    unjoined failure; a failed attempt whose exception matches
    ``retry_on`` triggers backoff + retry, anything else propagates.
    """
    tracer = sim._tracer
    start = sim.now
    retries = 0
    attempt = 0
    gave_up_on_deadline = False
    while attempt < policy.max_attempts:
        attempt += 1
        budget = policy.timeout_ps
        if deadline_ps is not None:
            remaining = deadline_ps - (sim.now - start)
            if remaining <= 0:
                gave_up_on_deadline = True
                break
            budget = remaining if budget is None else min(budget, remaining)
        proc = sim.spawn(make_attempt(), name=f"{site}.attempt{attempt}")
        guarded = proc if budget is None else with_timeout(sim, proc, budget)
        try:
            value = yield guarded
        except WaitTimeout:
            if proc.is_alive:
                proc.interrupt("attempt timed out")
            proc.defuse()
        except retry_on:
            proc.defuse()
        else:
            return CallOutcome(
                ok=True,
                value=value,
                attempts=attempt,
                retries=retries,
                latency_ps=sim.now - start,
            )
        if attempt >= policy.max_attempts:
            break
        backoff = policy.backoff_ps(attempt, rng)
        if deadline_ps is not None and (sim.now - start) + backoff >= deadline_ps:
            gave_up_on_deadline = True
            break
        retries += 1
        if tracer is not None:
            tracer.retry_attempted(site, attempt)
        if backoff:
            yield sim.timeout(backoff)
    if tracer is not None:
        tracer.deadline_missed(site)
    return CallOutcome(
        ok=False,
        value=None,
        attempts=attempt,
        retries=retries,
        latency_ps=sim.now - start,
        deadline_missed=gave_up_on_deadline,
    )


def analytic_retries(
    site: str,
    base_s: float,
    faults: "Any",
    policy: RetryPolicy,
    deadline_s: float | None = None,
    tracer: "Any | None" = None,
) -> tuple[float, int, int]:
    """Retry accounting for the analytic (non-event-driven) layers.

    Models the same loop as :func:`call_with_retries` in closed form:
    each attempt consults the fault plan; a dropped attempt costs the
    per-attempt timeout (the client must *notice* the loss) plus
    backoff, a spiked attempt costs the spike, and a clean attempt
    lands after ``base_s``.  Returns ``(latency_s, attempts, retries)``
    or raises :class:`DeadlineExceeded` when the budget runs out.

    ``faults=None`` is the happy path: ``(base_s, 1, 0)``.
    """
    if faults is None:
        return base_s, 1, 0
    rng = faults.stream(site)
    wait_s = (
        base_s if policy.timeout_ps is None else policy.timeout_ps / _PS_PER_S
    )
    elapsed = 0.0
    attempt = 0
    retries = 0
    while attempt < policy.max_attempts:
        attempt += 1
        spike_s = faults.spike_delay_ps(site) / _PS_PER_S
        if spike_s and tracer is not None:
            tracer.fault_injected(
                "latency_spike", site, at_ps=int(elapsed * _PS_PER_S),
                delay_ps=int(spike_s * _PS_PER_S),
            )
        if not faults.drop(site):
            elapsed += base_s + spike_s
            if deadline_s is not None and elapsed > deadline_s:
                break
            return elapsed, attempt, retries
        if tracer is not None:
            tracer.fault_injected(
                "drop", site, at_ps=int(elapsed * _PS_PER_S)
            )
        elapsed += wait_s
        if attempt >= policy.max_attempts:
            break
        backoff_s = policy.backoff_ps(attempt, rng) / _PS_PER_S
        if deadline_s is not None and elapsed + backoff_s >= deadline_s:
            break
        retries += 1
        if tracer is not None:
            tracer.retry_attempted(
                site, attempt, at_ps=int(elapsed * _PS_PER_S)
            )
        elapsed += backoff_s
    if tracer is not None:
        tracer.deadline_missed(site, at_ps=int(elapsed * _PS_PER_S))
    raise DeadlineExceeded(site, deadline_s)
