"""Cost-based offload planning: predict, then pick offload or fetch.

A real engine in front of disaggregated memory decides *per query*
whether pushing the pipeline down pays (a full-table projection does
not; a selective aggregate does).  :class:`OffloadPlanner` makes that
call the way an optimizer would:

1. estimate predicate selectivity from a row sample;
2. predict the offload latency from the analytic dataflow model (with
   the estimated gains) and the fetch latency from transfer + roofline
   CPU costs;
3. execute the cheaper mode through the normal client.

Predictions are intentionally *cheap* (no full functional pass), so
they can be wrong near the crossover — the planner records both
predictions and the decision for inspection, and the tests check it
picks correctly away from the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational.engine import _apply
from ..relational.fpga_ops import plan_kernels
from ..relational.operators import (
    Aggregate,
    Filter,
    GroupByAggregate,
    Project,
    QueryPlan,
    Transform,
)
from .client import FarviewClient, QueryOutcome

__all__ = ["OffloadPlanner", "PlannedOutcome"]

_PS = 1_000_000_000_000


@dataclass(frozen=True)
class PlannedOutcome:
    """The executed outcome plus the planner's reasoning."""

    outcome: QueryOutcome
    chose: str                 # "offload" or "fetch"
    predicted_offload_s: float
    predicted_fetch_s: float
    estimated_selectivity: float


class OffloadPlanner:
    """Per-query offload-or-fetch decisions for a Farview client."""

    def __init__(self, client: FarviewClient, sample_rows: int = 1024,
                 seed: int = 0) -> None:
        if sample_rows < 1:
            raise ValueError("sample_rows must be >= 1")
        self.client = client
        self.sample_rows = sample_rows
        self._rng = np.random.default_rng(seed)

    # -- estimation ----------------------------------------------------------

    def estimate_selectivity(self, plan: QueryPlan, table_name: str) -> float:
        """Combined selectivity of the plan's filters, from a sample."""
        table = self.client.server.table(table_name)
        n = table.n_rows
        if n == 0:
            return 1.0
        take = min(self.sample_rows, n)
        picks = self._rng.choice(n, size=take, replace=False)
        sample = table.take(picks)
        survivors = sample
        for op in plan.operators:
            if isinstance(op, Filter):
                survivors = _apply(op, survivors)
        return max(survivors.n_rows / take, 1.0 / take / 10)

    def _result_row_bytes(self, plan: QueryPlan, table_name: str) -> int:
        table = self.client.server.table(table_name)
        schema = table.schema
        out_cols = plan.columns_needed(table.column_names)
        for op in plan.operators:
            if isinstance(op, Project):
                out_cols = op.columns
            elif isinstance(op, (Aggregate, GroupByAggregate)):
                return 8 * (
                    len(op.aggs) + (1 if isinstance(op, GroupByAggregate)
                                    else 0)
                )
        return max(1, sum(schema.type_of(c).nbytes for c in out_cols))

    def predict_offload_s(self, plan: QueryPlan, table_name: str,
                          selectivity: float) -> float:
        """Analytic offload latency with estimated gains."""
        server = self.client.server
        table = server.table(table_name)
        touched = plan.columns_needed(table.column_names)
        row_nbytes = max(
            1, sum(table.schema.type_of(c).nbytes for c in touched)
        )
        n = max(1, table.n_rows)
        kernels = plan_kernels(plan, row_nbytes, estimated_selectivity=1.0)
        # Source streams at min(memory, slowest kernel) rows/s.
        rates = [server.memory_bandwidth / row_nbytes]
        rates += [ok.spec.throughput_items_per_sec() for ok in kernels]
        survivors = selectivity if plan.has_aggregation is False else 0.0
        for op in plan.operators:
            if isinstance(op, (Aggregate, GroupByAggregate)):
                survivors = 0.0
        out_rows = n * (survivors if survivors else 0.0)
        out_bytes = (
            out_rows * self._result_row_bytes(plan, table_name)
            if survivors else self._result_row_bytes(plan, table_name)
        )
        wire = self.client.protocol.link.bandwidth_bytes_per_sec
        stream_s = max(n / min(rates), out_bytes / wire)
        request_s = self.client.protocol.message_ps(128) / _PS
        latency = self.client.protocol.message_ps(0) / _PS
        return request_s + server.memory_latency_s + stream_s + latency

    def predict_fetch_s(self, plan: QueryPlan, table_name: str,
                        selectivity: float) -> float:
        """Analytic fetch latency: transfer overlapped with CPU scan."""
        server = self.client.server
        table = server.table(table_name)
        touched = plan.columns_needed(table.column_names)
        scan_bytes = sum(table.column(c).nbytes for c in touched)
        wire = self.client.protocol.link.bandwidth_bytes_per_sec
        transfer_s = scan_bytes / min(wire, server.memory_bandwidth)
        ops = 0.0
        rows = float(table.n_rows)
        for op in plan.operators:
            if isinstance(op, Filter):
                ops += op.predicate.op_count() * rows
                rows *= selectivity
            elif isinstance(op, Transform):
                ops += op.ops_per_byte * scan_bytes / max(table.n_rows, 1) * rows
            elif isinstance(op, (Aggregate, GroupByAggregate)):
                ops += 5 * rows
        cpu = self.client.cpu
        compute_s = max(
            cpu.stream_time_s(scan_bytes),
            cpu.compute_time_s(int(ops), element_bytes=8),
        )
        request_s = self.client.protocol.message_ps(128) / _PS
        latency = self.client.protocol.message_ps(0) / _PS
        return request_s + max(transfer_s, compute_s) + latency

    # -- decision ---------------------------------------------------------------

    def query(self, plan: QueryPlan, table_name: str) -> PlannedOutcome:
        """Predict both modes, run the cheaper one."""
        selectivity = self.estimate_selectivity(plan, table_name)
        off_pred = self.predict_offload_s(plan, table_name, selectivity)
        fetch_pred = self.predict_fetch_s(plan, table_name, selectivity)
        if off_pred <= fetch_pred:
            outcome = self.client.query_offload(plan, table_name)
            chose = "offload"
        else:
            outcome = self.client.query_fetch(plan, table_name)
            chose = "fetch"
        return PlannedOutcome(
            outcome=outcome,
            chose=chose,
            predicted_offload_s=off_pred,
            predicted_fetch_s=fetch_pred,
            estimated_selectivity=selectivity,
        )
