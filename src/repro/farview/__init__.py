"""Use Case I — Farview: smart disaggregated memory with operator
offloading (Korolija et al., CIDR 2022; Figure 2 of the tutorial).

The node (:class:`~repro.farview.server.FarviewServer`) streams table
data out of its DRAM through an operator pipeline straight into the
network; the client (:class:`~repro.farview.client.FarviewClient`)
compares that against fetching raw data and processing on a local CPU.
"""

from .client import FarviewClient, QueryOutcome
from .concurrency import ConcurrencyResult, simulate_clients
from .offload import OffloadExecution, offload_query
from .planner import OffloadPlanner, PlannedOutcome
from .server import FarviewServer, ReadExecution

__all__ = [
    "ConcurrencyResult",
    "FarviewClient",
    "FarviewServer",
    "OffloadExecution",
    "OffloadPlanner",
    "PlannedOutcome",
    "QueryOutcome",
    "ReadExecution",
    "offload_query",
    "simulate_clients",
]
