"""The database-engine side of Farview: offload vs fetch-all clients.

:class:`FarviewClient` issues queries against a
:class:`~repro.farview.server.FarviewServer` in two modes:

* :meth:`query_offload` — ship the plan, receive only results
  (Farview's mode);
* :meth:`query_fetch` — READ the raw columns over the network and run
  the plan on the local CPU (the conventional disaggregated-memory
  baseline).  ``fetch_granularity`` controls how much the baseline must
  move: ``"columns"`` (a columnar store that can prune) or ``"table"``
  (block storage that treats the table as a unit — the "data treated
  as a unit" inefficiency the tutorial's introduction calls out).

Both modes return a :class:`QueryOutcome` with the same functional
result (tested) and a latency breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.cpu import CpuModel, xeon_server
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy, analytic_retries
from ..relational.engine import cpu_cost_s, execute
from ..relational.operators import QueryPlan
from ..relational.table import Table
from .server import FarviewServer

__all__ = ["FarviewClient", "QueryOutcome"]

_PS_PER_S = 1_000_000_000_000
_REQUEST_BYTES = 128  # serialized plan / read request


@dataclass(frozen=True)
class QueryOutcome:
    """One query's result and cost accounting."""

    result: Table
    latency_s: float
    bytes_over_network: int
    mode: str
    breakdown: dict[str, float]


class FarviewClient:
    """A query client talking to one Farview memory node."""

    def __init__(self, server: FarviewServer,
                 cpu: CpuModel | None = None) -> None:
        self.server = server
        self.cpu = cpu or xeon_server()
        self.protocol = server.protocol

    def _request_s(self) -> float:
        return self.protocol.message_ps(_REQUEST_BYTES) / _PS_PER_S

    def query_offload(
        self,
        plan: QueryPlan,
        table_name: str,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
    ) -> QueryOutcome:
        """Offloaded execution: plan goes to the node, results come back.

        Latency = request + node pipeline (which already streams results
        into the network as they are produced) + the final response
        message latency.

        With ``faults``, each attempt's request/response round trip
        consults the plan at site ``"farview.offload"``; dropped
        attempts are retried under ``retry`` (default
        :class:`RetryPolicy`) and a blown ``deadline_s`` raises
        :class:`~repro.faults.retry.DeadlineExceeded`.
        """
        execution = self.server.execute(plan, table_name)
        request_s = self._request_s()
        response_latency_s = self.protocol.message_ps(0) / _PS_PER_S
        happy_s = request_s + execution.processing_s + response_latency_s
        latency, attempts, retries = analytic_retries(
            "farview.offload", happy_s, faults,
            retry or RetryPolicy(), deadline_s,
        )
        wire_bytes = attempts * _REQUEST_BYTES + execution.result_bytes
        return QueryOutcome(
            result=execution.result,
            latency_s=latency,
            bytes_over_network=wire_bytes,
            mode="offload",
            breakdown={
                "request_s": request_s,
                "node_processing_s": execution.processing_s,
                "response_latency_s": response_latency_s,
                "scan_bytes": float(execution.scan_bytes),
                "attempts": float(attempts),
                "retries": float(retries),
            },
        )

    def query_fetch(
        self,
        plan: QueryPlan,
        table_name: str,
        fetch_granularity: str = "columns",
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
    ) -> QueryOutcome:
        """Conventional execution: fetch raw data, process locally.

        The transfer and the local CPU work are overlapped (the client
        processes arriving blocks), so latency charges their max — a
        deliberately generous baseline.
        """
        if fetch_granularity not in ("columns", "table"):
            raise ValueError(
                f"fetch_granularity must be 'columns' or 'table', "
                f"got {fetch_granularity!r}"
            )
        table = self.server.table(table_name)
        if fetch_granularity == "columns":
            columns = plan.columns_needed(table.column_names)
        else:
            columns = table.column_names
        read = self.server.read(table_name, columns)
        transfer_s = read.processing_s + self.protocol.message_ps(0) / _PS_PER_S
        fetched = table.project(columns)
        compute_s = cpu_cost_s(plan, fetched, self.cpu)
        result = execute(plan, fetched)
        request_s = self._request_s()
        happy_s = request_s + max(transfer_s, compute_s)
        latency, attempts, retries = analytic_retries(
            "farview.fetch", happy_s, faults,
            retry or RetryPolicy(), deadline_s,
        )
        return QueryOutcome(
            result=result,
            latency_s=latency,
            bytes_over_network=attempts * (_REQUEST_BYTES + read.scan_bytes),
            mode=f"fetch-{fetch_granularity}",
            breakdown={
                "request_s": request_s,
                "transfer_s": transfer_s,
                "cpu_s": compute_s,
                "fetched_bytes": float(read.scan_bytes),
                "attempts": float(attempts),
                "retries": float(retries),
            },
        )
