"""Offload pipeline construction and timing for the Farview memory node.

A Farview query pushes a linear operator pipeline into the smart-memory
node; the data streams **memory -> operators -> network** without ever
visiting a CPU.  This module builds the corresponding
:class:`~repro.core.dataflow.DataflowGraph`:

* a :class:`~repro.core.dataflow.RateStage` for the striped memory scan
  (rows/s = aggregate DRAM bandwidth / row bytes);
* one kernel stage per operator (specs from
  :mod:`repro.relational.fpga_ops`); the edge leaving an operator
  carries its *measured* selectivity as the gain, so the analytic
  throughput matches the functional execution;
* a rate stage for the network egress (rows/s at the result row width).

:func:`offload_query` runs the functional pipeline (numpy, exact result)
to measure per-operator row counts, then solves the graph for timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dataflow import DataflowGraph, RateStage, ThroughputReport
from ..network.protocol import ProtocolModel
from ..relational.engine import _apply
from ..relational.fpga_ops import plan_kernels
from ..relational.operators import QueryPlan
from ..relational.table import Table

__all__ = ["OffloadExecution", "offload_query"]

_PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True)
class OffloadExecution:
    """Result + timing of one offloaded query on the memory node."""

    result: Table
    processing_s: float       # memory->operators->egress streaming time
    report: ThroughputReport  # the solved dataflow region
    scan_bytes: int           # bytes read from disaggregated DRAM
    result_bytes: int         # bytes shipped back over the network


def offload_query(
    plan: QueryPlan,
    table: Table,
    memory_bandwidth_bytes_per_sec: float,
    memory_latency_s: float,
    protocol: ProtocolModel,
) -> OffloadExecution:
    """Execute ``plan`` on the smart-memory node and time it.

    The scan is column-pruned: only the columns the plan touches leave
    DRAM (Farview stores columnar tables and materialises rows in the
    datapath).
    """
    if memory_bandwidth_bytes_per_sec <= 0:
        raise ValueError("memory bandwidth must be positive")
    if memory_latency_s < 0:
        raise ValueError("memory latency must be >= 0")
    touched = plan.columns_needed(table.column_names)
    pruned = table.project(touched)
    n_rows = pruned.n_rows
    row_nbytes = max(1, pruned.schema.row_nbytes)
    scan_bytes = pruned.nbytes

    # Functional pass: exact result + measured per-operator gains.
    gains: list[float] = []
    current = pruned
    for op in plan.operators:
        rows_in = max(1, current.n_rows)
        current = _apply(op, current)
        gains.append(current.n_rows / rows_in)
    result = current
    result_bytes = result.nbytes
    out_row_nbytes = max(1, result.schema.row_nbytes)

    # Analytic dataflow: scan -> kernels -> egress, with measured gains
    # on the edge *leaving* each operator.
    graph = DataflowGraph("farview-offload")
    scan = RateStage(
        "dram-scan",
        rate_items_per_sec=memory_bandwidth_bytes_per_sec / row_nbytes,
        latency_seconds=memory_latency_s,
    )
    graph.add(scan, source=True)
    egress = RateStage(
        "net-egress",
        rate_items_per_sec=protocol.link.bandwidth_bytes_per_sec / out_row_nbytes,
        latency_seconds=protocol.message_ps(0) / _PS_PER_S,
    )
    kernels = plan_kernels(plan, row_nbytes)
    prev_name, prev_gain = scan.name, 1.0
    for ok, gain in zip(kernels, gains):
        graph.add(ok.spec)
        graph.connect(prev_name, ok.spec.name, gain=prev_gain)
        prev_name, prev_gain = ok.spec.name, gain
    graph.add(egress)
    graph.connect(prev_name, egress.name, gain=prev_gain)

    report = graph.solve()
    processing_s = report.time_for_items(max(n_rows, 1))
    return OffloadExecution(
        result=result,
        processing_s=processing_s,
        report=report,
        scan_bytes=scan_bytes,
        result_bytes=result_bytes,
    )
