"""Multi-tenant Farview: concurrent clients in the event simulator.

The analytic client model (:mod:`repro.farview.client`) prices one
query at a time.  Under concurrency the node's *shared resources* —
its DRAM scan bandwidth and its network egress — become the contended
quantities, and the difference between offload and fetch-all changes
character: a fetch-all client occupies the wire for the whole table's
bytes, so a handful of them saturate 100 GbE, while offloaded queries
ship only results and keep scaling until the DRAM scan saturates.

:func:`simulate_clients` runs that contention for real in the
discrete-event engine: every query acquires the shared memory port for
its scan and the shared egress port for its response bytes; ports
serialise (FIFO), clients pipeline their own queries back-to-back.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sim import Simulator, all_of
from ..memory.model import AccessPattern, MemoryModel, MemoryPort
from ..relational.operators import QueryPlan
from .server import FarviewServer

__all__ = ["ConcurrencyResult", "simulate_clients"]

_PS = 1_000_000_000_000


@dataclass(frozen=True)
class ConcurrencyResult:
    """Aggregate outcome of a multi-client run."""

    mode: str
    n_clients: int
    queries_total: int
    makespan_s: float
    aggregate_qps: float
    mean_latency_s: float
    memory_busy_fraction: float
    network_busy_fraction: float


def _egress_model(server: FarviewServer) -> MemoryModel:
    """The node's network egress as a bandwidth/latency resource."""
    link = server.protocol.link
    return MemoryModel(
        name="net-egress",
        capacity_bytes=1 << 62,
        latency_ps=server.protocol.message_ps(0),
        bandwidth_bytes_per_sec=link.bandwidth_bytes_per_sec,
        min_burst_bytes=link.mtu_bytes,
    )


def _memory_model(server: FarviewServer) -> MemoryModel:
    """The node's aggregate DRAM scan bandwidth as one port."""
    return MemoryModel(
        name="dram-agg",
        capacity_bytes=server.memory_capacity,
        latency_ps=int(server.memory_latency_s * _PS),
        bandwidth_bytes_per_sec=server.memory_bandwidth,
        min_burst_bytes=64,
    )


def simulate_clients(
    server: FarviewServer,
    plan: QueryPlan,
    table_name: str,
    n_clients: int,
    queries_per_client: int = 4,
    mode: str = "offload",
    tracer=None,
) -> ConcurrencyResult:
    """Run ``n_clients`` issuing queries back-to-back; returns aggregates.

    ``mode`` is ``"offload"`` (scan stays node-side, results cross the
    wire) or ``"fetch"`` (the touched columns cross the wire, the plan
    runs client-side — client CPU time is charged per query).
    ``tracer`` attaches an observability tracer to the internal
    simulator, putting the contended DRAM and egress ports on trace
    tracks for the profiler.
    """
    if n_clients < 1:
        raise ValueError("need at least one client")
    if queries_per_client < 1:
        raise ValueError("need at least one query per client")
    if mode not in ("offload", "fetch"):
        raise ValueError(f"mode must be 'offload' or 'fetch', got {mode!r}")
    table = server.table(table_name)
    touched = plan.columns_needed(table.column_names)
    scan_bytes = sum(table.column(c).nbytes for c in touched)
    if mode == "offload":
        execution = server.execute(plan, table_name)
        wire_bytes = execution.result_bytes
        client_cpu_ps = 0
    else:
        from ..baselines.cpu import xeon_server
        from ..relational.engine import cpu_cost_s

        wire_bytes = scan_bytes
        client_cpu_ps = int(
            cpu_cost_s(plan, table.project(touched), xeon_server()) * _PS
        )

    sim = Simulator(tracer=tracer)
    memory = MemoryPort(sim, _memory_model(server))
    egress = MemoryPort(sim, _egress_model(server))
    request_ps = server.protocol.message_ps(128)
    latencies: list[int] = []

    def client(sim, tag):
        for _ in range(queries_per_client):
            start = sim.now
            yield sim.timeout(request_ps)
            scan_done = memory.request(scan_bytes, AccessPattern.SEQUENTIAL)
            # The node streams into the wire as it scans; both resources
            # are held concurrently and the query waits for the slower.
            wire_done = egress.request(wire_bytes, AccessPattern.SEQUENTIAL)
            yield all_of(sim, [scan_done, wire_done])
            if client_cpu_ps:
                yield sim.timeout(client_cpu_ps)
            latencies.append(sim.now - start)

    for c in range(n_clients):
        sim.spawn(client(sim, c), name=f"client-{c}")
    sim.run()
    makespan_ps = max(1, sim.now)
    total = n_clients * queries_per_client
    return ConcurrencyResult(
        mode=mode,
        n_clients=n_clients,
        queries_total=total,
        makespan_s=makespan_ps / _PS,
        aggregate_qps=total * _PS / makespan_ps,
        mean_latency_s=sum(latencies) / len(latencies) / _PS,
        memory_busy_fraction=min(
            1.0,
            memory.model.stream_time_ps(memory.bytes_moved) / makespan_ps,
        ),
        network_busy_fraction=min(
            1.0,
            egress.model.stream_time_ps(egress.bytes_moved) / makespan_ps,
        ),
    )
