"""The Farview smart disaggregated-memory node.

A :class:`FarviewServer` is an FPGA sitting between network and DRAM
(Figure 2 of the tutorial): it hosts columnar tables in its attached
memory and serves two request kinds:

* **READ** — stream a table's raw columns back to the client (what a
  conventional disaggregated memory would do);
* **EXECUTE** — run an offloaded operator pipeline on the data as it
  leaves DRAM and return only the result.

The server also enforces the resource budget: offload pipelines are
synthesized against the node's device, and a pipeline that does not fit
is rejected — the same constraint a real Farview deployment faces when
composing operator datapaths.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.device import ALVEO_U55C, Device, ResourceVector
from ..memory.technologies import ddr4_channel
from ..network.protocol import ProtocolModel, fpga_rdma
from ..relational.fpga_ops import plan_kernels
from ..relational.operators import QueryPlan
from ..relational.table import Table
from .offload import OffloadExecution, offload_query

__all__ = ["FarviewServer", "ReadExecution"]


@dataclass(frozen=True)
class ReadExecution:
    """Timing of a raw READ of table columns."""

    scan_bytes: int
    processing_s: float  # DRAM->network streaming time on the node


class FarviewServer:
    """A smart-memory node hosting tables and executing offloads."""

    def __init__(
        self,
        protocol: ProtocolModel | None = None,
        device: Device = ALVEO_U55C,
        n_memory_channels: int = 4,
        memory_capacity_bytes: int | None = None,
    ) -> None:
        if n_memory_channels < 1:
            raise ValueError("need at least one memory channel")
        self.protocol = protocol or fpga_rdma()
        self.device = device
        channel = ddr4_channel()
        self.n_memory_channels = n_memory_channels
        self.memory_bandwidth = n_memory_channels * channel.bandwidth_bytes_per_sec
        self.memory_latency_s = channel.latency_ps / 1e12
        self.memory_capacity = (
            memory_capacity_bytes
            if memory_capacity_bytes is not None
            else n_memory_channels * channel.capacity_bytes
        )
        self._tables: dict[str, Table] = {}
        self._used_bytes = 0

    # -- table management ----------------------------------------------------

    def store(self, name: str, table: Table) -> None:
        """Place a table in disaggregated memory."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already stored")
        if self._used_bytes + table.nbytes > self.memory_capacity:
            raise MemoryError(
                f"table {name!r} ({table.nbytes} B) exceeds node capacity"
            )
        self._tables[name] = table
        self._used_bytes += table.nbytes

    def drop(self, name: str) -> None:
        """Remove a table."""
        table = self._tables.pop(name, None)
        if table is None:
            raise KeyError(f"no table {name!r}")
        self._used_bytes -= table.nbytes

    def table(self, name: str) -> Table:
        """Look up a stored table."""
        if name not in self._tables:
            raise KeyError(f"no table {name!r}; have {sorted(self._tables)}")
        return self._tables[name]

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    # -- request handlers ------------------------------------------------------

    def pipeline_resources(self, plan: QueryPlan, table_name: str) -> ResourceVector:
        """Fabric resources the offload pipeline for ``plan`` consumes."""
        table = self.table(table_name)
        row_nbytes = max(1, table.schema.row_nbytes)
        total = ResourceVector()
        for ok in plan_kernels(plan, row_nbytes):
            total = total + ok.spec.resources
        return total

    def execute(self, plan: QueryPlan, table_name: str) -> OffloadExecution:
        """EXECUTE: run an offloaded pipeline over a stored table."""
        table = self.table(table_name)
        demand = self.pipeline_resources(plan, table_name)
        if not self.device.fits(demand):
            raise ResourceWarning(
                f"offload pipeline does not fit {self.device.name}: "
                f"{demand.as_dict()}"
            )
        return offload_query(
            plan,
            table,
            memory_bandwidth_bytes_per_sec=self.memory_bandwidth,
            memory_latency_s=self.memory_latency_s,
            protocol=self.protocol,
        )

    def read(self, table_name: str,
             columns: tuple[str, ...] | None = None) -> ReadExecution:
        """READ: stream raw columns to the network (no processing).

        The node-side time is the slower of the DRAM scan and the
        network egress, plus the memory latency.
        """
        table = self.table(table_name)
        data = table.project(columns) if columns else table
        scan_s = data.nbytes / self.memory_bandwidth
        wire_s = data.nbytes / self.protocol.link.bandwidth_bytes_per_sec
        return ReadExecution(
            scan_bytes=data.nbytes,
            processing_s=self.memory_latency_s + max(scan_s, wire_s),
        )
