"""fpgadp — Data Processing with FPGAs on Modern Architectures.

A simulation-based reproduction of the SIGMOD-Companion 2023 tutorial
by Jiang, Korolija and Alonso (DOI 10.1145/3555041.3589410): a
cycle-approximate FPGA execution model (:mod:`repro.core`), memory and
network substrates (:mod:`repro.memory`, :mod:`repro.network`), a
columnar relational engine (:mod:`repro.relational`), and the
tutorial's four use-case systems:

* :mod:`repro.farview` — smart disaggregated memory with operator
  offloading (Use Case I);
* :mod:`repro.fanns` — FPGA-accelerated approximate nearest neighbor
  search with a hardware generator (Use Case II);
* :mod:`repro.microrec` — recommendation inference with Cartesian
  products and HBM banking (Use Case III);
* :mod:`repro.accl` — MPI-like collectives for FPGA clusters
  (Use Case IV).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from . import accl, baselines, bench, core, fanns, farview, kvstore, lsm
from . import memory, microrec, network, obs, operators, relational, workloads

__version__ = "1.0.0"

__all__ = [
    "accl",
    "baselines",
    "bench",
    "core",
    "fanns",
    "farview",
    "kvstore",
    "lsm",
    "memory",
    "microrec",
    "network",
    "obs",
    "operators",
    "relational",
    "workloads",
    "__version__",
]
