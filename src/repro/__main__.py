"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``info`` — package version and system inventory;
* ``experiments`` — the experiment index (id, title, bench file);
* ``list [--json]`` — the registry dump: per experiment the grid
  size, seeds, and how many cells are already in ``results/cache/``;
* ``run <id>... | all [--parallel N]`` — regenerate experiments
  through the sweep runner (:mod:`repro.exec`): every cell is cached,
  re-runs are free, and ``--parallel`` fans the grid over worker
  processes.
* ``serve [--backend B] [--load X]`` — drive one accelerator as an
  online service (:mod:`repro.serve`): open-loop traffic, dynamic
  batching, SLO-aware admission; prints latency percentiles, goodput,
  and shedding for the run.

``run --trace OUT.json`` records the run through the observability
layer instead: it delegates to pytest over ``benchmarks/`` (which must
be reachable from the current directory — i.e. run from the repository
root), where ``benchmarks/conftest.py`` installs a shared tracer via
the ``REPRO_TRACE`` environment variable and exports the collected
trace as Chrome ``trace_event`` JSON — open it at
https://ui.perfetto.dev or in ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

from . import __version__

_INVENTORY = [
    ("repro.core", "HLS execution model, event engine, devices"),
    ("repro.memory", "BRAM/URAM, HBM2 banking, DDR4, host-over-PCIe"),
    ("repro.network", "100 GbE links, RDMA/TCP stacks, fabrics"),
    ("repro.obs", "metrics, event tracing, per-kernel profiling"),
    ("repro.relational", "columnar engine: CPU + FPGA stream operators"),
    ("repro.farview", "Use Case I: smart disaggregated memory"),
    ("repro.fanns", "Use Case II: vector-search accelerator + generator"),
    ("repro.microrec", "Use Case III: recommendation inference + FleetRec"),
    ("repro.accl", "Use Case IV: collectives for FPGA clusters"),
    ("repro.operators", "HLL / Count-Min / BiS-KM / codecs"),
    ("repro.lsm", "LSM store + compaction offload (X-Engine)"),
    ("repro.kvstore", "smart-NIC key-value store (KV-Direct)"),
    ("repro.faults", "fault injection, timeouts, retry/recovery"),
    ("repro.exec", "experiment registry, sweep runner, result cache"),
    ("repro.serve", "online serving: traffic, batching, SLO admission"),
    ("repro.workloads", "synthetic workload generators"),
]


def _cmd_info() -> int:
    print(f"fpgadp {__version__} — Data Processing with FPGAs on Modern "
          "Architectures (SIGMOD-Companion 2023), simulation reproduction")
    print()
    for module, description in _INVENTORY:
        print(f"  {module:<18} {description}")
    return 0


def _cmd_experiments() -> int:
    from .exec import build_spec, experiment_ids

    for exp_id in experiment_ids():
        spec = build_spec(exp_id)
        print(f"  {exp_id:<4} {spec.title:<48} benchmarks/{spec.bench}")
    return 0


def _registry_rows() -> list[dict]:
    """One dict per registered experiment, with cache occupancy."""
    from .exec import (
        ResultCache,
        build_spec,
        cell_key,
        code_version,
        experiment_ids,
    )

    cache = ResultCache()
    version = code_version()
    rows = []
    for exp_id in experiment_ids():
        spec = build_spec(exp_id)
        cached = sum(
            cache.has(cell_key(exp_id, config, seed, version,
                               context=spec.context_key))
            for seed in spec.seeds
            for config in spec.grid
        )
        rows.append({
            "experiment": exp_id,
            "title": spec.title,
            "bench": f"benchmarks/{spec.bench}",
            "grid": len(spec.grid),
            "seeds": list(spec.seeds),
            "cells": spec.cells,
            "cached": cached,
            "deterministic": spec.deterministic,
        })
    return rows


def _cmd_list(as_json: bool) -> int:
    rows = _registry_rows()
    if as_json:
        print(json.dumps(rows, indent=2))
        return 0
    print(f"  {'id':<4} {'cells':>5} {'cached':>6}  {'seeds':<12} title")
    for row in rows:
        seeds = ",".join(str(s) for s in row["seeds"])
        print(f"  {row['experiment']:<4} {row['cells']:>5} "
              f"{row['cached']:>6}  {seeds:<12} {row['title']}")
    return 0


def _resolve_ids(ids: list[str]) -> list[str] | None:
    """Lower-cased experiment ids with ``all`` expanded, or ``None``."""
    from .exec import experiment_ids

    known = experiment_ids()
    keys: list[str] = []
    for exp_id in ids:
        key = exp_id.lower()
        if key == "all":
            keys.extend(k for k in known if k not in keys)
            continue
        if key not in known:
            print(f"error: unknown experiment {exp_id!r} "
                  f"(see 'python -m repro list')", file=sys.stderr)
            return None
        if key not in keys:
            keys.append(key)
    return keys


def _cmd_run_sweep(
    ids: list[str],
    parallel: int,
    no_cache: bool,
    faults: float | None,
) -> int:
    """Run experiments through the :mod:`repro.exec` sweep runner."""
    from .exec import ResultCache, SweepRunner, build_spec

    if faults is not None:
        os.environ["REPRO_FAULT_RATE"] = repr(faults)
    cache = None if no_cache else ResultCache()
    for exp_id in ids:
        runner = SweepRunner(build_spec(exp_id), parallel=parallel,
                             cache=cache)
        result = runner.run()
        for table in result.tables:
            table.show()
        print(f"[{exp_id}] {result.cells} cells: {result.hits} cached, "
              f"{result.computed} computed ({parallel} worker"
              f"{'s' if parallel != 1 else ''})")
    return 0


def _cmd_run_pytest(ids: list[str], trace: str, faults: float | None) -> int:
    """Delegate a traced run to pytest over ``benchmarks/``."""
    from .exec import build_spec

    bench_dir = Path("benchmarks")
    if not bench_dir.is_dir():
        print("error: benchmarks/ not found — run from the repository root",
              file=sys.stderr)
        return 2
    targets = [str(bench_dir / build_spec(exp_id).bench) for exp_id in ids]
    command = [
        sys.executable, "-m", "pytest", *targets,
        "--benchmark-only", "-q", "-s",
    ]
    env = os.environ.copy()
    # benchmarks/conftest.py installs the default tracer when it sees
    # this variable and exports the Chrome trace on teardown.
    env["REPRO_TRACE"] = str(Path(trace).resolve())
    if faults is not None:
        # Fault-aware benches (e22) sweep {0, faults} instead of their
        # default rate ladder.
        env["REPRO_FAULT_RATE"] = repr(faults)
    status = subprocess.call(command, env=env)
    if status == 0:
        print(f"trace written to {trace} "
              "(open in chrome://tracing or https://ui.perfetto.dev)")
    return status


def _cmd_run(
    ids: list[str],
    trace: str | None = None,
    faults: float | None = None,
    parallel: int = 1,
    no_cache: bool = False,
) -> int:
    if faults is not None and not 0.0 <= faults <= 1.0:
        print(f"error: --faults must be in [0, 1], got {faults}",
              file=sys.stderr)
        return 2
    if parallel < 1:
        print(f"error: --parallel must be >= 1, got {parallel}",
              file=sys.stderr)
        return 2
    keys = _resolve_ids(ids)
    if keys is None:
        return 2
    if trace is not None:
        # The sweep path can't record traces (workers are separate
        # processes); traced runs go through the serial pytest path.
        return _cmd_run_pytest(keys, trace, faults)
    return _cmd_run_sweep(keys, parallel, no_cache, faults)


def _cmd_serve(args) -> int:
    """Run one online-serving session and print its report."""
    from .exec.experiments.serving import build_backend
    from .serve import (
        AdmissionPolicy,
        AutoscalerPolicy,
        BatchPolicy,
        OpenLoopConfig,
        ServiceConfig,
        capacity_qps,
        simulate_service,
    )

    if args.faults is not None and not 0.0 <= args.faults <= 1.0:
        print(f"error: --faults must be in [0, 1], got {args.faults}",
              file=sys.stderr)
        return 2
    try:
        backend = build_backend(args.backend)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    batch_ps = backend.batch_service_ps(backend.max_batch)
    capacity = capacity_qps(backend, args.replicas)
    offered = args.qps if args.qps is not None else capacity * args.load
    autoscaler = None
    if args.autoscale:
        autoscaler = AutoscalerPolicy(
            min_replicas=1,
            max_replicas=max(4, 2 * args.replicas),
            interval_ps=2 * batch_ps,
        )
    service = ServiceConfig(
        batch=BatchPolicy(max_batch=backend.max_batch,
                          max_wait_ps=max(1, batch_ps // 2)),
        admission=AdmissionPolicy(max_queue=4 * backend.max_batch),
        replicas=args.replicas,
        autoscaler=autoscaler,
    )
    traffic = OpenLoopConfig(
        offered_qps=offered,
        n_requests=args.requests,
        slo_ps=12 * batch_ps,
        burst_factor=args.burst,
    )
    plan = None
    if args.faults:
        from .faults import FaultPlan

        plan = FaultPlan(seed=args.seed, drop_rate=args.faults,
                         spike_rate=args.faults,
                         spike_ps=(batch_ps, 4 * batch_ps))
    report = simulate_service(backend, traffic, service, seed=args.seed,
                              plan=plan)
    row = report.row()
    row["capacity_qps"] = capacity
    row["offered_qps"] = offered
    if args.as_json:
        print(json.dumps(row, indent=2))
        return 0
    print(f"serve: {backend.name} x{args.replicas} replicas "
          f"(max_batch {backend.max_batch})")
    print(f"  offered     {offered:>12,.0f} QPS "
          f"({offered / capacity:.2f}x capacity {capacity:,.0f})")
    print(f"  outcome     {report.completed} completed, "
          f"{report.shed} shed, {report.failed} failed "
          f"of {report.offered} offered")
    print(f"  latency     p50 {report.p50_us:,.1f} us | "
          f"p95 {report.p95_us:,.1f} us | p99 {report.p99_us:,.1f} us")
    print(f"  goodput     {report.goodput_qps:,.0f} QPS in SLO "
          f"({report.in_slo}/{report.offered} requests)")
    print(f"  batching    {report.batches} batches, "
          f"mean size {report.mean_batch:.2f}")
    if report.shed_by_reason:
        reasons = ", ".join(f"{k}={v}"
                            for k, v in sorted(report.shed_by_reason.items()))
        print(f"  shedding    {reasons}")
    if args.autoscale:
        peak = max((r for _, _, r in report.autoscale_decisions),
                   default=args.replicas)
        print(f"  autoscale   final {report.replicas_final} replicas "
              f"(peak {peak}, {len(report.autoscale_decisions)} samples)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="fpgadp reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="version and system inventory")
    sub.add_parser("experiments", help="list the experiment index")
    lst = sub.add_parser(
        "list", help="registry dump: grid sizes, seeds, cache occupancy"
    )
    lst.add_argument("--json", action="store_true", dest="as_json",
                     help="emit the registry as JSON")
    run = sub.add_parser("run", help="regenerate experiments by id")
    run.add_argument(
        "ids", nargs="+",
        help="experiment ids, e.g. e3 e7 — or 'all' for every one",
    )
    run.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="record the run through repro.obs and export a Chrome "
             "trace_event JSON file (serial pytest path)",
    )
    run.add_argument(
        "--faults", metavar="RATE", type=float, default=None,
        help="inject faults at this rate (0..1) in fault-aware "
             "experiments (e22), e.g. --faults 0.01",
    )
    run.add_argument(
        "--parallel", metavar="N", type=int, default=1,
        help="fan the experiment's config grid over N worker processes",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="recompute every sweep cell instead of reading "
             "results/cache/",
    )
    serve = sub.add_parser(
        "serve",
        help="drive one backend as an online service under load",
    )
    serve.add_argument(
        "--backend", default="synthetic",
        choices=("synthetic", "fanns", "microrec", "farview"),
        help="which accelerator to serve (default: synthetic)",
    )
    serve.add_argument(
        "--load", metavar="X", type=float, default=1.0,
        help="offered load as a multiple of capacity (default: 1.0)",
    )
    serve.add_argument(
        "--qps", metavar="F", type=float, default=None,
        help="absolute offered rate; overrides --load",
    )
    serve.add_argument(
        "--requests", metavar="N", type=int, default=2_000,
        help="requests in the open-loop schedule (default: 2000)",
    )
    serve.add_argument(
        "--replicas", metavar="N", type=int, default=2,
        help="accelerator replicas behind the batcher (default: 2)",
    )
    serve.add_argument(
        "--burst", metavar="F", type=float, default=1.0,
        help="burstiness factor; 1.0 = pure Poisson (default: 1.0)",
    )
    serve.add_argument(
        "--seed", metavar="N", type=int, default=0,
        help="traffic/fault schedule seed (default: 0)",
    )
    serve.add_argument(
        "--faults", metavar="RATE", type=float, default=None,
        help="inject batch drops and latency spikes at this rate (0..1)",
    )
    serve.add_argument(
        "--autoscale", action="store_true",
        help="enable the queue-pressure replica autoscaler",
    )
    serve.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the report as JSON")
    args = parser.parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "list":
        return _cmd_list(args.as_json)
    if args.command == "run":
        return _cmd_run(args.ids, trace=args.trace, faults=args.faults,
                        parallel=args.parallel, no_cache=args.no_cache)
    if args.command == "serve":
        return _cmd_serve(args)
    parser.print_help()
    return 0


if __name__ == "__main__":
    try:
        status = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: not an error.  Point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        status = 0
    raise SystemExit(status)
