"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``info`` — package version and system inventory;
* ``experiments`` — the experiment index (id, source, bench file);
* ``run <id> [...]`` — regenerate experiments by id (delegates to
  pytest over ``benchmarks/``, which must be reachable from the
  current directory — i.e. run from the repository root).

``run --trace OUT.json`` turns on the observability layer for the
delegated run: every simulator and banked memory the experiments build
records through a shared tracer (installed by ``benchmarks/conftest.py``
via the ``REPRO_TRACE`` environment variable), and the collected trace
is exported as Chrome ``trace_event`` JSON — open it at
https://ui.perfetto.dev or in ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

from . import __version__

_EXPERIMENTS: dict[str, tuple[str, str]] = {
    "e1": ("HLS pipelining study (§2 Programming)",
           "bench_e1_hls_pipeline.py"),
    "e2": ("line-rate stream processing", "bench_e2_line_rate.py"),
    "e3": ("Farview offload vs fetch (Fig 2)", "bench_e3_farview_offload.py"),
    "e4": ("Farview multi-operator pipelines",
           "bench_e4_farview_pipelines.py"),
    "e5": ("FANNS QPS vs recall (Fig 3)", "bench_e5_fanns_qps_recall.py"),
    "e6": ("FANNS hardware generator", "bench_e6_fanns_generator.py"),
    "e7": ("MicroRec latency (Figs 4-5)", "bench_e7_microrec_latency.py"),
    "e8": ("MicroRec Cartesian ablation", "bench_e8_microrec_cartesian.py"),
    "e9": ("MicroRec HBM banking / SRAM placement",
           "bench_e9_microrec_hbm.py"),
    "e10": ("ACCL collectives vs host-staged (Fig 1)",
            "bench_e10_accl_collectives.py"),
    "e11": ("ACCL scaling and ring/tree crossover",
            "bench_e11_accl_scaling.py"),
    "e12": ("resource utilization across devices", "bench_e12_resources.py"),
    "e13": ("sketch operators at line rate", "bench_e13_sketches.py"),
    "e14": ("any-precision k-means (BiS-KM)",
            "bench_e14_anyprec_kmeans.py"),
    "e15": ("compression/encryption offload (HANA)",
            "bench_e15_compression.py"),
    "e16": ("scale-out: distributed FANNS + FleetRec",
            "bench_e16_scaleout.py"),
    "e17": ("smart-NIC KV store (KV-Direct)", "bench_e17_kvdirect.py"),
    "e18": ("LSM compaction offload (X-Engine)",
            "bench_e18_lsm_offload.py"),
    "e19": ("multi-tenant smart memory (event-driven)",
            "bench_e19_multitenant.py"),
    "e20": ("hash joins: the CIDR'20 question", "bench_e20_hash_join.py"),
    "e21": ("business-rule matching (Amadeus)",
            "bench_e21_business_rules.py"),
    "e22": ("fault tolerance: tail latency under injected faults",
            "bench_e22_fault_tolerance.py"),
    "e23": ("simulator performance: engine, fast-forward, sweeps",
            "bench_e23_sim_perf.py"),
}

_INVENTORY = [
    ("repro.core", "HLS execution model, event engine, devices"),
    ("repro.memory", "BRAM/URAM, HBM2 banking, DDR4, host-over-PCIe"),
    ("repro.network", "100 GbE links, RDMA/TCP stacks, fabrics"),
    ("repro.obs", "metrics, event tracing, per-kernel profiling"),
    ("repro.relational", "columnar engine: CPU + FPGA stream operators"),
    ("repro.farview", "Use Case I: smart disaggregated memory"),
    ("repro.fanns", "Use Case II: vector-search accelerator + generator"),
    ("repro.microrec", "Use Case III: recommendation inference + FleetRec"),
    ("repro.accl", "Use Case IV: collectives for FPGA clusters"),
    ("repro.operators", "HLL / Count-Min / BiS-KM / codecs"),
    ("repro.lsm", "LSM store + compaction offload (X-Engine)"),
    ("repro.kvstore", "smart-NIC key-value store (KV-Direct)"),
    ("repro.faults", "fault injection, timeouts, retry/recovery"),
    ("repro.exec", "parallel sweep runner, result cache"),
    ("repro.workloads", "synthetic workload generators"),
]


def _cmd_info() -> int:
    print(f"fpgadp {__version__} — Data Processing with FPGAs on Modern "
          "Architectures (SIGMOD-Companion 2023), simulation reproduction")
    print()
    for module, description in _INVENTORY:
        print(f"  {module:<18} {description}")
    return 0


def _cmd_experiments() -> int:
    for exp_id, (title, bench) in _EXPERIMENTS.items():
        print(f"  {exp_id:<4} {title:<48} benchmarks/{bench}")
    return 0


def _cmd_run_sweep(
    ids: list[str],
    parallel: int,
    no_cache: bool,
    faults: float | None,
) -> int:
    """Run sweepable experiments through :mod:`repro.exec` directly."""
    from .exec import ResultCache, SweepRunner, build_spec

    if faults is not None:
        os.environ["REPRO_FAULT_RATE"] = repr(faults)
    cache = None if no_cache else ResultCache()
    for exp_id in ids:
        runner = SweepRunner(build_spec(exp_id), parallel=parallel,
                             cache=cache)
        result = runner.run()
        for table in result.tables:
            table.show()
        print(f"[{exp_id}] {result.cells} cells: {result.hits} cached, "
              f"{result.computed} computed ({parallel} worker"
              f"{'s' if parallel != 1 else ''})")
    return 0


def _cmd_run(
    ids: list[str],
    trace: str | None = None,
    faults: float | None = None,
    parallel: int = 1,
    no_cache: bool = False,
) -> int:
    if faults is not None and not 0.0 <= faults <= 1.0:
        print(f"error: --faults must be in [0, 1], got {faults}",
              file=sys.stderr)
        return 2
    if parallel < 1:
        print(f"error: --parallel must be >= 1, got {parallel}",
              file=sys.stderr)
        return 2
    from .exec import SWEEPABLE

    keys = [exp_id.lower() for exp_id in ids]
    if (parallel > 1 or no_cache) and all(k in SWEEPABLE for k in keys):
        # The sweep path can't record traces (workers are separate
        # processes); fall through to pytest when --trace is given.
        if trace is None:
            return _cmd_run_sweep(keys, parallel, no_cache, faults)
        print("note: --trace forces the serial pytest path",
              file=sys.stderr)
    elif parallel > 1:
        not_sweepable = [k for k in keys if k not in SWEEPABLE]
        print(f"note: {', '.join(not_sweepable)} not sweepable "
              f"(sweepable: {', '.join(SWEEPABLE)}); running serially "
              "via pytest", file=sys.stderr)
    bench_dir = Path("benchmarks")
    if not bench_dir.is_dir():
        print("error: benchmarks/ not found — run from the repository root",
              file=sys.stderr)
        return 2
    targets = []
    for exp_id in ids:
        key = exp_id.lower()
        if key not in _EXPERIMENTS:
            print(f"error: unknown experiment {exp_id!r} "
                  f"(see 'python -m repro experiments')", file=sys.stderr)
            return 2
        targets.append(str(bench_dir / _EXPERIMENTS[key][1]))
    command = [
        sys.executable, "-m", "pytest", *targets,
        "--benchmark-only", "-q", "-s",
    ]
    env = os.environ.copy()
    if trace:
        # benchmarks/conftest.py installs the default tracer when it
        # sees this variable and exports the Chrome trace on teardown.
        env["REPRO_TRACE"] = str(Path(trace).resolve())
    if faults is not None:
        # Fault-aware benches (e22) sweep {0, faults} instead of their
        # default rate ladder.
        env["REPRO_FAULT_RATE"] = repr(faults)
    status = subprocess.call(command, env=env)
    if trace and status == 0:
        print(f"trace written to {trace} "
              "(open in chrome://tracing or https://ui.perfetto.dev)")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="fpgadp reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="version and system inventory")
    sub.add_parser("experiments", help="list the experiment index")
    run = sub.add_parser("run", help="regenerate experiments by id")
    run.add_argument("ids", nargs="+", help="experiment ids, e.g. e3 e7")
    run.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="record the run through repro.obs and export a Chrome "
             "trace_event JSON file",
    )
    run.add_argument(
        "--faults", metavar="RATE", type=float, default=None,
        help="inject faults at this rate (0..1) in fault-aware "
             "experiments (e22), e.g. --faults 0.01",
    )
    run.add_argument(
        "--parallel", metavar="N", type=int, default=1,
        help="fan the experiment's config grid over N worker processes "
             "(sweepable experiments: e5, e11, e22)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="recompute every sweep cell instead of reading "
             "results/cache/",
    )
    args = parser.parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "run":
        return _cmd_run(args.ids, trace=args.trace, faults=args.faults,
                        parallel=args.parallel, no_cache=args.no_cache)
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
