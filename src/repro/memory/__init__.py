"""Memory subsystem models: on-chip SRAM, HBM2, DDR4, host-over-PCIe.

These models substitute for the physical memory systems of the Alveo
cards (see DESIGN.md §1).  They expose exactly the knobs the tutorial's
use-case arguments turn on: per-channel bandwidth, first-word latency,
burst granularity, random-access efficiency, and channel-level
parallelism (:class:`~repro.memory.banked.BankedMemory`).
"""

from .banked import Allocation, BankedMemory
from .model import AccessPattern, MemoryModel, MemoryPort
from .technologies import (
    bram,
    ddr4_channel,
    hbm2_channel,
    host_over_pcie3,
    host_over_pcie4,
    uram,
)

__all__ = [
    "AccessPattern",
    "Allocation",
    "BankedMemory",
    "MemoryModel",
    "MemoryPort",
    "bram",
    "ddr4_channel",
    "hbm2_channel",
    "host_over_pcie3",
    "host_over_pcie4",
    "uram",
]
