"""Base memory model: latency/bandwidth/burst cost accounting.

Every memory technology in the reproduction (BRAM/URAM, HBM2 channels,
DDR4, host DRAM behind PCIe) is an instance of :class:`MemoryModel`,
parameterised by

* ``latency_ps`` — first-word access latency;
* ``bandwidth_bytes_per_sec`` — peak sequential streaming bandwidth;
* ``min_burst_bytes`` — the minimum transfer granule (an access smaller
  than a burst still occupies the channel for a full burst);
* ``random_efficiency`` — fraction of peak bandwidth achievable under
  dependent random accesses (row-buffer misses, bank conflicts).

The two questions the use-case systems ask are costed directly:

* :meth:`stream_time_ps` — time to move ``nbytes`` sequentially
  (latency paid once, then line-rate);
* :meth:`random_access_time_ps` — time for one dependent random access
  of ``nbytes`` (latency paid per access).
* :meth:`batch_random_time_ps` — ``n`` *independent* random accesses
  pipelined through one channel: latency paid once, then the channel is
  bound by burst occupancy at ``random_efficiency`` of peak.

:class:`MemoryPort` wraps a model as a shared resource in the event
simulator: concurrent requests serialise FIFO, which is how a single
AXI port behaves.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..core.sim import Event, Simulator

__all__ = ["AccessPattern", "MemoryModel", "MemoryPort"]

_PS_PER_S = 1_000_000_000_000


class AccessPattern(enum.Enum):
    """How a request's addresses relate to each other."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True, slots=True)
class MemoryModel:
    """A latency/bandwidth/burst characterisation of one memory channel."""

    name: str
    capacity_bytes: int
    latency_ps: int
    bandwidth_bytes_per_sec: float
    min_burst_bytes: int = 1
    random_efficiency: float = 1.0
    row_cycle_ps: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        if self.latency_ps < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if self.min_burst_bytes < 1:
            raise ValueError("min_burst_bytes must be >= 1")
        if not 0.0 < self.random_efficiency <= 1.0:
            raise ValueError("random_efficiency must be in (0, 1]")
        if self.row_cycle_ps < 0:
            raise ValueError("row_cycle_ps must be >= 0")

    # -- cost model --------------------------------------------------------

    def _occupancy_ps(self, nbytes: int, efficiency: float = 1.0) -> int:
        """Channel occupancy to move ``nbytes`` (burst-rounded)."""
        if nbytes <= 0:
            return 0
        bursts = math.ceil(nbytes / self.min_burst_bytes)
        effective = bursts * self.min_burst_bytes
        return math.ceil(
            effective * _PS_PER_S / (self.bandwidth_bytes_per_sec * efficiency)
        )

    def stream_time_ps(self, nbytes: int) -> int:
        """Time to read/write ``nbytes`` sequentially (latency once)."""
        if nbytes <= 0:
            return 0
        return self.latency_ps + self._occupancy_ps(nbytes)

    def _random_occupancy_ps(self, nbytes: int) -> int:
        """Channel occupancy of one random access: burst transfer at the
        degraded bandwidth, floored by the DRAM row cycle (tRC)."""
        return max(
            self._occupancy_ps(nbytes, efficiency=self.random_efficiency),
            self.row_cycle_ps,
        )

    def random_access_time_ps(self, nbytes: int) -> int:
        """Time for one *dependent* random access of ``nbytes``."""
        if nbytes <= 0:
            return 0
        return self.latency_ps + self._random_occupancy_ps(nbytes)

    def batch_random_time_ps(self, n_accesses: int, nbytes_each: int) -> int:
        """Time for ``n`` independent random accesses, pipelined.

        The channel hides per-access latency behind outstanding
        requests: one latency up front, then per-access occupancy (the
        larger of burst transfer at the degraded bandwidth and the DRAM
        row cycle).
        """
        if n_accesses <= 0 or nbytes_each <= 0:
            return 0
        return self.latency_ps + n_accesses * self._random_occupancy_ps(
            nbytes_each
        )

    def access_time_ps(self, nbytes: int, pattern: AccessPattern) -> int:
        """Dispatch on access pattern."""
        if pattern is AccessPattern.SEQUENTIAL:
            return self.stream_time_ps(nbytes)
        return self.random_access_time_ps(nbytes)

    def effective_bandwidth(self, pattern: AccessPattern) -> float:
        """Steady-state bytes/s under the given pattern."""
        if pattern is AccessPattern.SEQUENTIAL:
            return self.bandwidth_bytes_per_sec
        return self.bandwidth_bytes_per_sec * self.random_efficiency

    def fits(self, nbytes: int) -> bool:
        """True if ``nbytes`` fits the capacity."""
        return 0 <= nbytes <= self.capacity_bytes


class MemoryPort:
    """A memory channel as a shared, FIFO-serialised simulator resource."""

    def __init__(self, sim: Simulator, model: MemoryModel) -> None:
        self.sim = sim
        self.model = model
        self.busy_until_ps = 0
        self.busy_ps = 0
        self.bytes_moved = 0
        self.requests = 0

    def request(self, nbytes: int, pattern: AccessPattern) -> Event:
        """Issue a request; the event fires when the data has moved.

        Requests queue behind any in-flight request on the same port.
        """
        duration = self.model.access_time_ps(nbytes, pattern)
        start = max(self.sim.now, self.busy_until_ps)
        self.busy_until_ps = start + duration
        self.busy_ps += duration
        self.bytes_moved += max(0, nbytes)
        self.requests += 1
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.memory_access(
                self.model.name, start, duration, nbytes, pattern.value
            )
        done = Event(self.sim)
        done.succeed(value=nbytes, delay=self.busy_until_ps - self.sim.now)
        return done

    @property
    def utilization_window_ps(self) -> int:
        """How far ahead of ``sim.now`` the port is committed."""
        return max(0, self.busy_until_ps - self.sim.now)
