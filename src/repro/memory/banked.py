"""Banked (multi-channel) memory: placement and parallel-access timing.

HBM's defining property for data processing is *memory-level
parallelism*: 32 independent pseudo-channels that can serve requests
concurrently.  :class:`BankedMemory` models a bank of channels plus an
allocator that places named regions (embedding tables, PQ code blocks,
columns) onto channels, and answers the two timing questions the
accelerators ask:

* :meth:`batch_lookup_time_ps` — a batch of random lookups spread over
  the allocated regions completes when the *most loaded channel*
  finishes (the makespan), which is why balanced placement matters;
* :meth:`striped_scan_time_ps` — a sequential scan striped across all
  channels runs at aggregate bandwidth.

Placement is greedy least-loaded by expected access *traffic* (not
capacity), the heuristic MicroRec describes for skewed embedding
tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..obs.trace import get_default_tracer
from .model import MemoryModel

__all__ = ["Allocation", "BankedMemory"]


@dataclass(frozen=True, slots=True)
class Allocation:
    """A named region placed on one channel."""

    key: str
    nbytes: int
    channel: int


class BankedMemory:
    """A bank of identical memory channels with region placement.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) records per-channel
    access volume, busy time and bank conflicts whenever
    :meth:`batch_lookup_time_ps` runs; when omitted, the process-wide
    default tracer (if any) is used, and with none installed the
    accounting costs nothing.
    """

    def __init__(
        self,
        channels: list[MemoryModel],
        name: str = "banked",
        tracer=None,
    ) -> None:
        if not channels:
            raise ValueError("banked memory needs at least one channel")
        self.name = name
        self.tracer = tracer if tracer is not None else get_default_tracer()
        self.channels = list(channels)
        self._allocations: dict[str, Allocation] = {}
        self._striped: dict[str, tuple[str, ...]] = {}
        self._used_bytes = [0] * len(channels)
        self._traffic = [0.0] * len(channels)

    @classmethod
    def uniform(
        cls,
        channel_model: MemoryModel,
        n_channels: int,
        name: str = "banked",
        tracer=None,
    ) -> "BankedMemory":
        """A bank of ``n_channels`` identical channels."""
        if n_channels < 1:
            raise ValueError("need at least one channel")
        return cls([channel_model] * n_channels, name=name, tracer=tracer)

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    @property
    def capacity_bytes(self) -> int:
        return sum(c.capacity_bytes for c in self.channels)

    @property
    def used_bytes(self) -> int:
        return sum(self._used_bytes)

    @property
    def aggregate_bandwidth(self) -> float:
        return sum(c.bandwidth_bytes_per_sec for c in self.channels)

    # -- placement ---------------------------------------------------------

    def allocate(
        self,
        key: str,
        nbytes: int,
        expected_traffic: float = 1.0,
        channel: int | None = None,
    ) -> Allocation:
        """Place region ``key`` (``nbytes``) on a channel.

        Without an explicit ``channel`` the region goes to the channel
        with the least accumulated ``expected_traffic`` that still has
        capacity.  Raises ``MemoryError`` when nothing fits.
        """
        if key in self._allocations or key in self._striped:
            raise ValueError(f"region {key!r} already allocated")
        if nbytes < 0:
            raise ValueError("region size must be >= 0")
        if channel is not None:
            candidates = [channel]
        else:
            candidates = sorted(
                range(self.n_channels), key=lambda c: (self._traffic[c], c)
            )
        for c in candidates:
            if c < 0 or c >= self.n_channels:
                raise IndexError(f"channel {c} out of range")
            if self._used_bytes[c] + nbytes <= self.channels[c].capacity_bytes:
                alloc = Allocation(key=key, nbytes=nbytes, channel=c)
                self._allocations[key] = alloc
                self._used_bytes[c] += nbytes
                self._traffic[c] += expected_traffic
                return alloc
        raise MemoryError(
            f"cannot place region {key!r} ({nbytes} B) on {self.name}: "
            f"{self.used_bytes}/{self.capacity_bytes} B used"
        )

    def allocate_striped(
        self,
        key: str,
        nbytes: int,
        expected_traffic: float = 1.0,
        n_shards: int | None = None,
    ) -> list[Allocation]:
        """Place a region as equal shards across several channels.

        Used for regions larger than one channel (or hot regions that
        should spread their traffic).  ``n_shards`` defaults to the
        minimum number of channels the region needs.  Shards are named
        ``{key}.s{j}`` and the whole group is addressable through
        :meth:`batch_lookup_time_ps` by the base ``key``.
        """
        if key in self._striped or key in self._allocations:
            raise ValueError(f"region {key!r} already allocated")
        if nbytes < 0:
            raise ValueError("region size must be >= 0")
        channel_cap = max(c.capacity_bytes for c in self.channels)
        if n_shards is None:
            n_shards = max(1, math.ceil(nbytes / channel_cap))
            if n_shards > self.n_channels:
                raise MemoryError(
                    f"region {key!r} ({nbytes} B) exceeds the bank even "
                    f"striped over all {self.n_channels} channels"
                )
        if not 1 <= n_shards <= self.n_channels:
            raise ValueError(
                f"n_shards must be in 1..{self.n_channels}, got {n_shards}"
            )
        shard_bytes = math.ceil(nbytes / n_shards)
        shards = []
        try:
            for j in range(n_shards):
                shards.append(
                    self.allocate(
                        f"{key}.s{j}",
                        shard_bytes,
                        expected_traffic=expected_traffic / n_shards,
                    )
                )
        except MemoryError:
            for alloc in shards:
                self.free(alloc.key)
            raise
        self._striped[key] = tuple(a.key for a in shards)
        return shards

    def shards_of(self, key: str) -> tuple[str, ...]:
        """Shard keys of a striped region."""
        if key not in self._striped:
            raise KeyError(f"region {key!r} is not striped")
        return self._striped[key]

    def free(self, key: str) -> None:
        """Release a region (striped regions free all their shards)."""
        if key in self._striped:
            for shard in self._striped.pop(key):
                self.free(shard)
            return
        alloc = self._allocations.pop(key, None)
        if alloc is None:
            raise KeyError(f"region {key!r} not allocated")
        self._used_bytes[alloc.channel] -= alloc.nbytes

    def allocation(self, key: str) -> Allocation:
        """Look up where a region lives."""
        return self._allocations[key]

    def channel_load_bytes(self) -> list[int]:
        """Per-channel allocated bytes (for balance diagnostics)."""
        return list(self._used_bytes)

    # -- timing ------------------------------------------------------------

    def batch_lookup_time_ps(
        self, lookups: dict[str, tuple[int, int]]
    ) -> int:
        """Makespan of a batch of random lookups.

        ``lookups`` maps region key -> ``(n_accesses, bytes_each)``.
        Accesses to regions on the same channel serialise; channels work
        in parallel, so the batch finishes with the busiest channel.
        A striped region's accesses spread evenly over its shards.
        """
        per_channel: dict[int, list[tuple[int, int]]] = {}

        def add(key: str, n_accesses: int, nbytes_each: int) -> None:
            alloc = self._allocations.get(key)
            if alloc is None:
                raise KeyError(f"region {key!r} not allocated")
            per_channel.setdefault(alloc.channel, []).append(
                (n_accesses, nbytes_each)
            )

        for key, (n_accesses, nbytes_each) in lookups.items():
            shards = self._striped.get(key)
            if shards is None:
                add(key, n_accesses, nbytes_each)
                continue
            share = math.ceil(n_accesses / len(shards))
            remaining = n_accesses
            for shard in shards:
                if remaining <= 0:
                    break
                add(shard, min(share, remaining), nbytes_each)
                remaining -= share
        makespan = 0
        tracer = self.tracer
        for channel, reqs in per_channel.items():
            model = self.channels[channel]
            # One latency per channel (requests pipeline), then summed
            # random-access occupancy.
            occupancy = sum(
                model.batch_random_time_ps(n, b) - model.latency_ps
                for n, b in reqs
                if n > 0 and b > 0
            )
            busy = model.latency_ps + occupancy if occupancy else 0
            makespan = max(makespan, busy)
            if tracer is not None:
                tracer.bank_access(
                    self.name, channel, sum(n for n, _ in reqs), busy
                )
                if len(reqs) > 1:
                    # Several regions' lookups serialised on one channel:
                    # the placement conflict balanced layouts avoid.
                    tracer.bank_conflict(self.name, channel, len(reqs))
        return makespan

    def striped_scan_time_ps(self, total_bytes: int) -> int:
        """Sequential scan of ``total_bytes`` striped over all channels."""
        if total_bytes <= 0:
            return 0
        share = math.ceil(total_bytes / self.n_channels)
        return max(c.stream_time_ps(share) for c in self.channels)

    def region_scan_time_ps(self, key: str) -> int:
        """Sequential scan of one allocated region (single channel)."""
        alloc = self.allocation(key)
        return self.channels[alloc.channel].stream_time_ps(alloc.nbytes)
