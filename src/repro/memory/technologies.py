"""Concrete memory technologies with datasheet-grade parameters.

Factory functions return :class:`~repro.memory.model.MemoryModel`
instances for the memories an Alveo-class deployment touches.  Numbers
are public-datasheet/measurement-literature values; they set the
*ratios* (HBM channel vs DDR vs PCIe vs SRAM) that the tutorial's
use-case arguments depend on:

* on-chip BRAM/URAM — single-cycle access, the "smaller tables live in
  SRAM" tier of MicroRec;
* HBM2 pseudo-channel — ~14.4 GB/s each, 32 of them, the memory-level
  parallelism MicroRec and FANNS exploit;
* DDR4-2400 channel — 19.2 GB/s, higher capacity, fewer channels;
* host DRAM over PCIe 3.0 x16 — what a plain CPU-attached accelerator
  must cross, with microsecond latency.
"""

from __future__ import annotations

from ..core.clocking import FABRIC_300MHZ, ClockDomain
from .model import MemoryModel

__all__ = [
    "bram",
    "ddr4_channel",
    "hbm2_channel",
    "host_over_pcie3",
    "host_over_pcie4",
    "uram",
]

_GIB = 1024 ** 3
_MIB = 1024 ** 2


def bram(
    capacity_bytes: int = 4 * _MIB,
    width_bytes: int = 8,
    clock: ClockDomain = FABRIC_300MHZ,
) -> MemoryModel:
    """On-chip BRAM: one access per cycle per port, single-cycle latency."""
    return MemoryModel(
        name="bram",
        capacity_bytes=capacity_bytes,
        latency_ps=clock.period_ps,
        bandwidth_bytes_per_sec=width_bytes * clock.freq_hz,
        min_burst_bytes=width_bytes,
        random_efficiency=1.0,  # SRAM: no row-buffer penalty
    )


def uram(
    capacity_bytes: int = 32 * _MIB,
    width_bytes: int = 8,
    clock: ClockDomain = FABRIC_300MHZ,
) -> MemoryModel:
    """On-chip URAM: like BRAM but denser, 2-cycle read latency."""
    return MemoryModel(
        name="uram",
        capacity_bytes=capacity_bytes,
        latency_ps=2 * clock.period_ps,
        bandwidth_bytes_per_sec=width_bytes * clock.freq_hz,
        min_burst_bytes=width_bytes,
        random_efficiency=1.0,
    )


def hbm2_channel(capacity_bytes: int = 256 * _MIB) -> MemoryModel:
    """One HBM2 pseudo-channel (Alveo U280/U55C have 32).

    ~14.4 GB/s peak, ~110 ns loaded latency, 32 B minimum granule,
    ~35% efficiency under pointer-chasing random access (bank/row
    conflicts) — matching published HBM benchmarking studies.
    """
    return MemoryModel(
        name="hbm2-pc",
        capacity_bytes=capacity_bytes,
        latency_ps=110_000,
        bandwidth_bytes_per_sec=14.375e9,
        min_burst_bytes=32,
        random_efficiency=0.35,
        row_cycle_ps=47_000,  # HBM2 tRC: floor per random row hit
    )


def ddr4_channel(capacity_bytes: int = 16 * _GIB) -> MemoryModel:
    """One 64-bit DDR4-2400 channel: 19.2 GB/s, ~85 ns, 64 B bursts."""
    return MemoryModel(
        name="ddr4",
        capacity_bytes=capacity_bytes,
        latency_ps=85_000,
        bandwidth_bytes_per_sec=19.2e9,
        min_burst_bytes=64,
        random_efficiency=0.25,
        row_cycle_ps=45_000,  # DDR4 tRC
    )


def host_over_pcie3(capacity_bytes: int = 256 * _GIB) -> MemoryModel:
    """Host DRAM reached over PCIe 3.0 x16: ~13 GB/s effective, ~1 us."""
    return MemoryModel(
        name="host-pcie3",
        capacity_bytes=capacity_bytes,
        latency_ps=1_000_000,
        bandwidth_bytes_per_sec=13e9,
        min_burst_bytes=256,
        random_efficiency=0.15,
    )


def host_over_pcie4(capacity_bytes: int = 256 * _GIB) -> MemoryModel:
    """Host DRAM over PCIe 4.0 x16: ~26 GB/s effective, ~0.9 us."""
    return MemoryModel(
        name="host-pcie4",
        capacity_bytes=capacity_bytes,
        latency_ps=900_000,
        bandwidth_bytes_per_sec=26e9,
        min_burst_bytes=256,
        random_efficiency=0.15,
    )
