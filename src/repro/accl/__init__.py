"""Use Case IV — ACCL: MPI-like collectives for clusters of FPGAs
(He et al., H2RC 2021; the distributed-processing infrastructure of
Figure 1's HACC rack).
"""

from .cluster import FpgaCluster, HostStagedCluster
from .collectives import (
    CollectiveOutcome,
    allgather_ring,
    allreduce_recursive_doubling,
    allreduce_ring,
    allreduce_tree,
    broadcast_flat,
    broadcast_tree,
    expected_steps_ring,
    expected_steps_tree,
    gather_flat,
    reduce_tree,
    scatter_flat,
)
from .resilient import ResilientAllreduce, allreduce_with_faults

__all__ = [
    "CollectiveOutcome",
    "FpgaCluster",
    "HostStagedCluster",
    "ResilientAllreduce",
    "allreduce_with_faults",
    "allgather_ring",
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "allreduce_tree",
    "broadcast_flat",
    "broadcast_tree",
    "expected_steps_ring",
    "expected_steps_tree",
    "gather_flat",
    "reduce_tree",
    "scatter_flat",
]
