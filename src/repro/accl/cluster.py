"""FPGA cluster vs host-staged execution of collective schedules.

ACCL's claim is architectural: when the collective engine lives on the
FPGA next to its 100G NIC, a message is *wire + firmware*; when the
same FPGAs must communicate through their hosts, every message pays two
PCIe crossings and a kernel TCP stack, and reductions burn host CPU.
Both executors run the identical schedules from
:mod:`repro.accl.collectives`; the difference is purely the per-step
costing:

* :class:`FpgaCluster` — FPGA TCP protocol (EasyNet-class), reductions
  stream through fabric adders faster than the wire feeds them;
* :class:`HostStagedCluster` — kernel TCP plus 2x PCIe staging per
  step, reductions priced on the host CPU model.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..baselines.cpu import CpuModel, xeon_server
from ..memory.technologies import host_over_pcie3
from ..network.fabric import SwitchedFabric
from ..network.protocol import ProtocolModel, fpga_tcp, kernel_tcp
from .collectives import (
    CollectiveOutcome,
    allgather_ring,
    allreduce_recursive_doubling,
    allreduce_ring,
    allreduce_tree,
    broadcast_flat,
    broadcast_tree,
    gather_flat,
    reduce_tree,
    scatter_flat,
)

__all__ = ["FpgaCluster", "HostStagedCluster"]

_PS_PER_S = 1_000_000_000_000
# A 512-bit fabric adder at 300 MHz: 19.2 GB/s per node, above line rate.
_FPGA_REDUCE_BANDWIDTH = 19.2e9


class _ClusterBase:
    """Shared schedule-execution machinery."""

    def __init__(self, n_nodes: int, protocol: ProtocolModel) -> None:
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.n_nodes = n_nodes
        self.fabric = SwitchedFabric(protocol, n_nodes)

    # -- per-step costing (overridden by the host-staged baseline) ----------

    def _step_time_s(self, transfers: list[tuple[int, int, int]],
                     reduction_bytes: int) -> float:
        raise NotImplementedError

    def _execute(self, outcome: CollectiveOutcome) -> CollectiveOutcome:
        reductions = outcome.reduction_bytes_per_step or [0] * len(outcome.steps)
        total = 0.0
        for step, red in zip(outcome.steps, reductions):
            total += self._step_time_s(step, red)
        outcome.time_s = total
        return outcome

    def _check_count(self, buffers: list[np.ndarray]) -> None:
        if len(buffers) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} buffers, got {len(buffers)}"
            )

    # -- collectives ----------------------------------------------------------

    def broadcast(self, buffers: list[np.ndarray], root: int = 0,
                  algorithm: str = "tree") -> CollectiveOutcome:
        """Broadcast the root buffer; ``algorithm`` is 'tree' or 'flat'."""
        self._check_count(buffers)
        schedule = {"tree": broadcast_tree, "flat": broadcast_flat}
        return self._run(schedule, algorithm, buffers, root)

    def reduce(self, buffers: list[np.ndarray],
               root: int = 0) -> CollectiveOutcome:
        """Sum-reduce every buffer into the root."""
        self._check_count(buffers)
        return self._execute(reduce_tree(buffers, root))

    def scatter(self, buffers: list[np.ndarray],
                root: int = 0) -> CollectiveOutcome:
        """Scatter equal chunks of the root buffer."""
        self._check_count(buffers)
        return self._execute(scatter_flat(buffers, root))

    def gather(self, buffers: list[np.ndarray],
               root: int = 0) -> CollectiveOutcome:
        """Gather all buffers to the root (rank order)."""
        self._check_count(buffers)
        return self._execute(gather_flat(buffers, root))

    def allgather(self, buffers: list[np.ndarray]) -> CollectiveOutcome:
        """Ring allgather."""
        self._check_count(buffers)
        return self._execute(allgather_ring(buffers))

    def allreduce(self, buffers: list[np.ndarray],
                  algorithm: str = "ring") -> CollectiveOutcome:
        """Sum-allreduce; ``algorithm``: 'ring', 'tree', or
        'recursive-doubling' (power-of-two clusters only)."""
        self._check_count(buffers)
        schedule: dict[str, Callable] = {
            "ring": lambda bufs, _root: allreduce_ring(bufs),
            "tree": lambda bufs, _root: allreduce_tree(bufs),
            "recursive-doubling":
                lambda bufs, _root: allreduce_recursive_doubling(bufs),
        }
        return self._run(schedule, algorithm, buffers, 0)

    def _run(self, schedules: dict, algorithm: str,
             buffers: list[np.ndarray], root: int) -> CollectiveOutcome:
        if algorithm not in schedules:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; have {sorted(schedules)}"
            )
        return self._execute(schedules[algorithm](buffers, root))


class FpgaCluster(_ClusterBase):
    """FPGAs with on-card NICs running the collective engine (ACCL)."""

    def __init__(self, n_nodes: int,
                 protocol: ProtocolModel | None = None) -> None:
        super().__init__(n_nodes, protocol or fpga_tcp())

    def _step_time_s(self, transfers, reduction_bytes) -> float:
        wire_s = self.fabric.parallel_step_ps(transfers) / _PS_PER_S
        if not reduction_bytes:
            return wire_s
        per_node = reduction_bytes / max(1, self.n_nodes)
        reduce_s = per_node / _FPGA_REDUCE_BANDWIDTH
        # The adder streams on arriving data; only the excess over the
        # wire time (if any) is exposed.
        return max(wire_s, reduce_s)


class HostStagedCluster(_ClusterBase):
    """The same FPGAs communicating through their host CPUs.

    Every step's data crosses PCIe twice (device->host at the sender,
    host->device at the receiver) and traverses the kernel TCP stack;
    reductions run on the host CPU.
    """

    def __init__(
        self,
        n_nodes: int,
        protocol: ProtocolModel | None = None,
        cpu: CpuModel | None = None,
    ) -> None:
        super().__init__(n_nodes, protocol or kernel_tcp())
        self.cpu = cpu or xeon_server()
        self._pcie = host_over_pcie3()

    def _step_time_s(self, transfers, reduction_bytes) -> float:
        wire_s = self.fabric.parallel_step_ps(transfers) / _PS_PER_S
        if not transfers:
            return wire_s
        busiest = max(
            max((n for _, _, n in transfers), default=0), 0
        )
        staging_s = 2 * self._pcie.stream_time_ps(busiest) / _PS_PER_S
        reduce_s = 0.0
        if reduction_bytes:
            per_node = reduction_bytes / max(1, self.n_nodes)
            # Read two operands, write one result through host DRAM.
            reduce_s = self.cpu.stream_time_s(int(3 * per_node))
        return wire_s + staging_s + reduce_s
