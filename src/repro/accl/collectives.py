"""Collective communication schedules: ring and tree algorithms.

A schedule is a list of *steps*; each step is a list of concurrent
``(src, dst, nbytes)`` transfers plus the data movement it performs on
the per-node buffers.  The same schedules drive both the FPGA cluster
and the host-staged baseline — only the per-step costing differs — and
the buffers are real numpy arrays, so every collective's result is
checked against the mathematical definition.

Algorithms (the standard alpha-beta repertoire ACCL implements):

* broadcast — binomial tree (``log2 P`` full-message steps) or flat
  (root sends ``P-1`` messages, serialising on its port);
* reduce — binomial tree with per-step elementwise combination;
* scatter / gather — root-rooted flat schedules of ``n/P`` chunks;
* allgather — ring (``P-1`` steps of ``n/P``);
* allreduce — ring (reduce-scatter + allgather, ``2(P-1)`` steps of
  ``n/P``) or tree (reduce + broadcast, ``2 log2 P`` full-message
  steps).  The ring wins for large payloads, the tree for small — the
  crossover bench E10/E11 regenerates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CollectiveOutcome",
    "allgather_ring",
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "allreduce_tree",
    "broadcast_flat",
    "broadcast_tree",
    "expected_steps_ring",
    "expected_steps_tree",
    "gather_flat",
    "reduce_tree",
    "scatter_flat",
]


@dataclass
class CollectiveOutcome:
    """Result buffers plus schedule accounting.

    ``time_s`` is filled in by the cluster that executes the schedule;
    the schedule itself reports steps and wire traffic.
    """

    buffers: list[np.ndarray]
    steps: list[list[tuple[int, int, int]]]
    reduction_bytes_per_step: list[int] = field(default_factory=list)
    time_s: float = 0.0

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def bytes_on_wire(self) -> int:
        return sum(n for step in self.steps for _, _, n in step)


def _check_root(root: int, p: int) -> None:
    if not 0 <= root < p:
        raise IndexError(f"root {root} out of range for {p} nodes")


def _check_buffers(buffers: list[np.ndarray]) -> int:
    if not buffers:
        raise ValueError("need at least one node buffer")
    length = buffers[0].size
    for b in buffers:
        if b.size != length:
            raise ValueError("all node buffers must have equal size")
    return length


def broadcast_tree(buffers: list[np.ndarray], root: int = 0) -> CollectiveOutcome:
    """Binomial-tree broadcast of the root's buffer to every node."""
    p = len(buffers)
    _check_buffers(buffers)
    _check_root(root, p)
    out = [b.copy() for b in buffers]
    nbytes = out[root].nbytes
    steps: list[list[tuple[int, int, int]]] = []
    # Virtual ranks rotate the root to 0 so the recursion doubles cleanly:
    # in round r, virtual ranks [0, 2^r) send to [2^r, 2^(r+1)).
    distance = 1
    while distance < p:
        step: list[tuple[int, int, int]] = []
        for virtual_src in range(distance):
            virtual_dst = virtual_src + distance
            if virtual_dst >= p:
                continue
            src = (virtual_src + root) % p
            dst = (virtual_dst + root) % p
            step.append((src, dst, nbytes))
            out[dst] = out[src].copy()
        steps.append(step)
        distance *= 2
    return CollectiveOutcome(buffers=out, steps=steps)


def broadcast_flat(buffers: list[np.ndarray], root: int = 0) -> CollectiveOutcome:
    """Flat broadcast: the root sends to every other node in one "step".

    All ``P-1`` messages leave the same port, so the fabric serialises
    them — the schedule that makes tree broadcast worth having.
    """
    p = len(buffers)
    _check_buffers(buffers)
    _check_root(root, p)
    out = [b.copy() for b in buffers]
    nbytes = out[root].nbytes
    step = []
    for dst in range(p):
        if dst == root:
            continue
        step.append((root, dst, nbytes))
        out[dst] = out[root].copy()
    return CollectiveOutcome(buffers=out, steps=[step] if step else [])


def reduce_tree(buffers: list[np.ndarray], root: int = 0) -> CollectiveOutcome:
    """Binomial-tree sum-reduction into the root's buffer."""
    p = len(buffers)
    _check_buffers(buffers)
    _check_root(root, p)
    partial = [b.astype(np.float64) for b in buffers]
    nbytes = buffers[root].nbytes
    steps: list[list[tuple[int, int, int]]] = []
    reduction_bytes: list[int] = []
    distance = 1
    while distance < p:
        step = []
        combined = 0
        for virtual_dst in range(0, p, 2 * distance):
            virtual_src = virtual_dst + distance
            if virtual_src >= p:
                continue
            src = (virtual_src + root) % p
            dst = (virtual_dst + root) % p
            step.append((src, dst, nbytes))
            partial[dst] = partial[dst] + partial[src]
            combined += nbytes
        steps.append(step)
        reduction_bytes.append(combined)
        distance *= 2
    out = [b.copy().astype(np.float64) for b in buffers]
    out[root] = partial[root]
    return CollectiveOutcome(
        buffers=out, steps=steps, reduction_bytes_per_step=reduction_bytes
    )


def scatter_flat(buffers: list[np.ndarray], root: int = 0) -> CollectiveOutcome:
    """Root scatters equal chunks of its buffer to all nodes.

    Node ``i`` ends with chunk ``i``; buffer sizes must divide evenly.
    """
    p = len(buffers)
    length = _check_buffers(buffers)
    _check_root(root, p)
    if length % p:
        raise ValueError(f"buffer size {length} not divisible by {p} nodes")
    chunk = length // p
    source = buffers[root]
    out: list[np.ndarray] = []
    step = []
    chunk_bytes = source[:chunk].nbytes
    for node in range(p):
        piece = source[node * chunk:(node + 1) * chunk].copy()
        out.append(piece)
        if node != root:
            step.append((root, node, chunk_bytes))
    return CollectiveOutcome(buffers=out, steps=[step] if step else [])


def gather_flat(buffers: list[np.ndarray], root: int = 0) -> CollectiveOutcome:
    """Root gathers every node's buffer, concatenated in rank order."""
    p = len(buffers)
    _check_buffers(buffers)
    _check_root(root, p)
    step = [
        (node, root, buffers[node].nbytes)
        for node in range(p)
        if node != root
    ]
    gathered = np.concatenate([buffers[node] for node in range(p)])
    out = [b.copy() for b in buffers]
    out[root] = gathered
    return CollectiveOutcome(buffers=out, steps=[step] if step else [])


def allgather_ring(buffers: list[np.ndarray]) -> CollectiveOutcome:
    """Ring allgather: every node ends with all buffers concatenated."""
    p = len(buffers)
    _check_buffers(buffers)
    pieces = [[None] * p for _ in range(p)]
    for node in range(p):
        pieces[node][node] = buffers[node].copy()
    chunk_bytes = buffers[0].nbytes
    steps = []
    for round_ in range(p - 1):
        step = []
        for node in range(p):
            send_idx = (node - round_) % p
            dst = (node + 1) % p
            step.append((node, dst, chunk_bytes))
            pieces[dst][send_idx] = pieces[node][send_idx].copy()
        steps.append(step)
    out = [np.concatenate(row) for row in pieces]
    return CollectiveOutcome(buffers=out, steps=steps)


def allreduce_ring(buffers: list[np.ndarray]) -> CollectiveOutcome:
    """Ring allreduce: reduce-scatter then allgather, 2(P-1) steps.

    Each step moves ``n/P`` bytes per node; the bandwidth-optimal
    schedule for large payloads.
    """
    p = len(buffers)
    length = _check_buffers(buffers)
    if p == 1:
        return CollectiveOutcome(
            buffers=[buffers[0].astype(np.float64)], steps=[]
        )
    if length % p:
        raise ValueError(f"buffer size {length} not divisible by {p} nodes")
    chunk = length // p
    work = [b.astype(np.float64).copy() for b in buffers]
    chunk_bytes = work[0][:chunk].nbytes
    steps = []
    reduction_bytes = []

    def segment(node: int, idx: int) -> slice:
        return slice(idx * chunk, (idx + 1) * chunk)

    # Phase 1: reduce-scatter.
    for round_ in range(p - 1):
        step = []
        sends = []
        for node in range(p):
            idx = (node - round_) % p
            dst = (node + 1) % p
            sends.append((node, dst, idx, work[node][segment(node, idx)].copy()))
            step.append((node, dst, chunk_bytes))
        for node, dst, idx, payload in sends:
            work[dst][segment(dst, idx)] += payload
        steps.append(step)
        reduction_bytes.append(p * chunk_bytes)
    # Phase 2: allgather the reduced segments.
    for round_ in range(p - 1):
        step = []
        sends = []
        for node in range(p):
            idx = (node + 1 - round_) % p
            dst = (node + 1) % p
            sends.append((node, dst, idx, work[node][segment(node, idx)].copy()))
            step.append((node, dst, chunk_bytes))
        for node, dst, idx, payload in sends:
            work[dst][segment(dst, idx)] = payload
        steps.append(step)
        reduction_bytes.append(0)
    return CollectiveOutcome(
        buffers=work, steps=steps, reduction_bytes_per_step=reduction_bytes
    )


def allreduce_recursive_doubling(
    buffers: list[np.ndarray],
) -> CollectiveOutcome:
    """Recursive-doubling allreduce: ``log2 P`` full-exchange steps.

    In step ``k`` every node exchanges its full partial sum with the
    partner at XOR distance ``2^k`` and adds — the latency-optimal
    schedule (half the tree's step count).  Requires a power-of-two
    node count.
    """
    p = len(buffers)
    _check_buffers(buffers)
    if p & (p - 1):
        raise ValueError(
            f"recursive doubling needs a power-of-two node count, got {p}"
        )
    work = [b.astype(np.float64).copy() for b in buffers]
    nbytes = buffers[0].nbytes
    steps: list[list[tuple[int, int, int]]] = []
    reduction_bytes: list[int] = []
    distance = 1
    while distance < p:
        step: list[tuple[int, int, int]] = []
        snapshots = [w.copy() for w in work]
        for node in range(p):
            partner = node ^ distance
            step.append((node, partner, nbytes))
        for node in range(p):
            work[node] = work[node] + snapshots[node ^ distance]
        steps.append(step)
        reduction_bytes.append(p * nbytes)
        distance *= 2
    return CollectiveOutcome(
        buffers=work, steps=steps, reduction_bytes_per_step=reduction_bytes
    )


def allreduce_tree(buffers: list[np.ndarray]) -> CollectiveOutcome:
    """Tree allreduce: binomial reduce to node 0, then tree broadcast.

    ``2 log2 P`` steps of the *full* message; latency-optimal for small
    payloads.
    """
    reduced = reduce_tree(buffers, root=0)
    spread = broadcast_tree(reduced.buffers, root=0)
    return CollectiveOutcome(
        buffers=spread.buffers,
        steps=reduced.steps + spread.steps,
        reduction_bytes_per_step=(
            reduced.reduction_bytes_per_step + [0] * len(spread.steps)
        ),
    )


def expected_steps_ring(p: int) -> int:
    """Step count of ring allreduce (for tests/benches)."""
    return 0 if p <= 1 else 2 * (p - 1)


def expected_steps_tree(p: int) -> int:
    """Step count of tree allreduce (for tests/benches)."""
    return 0 if p <= 1 else 2 * math.ceil(math.log2(p))
