"""Fault-tolerant collectives: re-route around dead ring members.

A ring allreduce is the least fault-tolerant schedule there is — every
node is on the critical path of every step — so ACCL-style deployments
must detect a dead member and fall back.  :func:`allreduce_with_faults`
replays a ring schedule step by step against a
:class:`~repro.faults.plan.FaultPlan`:

* a **dropped** step is retransmitted (the step's wire time is paid
  again, plus the detection timeout);
* a **latency spike** stretches the step;
* a **node outage** aborts the ring: the survivors restart the
  collective as a binomial *tree* over their own contributions (the
  crashed node's partial sums are lost, as in a real restart-based
  recovery), paying the time already sunk into the ring as waste.

The returned :class:`ResilientAllreduce` carries the usual
:class:`~repro.accl.collectives.CollectiveOutcome` (over the surviving
ranks) plus the recovery accounting the ``e22`` bench reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.plan import FaultPlan
from ..obs.trace import Tracer
from .cluster import FpgaCluster, HostStagedCluster, _ClusterBase
from .collectives import CollectiveOutcome, allreduce_ring, allreduce_tree

__all__ = ["ResilientAllreduce", "allreduce_with_faults"]

_PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True)
class ResilientAllreduce:
    """One fault-injected allreduce run.

    ``outcome.buffers`` holds the survivors' results (in surviving-rank
    order); ``wasted_s`` is time spent on ring steps that the reroute
    then discarded.
    """

    outcome: CollectiveOutcome
    survivors: tuple[int, ...]
    rerouted: bool
    retries: int
    wasted_s: float

    @property
    def time_s(self) -> float:
        return self.outcome.time_s


def _subcluster(cluster: _ClusterBase, n_nodes: int) -> _ClusterBase:
    """A cluster of the same flavour over ``n_nodes`` survivors."""
    protocol = cluster.fabric.protocol
    if isinstance(cluster, HostStagedCluster):
        return HostStagedCluster(n_nodes, protocol, cluster.cpu)
    return FpgaCluster(n_nodes, protocol)


def allreduce_with_faults(
    cluster: _ClusterBase,
    buffers: list[np.ndarray],
    faults: FaultPlan,
    start_ps: int = 0,
    detect_timeout_ps: int = 5_000_000,
    tracer: Tracer | None = None,
) -> ResilientAllreduce:
    """Ring allreduce under ``faults``, degrading to a survivor tree.

    ``start_ps`` places the run on the plan's outage timeline;
    ``detect_timeout_ps`` is the extra time charged whenever a drop or
    crash must first be *noticed* before recovery starts.
    """
    p = cluster.n_nodes
    schedule = allreduce_ring(buffers)
    reductions = (
        schedule.reduction_bytes_per_step or [0] * len(schedule.steps)
    )
    t_ps = float(start_ps)
    retries = 0
    for i, (step, red) in enumerate(zip(schedule.steps, reductions)):
        dead = sorted(
            node for node in range(p) if faults.node_down(node, int(t_ps))
        )
        if dead:
            # Ring is broken: restart as a tree over the survivors'
            # original contributions.  Everything spent so far is waste.
            if tracer is not None:
                tracer.fault_injected(
                    "node_down", "accl.ring", at_ps=int(t_ps), nodes=dead
                )
            wasted_s = (t_ps - start_ps) / _PS_PER_S
            survivors = tuple(n for n in range(p) if n not in dead)
            sub = _subcluster(cluster, len(survivors))
            rerun = allreduce_tree([buffers[n] for n in survivors])
            rerun = sub._execute(rerun)
            rerun.time_s += wasted_s + detect_timeout_ps / _PS_PER_S
            return ResilientAllreduce(
                outcome=rerun,
                survivors=survivors,
                rerouted=True,
                retries=retries,
                wasted_s=wasted_s,
            )
        step_s = cluster._step_time_s(step, red)
        site = f"accl.step{i}"
        while faults.drop(site):
            # Retransmit: pay the detection timeout plus the step again.
            retries += 1
            if tracer is not None:
                tracer.fault_injected("drop", site, at_ps=int(t_ps))
                tracer.retry_attempted(site, retries, at_ps=int(t_ps))
            t_ps += detect_timeout_ps + step_s * _PS_PER_S
        spike = faults.spike_delay_ps(site)
        if spike and tracer is not None:
            tracer.fault_injected(
                "latency_spike", site, at_ps=int(t_ps), delay_ps=spike
            )
        t_ps += step_s * _PS_PER_S + spike
    schedule.time_s = (t_ps - start_ps) / _PS_PER_S
    return ResilientAllreduce(
        outcome=schedule,
        survivors=tuple(range(p)),
        rerouted=False,
        retries=retries,
        wasted_s=0.0,
    )
