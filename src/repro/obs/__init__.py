"""Observability for the simulator: metrics, tracing, profiling.

Three cooperating pieces (see DESIGN.md §6 "Observability"):

* :mod:`repro.obs.metrics` — a registry of named counters, gauges and
  fixed-bucket histograms with hierarchical labels; zero overhead when
  disabled.
* :mod:`repro.obs.trace` — the event tracer the instrumented classes
  (:class:`~repro.core.sim.Simulator`, streams, kernels, links, memory
  ports/banks) emit through, with Chrome ``trace_event`` JSON export
  and plain-text utilisation summaries.
* :mod:`repro.obs.profile` — a context-manager profiler reporting
  cycles-busy vs cycles-stalled per component.

The contract every instrumented hot path honours: with no tracer
attached (the default) the pre-observability code path runs unchanged;
with one attached, recording never alters simulated behaviour
(trace transparency).
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import ComponentProfile, ProfileReport, Profiler
from .trace import TraceEvent, Tracer, get_default_tracer, set_default_tracer

__all__ = [
    "ComponentProfile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileReport",
    "Profiler",
    "TraceEvent",
    "Tracer",
    "get_default_tracer",
    "set_default_tracer",
]
