"""Simulation event tracing with Chrome ``trace_event`` export.

A :class:`Tracer` is the recording half of the observability layer.
Instrumented components (the event engine, streams, kernels, links,
memory ports and banks) call its domain hooks; the tracer turns the
calls into

* **slices** — duration events on a named track (one track per
  component), exportable to the Chrome ``trace_event`` JSON format and
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev;
* **metrics** — counters in an attached
  :class:`~repro.obs.metrics.MetricsRegistry` (event volume, stalls,
  bank conflicts), cheap enough to leave on for whole benchmarks.

The contract with the simulator is *trace transparency*: hooks only
record — they never create or schedule simulation events — so enabling
a tracer cannot change event order, ``sim.now`` trajectories, or any
process result.  ``tests/core/test_sim_properties.py`` asserts this
over randomized programs.

Instrumented call sites guard with ``if tracer is not None``; when no
tracer is attached (the default) the simulation runs the exact seed
code path with zero observability overhead.

A process-wide *default tracer* can be installed with
:func:`set_default_tracer`; a :class:`~repro.core.sim.Simulator`
constructed without an explicit ``tracer`` picks it up.  The benchmark
harness uses this to trace experiments that build their simulators
internally (``python -m repro run e19 --trace out.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, IO

from .metrics import MetricsRegistry

__all__ = [
    "TraceEvent",
    "Tracer",
    "get_default_tracer",
    "set_default_tracer",
]

_PS_PER_US = 1_000_000


@dataclass(slots=True)
class TraceEvent:
    """One recorded occurrence.

    ``ph`` follows the Chrome trace_event phase vocabulary: ``"X"``
    (complete slice with a duration), ``"i"`` (instant).  Timestamps
    and durations are picoseconds of simulated time.
    """

    name: str
    cat: str
    ph: str
    ts_ps: int
    track: str
    dur_ps: int = 0
    args: dict[str, Any] = field(default_factory=dict)


# -- default tracer registry ----------------------------------------------

_default_tracer: "Tracer | None" = None


def set_default_tracer(tracer: "Tracer | None") -> None:
    """Install (or clear) the process-wide default tracer.

    Simulators and analytic components constructed afterwards without
    an explicit ``tracer`` argument will use it.  Pass ``None`` to
    restore the zero-overhead default.
    """
    global _default_tracer
    _default_tracer = tracer


def get_default_tracer() -> "Tracer | None":
    """The installed default tracer, or ``None``."""
    return _default_tracer


class Tracer:
    """Records simulation activity as trace events plus metrics.

    Parameters
    ----------
    registry:
        Metrics registry for the counter side; a fresh enabled registry
        is created when omitted.
    verbose_sim:
        When True, every scheduler event fire and process resume also
        becomes an instant trace event.  Off by default — those are
        per-event-loop-iteration and dominate trace size; the counters
        still run.
    clock:
        Callable returning the current time in ps.  A simulator binds
        its own clock on attach; standalone use (analytic components
        such as :class:`~repro.memory.banked.BankedMemory`) defaults to
        a zero clock, which timestamps records at 0 unless the call
        site supplies explicit times.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        verbose_sim: bool = False,
        clock: Callable[[], int] | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.verbose_sim = verbose_sim
        self.events: list[TraceEvent] = []
        self._clock: Callable[[], int] = clock if clock is not None else (lambda: 0)

    # -- wiring ------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Bind the time source (the simulator calls this on attach)."""
        self._clock = clock

    def now_ps(self) -> int:
        return self._clock()

    # -- generic emitters --------------------------------------------------

    def instant(self, name: str, cat: str, track: str, **args: Any) -> None:
        self.events.append(
            TraceEvent(name, cat, "i", self.now_ps(), track, args=args)
        )

    def complete(
        self,
        name: str,
        cat: str,
        track: str,
        start_ps: int,
        dur_ps: int,
        **args: Any,
    ) -> None:
        self.events.append(
            TraceEvent(name, cat, "X", start_ps, track, dur_ps, args)
        )

    # -- engine hooks ------------------------------------------------------

    def sim_event_scheduled(self, event: Any, at_ps: int) -> None:
        """Called by ``Simulator._schedule`` for every heap push."""
        self.registry.counter("sim.events.scheduled").inc()

    def sim_event_fired(self, event: Any, at_ps: int) -> None:
        """Called by ``Simulator.step`` for every event fired."""
        self.registry.counter("sim.events.fired").inc()

    def sim_event_cancelled(self, event: Any) -> None:
        """Called by ``Event.cancel`` for every abandoned wait/timer."""
        self.registry.counter("sim.events.cancelled").inc()

    def process_failed_unjoined(self, name: str, at_ps: int) -> None:
        """A failed process nobody joined, surfaced at ``run()`` exit."""
        self.registry.counter(
            "sim.process.failed_unjoined", process=name
        ).inc()
        self.events.append(
            TraceEvent(
                f"unjoined-failure:{name}", "sim.failure", "i", at_ps,
                f"process:{name}",
            )
        )

    def process_resumed(self, name: str, at_ps: int) -> None:
        """Called when a process generator is stepped."""
        self.registry.counter("sim.process.resumes", process=name).inc()
        if self.verbose_sim:
            self.instant("resume", "sim", f"process:{name}")

    def process_finished(self, name: str, at_ps: int, ok: bool) -> None:
        self.registry.counter(
            "sim.process.finished", process=name, ok=ok
        ).inc()
        if self.verbose_sim:
            self.instant("finish", "sim", f"process:{name}", ok=ok)

    # -- stream hooks ------------------------------------------------------

    def stream_put(
        self, stream: str, items: int, occupancy: int, blocked: bool
    ) -> None:
        self.registry.counter("stream.puts", stream=stream).inc()
        self.registry.counter("stream.items", stream=stream).inc(items)
        self.registry.gauge("stream.occupancy", stream=stream).set(occupancy)
        if blocked:
            self.registry.counter("stream.put_blocked", stream=stream).inc()

    def stream_get(self, stream: str, blocked: bool) -> None:
        self.registry.counter("stream.gets", stream=stream).inc()
        if blocked:
            self.registry.counter("stream.get_blocked", stream=stream).inc()

    def stream_timeout(self, stream: str, side: str, timeout_ps: int) -> None:
        """A bounded stream wait expired and the waiter was unlinked."""
        self.registry.counter(
            "stream.timeouts", stream=stream, side=side
        ).inc()
        self.instant(
            f"timeout:{side}", "stream.timeout", f"stream:{stream}",
            timeout_ps=timeout_ps,
        )

    def stream_stall(
        self, stream: str, side: str, start_ps: int, dur_ps: int
    ) -> None:
        """A resolved put/get stall: ``side`` is ``producer``/``consumer``."""
        self.registry.counter(
            "stream.stall_ps", stream=stream, side=side
        ).inc(dur_ps)
        if dur_ps > 0:
            self.complete(
                f"stall:{side}", "stream.stall", f"stream:{stream}",
                start_ps, dur_ps,
            )

    # -- kernel hooks ------------------------------------------------------

    def kernel_busy(
        self, kernel: str, start_ps: int, dur_ps: int, items: int
    ) -> None:
        self.registry.counter("kernel.busy_ps", kernel=kernel).inc(dur_ps)
        self.registry.counter("kernel.items", kernel=kernel).inc(items)
        self.complete(
            kernel, "kernel.busy", f"kernel:{kernel}", start_ps, dur_ps,
            items=items,
        )

    def kernel_stall(
        self, kernel: str, start_ps: int, dur_ps: int, kind: str
    ) -> None:
        """Time a kernel spent blocked on its input/output stream."""
        self.registry.counter(
            "kernel.stall_ps", kernel=kernel, kind=kind
        ).inc(dur_ps)
        if dur_ps > 0:
            self.complete(
                f"stall:{kind}", "kernel.stall", f"kernel:{kernel}",
                start_ps, dur_ps,
            )

    # -- network hooks -----------------------------------------------------

    def link_transfer(
        self,
        link: str,
        start_ps: int,
        dur_ps: int,
        nbytes: int,
        dst: Any = None,
    ) -> None:
        self.registry.counter("link.transfers", link=link).inc()
        self.registry.counter("link.bytes", link=link).inc(max(0, nbytes))
        self.registry.counter("link.busy_ps", link=link).inc(dur_ps)
        self.complete(
            "xfer", "link.busy", f"link:{link}", start_ps, dur_ps,
            nbytes=nbytes, dst=dst,
        )

    # -- fault-injection hooks ---------------------------------------------

    def fault_injected(
        self, kind: str, site: str, at_ps: int | None = None, **args: Any
    ) -> None:
        """An injected fault (drop / latency_spike / node_down / crash).

        ``at_ps`` lets analytic (non-simulator) call sites timestamp
        the instant explicitly; event-driven sites omit it and get the
        bound clock.  Faults land as instant events on a per-site
        ``faults:`` track so Chrome traces show them inline.
        """
        self.registry.counter("faults.injected", kind=kind, site=site).inc()
        ts = at_ps if at_ps is not None else self.now_ps()
        self.events.append(
            TraceEvent(kind, "fault", "i", ts, f"faults:{site}", args=args)
        )

    def retry_attempted(
        self, site: str, attempt: int, at_ps: int | None = None
    ) -> None:
        """A request attempt failed (drop/timeout) and will be retried."""
        self.registry.counter("faults.retries", site=site).inc()
        ts = at_ps if at_ps is not None else self.now_ps()
        self.events.append(
            TraceEvent(
                f"retry#{attempt}", "fault.retry", "i", ts, f"faults:{site}",
            )
        )

    def deadline_missed(self, site: str, at_ps: int | None = None) -> None:
        """A request exhausted its retries or blew its deadline."""
        self.registry.counter("faults.deadline_missed", site=site).inc()
        ts = at_ps if at_ps is not None else self.now_ps()
        self.events.append(
            TraceEvent("deadline-missed", "fault.deadline", "i", ts,
                       f"faults:{site}")
        )

    # -- memory hooks ------------------------------------------------------

    def memory_access(
        self,
        port: str,
        start_ps: int,
        dur_ps: int,
        nbytes: int,
        pattern: str,
    ) -> None:
        """One request occupying a FIFO-serialised memory port."""
        self.registry.counter("memory.requests", port=port).inc()
        self.registry.counter("memory.bytes", port=port).inc(max(0, nbytes))
        self.registry.counter("memory.busy_ps", port=port).inc(dur_ps)
        self.complete(
            pattern, "memory.busy", f"memory:{port}", start_ps, dur_ps,
            nbytes=nbytes,
        )

    def bank_access(
        self,
        memory: str,
        channel: int,
        n_accesses: int,
        busy_ps: int,
    ) -> None:
        """A batch's accesses landing on one channel of a banked memory."""
        self.registry.counter(
            "memory.bank_accesses", memory=memory, channel=channel
        ).inc(n_accesses)
        self.registry.counter(
            "memory.bank_busy_ps", memory=memory, channel=channel
        ).inc(busy_ps)
        if busy_ps > 0:
            start = self.now_ps()
            self.complete(
                f"ch{channel}", "memory.busy", f"bank:{memory}:ch{channel}",
                start, busy_ps, n_accesses=n_accesses,
            )

    def bank_conflict(self, memory: str, channel: int, n_regions: int) -> None:
        """Several regions' accesses serialised on one channel."""
        self.registry.counter(
            "memory.bank_conflicts", memory=memory, channel=channel
        ).inc()
        self.instant(
            f"conflict:ch{channel}", "memory.conflict",
            f"bank:{memory}:ch{channel}", regions=n_regions,
        )

    # -- dataflow hooks ----------------------------------------------------

    def dataflow_solved(
        self,
        graph: str,
        bottleneck: str,
        stage_utilisation: dict[str, float],
    ) -> None:
        """Analytic solver result: per-stage steady-state utilisation."""
        self.registry.counter("dataflow.solves", graph=graph).inc()
        for stage, util in stage_utilisation.items():
            self.registry.gauge(
                "dataflow.stage_utilisation", graph=graph, stage=stage
            ).set(util)
        self.instant(
            "solved", "dataflow", f"dataflow:{graph}", bottleneck=bottleneck
        )

    # -- analysis ----------------------------------------------------------

    def busy_by_track(self) -> dict[str, int]:
        """Total slice duration per track for ``*.busy`` categories."""
        busy: dict[str, int] = {}
        for ev in self.events:
            if ev.ph == "X" and ev.cat.endswith(".busy"):
                busy[ev.track] = busy.get(ev.track, 0) + ev.dur_ps
        return busy

    def stall_by_track(self) -> dict[str, int]:
        """Total slice duration per track for ``*.stall`` categories."""
        stall: dict[str, int] = {}
        for ev in self.events:
            if ev.ph == "X" and ev.cat.endswith(".stall"):
                stall[ev.track] = stall.get(ev.track, 0) + ev.dur_ps
        return stall

    def span_ps(self) -> int:
        """Last slice end (or instant) over all recorded events."""
        end = 0
        for ev in self.events:
            end = max(end, ev.ts_ps + ev.dur_ps)
        return end

    def utilisation_summary(self, total_ps: int | None = None) -> str:
        """Plain-text per-component busy/stall/utilisation table."""
        wall = total_ps if total_ps is not None else self.span_ps()
        busy = self.busy_by_track()
        stall = self.stall_by_track()
        tracks = sorted(set(busy) | set(stall))
        lines = ["component utilisation", "---------------------"]
        if not tracks:
            lines.append("(no slices recorded)")
            return "\n".join(lines)
        width = max(len(t) for t in tracks)
        header = (
            f"{'track'.ljust(width)}  {'busy us':>12}  {'stall us':>12}  "
            f"{'util':>6}"
        )
        lines.append(header)
        for track in tracks:
            b = busy.get(track, 0)
            s = stall.get(track, 0)
            util = b / wall if wall else 0.0
            lines.append(
                f"{track.ljust(width)}  {b / _PS_PER_US:>12.3f}  "
                f"{s / _PS_PER_US:>12.3f}  {util:>6.1%}"
            )
        lines.append(f"wall: {wall / _PS_PER_US:.3f} us over {len(tracks)} tracks")
        return "\n".join(lines)

    # -- Chrome trace_event export ----------------------------------------

    def to_chrome(self) -> dict[str, Any]:
        """The trace as a Chrome ``trace_event`` JSON object.

        Slices become ``"X"`` events, instants ``"i"``; ``ts``/``dur``
        are microseconds (the format's unit), tracks map to ``tid`` with
        ``thread_name`` metadata so Perfetto shows component names.
        """
        pid = 1
        tids: dict[str, int] = {}
        out: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro-sim"},
            }
        ]
        for ev in self.events:
            tid = tids.get(ev.track)
            if tid is None:
                tid = len(tids) + 1
                tids[ev.track] = tid
                out.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": ev.track},
                    }
                )
            record: dict[str, Any] = {
                "name": ev.name,
                "cat": ev.cat,
                "ph": ev.ph,
                "ts": ev.ts_ps / _PS_PER_US,
                "pid": pid,
                "tid": tid,
            }
            if ev.ph == "X":
                record["dur"] = ev.dur_ps / _PS_PER_US
            if ev.ph == "i":
                record["s"] = "t"  # thread-scoped instant
            if ev.args:
                record["args"] = ev.args
            out.append(record)
        return {"traceEvents": out, "displayTimeUnit": "ns"}

    def export_chrome(self, dest: str | IO[str]) -> None:
        """Write the Chrome trace JSON to a path or open file object."""
        payload = self.to_chrome()
        if hasattr(dest, "write"):
            json.dump(payload, dest)
        else:
            path = Path(dest)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", encoding="utf-8") as fp:
                json.dump(payload, fp)

    def clear(self) -> None:
        """Drop recorded events and zero the metrics."""
        self.events.clear()
        self.registry.reset()
