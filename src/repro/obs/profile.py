"""Per-component busy/stall profiling over a traced run.

:class:`Profiler` is the third piece of :mod:`repro.obs`: a context
manager that attaches a :class:`~repro.obs.trace.Tracer` for the
duration of a simulated (or analytic) region and, on exit, folds the
recorded slices into a :class:`ProfileReport` — for every kernel,
stream, link, memory port and bank track, how long it was busy, how
long it was stalled, and what fraction of the wall it was occupied.

Usage::

    sim = Simulator()
    with Profiler(sim) as prof:
        build_pipeline(sim)
        sim.run()
    print(prof.report().render())

Analytic components that never touch a simulator (e.g.
:class:`~repro.memory.banked.BankedMemory`) profile the same way — hand
them ``prof.tracer`` and the bank-busy records show up as components.
"""

from __future__ import annotations

from dataclasses import dataclass

from .trace import Tracer

__all__ = ["ComponentProfile", "ProfileReport", "Profiler"]

_PS_PER_US = 1_000_000


@dataclass(frozen=True, slots=True)
class ComponentProfile:
    """Busy/stall accounting for one track (component)."""

    track: str
    busy_ps: int
    stall_ps: int
    wall_ps: int

    @property
    def kind(self) -> str:
        """Component family: ``kernel``/``stream``/``link``/``memory``/…"""
        return self.track.split(":", 1)[0]

    @property
    def name(self) -> str:
        return self.track.split(":", 1)[-1]

    @property
    def busy_fraction(self) -> float:
        return self.busy_ps / self.wall_ps if self.wall_ps else 0.0

    @property
    def stall_fraction(self) -> float:
        return self.stall_ps / self.wall_ps if self.wall_ps else 0.0


@dataclass(frozen=True)
class ProfileReport:
    """Busy/stall breakdown for every component seen in a traced run."""

    components: tuple[ComponentProfile, ...]
    wall_ps: int

    def component(self, track: str) -> ComponentProfile:
        for comp in self.components:
            if comp.track == track or comp.name == track:
                return comp
        raise KeyError(f"no component {track!r} in profile")

    def render(self) -> str:
        """Monospace busy/stall table, busiest components first."""
        lines = [
            "busy/stall profile "
            f"(wall {self.wall_ps / _PS_PER_US:.3f} us)",
        ]
        lines.append("-" * len(lines[0]))
        if not self.components:
            lines.append("(no instrumented components ran)")
            return "\n".join(lines)
        width = max(len(c.track) for c in self.components)
        lines.append(
            f"{'component'.ljust(width)}  {'busy us':>12}  {'stall us':>12}  "
            f"{'busy%':>6}  {'stall%':>6}"
        )
        ordered = sorted(
            self.components, key=lambda c: (-c.busy_ps, c.track)
        )
        for comp in ordered:
            lines.append(
                f"{comp.track.ljust(width)}  "
                f"{comp.busy_ps / _PS_PER_US:>12.3f}  "
                f"{comp.stall_ps / _PS_PER_US:>12.3f}  "
                f"{comp.busy_fraction:>6.1%}  {comp.stall_fraction:>6.1%}"
            )
        return "\n".join(lines)


class Profiler:
    """Attach a tracer for a region and derive busy/stall on exit.

    Parameters
    ----------
    sim:
        Optional simulator to attach to; when given, its clock drives
        the tracer's timestamps and its final ``now`` is the wall time.
        When omitted (purely analytic profiling) the wall defaults to
        the last recorded slice end.
    tracer:
        Bring-your-own tracer; a fresh one is created when omitted.
    """

    def __init__(self, sim=None, tracer: Tracer | None = None) -> None:
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer()
        self._report: ProfileReport | None = None
        if sim is not None:
            sim.attach_tracer(self.tracer)

    def __enter__(self) -> "Profiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._report = self._build_report()

    def report(self, wall_ps: int | None = None) -> ProfileReport:
        """The busy/stall breakdown (recomputed if ``wall_ps`` given)."""
        if wall_ps is not None or self._report is None:
            self._report = self._build_report(wall_ps)
        return self._report

    def _build_report(self, wall_ps: int | None = None) -> ProfileReport:
        if wall_ps is None:
            if self.sim is not None:
                wall_ps = max(self.sim.now, self.tracer.span_ps())
            else:
                wall_ps = self.tracer.span_ps()
        busy = self.tracer.busy_by_track()
        stall = self.tracer.stall_by_track()
        components = tuple(
            ComponentProfile(
                track=track,
                busy_ps=busy.get(track, 0),
                stall_ps=stall.get(track, 0),
                wall_ps=wall_ps,
            )
            for track in sorted(set(busy) | set(stall))
        )
        return ProfileReport(components=components, wall_ps=wall_ps)
