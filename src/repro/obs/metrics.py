"""Lightweight metrics: counters, gauges, fixed-bucket histograms.

The registry is the accounting half of the observability layer
(:mod:`repro.obs`): instrumented components ask it for named
instruments, optionally qualified by hierarchical labels
(``kernel="filter", port="in"``), and increment them on the hot path.

Two properties drive the design:

* **zero overhead when disabled** — a disabled registry hands out
  shared null instruments whose mutators are no-ops, so instrumented
  code never needs its own ``if enabled`` check;
* **determinism** — instruments are plain Python numbers; reading or
  snapshotting them never perturbs a simulation.

``snapshot()`` returns a plain dict keyed ``name{label=value,...}`` so
results can be attached to a bench
:class:`~repro.bench.reporting.ResultTable` or serialised as JSON.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]


def _key(name: str, labels: dict[str, Any]) -> str:
    """Canonical instrument key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot add {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({_key(self.name, self.labels)}={self.value})"


class Gauge:
    """A value that can move both ways (occupancy, utilisation)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({_key(self.name, self.labels)}={self.value})"


class Histogram:
    """Fixed-bucket histogram (bucket upper bounds, plus overflow).

    ``bounds`` are inclusive upper edges in increasing order; an
    observation lands in the first bucket whose bound is >= the value,
    or in the overflow bucket.  ``sum``/``count`` allow mean recovery.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self, name: str, labels: dict[str, Any], bounds: Iterable[float]
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.counts = [0] * (len(self.bounds) + 1)  # last = overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def __repr__(self) -> str:
        return (
            f"Histogram({_key(self.name, self.labels)}: "
            f"count={self.count}, mean={self.mean:g})"
        )


class _NullCounter:
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def reset(self) -> None:
        pass

    @property
    def value(self) -> int:
        return 0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def reset(self) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    @property
    def mean(self) -> float:
        return 0.0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

_DEFAULT_BOUNDS = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12)


class MetricsRegistry:
    """A named collection of instruments with hierarchical labels.

    ``counter``/``gauge``/``histogram`` get-or-create: the same
    ``(name, labels)`` pair always returns the same instrument, so call
    sites need not cache handles (though hot paths should).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter | _NullCounter:
        if not self.enabled:
            return NULL_COUNTER
        key = _key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = Counter(name, labels)
            self._instruments[key] = inst
        elif not isinstance(inst, Counter):
            raise TypeError(f"{key!r} already registered as {type(inst).__name__}")
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge | _NullGauge:
        if not self.enabled:
            return NULL_GAUGE
        key = _key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = Gauge(name, labels)
            self._instruments[key] = inst
        elif not isinstance(inst, Gauge):
            raise TypeError(f"{key!r} already registered as {type(inst).__name__}")
        return inst

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = _DEFAULT_BOUNDS,
        **labels: Any,
    ) -> Histogram | _NullHistogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        key = _key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = Histogram(name, labels, bounds)
            self._instruments[key] = inst
        elif not isinstance(inst, Histogram):
            raise TypeError(f"{key!r} already registered as {type(inst).__name__}")
        return inst

    # -- lifecycle ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, key: str) -> bool:
        return key in self._instruments

    def get(self, key: str) -> Counter | Gauge | Histogram | None:
        """Look up an instrument by its canonical ``name{labels}`` key."""
        return self._instruments.get(key)

    def reset(self) -> None:
        """Zero every instrument (the instruments stay registered)."""
        for inst in self._instruments.values():
            inst.reset()

    def clear(self) -> None:
        """Drop every instrument."""
        self._instruments.clear()

    def snapshot(self) -> dict[str, Any]:
        """Current values as a plain, JSON-friendly dict.

        Counters and gauges map to their value; histograms map to a
        dict with ``count``, ``sum``, ``mean``, and per-bucket counts
        keyed by the bucket's upper bound (``inf`` for overflow).
        """
        out: dict[str, Any] = {}
        for key, inst in sorted(self._instruments.items()):
            if isinstance(inst, Histogram):
                buckets = {
                    f"le_{bound:g}": n
                    for bound, n in zip(inst.bounds, inst.counts)
                }
                buckets["le_inf"] = inst.counts[-1]
                out[key] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "mean": inst.mean,
                    "buckets": buckets,
                }
            else:
                out[key] = inst.value
        return out
