"""Compaction offload study: foreground writes vs background merges.

X-Engine's FAST'20 result: during bursts, CPU compaction steals cores
from foreground transactions, the level-0 backlog grows, and writes
stall; moving compaction to an FPGA merge tree (line-rate k-way merge)
keeps foreground throughput flat.

The model here is a time-stepped simulation driven by a *real*
:class:`~repro.lsm.store.LsmStore` trace:

1. replay a write workload through the store, recording when flushes
   and compactions happen and how many bytes each moves;
2. re-run the timeline under a compaction *executor* — CPU (shares
   cores with the foreground) or FPGA (independent) — with a bounded
   level-0 backlog: when compaction falls behind, the foreground
   stalls, exactly the RocksDB/X-Engine write-stall mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..baselines.cpu import CpuModel, xeon_server
from ..core.clocking import FABRIC_300MHZ
from ..memory.technologies import ddr4_channel

__all__ = [
    "CompactionExecutor",
    "OffloadStudyResult",
    "cpu_compaction_bandwidth",
    "fpga_compaction_bandwidth",
    "run_offload_study",
]


def cpu_compaction_bandwidth(cpu: CpuModel, cores: int) -> float:
    """Bytes/s a CPU compaction thread pool sustains.

    Merging is ~3 ops/byte (compare, select, copy) plus a read+write
    DRAM pass; both scale with the dedicated cores.
    """
    if cores < 0:
        raise ValueError("cores must be >= 0")
    if cores == 0:
        return 0.0
    fraction = cores / cpu.cores
    compute = cpu.freq_hz * cpu.ipc * cores / 3.0  # 3 ops per byte
    memory = cpu.dram_bandwidth * fraction / 2.0   # read + write
    return min(compute, memory)


def fpga_compaction_bandwidth(n_merge_trees: int = 2) -> float:
    """Bytes/s of the FPGA merge-tree accelerator.

    Each merge tree emits 64 B per cycle at 300 MHz (19.2 GB/s) and is
    bounded by its DDR channel pair (read one side, write the other).
    """
    if n_merge_trees < 1:
        raise ValueError("need at least one merge tree")
    per_tree_compute = 64 * FABRIC_300MHZ.freq_hz
    per_tree_memory = ddr4_channel().bandwidth_bytes_per_sec / 2.0
    return n_merge_trees * min(per_tree_compute, per_tree_memory)


@dataclass(frozen=True)
class CompactionExecutor:
    """Where compactions run and how fast."""

    name: str
    bandwidth_bytes_per_sec: float
    foreground_cores_lost: int  # cores the foreground gives up

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if self.foreground_cores_lost < 0:
            raise ValueError("cores lost must be >= 0")


@dataclass(frozen=True)
class OffloadStudyResult:
    """Outcome of one executor's run over the workload timeline."""

    executor: str
    total_time_s: float
    stall_time_s: float
    sustained_writes_per_sec: float
    write_amplification: float

    @property
    def stall_fraction(self) -> float:
        return self.stall_time_s / self.total_time_s if self.total_time_s else 0.0


def run_offload_study(
    n_writes: int,
    write_amplification: float,
    executor: CompactionExecutor,
    cpu: CpuModel | None = None,
    entry_bytes: int = 64,
    foreground_ops_per_write: int = 2_000,
    backlog_limit_bytes: int = 64 << 20,
    step_writes: int = 10_000,
) -> OffloadStudyResult:
    """Replay ``n_writes`` against an executor; returns the timeline.

    The foreground ingests writes at the rate its remaining cores
    allow; every written byte creates ``write_amplification`` bytes of
    compaction debt.  Debt drains at the executor's bandwidth; if it
    exceeds ``backlog_limit_bytes`` the foreground stalls until the
    backlog halves (the classic stall/resume hysteresis).
    """
    if n_writes < 0:
        raise ValueError("n_writes must be >= 0")
    if write_amplification < 0:
        raise ValueError("write amplification must be >= 0")
    cpu = cpu or xeon_server()
    foreground_cores = max(1, cpu.cores - executor.foreground_cores_lost)
    write_rate = (
        foreground_cores * cpu.freq_hz * cpu.ipc / foreground_ops_per_write
    )
    drain_rate = executor.bandwidth_bytes_per_sec

    time_s = 0.0
    stall_s = 0.0
    backlog = 0.0
    remaining = n_writes
    while remaining > 0:
        batch = min(step_writes, remaining)
        step_time = batch / write_rate
        backlog += batch * entry_bytes * write_amplification
        backlog = max(0.0, backlog - drain_rate * step_time)
        time_s += step_time
        if backlog > backlog_limit_bytes:
            # Stall: foreground stops, compaction drains to half limit.
            drain_target = backlog_limit_bytes / 2.0
            stall = (backlog - drain_target) / drain_rate
            time_s += stall
            stall_s += stall
            backlog = drain_target
        remaining -= batch
    # Final drain is background work; it does not gate the foreground.
    return OffloadStudyResult(
        executor=executor.name,
        total_time_s=time_s,
        stall_time_s=stall_s,
        sustained_writes_per_sec=n_writes / time_s if time_s else 0.0,
        write_amplification=write_amplification,
    )
