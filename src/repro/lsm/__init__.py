"""LSM-tree substrate and compaction offload (X-Engine, SIGMOD'19 /
FPGA-accelerated compactions, FAST'20 — the introduction's motivating
deployment).
"""

from .offload import (
    CompactionExecutor,
    OffloadStudyResult,
    cpu_compaction_bandwidth,
    fpga_compaction_bandwidth,
    run_offload_study,
)
from .store import CompactionEvent, LsmStore, SortedRun, merge_runs

__all__ = [
    "CompactionEvent",
    "CompactionExecutor",
    "LsmStore",
    "OffloadStudyResult",
    "SortedRun",
    "cpu_compaction_bandwidth",
    "fpga_compaction_bandwidth",
    "merge_runs",
    "run_offload_study",
]
