"""A leveled LSM-tree key-value store.

The tutorial's introduction motivates FPGAs with Alibaba's X-Engine,
which offloads LSM *compactions* to FPGAs to keep e-commerce latency
SLAs (Huang et al., SIGMOD'19; Zhang et al., FAST'20).  To reproduce
that experiment we first need the substrate: a real LSM store.

:class:`LsmStore` implements the standard shape — an in-memory
memtable, flushed to sorted runs in level 0, with leveled compaction
merging runs downward (newest-wins, tombstone-aware).  Keys and values
are int64 (numpy arrays inside runs); correctness (latest write wins,
deletes hide keys, iteration is sorted) is enforced by the test suite.

The store also keeps the counters the offload study needs: bytes
flushed, bytes compacted (write amplification), and per-compaction
sizes, which the simulation layer prices on CPU or FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CompactionEvent", "LsmStore", "SortedRun"]

_TOMBSTONE = np.iinfo(np.int64).min


@dataclass(frozen=True)
class SortedRun:
    """An immutable sorted run (SSTable): parallel key/value arrays.

    ``sequence`` orders runs globally: higher = newer data.
    """

    keys: np.ndarray
    values: np.ndarray
    sequence: int

    def __post_init__(self) -> None:
        if self.keys.shape != self.values.shape:
            raise ValueError("keys and values must align")
        if self.keys.size > 1 and not (np.diff(self.keys) > 0).all():
            raise ValueError("run keys must be strictly increasing")

    @property
    def nbytes(self) -> int:
        return self.keys.nbytes + self.values.nbytes

    def get(self, key: int) -> int | None:
        """Value for ``key`` in this run, or None (may be a tombstone)."""
        idx = np.searchsorted(self.keys, key)
        if idx < self.keys.size and self.keys[idx] == key:
            return int(self.values[idx])
        return None


@dataclass(frozen=True)
class CompactionEvent:
    """One compaction the store performed (input for the cost models)."""

    level: int
    input_bytes: int
    output_bytes: int
    runs_merged: int


def merge_runs(runs: list[SortedRun], drop_tombstones: bool,
               sequence: int) -> SortedRun:
    """K-way merge of runs, newest-wins per key.

    ``drop_tombstones`` is True for compactions into the last level
    (no older data can exist below, so deletions can be forgotten).
    """
    if not runs:
        raise ValueError("nothing to merge")
    # Newest-wins: concatenate with per-run sequence, stable-sort by
    # (key, -sequence) and keep the first occurrence of each key.
    keys = np.concatenate([r.keys for r in runs])
    values = np.concatenate([r.values for r in runs])
    seqs = np.concatenate([
        np.full(r.keys.size, r.sequence, dtype=np.int64) for r in runs
    ])
    order = np.lexsort((-seqs, keys))
    keys, values = keys[order], values[order]
    first = np.ones(keys.size, dtype=bool)
    first[1:] = keys[1:] != keys[:-1]
    keys, values = keys[first], values[first]
    if drop_tombstones:
        alive = values != _TOMBSTONE
        keys, values = keys[alive], values[alive]
    return SortedRun(keys=keys, values=values, sequence=sequence)


class LsmStore:
    """A leveled LSM tree over int64 keys and values.

    Parameters
    ----------
    memtable_limit:
        Entries buffered before a flush to level 0.
    level0_limit:
        Runs allowed in level 0 before compacting into level 1.
    fanout:
        Size ratio between adjacent levels (level ``i`` holds up to
        ``level0_limit * fanout**i`` runs' worth of data, standard
        leveled compaction).
    """

    def __init__(self, memtable_limit: int = 4096, level0_limit: int = 4,
                 fanout: int = 4) -> None:
        if memtable_limit < 1:
            raise ValueError("memtable_limit must be >= 1")
        if level0_limit < 1:
            raise ValueError("level0_limit must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.memtable_limit = memtable_limit
        self.level0_limit = level0_limit
        self.fanout = fanout
        self._memtable: dict[int, int] = {}
        self.levels: list[list[SortedRun]] = [[]]
        self._sequence = 0
        # Offload-study counters.
        self.bytes_flushed = 0
        self.bytes_compacted = 0
        self.compactions: list[CompactionEvent] = []

    # -- write path -----------------------------------------------------------

    def put(self, key: int, value: int) -> None:
        """Insert or overwrite a key."""
        if value == _TOMBSTONE:
            raise ValueError("value reserved as the tombstone marker")
        self._memtable[int(key)] = int(value)
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def delete(self, key: int) -> None:
        """Delete a key (tombstone)."""
        self._memtable[int(key)] = _TOMBSTONE
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def put_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Bulk insert (same semantics as repeated :meth:`put`)."""
        for key, value in zip(keys.tolist(), values.tolist()):
            self.put(key, value)

    def flush(self) -> None:
        """Write the memtable as a new level-0 run."""
        if not self._memtable:
            return
        items = sorted(self._memtable.items())
        keys = np.array([k for k, _ in items], dtype=np.int64)
        values = np.array([v for _, v in items], dtype=np.int64)
        self._sequence += 1
        run = SortedRun(keys=keys, values=values, sequence=self._sequence)
        self.levels[0].append(run)
        self.bytes_flushed += run.nbytes
        self._memtable.clear()
        self._maybe_compact()

    # -- compaction -------------------------------------------------------------

    def _level_capacity_bytes(self, level: int) -> int:
        base = self.level0_limit * self.memtable_limit * 16
        return base * (self.fanout ** level)

    def _maybe_compact(self) -> None:
        level = 0
        while level < len(self.levels):
            too_many_runs = (
                level == 0 and len(self.levels[level]) > self.level0_limit
            )
            too_big = (
                level > 0
                and sum(r.nbytes for r in self.levels[level])
                > self._level_capacity_bytes(level)
            )
            if too_many_runs or too_big:
                self._compact_level(level)
            level += 1

    def _compact_level(self, level: int) -> None:
        """Merge every run of ``level`` (plus the next level) downward."""
        if level + 1 >= len(self.levels):
            self.levels.append([])
        inputs = self.levels[level] + self.levels[level + 1]
        if not inputs:
            return
        input_bytes = sum(r.nbytes for r in inputs)
        self._sequence += 1
        merged = merge_runs(
            inputs,
            drop_tombstones=(level + 1 == len(self.levels) - 1),
            sequence=self._sequence,
        )
        self.levels[level] = []
        self.levels[level + 1] = [merged] if merged.keys.size else []
        self.bytes_compacted += input_bytes
        self.compactions.append(
            CompactionEvent(
                level=level,
                input_bytes=input_bytes,
                output_bytes=merged.nbytes,
                runs_merged=len(inputs),
            )
        )

    # -- read path -----------------------------------------------------------------

    def get(self, key: int) -> int | None:
        """Latest value for ``key`` or None (deleted/absent)."""
        key = int(key)
        if key in self._memtable:
            value = self._memtable[key]
            return None if value == _TOMBSTONE else value
        best_seq = -1
        best_value: int | None = None
        for level in self.levels:
            for run in level:
                value = run.get(key)
                if value is not None and run.sequence > best_seq:
                    best_seq = run.sequence
                    best_value = value
        if best_value is None or best_value == _TOMBSTONE:
            return None
        return best_value

    def items(self) -> list[tuple[int, int]]:
        """All live (key, value) pairs, sorted by key."""
        latest: dict[int, tuple[int, int]] = {}
        for level in self.levels:
            for run in level:
                for key, value in zip(run.keys.tolist(), run.values.tolist()):
                    seq, _ = latest.get(key, (-1, 0))
                    if run.sequence > seq:
                        latest[key] = (run.sequence, value)
        for key, value in self._memtable.items():
            latest[key] = (self._sequence + 1, value)
        return sorted(
            (key, value) for key, (_, value) in latest.items()
            if value != _TOMBSTONE
        )

    @property
    def n_live_keys(self) -> int:
        return len(self.items())

    @property
    def write_amplification(self) -> float:
        """Compacted bytes per flushed byte (the offload-study quantity)."""
        if self.bytes_flushed == 0:
            return 0.0
        return self.bytes_compacted / self.bytes_flushed
