"""A bucketized open-addressing hash table over numpy storage.

The data structure under the KV-Direct use case (intro of the paper):
fixed-size buckets of a few slots, linear probing across buckets —
the layout a hardware pipeline likes, because a lookup is a bounded
number of wide, independent memory reads.

Functional semantics are exact (tested against a dict model); the
``probe`` counters feed the performance models in
:mod:`repro.kvstore.server`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HashTable"]

_EMPTY = np.iinfo(np.int64).min
_DELETED = np.iinfo(np.int64).min + 1


class HashTable:
    """Bucketized linear-probing hash table (int64 keys and values)."""

    def __init__(self, n_buckets: int = 1024, slots_per_bucket: int = 8) -> None:
        if n_buckets < 1 or n_buckets & (n_buckets - 1):
            raise ValueError("n_buckets must be a positive power of two")
        if slots_per_bucket < 1:
            raise ValueError("slots_per_bucket must be >= 1")
        self.n_buckets = n_buckets
        self.slots_per_bucket = slots_per_bucket
        self._keys = np.full(
            (n_buckets, slots_per_bucket), _EMPTY, dtype=np.int64
        )
        self._values = np.zeros((n_buckets, slots_per_bucket), dtype=np.int64)
        self.n_entries = 0
        self.bucket_probes = 0
        self.operations = 0

    def _bucket_of(self, key: int) -> int:
        x = ((key & 0xFFFFFFFFFFFFFFFF) * 0x9E3779B97F4A7C15) \
            & 0xFFFFFFFFFFFFFFFF
        return (x >> 40) % self.n_buckets

    @property
    def capacity(self) -> int:
        return self.n_buckets * self.slots_per_bucket

    @property
    def load_factor(self) -> float:
        return self.n_entries / self.capacity

    @property
    def nbytes(self) -> int:
        return self._keys.nbytes + self._values.nbytes

    def _check_key(self, key: int) -> int:
        key = int(key)
        if key in (_EMPTY, _DELETED):
            raise ValueError("key collides with a sentinel value")
        return key

    def put(self, key: int, value: int) -> None:
        """Insert or overwrite; raises when the table is full."""
        key = self._check_key(key)
        self.operations += 1
        first_free: tuple[int, int] | None = None
        bucket = self._bucket_of(key)
        for probe in range(self.n_buckets):
            b = (bucket + probe) % self.n_buckets
            self.bucket_probes += 1
            row = self._keys[b]
            match = np.flatnonzero(row == key)
            if match.size:
                self._values[b, match[0]] = value
                return
            if first_free is None:
                free = np.flatnonzero((row == _EMPTY) | (row == _DELETED))
                if free.size:
                    first_free = (b, int(free[0]))
            if (row == _EMPTY).any():
                break  # key cannot live beyond the first truly-empty slot
        if first_free is None:
            raise MemoryError("hash table full")
        b, slot = first_free
        self._keys[b, slot] = key
        self._values[b, slot] = value
        self.n_entries += 1

    def get(self, key: int) -> int | None:
        """Value for ``key`` or None."""
        key = self._check_key(key)
        self.operations += 1
        bucket = self._bucket_of(key)
        for probe in range(self.n_buckets):
            b = (bucket + probe) % self.n_buckets
            self.bucket_probes += 1
            row = self._keys[b]
            match = np.flatnonzero(row == key)
            if match.size:
                return int(self._values[b, match[0]])
            if (row == _EMPTY).any():
                return None
        return None

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns whether it existed."""
        key = self._check_key(key)
        self.operations += 1
        bucket = self._bucket_of(key)
        for probe in range(self.n_buckets):
            b = (bucket + probe) % self.n_buckets
            self.bucket_probes += 1
            row = self._keys[b]
            match = np.flatnonzero(row == key)
            if match.size:
                self._keys[b, match[0]] = _DELETED
                self.n_entries -= 1
                return True
            if (row == _EMPTY).any():
                return False
        return False

    @property
    def mean_probes_per_op(self) -> float:
        """Average bucket reads per operation (drives the cost models)."""
        if self.operations == 0:
            return 0.0
        return self.bucket_probes / self.operations
