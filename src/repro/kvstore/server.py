"""KV-Direct-style smart-NIC key-value serving vs a software server.

KV-Direct (SOSP'17, cited in the paper's introduction) puts the KV
processing on an FPGA NIC: requests never touch the host CPU; the NIC
pipeline hashes, probes host memory over DMA (or on-board DRAM), and
replies — throughput becomes a memory/network question instead of a
cores question.

Two servers share the functional :class:`~repro.kvstore.hashtable.HashTable`:

* :class:`SmartNicKvServer` — NIC datapath; per-op cost is bounded by
  the network message rate and the memory's batched random-read rate;
* :class:`SoftwareKvServer` — kernel TCP per request batch + CPU hash
  probing + host DRAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines.cpu import CpuModel, xeon_server
from ..core.clocking import FABRIC_300MHZ
from ..faults.plan import FaultPlan
from ..faults.retry import DeadlineExceeded, RetryPolicy, analytic_retries
from ..memory.model import MemoryModel
from ..memory.technologies import ddr4_channel
from ..network.protocol import ProtocolModel, fpga_rdma, kernel_tcp
from .hashtable import HashTable

__all__ = [
    "FaultyKvOutcome",
    "KvOutcome",
    "SmartNicKvServer",
    "SoftwareKvServer",
]

_REQUEST_BYTES = 40   # opcode + key + metadata
_PS = 1_000_000_000_000


@dataclass(frozen=True)
class KvOutcome:
    """Results + timing for a batch of KV operations."""

    values: list[int | None]
    batch_time_s: float
    ops_per_sec: float
    op_latency_s: float


@dataclass(frozen=True)
class FaultyKvOutcome:
    """A batch served under an injected fault plan.

    ``op_latencies_s`` carries per-op response times (deadline misses
    censored at the deadline); ``goodput_ops_per_sec`` counts only
    completed ops over the retry-inflated batch time.
    """

    base: KvOutcome
    op_latencies_s: list[float]
    retries: int
    deadline_misses: int
    goodput_ops_per_sec: float

    def percentile_s(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] over all ops."""
        if not self.op_latencies_s:
            return 0.0
        return float(np.percentile(np.array(self.op_latencies_s), q))

    @property
    def p50_s(self) -> float:
        return self.percentile_s(50.0)

    @property
    def p99_s(self) -> float:
        return self.percentile_s(99.0)


class _KvServerBase:
    """Shared functional request execution."""

    def __init__(self, table: HashTable) -> None:
        self.table = table

    def serve_with_faults(
        self,
        ops: list[tuple[str, int, int]],
        faults: FaultPlan,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
    ) -> FaultyKvOutcome:
        """Serve a batch while ``faults`` drops/delays individual ops.

        Functional results are those of :meth:`serve`; the timing is
        re-derived per op through the analytic retry loop at site
        ``"kvstore"``.  Ops that exhaust their retries or deadline are
        counted in ``deadline_misses`` and censored at the budget.
        """
        policy = retry or RetryPolicy()
        base = self.serve(ops)
        latencies: list[float] = []
        retries = 0
        misses = 0
        attempts_total = 0
        for _ in ops:
            try:
                latency, attempts, op_retries = analytic_retries(
                    "kvstore", base.op_latency_s, faults, policy, deadline_s
                )
            except DeadlineExceeded:
                misses += 1
                attempts_total += policy.max_attempts
                budget = (
                    deadline_s
                    if deadline_s is not None
                    else policy.max_attempts
                    * (policy.timeout_ps or 0)
                    / _PS
                )
                latencies.append(budget)
            else:
                retries += op_retries
                attempts_total += attempts
                latencies.append(latency)
        n = len(ops)
        goodput = 0.0
        if n and base.batch_time_s > 0:
            # Retry traffic inflates the batch linearly in attempts.
            effective_batch_s = base.batch_time_s * attempts_total / n
            goodput = (n - misses) / effective_batch_s
        return FaultyKvOutcome(
            base=base,
            op_latencies_s=latencies,
            retries=retries,
            deadline_misses=misses,
            goodput_ops_per_sec=goodput,
        )

    def _execute(self, ops: list[tuple[str, int, int]]) -> list[int | None]:
        results: list[int | None] = []
        for op, key, value in ops:
            if op == "get":
                results.append(self.table.get(key))
            elif op == "put":
                self.table.put(key, value)
                results.append(value)
            elif op == "delete":
                results.append(1 if self.table.delete(key) else None)
            else:
                raise ValueError(f"unknown op {op!r}")
        return results


class SmartNicKvServer(_KvServerBase):
    """The FPGA NIC server: network in, memory probe, network out."""

    def __init__(
        self,
        table: HashTable,
        protocol: ProtocolModel | None = None,
        memory: MemoryModel | None = None,
        n_memory_channels: int = 4,
        value_bytes: int = 64,
    ) -> None:
        super().__init__(table)
        if n_memory_channels < 1:
            raise ValueError("need at least one memory channel")
        if value_bytes < 1:
            raise ValueError("value_bytes must be >= 1")
        self.protocol = protocol or fpga_rdma()
        self.memory = memory or ddr4_channel()
        self.n_memory_channels = n_memory_channels
        self.value_bytes = value_bytes

    def _bucket_bytes(self) -> int:
        return self.table.slots_per_bucket * 16 + self.value_bytes

    def serve(self, ops: list[tuple[str, int, int]]) -> KvOutcome:
        """Execute a pipelined batch of operations."""
        before = self.table.bucket_probes
        values = self._execute(ops)
        probes = self.table.bucket_probes - before
        n = len(ops)
        if n == 0:
            return KvOutcome(values, 0.0, 0.0, 0.0)
        # Throughput: the slower of network message rate and batched
        # random memory reads spread over the channels.
        wire_per_op = max(
            self.protocol.link.serialization_ps(_REQUEST_BYTES),
            self.protocol.link.serialization_ps(self.value_bytes),
        )
        per_channel = math.ceil(probes / self.n_memory_channels)
        memory_ps = self.memory.batch_random_time_ps(
            per_channel, self._bucket_bytes()
        )
        pipeline_ps = FABRIC_300MHZ.cycles_to_ps(20)  # hash + FSM depth
        batch_ps = max(n * wire_per_op, memory_ps) + pipeline_ps
        # Latency of one op: request + probe + response.
        latency_ps = (
            self.protocol.message_ps(_REQUEST_BYTES)
            + self.memory.random_access_time_ps(self._bucket_bytes())
            + pipeline_ps
            + self.protocol.message_ps(self.value_bytes)
        )
        return KvOutcome(
            values=values,
            batch_time_s=batch_ps / _PS,
            ops_per_sec=n * _PS / batch_ps,
            op_latency_s=latency_ps / _PS,
        )


class SoftwareKvServer(_KvServerBase):
    """A conventional server: kernel TCP + CPU probing + host DRAM."""

    def __init__(
        self,
        table: HashTable,
        protocol: ProtocolModel | None = None,
        cpu: CpuModel | None = None,
        value_bytes: int = 64,
    ) -> None:
        super().__init__(table)
        if value_bytes < 1:
            raise ValueError("value_bytes must be >= 1")
        self.protocol = protocol or kernel_tcp()
        self.cpu = cpu or xeon_server()
        self.value_bytes = value_bytes

    def serve(self, ops: list[tuple[str, int, int]]) -> KvOutcome:
        """Execute a batch; requests cross the kernel stack."""
        before = self.table.bucket_probes
        values = self._execute(ops)
        probes = self.table.bucket_probes - before
        n = len(ops)
        if n == 0:
            return KvOutcome(values, 0.0, 0.0, 0.0)
        bucket_bytes = self.table.slots_per_bucket * 16 + self.value_bytes
        # Per-op network processing dominates a software KV server.
        stack_s = n * (
            self.protocol.send_overhead_ps + self.protocol.recv_overhead_ps
        ) / _PS / self.cpu.cores  # cores handle connections in parallel
        probe_s = self.cpu.random_access_time_s(
            probes, bucket_bytes, working_set_bytes=self.table.nbytes
        )
        compute_s = self.cpu.compute_time_s(
            60 * n, element_bytes=self.cpu.simd_bytes
        )
        batch_s = max(stack_s, probe_s + compute_s)
        latency_s = (
            self.protocol.message_ps(_REQUEST_BYTES) / _PS
            + self.cpu.dram_latency_s * 2
            + self.protocol.message_ps(self.value_bytes) / _PS
        )
        return KvOutcome(
            values=values,
            batch_time_s=batch_s,
            ops_per_sec=n / batch_s,
            op_latency_s=latency_s,
        )
