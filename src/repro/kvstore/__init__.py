"""KV-Direct-style smart-NIC key-value store (Li et al., SOSP 2017 —
the introduction's RDMA/SmartNIC deployment example).
"""

from .hashtable import HashTable
from .server import KvOutcome, SmartNicKvServer, SoftwareKvServer

__all__ = ["HashTable", "KvOutcome", "SmartNicKvServer", "SoftwareKvServer"]
