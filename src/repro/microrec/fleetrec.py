"""FleetRec: recommendation inference on a hybrid GPU-FPGA cluster.

FleetRec (KDD 2021, the tutorial's third-use-case companion system)
disaggregates the two inference stages onto the hardware each prefers:
FPGA nodes serve the memory-bound embedding lookups out of HBM, GPU
nodes run the compute-bound DNN, and a network carries the gathered
feature vectors between them.  The point is *independent scaling*: big
MLPs stop starving the lookup pipeline and vice versa.

:class:`GpuModel` is a roofline GPU (tensor-core FLOP/s, HBM bandwidth,
kernel-launch latency); :class:`FleetRecCluster` composes lookup nodes,
GPU nodes and the fabric into a staged pipeline and reports the same
outcome shape as :class:`~repro.microrec.accelerator.MicroRecAccelerator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..network.fabric import SwitchedFabric
from ..network.protocol import ProtocolModel, fpga_tcp
from .accelerator import MicroRecAccelerator, MicroRecConfig
from .embedding import EmbeddingTables

__all__ = ["FleetRecCluster", "FleetRecOutcome", "GpuModel", "V100", "A100"]


@dataclass(frozen=True)
class GpuModel:
    """A roofline GPU for dense inference."""

    name: str
    flops: float                  # dense fp16/fp32 MAC/s sustained
    hbm_bandwidth: float          # bytes/s
    kernel_launch_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.flops <= 0 or self.hbm_bandwidth <= 0:
            raise ValueError("rates must be positive")
        if self.kernel_launch_s < 0:
            raise ValueError("launch latency must be >= 0")

    def mlp_time_s(self, macs: int, weight_bytes: int, batch: int) -> float:
        """Batched MLP time: launch + max(compute, weight traffic).

        Weights are re-read per batch (they exceed L2 for production
        models); activations are negligible next to them.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        compute = batch * macs / self.flops
        memory = weight_bytes / self.hbm_bandwidth
        return self.kernel_launch_s + max(compute, memory)


V100 = GpuModel(name="V100", flops=14e12, hbm_bandwidth=900e9)
A100 = GpuModel(name="A100", flops=78e12, hbm_bandwidth=1555e9)


@dataclass(frozen=True)
class FleetRecOutcome:
    """Logits plus the staged-pipeline timing."""

    logits: np.ndarray
    lookup_s: float     # FPGA tier, for the batch
    network_s: float    # feature shipping, for the batch
    dnn_s: float        # GPU tier, for the batch
    latency_s: float    # one inference end to end
    batch_time_s: float
    qps: float


class FleetRecCluster:
    """``n_lookup_nodes`` FPGA lookup nodes + ``n_gpu_nodes`` GPUs."""

    def __init__(
        self,
        tables: EmbeddingTables,
        n_lookup_nodes: int = 1,
        n_gpu_nodes: int = 1,
        gpu: GpuModel = V100,
        config: MicroRecConfig = MicroRecConfig(),
        protocol: ProtocolModel | None = None,
        seed: int = 0,
    ) -> None:
        if n_lookup_nodes < 1 or n_gpu_nodes < 1:
            raise ValueError("need at least one node per tier")
        self.tables = tables
        self.n_lookup_nodes = n_lookup_nodes
        self.n_gpu_nodes = n_gpu_nodes
        self.gpu = gpu
        # Each lookup node serves a slice of the tables; we model the
        # tier with one accelerator handling 1/N of the lookups.
        self._lookup_node = MicroRecAccelerator(
            tables, config=config, seed=seed
        )
        self.fabric = SwitchedFabric(
            protocol or fpga_tcp(), n_lookup_nodes + n_gpu_nodes
        )
        self.mlp = self._lookup_node.mlp
        self._feature_bytes = tables.spec.concat_width * 4

    def _lookup_tier_s(self, batch: int) -> float:
        per_node_batch = math.ceil(batch / self.n_lookup_nodes)
        return self._lookup_node.lookup_time_s(per_node_batch)

    def _network_s(self, batch: int) -> float:
        nbytes = batch * self._feature_bytes
        share = math.ceil(nbytes / self.n_lookup_nodes)
        return self.fabric.message_ps(0, self.n_lookup_nodes, share) / 1e12

    def _gpu_tier_s(self, batch: int) -> float:
        per_gpu = math.ceil(batch / self.n_gpu_nodes)
        return self.gpu.mlp_time_s(
            self.mlp.n_macs, self.mlp.weight_nbytes, per_gpu
        )

    def infer(self, trace: np.ndarray) -> FleetRecOutcome:
        """Run a batch through lookup tier -> network -> GPU tier."""
        trace = np.asarray(trace)
        batch = trace.shape[0]
        if batch < 1:
            raise ValueError("batch must contain at least one inference")
        features = self.tables.lookup(trace)
        logits = self.mlp.forward(features)
        lookup_s = self._lookup_tier_s(batch)
        network_s = self._network_s(batch)
        dnn_s = self._gpu_tier_s(batch)
        latency = (
            self._lookup_tier_s(1) + self._network_s(1) + self._gpu_tier_s(1)
        )
        batch_time = max(lookup_s, network_s, dnn_s) + min(
            lookup_s, network_s, dnn_s
        )
        return FleetRecOutcome(
            logits=logits,
            lookup_s=lookup_s,
            network_s=network_s,
            dnn_s=dnn_s,
            latency_s=latency,
            batch_time_s=batch_time,
            qps=batch / batch_time,
        )
