"""Cartesian-product table combining — MicroRec's data-structure trick.

Two embedding tables of ``a`` and ``b`` rows can be replaced by one
table of ``a x b`` rows whose entry ``(i, j)`` stores the concatenation
of the two original embeddings.  One lookup then replaces two, at the
price of ``a x b / (a + b)`` times the memory.  Applied to the *small*
tables, this cuts the number of memory accesses per inference — the
dominant cost — while the capacity overhead stays affordable.

:class:`CartesianPlan` picks which tables to combine under a byte
budget (greedily, smallest product first, exactly the heuristic the
MicroRec paper describes) and rewrites model spec, lookup traces, and
materialised tables consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.traces import RecModelSpec
from .embedding import EmbeddingTables

__all__ = ["CartesianPlan", "plan_cartesian"]


@dataclass(frozen=True)
class CartesianPlan:
    """Which original tables merge into which combined tables.

    ``groups[g]`` is a tuple of original table indices that fused into
    combined table ``g`` (singleton groups are uncombined tables).
    Combined row id = row-major mixed-radix encoding of the member ids.
    """

    spec: RecModelSpec
    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        flat = [t for group in self.groups for t in group]
        if sorted(flat) != list(range(self.spec.n_tables)):
            raise ValueError(
                "groups must partition the original tables exactly once"
            )
        if any(not group for group in self.groups):
            raise ValueError("empty group")

    @property
    def n_lookups(self) -> int:
        """Memory accesses per inference after combining."""
        return len(self.groups)

    @property
    def lookups_saved(self) -> int:
        return self.spec.n_tables - self.n_lookups

    def combined_spec(self) -> RecModelSpec:
        """The model spec after combining (same MLP, wider rows)."""
        rows = tuple(
            int(np.prod([self.spec.table_rows[t] for t in group]))
            for group in self.groups
        )
        # Embedding "dim" per combined table varies; RecModelSpec assumes
        # uniform dim, so we keep the original spec's total width by
        # tracking dims separately (see combined_dims).
        return RecModelSpec(
            table_rows=rows,
            embedding_dim=self.spec.embedding_dim,
            mlp_layers=self.spec.mlp_layers,
            bytes_per_value=self.spec.bytes_per_value,
            extra_dense_features=self.spec.extra_dense_features,
        )

    def combined_dims(self) -> tuple[int, ...]:
        """Embedding width of each combined table."""
        return tuple(
            len(group) * self.spec.embedding_dim for group in self.groups
        )

    def combined_row_bytes(self) -> tuple[int, ...]:
        """Bytes of one row of each combined table."""
        return tuple(
            d * self.spec.bytes_per_value for d in self.combined_dims()
        )

    def combined_table_bytes(self) -> tuple[int, ...]:
        """Total bytes of each combined table."""
        rows = self.combined_spec().table_rows
        return tuple(r * b for r, b in zip(rows, self.combined_row_bytes()))

    @property
    def total_bytes(self) -> int:
        return sum(self.combined_table_bytes())

    @property
    def capacity_overhead(self) -> float:
        """Combined bytes / original bytes."""
        return self.total_bytes / max(1, self.spec.total_embedding_bytes)

    # -- rewriting ------------------------------------------------------------

    def rewrite_trace(self, trace: np.ndarray) -> np.ndarray:
        """Map an original ``(batch, n_tables)`` trace to combined ids."""
        trace = np.asarray(trace)
        if trace.ndim != 2 or trace.shape[1] != self.spec.n_tables:
            raise ValueError(
                f"trace must be (batch, {self.spec.n_tables})"
            )
        out = np.empty((trace.shape[0], self.n_lookups), dtype=np.int64)
        for g, group in enumerate(self.groups):
            combined = np.zeros(trace.shape[0], dtype=np.int64)
            for t in group:
                combined = combined * self.spec.table_rows[t] + trace[:, t]
            out[:, g] = combined
        return out

    def materialize(self, tables: EmbeddingTables) -> list[np.ndarray]:
        """Build the combined tables' arrays from the original tables.

        Combined entry rows concatenate member embeddings in group
        order, consistent with :meth:`rewrite_trace`'s id encoding.
        """
        if tables.spec is not self.spec and tables.spec != self.spec:
            raise ValueError("tables were built from a different spec")
        combined: list[np.ndarray] = []
        for group in self.groups:
            arrays = [tables.tables[t] for t in group]
            grids = np.meshgrid(
                *[np.arange(a.shape[0]) for a in arrays], indexing="ij"
            )
            parts = [
                a[g.reshape(-1)] for a, g in zip(arrays, grids)
            ]
            combined.append(np.concatenate(parts, axis=1))
        return combined

    def lookup(self, tables: EmbeddingTables, trace: np.ndarray) -> np.ndarray:
        """Functional lookup through the combined layout.

        Equivalent to ``tables.lookup(trace)`` up to a column
        permutation (grouped tables concatenate adjacently); the result
        here is returned in *original table order* so it is exactly
        equal to the uncombined lookup.
        """
        trace = np.asarray(trace)
        combined_tables = self.materialize(tables)
        combined_trace = self.rewrite_trace(trace)
        dim = self.spec.embedding_dim
        out = np.empty(
            (trace.shape[0], self.spec.n_tables * dim), dtype=np.float32
        )
        for g, group in enumerate(self.groups):
            rows = combined_tables[g][combined_trace[:, g]]
            for pos, t in enumerate(group):
                out[:, t * dim:(t + 1) * dim] = rows[:, pos * dim:(pos + 1) * dim]
        return out


def plan_cartesian(
    spec: RecModelSpec,
    byte_budget: int,
    max_group_rows: int = 1 << 22,
) -> CartesianPlan:
    """Greedily combine the smallest tables under a byte budget.

    Repeatedly fuse the two groups with the smallest row-count product
    while (a) the fused group stays under ``max_group_rows`` rows and
    (b) the total materialised size stays within ``byte_budget``.
    ``byte_budget <= original size`` yields the identity plan.
    """
    if byte_budget < 0:
        raise ValueError("byte budget must be >= 0")
    groups: list[tuple[int, ...]] = [(t,) for t in range(spec.n_tables)]

    def group_rows(group: tuple[int, ...]) -> int:
        return int(np.prod([spec.table_rows[t] for t in group]))

    def group_bytes(group: tuple[int, ...]) -> int:
        return (
            group_rows(group)
            * len(group)
            * spec.embedding_dim
            * spec.bytes_per_value
        )

    while len(groups) > 1:
        # Candidate: fuse the two groups with the smallest row counts.
        order = sorted(range(len(groups)), key=lambda i: group_rows(groups[i]))
        a, b = order[0], order[1]
        fused = tuple(sorted(groups[a] + groups[b]))
        if group_rows(fused) > max_group_rows:
            break
        trial = [g for i, g in enumerate(groups) if i not in (a, b)] + [fused]
        total = sum(group_bytes(g) for g in trial)
        if total > byte_budget:
            break
        groups = trial
    groups.sort()
    return CartesianPlan(spec=spec, groups=tuple(groups))
