"""The fully-connected CTR head: functional MLP + FPGA timing.

After the embedding lookups, a recommendation inference concatenates
the vectors and runs a small MLP down to one click-through-rate logit.
:class:`Mlp` is the functional network (ReLU hidden layers, linear
output); :func:`fpga_mlp_latency_s` prices one inference on a DSP
systolic array (the "low-latency DNN computation" half of Figure 5).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.clocking import FABRIC_300MHZ, ClockDomain

__all__ = ["Mlp", "fpga_mlp_latency_s"]


class Mlp:
    """A ReLU MLP with a linear scalar output."""

    def __init__(
        self,
        input_width: int,
        hidden_layers: tuple[int, ...],
        seed: int = 0,
    ) -> None:
        if input_width < 1:
            raise ValueError("input width must be >= 1")
        if any(w < 1 for w in hidden_layers):
            raise ValueError("hidden widths must be >= 1")
        rng = np.random.default_rng(seed)
        widths = (input_width, *hidden_layers, 1)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(widths[:-1], widths[1:]):
            scale = math.sqrt(2.0 / fan_in)
            self.weights.append(
                (rng.standard_normal((fan_in, fan_out)) * scale).astype(
                    np.float32
                )
            )
            self.biases.append(
                (rng.standard_normal(fan_out) * 0.1).astype(np.float32)
            )
        self.widths = widths

    @property
    def n_macs(self) -> int:
        """Multiply-accumulates of one inference."""
        return sum(w.size for w in self.weights)

    @property
    def weight_nbytes(self) -> int:
        return sum(w.nbytes for w in self.weights)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batched forward pass; returns ``(batch,)`` logits."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.widths[0]:
            raise ValueError(
                f"input must be (batch, {self.widths[0]}), got {x.shape}"
            )
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i != last:
                np.maximum(h, 0.0, out=h)
        return h[:, 0]


def fpga_mlp_latency_s(
    mlp: Mlp,
    n_dsp_macs: int = 2048,
    clock: ClockDomain = FABRIC_300MHZ,
    pipeline_depth: int = 32,
) -> float:
    """One inference through a DSP systolic array.

    Layer ``l`` takes ``ceil(macs_l / n_dsp_macs)`` cycles (the array
    is time-multiplexed across layers); weights are on-chip so no
    memory term.  ``pipeline_depth`` covers accumulation/activation
    latency per layer.
    """
    if n_dsp_macs < 1:
        raise ValueError("need at least one MAC unit")
    cycles = sum(
        math.ceil(w.size / n_dsp_macs) + pipeline_depth for w in mlp.weights
    )
    return clock.cycles_to_seconds(cycles)
