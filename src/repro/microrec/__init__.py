"""Use Case III — MicroRec: recommendation inference with Cartesian
products and HBM-banked embedding lookups (Jiang et al., MLSys 2021;
Figures 4-5 of the tutorial).
"""

from .accelerator import (
    InferenceOutcome,
    MicroRecAccelerator,
    MicroRecConfig,
    Placement,
)
from .cartesian import CartesianPlan, plan_cartesian
from .cpu_baseline import CpuInferenceOutcome, CpuRecommender
from .dnn import Mlp, fpga_mlp_latency_s
from .embedding import EmbeddingTables
from .fleetrec import A100, FleetRecCluster, FleetRecOutcome, GpuModel, V100

__all__ = [
    "A100",
    "CartesianPlan",
    "CpuInferenceOutcome",
    "CpuRecommender",
    "EmbeddingTables",
    "FleetRecCluster",
    "FleetRecOutcome",
    "GpuModel",
    "InferenceOutcome",
    "MicroRecAccelerator",
    "MicroRecConfig",
    "Mlp",
    "Placement",
    "V100",
    "fpga_mlp_latency_s",
    "plan_cartesian",
]
