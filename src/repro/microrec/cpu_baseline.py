"""CPU recommendation-inference baseline.

The CPU runs the same functional path (gather embeddings, run the MLP)
with roofline timing: each embedding read is a dependent random DRAM
access (tables far exceed the LLC), and the MLP is a GEMV per
inference.  This is the inference stack MicroRec reports one order of
magnitude of latency against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.cpu import CpuModel, xeon_server
from .dnn import Mlp
from .embedding import EmbeddingTables

__all__ = ["CpuInferenceOutcome", "CpuRecommender"]


@dataclass(frozen=True)
class CpuInferenceOutcome:
    """Logits plus modeled CPU timing."""

    logits: np.ndarray
    lookup_s: float
    dnn_s: float
    latency_s: float      # one inference, one core
    batch_time_s: float   # whole batch, all cores
    qps: float


class CpuRecommender:
    """The same model served from CPU DRAM."""

    def __init__(
        self,
        tables: EmbeddingTables,
        cpu: CpuModel | None = None,
        seed: int = 0,
    ) -> None:
        self.tables = tables
        self.cpu = cpu or xeon_server()
        spec = tables.spec
        self.mlp = Mlp(spec.concat_width, spec.mlp_layers, seed=seed)

    def _lookup_time_s(self, batch: int, parallel: bool) -> float:
        spec = self.tables.spec
        return self.cpu.random_access_time_s(
            n_accesses=batch * spec.n_tables,
            bytes_each=spec.embedding_bytes,
            working_set_bytes=self.tables.total_nbytes,
            parallel=parallel,
        )

    def _dnn_time_s(self, batch: int, parallel: bool) -> float:
        per = sum(
            self.cpu.gemv_time_s(w.shape[0], w.shape[1], parallel=False)
            for w in self.mlp.weights
        )
        if not parallel:
            return batch * per
        # Batched inference parallelises across cores.
        return batch * per / self.cpu.cores

    def infer(self, trace: np.ndarray) -> CpuInferenceOutcome:
        """Run a batch: functional logits + modeled timing."""
        trace = np.asarray(trace)
        batch = trace.shape[0]
        if batch < 1:
            raise ValueError("batch must contain at least one inference")
        features = self.tables.lookup(trace)
        logits = self.mlp.forward(features)
        lookup = self._lookup_time_s(batch, parallel=True)
        dnn = self._dnn_time_s(batch, parallel=True)
        latency = self._lookup_time_s(1, parallel=False) + self._dnn_time_s(
            1, parallel=False
        )
        batch_time = lookup + dnn
        return CpuInferenceOutcome(
            logits=logits,
            lookup_s=lookup,
            dnn_s=dnn,
            latency_s=latency,
            batch_time_s=batch_time,
            qps=batch / batch_time,
        )
