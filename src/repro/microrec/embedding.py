"""Embedding table storage and functional lookups.

:class:`EmbeddingTables` materialises the tables of a
:class:`~repro.workloads.traces.RecModelSpec` as numpy arrays and
answers batched lookups — the functional ground truth every engine
(CPU, MicroRec accelerator, with or without Cartesian combining) is
checked against.
"""

from __future__ import annotations

import numpy as np

from ..workloads.traces import RecModelSpec

__all__ = ["EmbeddingTables"]


class EmbeddingTables:
    """The embedding tables of one recommendation model."""

    def __init__(self, spec: RecModelSpec, seed: int = 0) -> None:
        self.spec = spec
        rng = np.random.default_rng(seed)
        self.tables: list[np.ndarray] = [
            rng.standard_normal((rows, spec.embedding_dim)).astype(np.float32)
            for rows in spec.table_rows
        ]

    @property
    def n_tables(self) -> int:
        return self.spec.n_tables

    def table_nbytes(self, table: int) -> int:
        """Bytes of one table as stored."""
        return self.tables[table].nbytes

    @property
    def total_nbytes(self) -> int:
        return sum(t.nbytes for t in self.tables)

    def lookup(self, trace: np.ndarray) -> np.ndarray:
        """Gather and concatenate embeddings for a lookup trace.

        ``trace`` is ``(batch, n_tables)`` row ids; the result is
        ``(batch, n_tables * embedding_dim)`` float32.
        """
        trace = np.asarray(trace)
        if trace.ndim != 2 or trace.shape[1] != self.n_tables:
            raise ValueError(
                f"trace must be (batch, {self.n_tables}), got {trace.shape}"
            )
        for t in range(self.n_tables):
            column = trace[:, t]
            if column.size and (
                column.min() < 0 or column.max() >= self.spec.table_rows[t]
            ):
                raise IndexError(f"trace ids out of range for table {t}")
        parts = [self.tables[t][trace[:, t]] for t in range(self.n_tables)]
        return np.concatenate(parts, axis=1)
