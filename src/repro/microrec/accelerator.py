"""The MicroRec inference accelerator (Figure 5 of the tutorial).

Two stages form the inference pipeline:

1. **feature retrieval** — every (possibly Cartesian-combined) table is
   placed either in on-chip SRAM (single-cycle, fully parallel banks)
   or on its own HBM pseudo-channel; a batch's lookups complete when
   the busiest channel finishes;
2. **DNN computation** — the concatenated embeddings stream through a
   DSP systolic MLP.

Stages pipeline across inferences, so throughput is set by the slower
stage and a single inference's latency by the sum — the architecture's
whole point being that dozens of lookups that would serialise on a CPU
finish in one or two memory round trips here.

Placement: smallest tables go to SRAM first (maximising how many
lookups leave HBM entirely), the rest spread over HBM channels
least-loaded-first — both straight from the MicroRec paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.clocking import FABRIC_300MHZ, ClockDomain
from ..core.device import ALVEO_U280, Device
from ..memory.banked import BankedMemory
from ..memory.technologies import hbm2_channel
from ..workloads.traces import RecModelSpec
from .cartesian import CartesianPlan, plan_cartesian
from .dnn import Mlp, fpga_mlp_latency_s
from .embedding import EmbeddingTables

__all__ = ["InferenceOutcome", "MicroRecAccelerator", "MicroRecConfig", "Placement"]


@dataclass(frozen=True)
class MicroRecConfig:
    """Hardware parameters of a MicroRec instance."""

    sram_budget_bytes: int = 24 * 1024 * 1024
    n_hbm_channels: int = 32
    dnn_dsp_macs: int = 2048
    clock: ClockDomain = FABRIC_300MHZ
    sram_access_cycles: int = 2

    def __post_init__(self) -> None:
        if self.sram_budget_bytes < 0:
            raise ValueError("SRAM budget must be >= 0")
        if self.n_hbm_channels < 1:
            raise ValueError("need at least one HBM channel")
        if self.dnn_dsp_macs < 1:
            raise ValueError("need at least one DSP MAC")
        if self.sram_access_cycles < 1:
            raise ValueError("SRAM access must cost at least one cycle")


@dataclass(frozen=True)
class Placement:
    """Where each combined table lives."""

    sram_tables: tuple[int, ...]  # combined-table indices in on-chip SRAM
    hbm_tables: tuple[int, ...]   # combined-table indices in HBM
    sram_bytes: int


@dataclass(frozen=True)
class InferenceOutcome:
    """Logits plus modeled timing for one batch."""

    logits: np.ndarray
    lookup_s: float      # feature-retrieval stage time for the batch
    dnn_s: float         # DNN stage time for the batch
    latency_s: float     # one-inference end-to-end latency
    batch_time_s: float  # pipelined batch completion time
    qps: float


class MicroRecAccelerator:
    """A deployed MicroRec instance for one model."""

    def __init__(
        self,
        tables: EmbeddingTables,
        plan: CartesianPlan | None = None,
        config: MicroRecConfig = MicroRecConfig(),
        device: Device = ALVEO_U280,
        seed: int = 0,
        tracer=None,
    ) -> None:
        spec = tables.spec
        self.tables = tables
        self.config = config
        self.device = device
        self.plan = plan if plan is not None else plan_cartesian(spec, 0)
        if self.plan.spec != spec:
            raise ValueError("plan was built for a different model spec")
        self._combined = self.plan.materialize(tables)
        self._row_bytes = self.plan.combined_row_bytes()
        sizes = self.plan.combined_table_bytes()
        sram_limit = min(
            config.sram_budget_bytes,
            device.onchip_sram_bytes,
        )
        # Smallest-first into SRAM.
        order = sorted(range(len(sizes)), key=lambda i: (sizes[i], i))
        sram: list[int] = []
        used = 0
        for idx in order:
            if used + sizes[idx] <= sram_limit:
                sram.append(idx)
                used += sizes[idx]
        hbm_tables = [i for i in range(len(sizes)) if i not in set(sram)]
        self.placement = Placement(
            sram_tables=tuple(sorted(sram)),
            hbm_tables=tuple(hbm_tables),
            sram_bytes=used,
        )
        self._hbm = BankedMemory.uniform(
            hbm2_channel(), config.n_hbm_channels, name="microrec-hbm",
            tracer=tracer,
        )
        channel_cap = hbm2_channel().capacity_bytes
        for idx in hbm_tables:
            if sizes[idx] > channel_cap:
                # Tables larger than one pseudo-channel stripe across
                # several; their lookups spread over the shards.
                self._hbm.allocate_striped(
                    f"t{idx}", sizes[idx], expected_traffic=1.0
                )
            else:
                self._hbm.allocate(f"t{idx}", sizes[idx], expected_traffic=1.0)
        self.mlp = Mlp(spec.concat_width, spec.mlp_layers, seed=seed)

    # -- performance model ---------------------------------------------------

    def lookup_time_s(self, batch: int) -> float:
        """Feature-retrieval stage time for ``batch`` inferences.

        SRAM banks serve one lookup per table per ``sram_access_cycles``
        in parallel; HBM tables each issue ``batch`` random reads of one
        row, completing at the busiest channel's makespan.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        sram_cycles = self.config.sram_access_cycles * batch
        sram_s = (
            self.config.clock.cycles_to_seconds(sram_cycles)
            if self.placement.sram_tables
            else 0.0
        )
        hbm_s = 0.0
        if self.placement.hbm_tables:
            lookups = {
                f"t{idx}": (batch, self._row_bytes[idx])
                for idx in self.placement.hbm_tables
            }
            hbm_s = self._hbm.batch_lookup_time_ps(lookups) / 1e12
        return max(sram_s, hbm_s)

    def dnn_time_s(self, batch: int) -> float:
        """DNN stage time for ``batch`` inferences (systolic, pipelined)."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        per_inference = fpga_mlp_latency_s(
            self.mlp, self.config.dnn_dsp_macs, self.config.clock
        )
        # The array pipelines inferences at the per-layer occupancy.
        occupancy = per_inference * 0.75
        return per_inference + (batch - 1) * occupancy

    def infer(self, trace: np.ndarray) -> InferenceOutcome:
        """Run a batch: functional logits + modeled timing."""
        trace = np.asarray(trace)
        batch = trace.shape[0]
        if batch < 1:
            raise ValueError("batch must contain at least one inference")
        features = self.plan.lookup(self.tables, trace)
        logits = self.mlp.forward(features)
        lookup_s = self.lookup_time_s(batch)
        dnn_s = self.dnn_time_s(batch)
        latency = self.lookup_time_s(1) + self.dnn_time_s(1)
        batch_time = max(lookup_s, dnn_s) + min(
            self.lookup_time_s(1), self.dnn_time_s(1)
        )
        return InferenceOutcome(
            logits=logits,
            lookup_s=lookup_s,
            dnn_s=dnn_s,
            latency_s=latency,
            batch_time_s=batch_time,
            qps=batch / batch_time,
        )

    # -- accounting -------------------------------------------------------------

    @property
    def lookups_per_inference(self) -> int:
        """Memory accesses per inference (after Cartesian combining)."""
        return self.plan.n_lookups

    @property
    def hbm_lookups_per_inference(self) -> int:
        """Off-chip accesses per inference (the expensive kind)."""
        return len(self.placement.hbm_tables)
