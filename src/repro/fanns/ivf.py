"""IVF-PQ index: inverted lists over a coarse quantizer + PQ codes.

The functional core both the CPU baseline and the FANNS accelerator
share.  Search follows the standard recipe:

1. rank the ``nlist`` coarse centroids by distance to the query;
2. probe the ``nprobe`` nearest lists;
3. score every code in the probed lists with the ADC table;
4. return the ``k`` best ids.

Residual encoding (encode ``x - centroid`` rather than ``x``) is the
accuracy-relevant option FANNS exposes; both modes are supported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .kmeans import kmeans
from .pq import ProductQuantizer, train_pq

__all__ = ["IVFPQIndex", "SearchStats", "build_ivfpq"]


@dataclass
class SearchStats:
    """Work counters from one search call (drives the cost models)."""

    n_queries: int = 0
    centroid_distances: int = 0   # query x centroid distance evaluations
    lut_entries: int = 0          # ADC table entries built
    codes_scanned: int = 0        # PQ codes scored
    code_bytes_scanned: int = 0   # bytes of PQ codes touched


@dataclass(frozen=True)
class IVFPQIndex:
    """A trained, populated IVF-PQ index."""

    centroids: np.ndarray                 # (nlist, dim)
    pq: ProductQuantizer
    list_ids: tuple[np.ndarray, ...]      # per-list vector ids (int64)
    list_codes: tuple[np.ndarray, ...]    # per-list PQ codes (n_i, m) uint8
    residual: bool = True

    @property
    def nlist(self) -> int:
        return self.centroids.shape[0]

    @property
    def dim(self) -> int:
        return self.centroids.shape[1]

    @property
    def n_vectors(self) -> int:
        return sum(len(ids) for ids in self.list_ids)

    @property
    def code_bytes_total(self) -> int:
        """Total bytes of stored PQ codes."""
        return self.n_vectors * self.pq.code_nbytes

    def list_sizes(self) -> np.ndarray:
        """(nlist,) sizes of the inverted lists."""
        return np.array([len(ids) for ids in self.list_ids], dtype=np.int64)

    def expected_candidates(self, nprobe: int) -> float:
        """Expected candidates scanned when probing ``nprobe`` lists
        (mean list length x nprobe, matching the measured average)."""
        if nprobe <= 0:
            return 0.0
        return float(self.list_sizes().mean() * nprobe)

    # -- search ---------------------------------------------------------------

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int,
        stats: SearchStats | None = None,
    ) -> np.ndarray:
        """Approximate k-NN; returns ``(q, k)`` ids (-1 pads short results)."""
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(f"queries must be (q, {self.dim})")
        if k < 1:
            raise ValueError("k must be >= 1")
        if not 1 <= nprobe <= self.nlist:
            raise ValueError(f"nprobe must be in 1..{self.nlist}")
        out = np.full((queries.shape[0], k), -1, dtype=np.int64)
        c_sq = (self.centroids ** 2).sum(axis=1)
        for qi, query in enumerate(queries):
            coarse = c_sq - 2.0 * (self.centroids @ query)
            probe = np.argpartition(coarse, nprobe - 1)[:nprobe]
            if stats is not None:
                stats.centroid_distances += self.nlist
            candidate_ids = []
            candidate_dists = []
            if self.residual:
                # Residual mode: one ADC table per probed list.
                for list_id in probe:
                    codes = self.list_codes[list_id]
                    if len(codes) == 0:
                        continue
                    table = self.pq.adc_table(query - self.centroids[list_id])
                    dists = self.pq.adc_distances(table, codes)
                    candidate_ids.append(self.list_ids[list_id])
                    candidate_dists.append(dists)
                    if stats is not None:
                        stats.lut_entries += table.size
                        stats.codes_scanned += len(codes)
                        stats.code_bytes_scanned += codes.nbytes
            else:
                table = self.pq.adc_table(query)
                if stats is not None:
                    stats.lut_entries += table.size
                for list_id in probe:
                    codes = self.list_codes[list_id]
                    if len(codes) == 0:
                        continue
                    dists = self.pq.adc_distances(table, codes)
                    candidate_ids.append(self.list_ids[list_id])
                    candidate_dists.append(dists)
                    if stats is not None:
                        stats.codes_scanned += len(codes)
                        stats.code_bytes_scanned += codes.nbytes
            if not candidate_ids:
                continue
            ids = np.concatenate(candidate_ids)
            dists = np.concatenate(candidate_dists)
            top = min(k, len(ids))
            # Total order on (distance, id): ADC distances tie exactly
            # when codes collide, and argpartition would then keep an
            # arbitrary tied candidate — the sharded merge in
            # repro.fanns.distributed must be able to reproduce this
            # selection bit-for-bit.
            order = np.lexsort((ids, dists))[:top]
            out[qi, :top] = ids[order]
        if stats is not None:
            stats.n_queries += queries.shape[0]
        return out


def build_ivfpq(
    base: np.ndarray,
    nlist: int,
    m: int,
    ksub: int = 256,
    residual: bool = True,
    train_sample: int | None = None,
    seed: int = 0,
) -> IVFPQIndex:
    """Train and populate an IVF-PQ index over ``base`` vectors."""
    base = np.ascontiguousarray(base, dtype=np.float32)
    if base.ndim != 2:
        raise ValueError("base vectors must be 2-D")
    n = base.shape[0]
    if not 1 <= nlist <= n:
        raise ValueError(f"need 1 <= nlist <= n, got nlist={nlist}, n={n}")
    rng = np.random.default_rng(seed)
    sample = base
    if train_sample is not None and train_sample < n:
        sample = base[rng.choice(n, size=train_sample, replace=False)]
    coarse = kmeans(sample, nlist, seed=seed)
    centroids = coarse.centroids
    # Assign all vectors to their nearest centroid.
    c_sq = (centroids ** 2).sum(axis=1)
    assign = np.empty(n, dtype=np.int64)
    block = 8192
    for start in range(0, n, block):
        chunk = base[start:start + block]
        d = c_sq[None, :] - 2.0 * (chunk @ centroids.T)
        assign[start:start + len(chunk)] = d.argmin(axis=1)
    training = base - centroids[assign] if residual else base
    pq = train_pq(training, m=m, ksub=ksub, seed=seed)
    codes = pq.encode(training)
    list_ids: list[np.ndarray] = []
    list_codes: list[np.ndarray] = []
    for list_id in range(nlist):
        members = np.flatnonzero(assign == list_id)
        list_ids.append(members.astype(np.int64))
        list_codes.append(codes[members])
    return IVFPQIndex(
        centroids=centroids,
        pq=pq,
        list_ids=tuple(list_ids),
        list_codes=tuple(list_codes),
        residual=residual,
    )
