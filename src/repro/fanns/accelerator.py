"""The FANNS FPGA accelerator: a staged IVF-PQ search pipeline.

Figure 3 of the tutorial: queries stream through

1. a **coarse distance** PE array (dense query x centroid MACs);
2. a **select-nprobe** unit (K-selection over nlist distances);
3. a **LUT construction** unit (one ADC table per probed list in
   residual mode);
4. an array of **ADC scan PEs**, each consuming one PQ code per cycle
   out of HBM-resident inverted lists;
5. systolic **top-K priority queues** overlapping the scan.

Stage times follow the HLS cost model; the scan stage is additionally
bounded by HBM bandwidth (codes are striped across the channels the
configuration dedicates to them).  Queries pipeline through the stages,
so throughput is set by the slowest stage and latency by the sum — the
same first-order model the FANNS paper's performance predictor uses.

Functional results come from the shared
:class:`~repro.fanns.ivf.IVFPQIndex`, so accelerator and CPU baseline
return identical ids for identical ``(k, nprobe)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.clocking import FABRIC_300MHZ, ClockDomain
from ..core.device import ALVEO_U55C, Device, ResourceVector
from ..memory.technologies import hbm2_channel
from .ivf import IVFPQIndex

__all__ = ["FannsAccelerator", "FannsConfig", "FpgaSearchOutcome", "StageTimes"]


@dataclass(frozen=True)
class FannsConfig:
    """A hardware configuration of the FANNS pipeline.

    The generator (:mod:`repro.fanns.generator`) searches over these.
    """

    n_distance_pes: int = 16
    n_lut_pes: int = 16
    n_adc_pes: int = 32
    n_hbm_channels: int = 16
    clock: ClockDomain = FABRIC_300MHZ

    def __post_init__(self) -> None:
        if min(self.n_distance_pes, self.n_lut_pes, self.n_adc_pes,
               self.n_hbm_channels) < 1:
            raise ValueError("all PE/channel counts must be >= 1")

    def resources(self, m: int) -> ResourceVector:
        """Fabric demand of this configuration for ``m``-byte codes.

        Per-PE costs follow FANNS' reported per-unit utilization
        ratios: distance PEs are DSP-heavy, ADC PEs are BRAM-heavy
        (each keeps ``m`` banked LUT copies for single-cycle lookups).
        """
        distance = ResourceVector(lut=1_800, ff=2_600, dsp=5) * self.n_distance_pes
        lut_build = ResourceVector(lut=1_200, ff=1_800, dsp=4) * self.n_lut_pes
        adc = ResourceVector(
            lut=2_500, ff=3_500, dsp=m, bram_36k=max(1, m // 2)
        ) * self.n_adc_pes
        topk = ResourceVector(lut=30_000, ff=45_000, bram_36k=16)
        control = ResourceVector(lut=50_000, ff=80_000, bram_36k=32)
        hbm = ResourceVector(hbm_channels=self.n_hbm_channels)
        return distance + lut_build + adc + topk + control + hbm


@dataclass(frozen=True)
class StageTimes:
    """Per-query stage times in seconds."""

    coarse_s: float
    select_s: float
    lut_s: float
    scan_s: float
    topk_drain_s: float

    @property
    def latency_s(self) -> float:
        """End-to-end latency of one query."""
        return (
            self.coarse_s + self.select_s + self.lut_s
            + self.scan_s + self.topk_drain_s
        )

    @property
    def bottleneck_s(self) -> float:
        """The pipeline initiation interval (slowest stage)."""
        return max(
            self.coarse_s, self.select_s, self.lut_s,
            self.scan_s, self.topk_drain_s,
        )


@dataclass(frozen=True)
class FpgaSearchOutcome:
    """Results plus modeled accelerator timing for a query batch."""

    ids: np.ndarray
    stages: StageTimes
    query_latency_s: float
    qps: float
    batch_time_s: float


class FannsAccelerator:
    """A FANNS instance: an index deployed under a hardware config."""

    def __init__(
        self,
        index: IVFPQIndex,
        config: FannsConfig = FannsConfig(),
        device: Device = ALVEO_U55C,
        enforce_fit: bool = True,
        list_scale: int = 1,
    ) -> None:
        if list_scale < 1:
            raise ValueError("list_scale must be >= 1")
        self.index = index
        self.config = config
        self.device = device
        self.list_scale = list_scale
        demand = config.resources(index.pq.m)
        if enforce_fit and not device.fits(demand):
            raise ResourceWarning(
                f"FANNS config does not fit {device.name}: "
                f"{demand.utilization_report(demand)}"
            )
        code_bytes = index.code_bytes_total * list_scale
        if code_bytes > config.n_hbm_channels * hbm2_channel().capacity_bytes:
            raise MemoryError(
                "PQ codes do not fit the configured HBM channels"
            )
        self._hbm = hbm2_channel()

    # -- performance model ---------------------------------------------------

    def stage_times(self, nprobe: int) -> StageTimes:
        """Per-query stage times under the current config."""
        index, cfg = self.index, self.config
        if not 1 <= nprobe <= index.nlist:
            raise ValueError(f"nprobe must be in 1..{index.nlist}")
        clock = cfg.clock
        dim = index.dim
        ksub = index.pq.ksub
        dsub = index.pq.dsub
        # S1: nlist x dim MACs over the distance PE array.
        coarse_cycles = math.ceil(index.nlist * dim / cfg.n_distance_pes)
        # S2: streaming K-selection over nlist distances.
        select_cycles = index.nlist + 2 * nprobe
        # S3: residual mode builds one table per probed list.
        n_tables = nprobe if index.residual else 1
        lut_cycles = math.ceil(n_tables * ksub * dsub / cfg.n_lut_pes)
        # S4: scan expected candidates; 1 code/PE/cycle, HBM-bounded.
        candidates = index.expected_candidates(nprobe) * self.list_scale
        scan_cycles = math.ceil(candidates / cfg.n_adc_pes)
        scan_compute_s = clock.cycles_to_seconds(scan_cycles)
        code_bytes = candidates * index.pq.code_nbytes
        share = math.ceil(code_bytes / cfg.n_hbm_channels)
        scan_memory_s = self._hbm.stream_time_ps(int(share)) / 1e12
        # S5: priority queues drain K entries after the last code.
        topk_cycles = 64
        return StageTimes(
            coarse_s=clock.cycles_to_seconds(coarse_cycles),
            select_s=clock.cycles_to_seconds(select_cycles),
            lut_s=clock.cycles_to_seconds(lut_cycles),
            scan_s=max(scan_compute_s, scan_memory_s),
            topk_drain_s=clock.cycles_to_seconds(topk_cycles),
        )

    def qps(self, nprobe: int) -> float:
        """Steady-state queries/s with query-level pipelining."""
        return 1.0 / self.stage_times(nprobe).bottleneck_s

    def search(self, queries: np.ndarray, k: int, nprobe: int) -> FpgaSearchOutcome:
        """Run a query batch; identical ids to the CPU path, FPGA timing."""
        ids = self.index.search(queries, k, nprobe)
        stages = self.stage_times(nprobe)
        n = queries.shape[0]
        batch = stages.latency_s + max(0, n - 1) * stages.bottleneck_s
        return FpgaSearchOutcome(
            ids=ids,
            stages=stages,
            query_latency_s=stages.latency_s,
            qps=1.0 / stages.bottleneck_s,
            batch_time_s=batch,
        )
