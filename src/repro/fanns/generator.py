"""The FANNS hardware generator: design-space exploration per recall target.

FANNS' headline idea is *co-design*: given a recall requirement, choose
both the algorithm parameter (``nprobe``) and the hardware configuration
(PE counts, channel assignment) that maximises QPS **subject to the
device's resource budget**.  :class:`HardwareGenerator` reproduces that
loop:

1. measure the recall-vs-nprobe curve of the index on sample queries;
2. enumerate hardware configurations, dropping any that do not fit the
   device;
3. for each surviving configuration, take the smallest ``nprobe``
   meeting the recall target and evaluate the performance model;
4. return the Pareto-best design.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..core.device import ALVEO_U55C, Device
from .accelerator import FannsAccelerator, FannsConfig
from .ivf import IVFPQIndex
from .recall import recall_at_k

__all__ = [
    "DesignPoint",
    "HardwareGenerator",
    "co_design",
    "default_config_space",
]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated (hardware config, nprobe) pair."""

    config: FannsConfig
    nprobe: int
    recall: float
    qps: float
    latency_s: float
    fits: bool


def default_config_space() -> list[FannsConfig]:
    """The generator's default sweep (powers of two per unit type)."""
    space = []
    for n_dist, n_lut, n_adc, n_hbm in itertools.product(
        (8, 16, 32), (8, 16, 32), (8, 16, 32, 64), (8, 16, 32)
    ):
        space.append(
            FannsConfig(
                n_distance_pes=n_dist,
                n_lut_pes=n_lut,
                n_adc_pes=n_adc,
                n_hbm_channels=n_hbm,
            )
        )
    return space


class HardwareGenerator:
    """Design-space exploration for a given index + device + workload."""

    def __init__(
        self,
        index: IVFPQIndex,
        sample_queries: np.ndarray,
        ground_truth: np.ndarray,
        k: int = 10,
        device: Device = ALVEO_U55C,
        list_scale: int = 1,
    ) -> None:
        if sample_queries.shape[0] != ground_truth.shape[0]:
            raise ValueError("queries and ground truth disagree on count")
        if k > ground_truth.shape[1]:
            raise ValueError(
                f"k={k} exceeds ground-truth width {ground_truth.shape[1]}"
            )
        if list_scale < 1:
            raise ValueError("list_scale must be >= 1")
        self.index = index
        self.queries = sample_queries
        self.ground_truth = ground_truth
        self.k = k
        self.device = device
        self.list_scale = list_scale
        self._recall_cache: dict[int, float] = {}

    def recall_at_nprobe(self, nprobe: int) -> float:
        """Measured recall@k of the index at ``nprobe`` (cached)."""
        if nprobe not in self._recall_cache:
            ids = self.index.search(self.queries, self.k, nprobe)
            self._recall_cache[nprobe] = recall_at_k(
                ids, self.ground_truth, self.k
            )
        return self._recall_cache[nprobe]

    def min_nprobe_for(self, recall_target: float,
                       nprobes: list[int]) -> int | None:
        """Smallest candidate ``nprobe`` meeting the target, or None."""
        for nprobe in sorted(nprobes):
            if self.recall_at_nprobe(nprobe) >= recall_target:
                return nprobe
        return None

    def explore(
        self,
        recall_target: float,
        configs: list[FannsConfig] | None = None,
        nprobes: list[int] | None = None,
    ) -> tuple[DesignPoint | None, list[DesignPoint]]:
        """Evaluate the design space; returns (best, all evaluated points).

        "Best" maximises QPS among feasible points that meet the recall
        target.  Infeasible (doesn't fit) points are recorded with
        ``fits=False`` for reporting.
        """
        if not 0.0 <= recall_target <= 1.0:
            raise ValueError("recall target must be in [0, 1]")
        configs = configs if configs is not None else default_config_space()
        if nprobes is None:
            nprobes = sorted(
                {1, 2, 4, 8, 16, 32, 64} & set(range(1, self.index.nlist + 1))
            ) or [self.index.nlist]
        nprobe = self.min_nprobe_for(recall_target, nprobes)
        points: list[DesignPoint] = []
        best: DesignPoint | None = None
        if nprobe is None:
            return None, points
        recall = self.recall_at_nprobe(nprobe)
        for config in configs:
            fits = self.device.fits(config.resources(self.index.pq.m))
            if not fits:
                points.append(
                    DesignPoint(config, nprobe, recall, 0.0, float("inf"), False)
                )
                continue
            try:
                accel = FannsAccelerator(
                    self.index, config, self.device, enforce_fit=False,
                    list_scale=self.list_scale,
                )
            except MemoryError:
                points.append(
                    DesignPoint(config, nprobe, recall, 0.0, float("inf"), False)
                )
                continue
            stages = accel.stage_times(nprobe)
            point = DesignPoint(
                config=config,
                nprobe=nprobe,
                recall=recall,
                qps=1.0 / stages.bottleneck_s,
                latency_s=stages.latency_s,
                fits=True,
            )
            points.append(point)
            if best is None or point.qps > best.qps:
                best = point
        return best, points


def co_design(
    index_candidates: dict[str, IVFPQIndex],
    sample_queries: np.ndarray,
    ground_truth: np.ndarray,
    recall_target: float,
    k: int = 10,
    device: Device = ALVEO_U55C,
    list_scale: int = 1,
    configs: list[FannsConfig] | None = None,
) -> tuple[str | None, DesignPoint | None, dict[str, DesignPoint | None]]:
    """Joint algorithm/hardware exploration — the full FANNS loop.

    The paper's generator does not stop at PE counts: index parameters
    (``nlist``, PQ bytes) are part of the design space, because a
    coarser index needs a larger ``nprobe`` for the same recall and
    therefore different hardware.  Given several trained candidate
    indexes, this evaluates each with :class:`HardwareGenerator` and
    returns the overall best (index name, design point), plus each
    candidate's best point for reporting (None where the target is
    unreachable).
    """
    if not index_candidates:
        raise ValueError("need at least one candidate index")
    per_index: dict[str, DesignPoint | None] = {}
    best_name: str | None = None
    best_point: DesignPoint | None = None
    for name, index in index_candidates.items():
        generator = HardwareGenerator(
            index, sample_queries, ground_truth, k=k,
            device=device, list_scale=list_scale,
        )
        point, _ = generator.explore(recall_target, configs=configs)
        per_index[name] = point
        if point is None:
            continue
        if best_point is None or point.qps > best_point.qps:
            best_name, best_point = name, point
    return best_name, best_point, per_index
