"""Product quantization: training, encoding, asymmetric distance (ADC).

PQ splits a ``dim``-dimensional vector into ``m`` subvectors and
quantizes each with its own 256-centroid codebook, compressing a vector
to ``m`` bytes.  At query time an ADC lookup table of shape
``(m, 256)`` turns distance evaluation into ``m`` table lookups per
code — the operation FANNS parallelises with PE arrays on the FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kmeans import kmeans

__all__ = ["ProductQuantizer", "train_pq"]


@dataclass(frozen=True)
class ProductQuantizer:
    """A trained product quantizer.

    ``codebooks`` has shape ``(m, ksub, dsub)``: ``m`` sub-quantizers,
    ``ksub`` centroids each, over ``dsub = dim // m`` dimensions.
    """

    codebooks: np.ndarray

    def __post_init__(self) -> None:
        if self.codebooks.ndim != 3:
            raise ValueError("codebooks must be (m, ksub, dsub)")

    @property
    def m(self) -> int:
        """Number of subspaces (bytes per code)."""
        return self.codebooks.shape[0]

    @property
    def ksub(self) -> int:
        """Centroids per subspace."""
        return self.codebooks.shape[1]

    @property
    def dsub(self) -> int:
        """Dimensions per subspace."""
        return self.codebooks.shape[2]

    @property
    def dim(self) -> int:
        return self.m * self.dsub

    @property
    def code_nbytes(self) -> int:
        """Bytes per encoded vector (1 byte per subspace for ksub<=256)."""
        return self.m

    def _check_dim(self, vectors: np.ndarray) -> None:
        if vectors.shape[-1] != self.dim:
            raise ValueError(
                f"expected dim {self.dim}, got {vectors.shape[-1]}"
            )

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize ``(n, dim)`` vectors to ``(n, m)`` uint8 codes."""
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        self._check_dim(vectors)
        n = vectors.shape[0]
        codes = np.empty((n, self.m), dtype=np.uint8)
        for sub in range(self.m):
            chunk = vectors[:, sub * self.dsub:(sub + 1) * self.dsub]
            cb = self.codebooks[sub]
            d = (
                (chunk ** 2).sum(axis=1)[:, None]
                - 2.0 * chunk @ cb.T
                + (cb ** 2).sum(axis=1)[None, :]
            )
            codes[:, sub] = d.argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        if codes.shape[-1] != self.m:
            raise ValueError(f"expected {self.m} bytes per code")
        parts = [
            self.codebooks[sub][codes[:, sub]] for sub in range(self.m)
        ]
        return np.concatenate(parts, axis=1)

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """The (m, ksub) table of squared distances query-vs-centroids."""
        query = np.ascontiguousarray(query, dtype=np.float32)
        self._check_dim(query)
        table = np.empty((self.m, self.ksub), dtype=np.float32)
        for sub in range(self.m):
            chunk = query[sub * self.dsub:(sub + 1) * self.dsub]
            table[sub] = ((self.codebooks[sub] - chunk) ** 2).sum(axis=1)
        return table

    def adc_distances(self, table: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances of ``codes`` given an ADC table."""
        if codes.size == 0:
            return np.zeros(0, dtype=np.float32)
        # Gather table[sub, codes[:, sub]] and sum over sub.
        gathered = table[np.arange(self.m)[None, :], codes]
        return gathered.sum(axis=1)


def train_pq(
    vectors: np.ndarray,
    m: int,
    ksub: int = 256,
    max_iterations: int = 15,
    seed: int = 0,
) -> ProductQuantizer:
    """Train a product quantizer on ``vectors``.

    ``dim`` must be divisible by ``m``; ``ksub`` <= 256 keeps codes one
    byte per subspace.
    """
    vectors = np.ascontiguousarray(vectors, dtype=np.float32)
    if vectors.ndim != 2:
        raise ValueError("training vectors must be 2-D")
    dim = vectors.shape[1]
    if m < 1 or dim % m != 0:
        raise ValueError(f"dim {dim} not divisible by m={m}")
    if not 1 <= ksub <= 256:
        raise ValueError("ksub must be in 1..256 (one-byte codes)")
    if vectors.shape[0] < ksub:
        raise ValueError(
            f"need at least ksub={ksub} training vectors, "
            f"got {vectors.shape[0]}"
        )
    dsub = dim // m
    codebooks = np.empty((m, ksub, dsub), dtype=np.float32)
    for sub in range(m):
        chunk = vectors[:, sub * dsub:(sub + 1) * dsub]
        result = kmeans(
            chunk, ksub, max_iterations=max_iterations, seed=seed + sub
        )
        codebooks[sub] = result.centroids
    return ProductQuantizer(codebooks=codebooks)
