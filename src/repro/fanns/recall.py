"""Recall metrics for approximate nearest neighbor search."""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k"]


def recall_at_k(results: np.ndarray, ground_truth: np.ndarray,
                k: int | None = None) -> float:
    """Fraction of true top-k neighbors found in the returned top-k.

    ``results`` is ``(q, >=k)`` returned ids (possibly padded with -1);
    ``ground_truth`` is ``(q, >=k)`` true ids in distance order.
    R@k compares the first ``k`` of each (default: the narrower width).
    """
    if results.shape[0] != ground_truth.shape[0]:
        raise ValueError(
            f"query count mismatch: {results.shape[0]} vs "
            f"{ground_truth.shape[0]}"
        )
    if k is None:
        k = min(results.shape[1], ground_truth.shape[1])
    if k < 1 or k > results.shape[1] or k > ground_truth.shape[1]:
        raise ValueError(f"invalid k={k} for shapes "
                         f"{results.shape} / {ground_truth.shape}")
    hits = 0
    for got, want in zip(results[:, :k], ground_truth[:, :k]):
        hits += len(set(got[got >= 0]) & set(want))
    return hits / (results.shape[0] * k)
