"""Use Case II — FANNS: FPGA-accelerated approximate nearest neighbor
search (Jiang et al., SC 2023; Figure 3 of the tutorial).

IVF-PQ is implemented from scratch (k-means, product quantization,
inverted lists); the CPU baseline and the FPGA accelerator share the
functional search and differ only in the performance model, and the
hardware generator picks the best feasible design per recall target.
"""

from .accelerator import (
    FannsAccelerator,
    FannsConfig,
    FpgaSearchOutcome,
    StageTimes,
)
from .cpu_baseline import CpuAnnSearcher, CpuSearchOutcome
from .distributed import DistributedFanns, DistributedSearchOutcome
from .generator import (
    DesignPoint,
    HardwareGenerator,
    co_design,
    default_config_space,
)
from .gpu_baseline import GpuAnnSearcher, GpuSearchOutcome
from .ivf import IVFPQIndex, SearchStats, build_ivfpq
from .kmeans import KMeansResult, kmeans, kmeans_pp_init
from .pq import ProductQuantizer, train_pq
from .recall import recall_at_k

__all__ = [
    "CpuAnnSearcher",
    "CpuSearchOutcome",
    "DesignPoint",
    "DistributedFanns",
    "DistributedSearchOutcome",
    "FannsAccelerator",
    "FannsConfig",
    "FpgaSearchOutcome",
    "GpuAnnSearcher",
    "GpuSearchOutcome",
    "HardwareGenerator",
    "IVFPQIndex",
    "KMeansResult",
    "ProductQuantizer",
    "SearchStats",
    "StageTimes",
    "build_ivfpq",
    "co_design",
    "default_config_space",
    "kmeans",
    "kmeans_pp_init",
    "recall_at_k",
    "train_pq",
]
