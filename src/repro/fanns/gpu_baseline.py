"""GPU IVF-PQ searcher — the third platform in the FANNS comparison.

FANNS also benchmarks against GPUs (Faiss-GPU class systems): enormous
batched throughput from HBM bandwidth and wide SIMT scan kernels, but
poor small-batch latency — kernels must be launched and batches
assembled before anything runs.  That latency/throughput asymmetry is
exactly what the tutorial's SLA discussion turns on, so the model
captures it with three terms per batch:

* kernel-launch overhead (a few launches per search);
* compute: coarse distances + LUT build + ADC scan on the SIMT cores;
* memory: PQ codes streaming from GPU HBM.

Functionally identical ids to every other engine (shared index).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..microrec.fleetrec import GpuModel, V100
from .ivf import IVFPQIndex, SearchStats

__all__ = ["GpuAnnSearcher", "GpuSearchOutcome"]

_N_KERNEL_LAUNCHES = 4  # coarse, select, LUT, scan+topk


@dataclass(frozen=True)
class GpuSearchOutcome:
    """Results plus modeled GPU timing for a query batch."""

    ids: np.ndarray
    stats: SearchStats
    batch_time_s: float
    query_latency_s: float  # a batch of one still pays the launches
    qps: float


class GpuAnnSearcher:
    """IVF-PQ search priced on a roofline GPU.

    ``list_scale`` matches the CPU/FPGA searchers' deployment-scale
    modeling (see DESIGN.md §1).
    """

    def __init__(
        self,
        index: IVFPQIndex,
        gpu: GpuModel = V100,
        list_scale: int = 1,
        scan_ops_per_code: int = 8,
        full_utilization_batch: int = 64,
    ) -> None:
        if list_scale < 1:
            raise ValueError("list_scale must be >= 1")
        if scan_ops_per_code < 1:
            raise ValueError("scan_ops_per_code must be >= 1")
        if full_utilization_batch < 1:
            raise ValueError("full_utilization_batch must be >= 1")
        self.index = index
        self.gpu = gpu
        self.list_scale = list_scale
        self.scan_ops_per_code = scan_ops_per_code
        self.full_utilization_batch = full_utilization_batch

    def _batch_time_s(self, stats: SearchStats) -> float:
        dim = self.index.dim
        dsub = self.index.pq.dsub
        scale = self.list_scale
        # SIMT underutilization: small batches leave most SMs (and most
        # HBM channels' queues) idle — the reason GPU ANN systems batch.
        utilization = min(
            1.0, max(1, stats.n_queries) / self.full_utilization_batch
        )
        compute_ops = (
            stats.centroid_distances * dim
            + stats.lut_entries * dsub
            + stats.codes_scanned * scale * self.scan_ops_per_code
        )
        compute_s = compute_ops / (self.gpu.flops * utilization)
        memory_s = stats.code_bytes_scanned * scale / (
            self.gpu.hbm_bandwidth * utilization
        )
        launches = _N_KERNEL_LAUNCHES * self.gpu.kernel_launch_s
        return launches + max(compute_s, memory_s)

    def search(self, queries: np.ndarray, k: int,
               nprobe: int) -> GpuSearchOutcome:
        """Run a query batch; identical ids, GPU timing."""
        stats = SearchStats()
        ids = self.index.search(queries, k, nprobe, stats=stats)
        n = max(1, stats.n_queries)
        batch = self._batch_time_s(stats)
        single = SearchStats(
            n_queries=1,
            centroid_distances=stats.centroid_distances // n,
            lut_entries=stats.lut_entries // n,
            codes_scanned=stats.codes_scanned // n,
            code_bytes_scanned=stats.code_bytes_scanned // n,
        )
        latency = self._batch_time_s(single)
        return GpuSearchOutcome(
            ids=ids,
            stats=stats,
            batch_time_s=batch,
            query_latency_s=latency,
            qps=n / batch if batch > 0 else float("inf"),
        )
