"""Distributed FANNS: sharded vector search over an FPGA cluster.

The tutorial's Figure-1 rack and Use Case IV infrastructure exist so
systems like FANNS can scale past one card.  The standard recipe for
distributed IVF (also used by FleetRec's retrieval tier):

* the coarse quantizer (centroids) is replicated on every node;
* inverted lists are partitioned round-robin across nodes;
* a query broadcasts to all nodes, each scans the probed lists *it
  owns* and returns its local top-k;
* the root gathers ``P`` candidate lists and merges — which yields
  exactly the single-node result, because the union of scanned
  candidates is identical.

Latency = slowest node + gather + merge; throughput scales with nodes
because every node scans ~1/P of the candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..accl.cluster import FpgaCluster
from ..core.clocking import FABRIC_300MHZ
from ..core.device import ALVEO_U55C, Device
from .accelerator import FannsAccelerator, FannsConfig
from .ivf import IVFPQIndex

__all__ = ["DistributedFanns", "DistributedSearchOutcome"]

_RESULT_ENTRY_BYTES = 12  # 8 B id + 4 B distance


@dataclass(frozen=True)
class DistributedSearchOutcome:
    """Results plus the latency/throughput model of a sharded search."""

    ids: np.ndarray
    node_latency_s: float     # slowest shard's accelerator latency
    gather_s: float           # shipping local top-k to the root
    merge_s: float            # root-side k-way merge
    query_latency_s: float
    qps: float


class DistributedFanns:
    """One logical index served by a cluster of FANNS accelerators."""

    def __init__(
        self,
        index: IVFPQIndex,
        n_nodes: int,
        config: FannsConfig = FannsConfig(),
        device: Device = ALVEO_U55C,
        list_scale: int = 1,
        cluster: FpgaCluster | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.index = index
        self.n_nodes = n_nodes
        self.cluster = cluster or FpgaCluster(n_nodes)
        # Each node owns lists l with l % n_nodes == node, every list at
        # full deployment length; a probed set of nprobe lists gives each
        # node ~nprobe/P of them to scan (handled in :meth:`search`).
        self._shard_accels = [
            FannsAccelerator(index, config, device, list_scale=list_scale)
            for _ in range(n_nodes)
        ]
        self.list_scale = list_scale

    def _owner(self, list_id: int) -> int:
        return list_id % self.n_nodes

    def shard_list_counts(self) -> list[int]:
        """How many inverted lists each node owns."""
        counts = [0] * self.n_nodes
        for list_id in range(self.index.nlist):
            counts[self._owner(list_id)] += 1
        return counts

    def search(self, queries: np.ndarray, k: int,
               nprobe: int) -> DistributedSearchOutcome:
        """Sharded search; ids match the single-node index exactly."""
        # Functional path: global search (provably equal to gathering
        # and merging per-shard top-k; tested against an explicit
        # shard-and-merge in the test suite).
        ids = self.index.search(queries, k, nprobe)

        # Performance: every node scans its ~1/P share of the probed
        # lists (round-robin ownership spreads any probe set evenly).
        per_node = min(math.ceil(nprobe / self.n_nodes), self.index.nlist)
        stages = self._shard_accels[0].stage_times(per_node)
        node_latency = stages.latency_s
        # Gather: P-1 nodes ship k entries to the root in one step.
        gather_transfers = [
            (node, 0, k * _RESULT_ENTRY_BYTES)
            for node in range(1, self.n_nodes)
        ]
        gather_s = self.cluster.fabric.parallel_step_ps(gather_transfers) / 1e12
        # Root merge: a k-way selection over P*k entries at one per cycle.
        merge_s = FABRIC_300MHZ.cycles_to_seconds(self.n_nodes * k)
        latency = node_latency + gather_s + merge_s
        bottleneck = max(stages.bottleneck_s, gather_s, merge_s)
        return DistributedSearchOutcome(
            ids=ids,
            node_latency_s=node_latency,
            gather_s=gather_s,
            merge_s=merge_s,
            query_latency_s=latency,
            qps=1.0 / bottleneck,
        )

    def shard_and_merge(self, queries: np.ndarray, k: int,
                        nprobe: int) -> np.ndarray:
        """The explicit distributed algorithm, for verification.

        Runs the per-shard searches and the root merge in plain numpy;
        must return exactly what :meth:`search` returns.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        out = np.full((queries.shape[0], k), -1, dtype=np.int64)
        centroids = self.index.centroids
        c_sq = (centroids ** 2).sum(axis=1)
        for qi, query in enumerate(queries):
            coarse = c_sq - 2.0 * (centroids @ query)
            probe = np.argpartition(coarse, nprobe - 1)[:nprobe]
            all_ids: list[np.ndarray] = []
            all_dists: list[np.ndarray] = []
            for node in range(self.n_nodes):
                local_lists = [l for l in probe if self._owner(l) == node]
                ids_l, dists_l = [], []
                for list_id in local_lists:
                    codes = self.index.list_codes[list_id]
                    if len(codes) == 0:
                        continue
                    if self.index.residual:
                        table = self.index.pq.adc_table(
                            query - centroids[list_id]
                        )
                    else:
                        table = self.index.pq.adc_table(query)
                    ids_l.append(self.index.list_ids[list_id])
                    dists_l.append(self.index.pq.adc_distances(table, codes))
                if not ids_l:
                    continue
                ids_cat = np.concatenate(ids_l)
                dists_cat = np.concatenate(dists_l)
                top = min(k, len(ids_cat))
                # Local top-k under the same (distance, id) total order
                # the single-node index uses: every member of the
                # global top-k is then guaranteed to survive its
                # shard's cut, ties included.
                part = np.lexsort((ids_cat, dists_cat))[:top]
                all_ids.append(ids_cat[part])
                all_dists.append(dists_cat[part])
            if not all_ids:
                continue
            ids_cat = np.concatenate(all_ids)
            dists_cat = np.concatenate(all_dists)
            top = min(k, len(ids_cat))
            order = np.lexsort((ids_cat, dists_cat))[:top]
            out[qi, :top] = ids_cat[order]
        return out
