"""Lloyd's k-means with k-means++ initialisation.

The training substrate for both the IVF coarse quantizer and the PQ
sub-quantizers.  Deterministic given a seed; pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans", "kmeans_pp_init"]


@dataclass(frozen=True)
class KMeansResult:
    """Trained centroids plus diagnostics."""

    centroids: np.ndarray   # (k, dim) float32
    assignments: np.ndarray  # (n,) int64 — final cluster of each point
    inertia: float           # sum of squared distances to assigned centroid
    n_iterations: int


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """(n, k) squared L2 distances."""
    p_sq = (points ** 2).sum(axis=1)[:, None]
    c_sq = (centroids ** 2).sum(axis=1)[None, :]
    return np.maximum(p_sq + c_sq - 2.0 * (points @ centroids.T), 0.0)


def kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    centroids = np.empty((k, points.shape[1]), dtype=points.dtype)
    first = int(rng.integers(0, n))
    centroids[0] = points[first]
    closest = ((points - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All points coincide with chosen centroids: pick uniformly.
            pick = int(rng.integers(0, n))
        else:
            pick = int(rng.choice(n, p=closest / total))
        centroids[i] = points[pick]
        dist = ((points - centroids[i]) ** 2).sum(axis=1)
        np.minimum(closest, dist, out=closest)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    max_iterations: int = 25,
    tolerance: float = 1e-4,
    seed: int = 0,
) -> KMeansResult:
    """Train ``k`` centroids on ``points`` with Lloyd's algorithm.

    Empty clusters are re-seeded from the points farthest from their
    centroid, so the result always has ``k`` non-degenerate centroids.
    """
    points = np.ascontiguousarray(points, dtype=np.float32)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    rng = np.random.default_rng(seed)
    centroids = kmeans_pp_init(points, k, rng)
    previous_inertia = np.inf
    assignments = np.zeros(points.shape[0], dtype=np.int64)
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances = _squared_distances(points, centroids)
        assignments = distances.argmin(axis=1)
        inertia = float(distances[np.arange(len(points)), assignments].sum())
        counts = np.bincount(assignments, minlength=k)
        sums = np.zeros_like(centroids, dtype=np.float64)
        np.add.at(sums, assignments, points)
        non_empty = counts > 0
        centroids[non_empty] = (
            sums[non_empty] / counts[non_empty, None]
        ).astype(np.float32)
        for empty in np.flatnonzero(~non_empty):
            farthest = int(
                distances[np.arange(len(points)), assignments].argmax()
            )
            centroids[empty] = points[farthest]
        if previous_inertia - inertia <= tolerance * max(previous_inertia, 1.0):
            break
        previous_inertia = inertia
    distances = _squared_distances(points, centroids)
    assignments = distances.argmin(axis=1)
    inertia = float(distances[np.arange(len(points)), assignments].sum())
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia,
        n_iterations=iteration,
    )
