"""CPU IVF-PQ searcher: the baseline side of the FANNS comparison.

Functionally it *is* the shared :class:`~repro.fanns.ivf.IVFPQIndex`
search; the timing comes from pricing the measured work counters
(:class:`~repro.fanns.ivf.SearchStats`) on the roofline CPU model, the
way a Faiss-style implementation spends its cycles:

* coarse quantization — dense distance to all ``nlist`` centroids;
* ADC table construction — ``ksub x dim`` MACs per table;
* list scan — ``m`` one-byte gathers + adds per candidate code, with
  the codes streaming from DRAM;
* top-k maintenance — a few ops per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.cpu import CpuModel, xeon_server
from .ivf import IVFPQIndex, SearchStats

__all__ = ["CpuSearchOutcome", "CpuAnnSearcher"]


@dataclass(frozen=True)
class CpuSearchOutcome:
    """Results plus modeled CPU timing for a query batch."""

    ids: np.ndarray
    stats: SearchStats
    batch_time_s: float       # all queries, all cores
    query_latency_s: float    # one query, one core
    qps: float


class CpuAnnSearcher:
    """IVF-PQ search priced on a CPU model.

    ``list_scale`` models deployment-scale list lengths: timing behaves
    as if every inverted list were that many times longer (the paper's
    datasets are 1e8-1e9 vectors; the functional index here is small).
    Recall is unaffected — it is a property of the functional search.
    """

    def __init__(
        self,
        index: IVFPQIndex,
        cpu: CpuModel | None = None,
        list_scale: int = 1,
    ) -> None:
        if list_scale < 1:
            raise ValueError("list_scale must be >= 1")
        self.index = index
        self.cpu = cpu or xeon_server()
        self.list_scale = list_scale

    def _work_time_s(self, stats: SearchStats, parallel: bool) -> float:
        dim = self.index.dim
        m = self.index.pq.m
        dsub = self.index.pq.dsub
        scale = self.list_scale
        coarse_ops = stats.centroid_distances * dim
        lut_ops = stats.lut_entries * dsub
        # m gathers+adds per code, ~4 ops of top-k maintenance.
        scan_ops = stats.codes_scanned * scale * (m + 4)
        compute = self.cpu.compute_time_s(
            coarse_ops + lut_ops, element_bytes=4, parallel=parallel
        ) + self.cpu.compute_time_s(
            # Byte gathers vectorise poorly; charge them at scalar width.
            scan_ops, element_bytes=self.cpu.simd_bytes, parallel=parallel
        )
        memory = self.cpu.stream_time_s(
            stats.code_bytes_scanned * scale, parallel=parallel
        )
        if self.index.code_bytes_total * scale > self.cpu.llc_bytes:
            return max(compute, memory)
        return compute

    def search(self, queries: np.ndarray, k: int, nprobe: int) -> CpuSearchOutcome:
        """Run a query batch; returns ids + modeled timing."""
        stats = SearchStats()
        ids = self.index.search(queries, k, nprobe, stats=stats)
        n_queries = max(1, stats.n_queries)
        batch = self._work_time_s(stats, parallel=True)
        per_query_stats = SearchStats(
            n_queries=1,
            centroid_distances=stats.centroid_distances // n_queries,
            lut_entries=stats.lut_entries // n_queries,
            codes_scanned=stats.codes_scanned // n_queries,
            code_bytes_scanned=stats.code_bytes_scanned // n_queries,
        )
        latency = self._work_time_s(per_query_stats, parallel=False)
        return CpuSearchOutcome(
            ids=ids,
            stats=stats,
            batch_time_s=batch,
            query_latency_s=latency,
            qps=n_queries / batch if batch > 0 else float("inf"),
        )
