"""Network substrate: links, transport protocols, switched fabrics.

Substitutes for the 100 Gbps RDMA/TCP stacks the tutorial's systems run
on (StRoM, EasyNet, Limago).  Links model serialization + propagation;
protocols add the per-message processing costs that separate FPGA
stacks from kernel stacks; :class:`~repro.network.fabric.SwitchedFabric`
models the single-switch HACC-style rack used by Farview and ACCL.
"""

from .fabric import NodePort, SwitchedFabric
from .link import LinkModel, ethernet_10g, ethernet_25g, ethernet_100g
from .protocol import ProtocolModel, fpga_rdma, fpga_tcp, kernel_tcp

__all__ = [
    "LinkModel",
    "NodePort",
    "ProtocolModel",
    "SwitchedFabric",
    "ethernet_10g",
    "ethernet_25g",
    "ethernet_100g",
    "fpga_rdma",
    "fpga_tcp",
    "kernel_tcp",
]
