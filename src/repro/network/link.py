"""Physical link model: bandwidth, propagation, serialization.

A :class:`LinkModel` is the wire-level cost of moving bytes between two
adjacent ports — bandwidth-limited serialization plus propagation.
Protocol costs (per-message software/firmware overheads, which is where
FPGA network stacks beat kernel stacks) live one layer up in
:mod:`repro.network.protocol`.

:class:`SimLink` binds a :class:`LinkModel` to the event simulator as a
shared egress resource: transfers serialise on the wire FIFO, the
returned event fires at delivery, and — when the simulator carries a
tracer — every transfer lands on the link's trace track.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.sim import Event, Simulator

__all__ = [
    "LinkModel",
    "SimLink",
    "ethernet_100g",
    "ethernet_10g",
    "ethernet_25g",
]

_PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True, slots=True)
class LinkModel:
    """A point-to-point link.

    Parameters
    ----------
    name:
        Identifier for reports.
    bandwidth_bits_per_sec:
        Raw line rate.
    propagation_ps:
        One-way flight time (cables + PHY).
    frame_overhead_bytes:
        Per-frame header/trailer bytes (Ethernet+IP+transport framing).
    mtu_bytes:
        Payload bytes per frame; large transfers are segmented.
    """

    name: str
    bandwidth_bits_per_sec: float
    propagation_ps: int = 500_000  # 0.5 us: in-rack cable + transceivers
    frame_overhead_bytes: int = 78  # Eth+IP+TCP-ish framing
    mtu_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.bandwidth_bits_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if self.propagation_ps < 0:
            raise ValueError("propagation must be >= 0")
        if self.mtu_bytes < 1:
            raise ValueError("mtu must be >= 1")
        if self.frame_overhead_bytes < 0:
            raise ValueError("frame overhead must be >= 0")

    @property
    def bandwidth_bytes_per_sec(self) -> float:
        """Line rate in bytes/s."""
        return self.bandwidth_bits_per_sec / 8.0

    def frames_for(self, nbytes: int) -> int:
        """Number of frames needed for an ``nbytes`` payload."""
        if nbytes <= 0:
            return 1  # control messages still need a frame
        return math.ceil(nbytes / self.mtu_bytes)

    def serialization_ps(self, nbytes: int) -> int:
        """Time to clock ``nbytes`` (plus framing) onto the wire."""
        wire_bytes = max(0, nbytes) + self.frames_for(nbytes) * self.frame_overhead_bytes
        return math.ceil(wire_bytes * 8 * _PS_PER_S / self.bandwidth_bits_per_sec)

    def transfer_ps(self, nbytes: int) -> int:
        """One-way time for an ``nbytes`` message: serialize + propagate."""
        return self.serialization_ps(nbytes) + self.propagation_ps

    def goodput_bytes_per_sec(self, nbytes: int) -> float:
        """Payload bytes/s achieved for a message of ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return nbytes * _PS_PER_S / self.transfer_ps(nbytes)


class SimLink:
    """A :class:`LinkModel` as a FIFO-serialised simulator resource.

    Transfers occupy the wire back-to-back in issue order (a link has
    one serialiser); the returned event fires when the last byte has
    arrived at the far end, ``serialization + propagation`` after the
    wire freed up.  ``busy_ps``/``bytes_moved`` feed the profiler's
    busy/stall breakdown.
    """

    def __init__(
        self, sim: Simulator, model: LinkModel, name: str | None = None
    ) -> None:
        self.sim = sim
        self.model = model
        self.name = name if name is not None else model.name
        self.busy_until_ps = 0
        self.busy_ps = 0
        self.bytes_moved = 0
        self.transfers = 0

    def transfer(self, nbytes: int, dst: object = None) -> Event:
        """Send ``nbytes``; the event fires (with ``nbytes``) at delivery."""
        serialization = self.model.serialization_ps(nbytes)
        start = max(self.sim.now, self.busy_until_ps)
        self.busy_until_ps = start + serialization
        delivered = self.busy_until_ps + self.model.propagation_ps
        self.busy_ps += serialization
        self.bytes_moved += max(0, nbytes)
        self.transfers += 1
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.link_transfer(self.name, start, serialization, nbytes, dst)
        done = Event(self.sim)
        done.succeed(value=nbytes, delay=delivered - self.sim.now)
        return done

    @property
    def utilization_window_ps(self) -> int:
        """How far ahead of ``sim.now`` the wire is committed."""
        return max(0, self.busy_until_ps - self.sim.now)


def ethernet_100g(propagation_ps: int = 500_000) -> LinkModel:
    """100 GbE — the tutorial's line-rate target (Farview, ACCL, FANNS)."""
    return LinkModel(
        name="100gbe",
        bandwidth_bits_per_sec=100e9,
        propagation_ps=propagation_ps,
    )


def ethernet_25g(propagation_ps: int = 500_000) -> LinkModel:
    """25 GbE, a common per-host cloud allocation."""
    return LinkModel(
        name="25gbe",
        bandwidth_bits_per_sec=25e9,
        propagation_ps=propagation_ps,
    )


def ethernet_10g(propagation_ps: int = 500_000) -> LinkModel:
    """10 GbE legacy link."""
    return LinkModel(
        name="10gbe",
        bandwidth_bits_per_sec=10e9,
        propagation_ps=propagation_ps,
    )
