"""Switched network fabric: clusters of nodes behind a switch.

:class:`SwitchedFabric` models the single-switch rack the HACC cluster
(Figure 1 of the tutorial) and the ACCL evaluation use: ``n`` nodes,
each with a full-duplex link into a non-blocking switch.  Transfers
between disjoint node pairs proceed in parallel; a node's own link is
its bottleneck.

The fabric answers point-to-point timing questions analytically and
also exposes per-node :class:`NodePort` objects for event-driven
simulations (Farview's server serialises client requests on its port).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sim import Event, Simulator
from .protocol import ProtocolModel

__all__ = ["NodePort", "SwitchedFabric"]


@dataclass(frozen=True, slots=True)
class _Transfer:
    src: int
    dst: int
    nbytes: int


class SwitchedFabric:
    """``n_nodes`` nodes behind one non-blocking switch."""

    def __init__(
        self,
        protocol: ProtocolModel,
        n_nodes: int,
        switch_latency_ps: int = 300_000,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("fabric needs at least one node")
        if switch_latency_ps < 0:
            raise ValueError("switch latency must be >= 0")
        self.protocol = protocol
        self.n_nodes = n_nodes
        self.switch_latency_ps = switch_latency_ps

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range (0..{self.n_nodes - 1})")

    def message_ps(self, src: int, dst: int, nbytes: int) -> int:
        """One-way message time between two nodes (through the switch)."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return 0
        return self.protocol.message_ps(nbytes) + self.switch_latency_ps

    def round_trip_ps(self, src: int, dst: int, req_bytes: int,
                      resp_bytes: int) -> int:
        """Request/response between two nodes."""
        return (
            self.message_ps(src, dst, req_bytes)
            + self.message_ps(dst, src, resp_bytes)
        )

    def parallel_step_ps(self, transfers: list[tuple[int, int, int]]) -> int:
        """Makespan of one communication step.

        ``transfers`` is a list of ``(src, dst, nbytes)``.  The switch is
        non-blocking, so the step finishes when the busiest *port*
        (egress at a source or ingress at a destination) has moved all
        its bytes, plus one message latency for the step.

        This is the standard alpha-beta costing collectives literature
        uses; ACCL's ring/tree analyses follow it.
        """
        if not transfers:
            return 0
        egress: dict[int, int] = {}
        ingress: dict[int, int] = {}
        largest = 0
        for src, dst, nbytes in transfers:
            self._check_node(src)
            self._check_node(dst)
            if src == dst:
                continue
            egress[src] = egress.get(src, 0) + max(0, nbytes)
            ingress[dst] = ingress.get(dst, 0) + max(0, nbytes)
            largest = max(largest, nbytes)
        if not egress:
            return 0
        busiest = max(max(egress.values()), max(ingress.values()))
        serialization = self.protocol.link.serialization_ps(busiest)
        per_message = (
            self.protocol.send_overhead_ps
            + self.protocol.recv_overhead_ps
            + self.protocol.link.frames_for(largest)
            * self.protocol.per_frame_overhead_ps
        )
        return (
            serialization
            + per_message
            + self.protocol.link.propagation_ps
            + self.switch_latency_ps
        )


class NodePort:
    """A node's full-duplex link as a simulator resource.

    Sends serialise on the egress side; the returned event fires when
    the message has been fully received at the far end.
    """

    def __init__(self, sim: Simulator, fabric: SwitchedFabric, node: int) -> None:
        fabric._check_node(node)
        self.sim = sim
        self.fabric = fabric
        self.node = node
        self.egress_busy_until = 0
        self.busy_ps = 0
        self.bytes_sent = 0
        self.messages_sent = 0

    def send(self, dst: int, nbytes: int) -> Event:
        """Send ``nbytes`` to ``dst``; event fires at delivery time."""
        serialization = self.fabric.protocol.link.serialization_ps(nbytes)
        start = max(self.sim.now, self.egress_busy_until)
        self.egress_busy_until = start + serialization
        delivered = (
            self.egress_busy_until
            + self.fabric.message_ps(self.node, dst, 0)  # latency component
        )
        self.busy_ps += serialization
        self.bytes_sent += max(0, nbytes)
        self.messages_sent += 1
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.link_transfer(
                f"node{self.node}.egress", start, serialization, nbytes, dst
            )
        done = Event(self.sim)
        done.succeed(value=nbytes, delay=delivered - self.sim.now)
        return done
