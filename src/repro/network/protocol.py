"""Transport protocol models: where FPGA network stacks earn their keep.

A :class:`ProtocolModel` adds per-message *processing* costs on both
ends of a link.  The decisive difference between the stacks the
tutorial discusses is exactly this overhead:

* a **kernel TCP** stack costs ~5-15 us of CPU time per message
  (syscalls, copies, interrupts);
* an **FPGA TCP** stack (Limago/EasyNet style) processes packets in the
  datapath at ~1-2 us per message, at line rate;
* an **FPGA RDMA** stack (StRoM/Coyote style) exposes one-sided verbs
  with ~0.7-1.5 us end-to-end message overhead and no target-side CPU.

:meth:`message_ps` is a one-way message (send-side + wire + recv-side);
:meth:`round_trip_ps` is a request/response pair, which is the shape of
a Farview READ/offload call.
"""

from __future__ import annotations

from dataclasses import dataclass

from .link import LinkModel, ethernet_100g

__all__ = [
    "ProtocolModel",
    "fpga_rdma",
    "fpga_tcp",
    "kernel_tcp",
]


@dataclass(frozen=True, slots=True)
class ProtocolModel:
    """A transport protocol running over a link."""

    name: str
    link: LinkModel
    send_overhead_ps: int
    recv_overhead_ps: int
    per_frame_overhead_ps: int = 0  # extra processing per MTU frame
    one_sided: bool = False  # RDMA verbs: no target CPU involvement

    def __post_init__(self) -> None:
        if min(self.send_overhead_ps, self.recv_overhead_ps,
               self.per_frame_overhead_ps) < 0:
            raise ValueError("protocol overheads must be >= 0")

    def message_ps(self, nbytes: int) -> int:
        """One-way latency of a message carrying ``nbytes`` payload."""
        frames = self.link.frames_for(nbytes)
        processing = (
            self.send_overhead_ps
            + self.recv_overhead_ps
            + frames * self.per_frame_overhead_ps
        )
        return processing + self.link.transfer_ps(nbytes)

    def round_trip_ps(self, request_bytes: int, response_bytes: int) -> int:
        """A request/response exchange (e.g. an RDMA READ)."""
        return self.message_ps(request_bytes) + self.message_ps(response_bytes)

    def stream_ps(self, nbytes: int) -> int:
        """A long unidirectional stream: one message setup, bulk at line rate."""
        setup = self.send_overhead_ps + self.recv_overhead_ps
        return setup + self.link.transfer_ps(nbytes)

    def goodput_bytes_per_sec(self, message_bytes: int) -> float:
        """Payload goodput when sending back-to-back messages of a size."""
        if message_bytes <= 0:
            return 0.0
        # Pipelined messages: the per-message bottleneck is the larger of
        # wire serialization and per-message processing on either side.
        frames = self.link.frames_for(message_bytes)
        per_message = max(
            self.link.serialization_ps(message_bytes),
            self.send_overhead_ps + frames * self.per_frame_overhead_ps,
            self.recv_overhead_ps,
        )
        return message_bytes * 1_000_000_000_000 / per_message


def fpga_rdma(link: LinkModel | None = None) -> ProtocolModel:
    """One-sided RDMA on an FPGA NIC (StRoM/Coyote-style)."""
    return ProtocolModel(
        name="fpga-rdma",
        link=link or ethernet_100g(),
        send_overhead_ps=700_000,   # 0.7 us verb issue + DMA
        recv_overhead_ps=300_000,   # target datapath, no CPU
        per_frame_overhead_ps=10_000,
        one_sided=True,
    )


def fpga_tcp(link: LinkModel | None = None) -> ProtocolModel:
    """FPGA TCP/IP at line rate (Limago / EasyNet-style)."""
    return ProtocolModel(
        name="fpga-tcp",
        link=link or ethernet_100g(),
        send_overhead_ps=1_200_000,
        recv_overhead_ps=800_000,
        per_frame_overhead_ps=15_000,
    )


def kernel_tcp(link: LinkModel | None = None) -> ProtocolModel:
    """Kernel (software) TCP on a host CPU: syscalls, copies, interrupts."""
    return ProtocolModel(
        name="kernel-tcp",
        link=link or ethernet_100g(),
        send_overhead_ps=8_000_000,
        recv_overhead_ps=7_000_000,
        per_frame_overhead_ps=300_000,  # per-frame CPU work caps goodput
    )
