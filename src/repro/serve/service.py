"""The event-driven serving loop: traffic -> admission -> batcher ->
replicated backend instances.

:func:`simulate_service` runs one serving session in the discrete-event
engine and returns a :class:`ServiceReport`:

* an **arrival process** replays a pre-drawn open-loop schedule (or
  closed-loop clients issue/wait/think);
* each arrival passes the :class:`~repro.serve.admission
  .AdmissionController` — shed requests are accounted, not queued;
* the :class:`~repro.serve.batcher.DynamicBatcher` forms batches into a
  bounded dispatch stream;
* ``replicas`` replica processes pull batches and hold them for the
  backend's ``batch_service_ps``; an optional
  :class:`~repro.serve.admission.ReplicaAutoscaler` moves the replica
  count at runtime;
* an optional :class:`~repro.faults.FaultPlan` degrades service:
  latency spikes stretch a batch, drops fail it outright (its requests
  count as failures, not goodput) — sites are per-replica, so the
  schedule is deterministic under any interleaving.

Everything is seeded; two runs of the same
``(backend, traffic, config, seed, plan)`` produce byte-identical
reports.  Latency percentiles are computed exactly from the per-request
latency list; the same latencies also feed a
:class:`~repro.obs.metrics.MetricsRegistry` histogram so serving runs
show up in metrics snapshots next to every other instrumented layer.

Replica processes use *bounded* stream gets (``dispatch.get(timeout)``)
and re-check termination on :class:`~repro.core.stream.StreamTimeout`,
so the service can never deadlock on a drained queue — the property the
fault-path tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.sim import Simulator
from ..core.stream import Stream, StreamTimeout
from ..obs.metrics import MetricsRegistry
from ..workloads import ZipfSampler
from .admission import (
    AdmissionController,
    AdmissionPolicy,
    AutoscalerPolicy,
    ReplicaAutoscaler,
)
from .backend import Backend
from .batcher import BatchPolicy, DynamicBatcher
from .traffic import (
    ClosedLoopConfig,
    OpenLoopConfig,
    Request,
    generate_requests,
)

__all__ = ["ServiceConfig", "ServiceReport", "simulate_service"]

_PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True)
class ServiceConfig:
    """One backend's serving configuration."""

    batch: BatchPolicy
    admission: AdmissionPolicy
    replicas: int = 1
    autoscaler: AutoscalerPolicy | None = None
    dispatch_depth: int = 2

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.dispatch_depth < 1:
            raise ValueError("dispatch_depth must be >= 1")


@dataclass(frozen=True)
class ServiceReport:
    """Aggregate outcome of one serving session."""

    backend: str
    offered: int
    admitted: int
    shed: int
    shed_by_reason: dict[str, int]
    completed: int
    failed: int
    in_slo: int
    batches: int
    mean_batch: float
    p50_us: float
    p95_us: float
    p99_us: float
    makespan_s: float
    achieved_qps: float
    goodput_qps: float
    replicas_final: int
    autoscale_decisions: tuple[tuple[int, int, int], ...] = ()

    def row(self) -> dict[str, Any]:
        """The report as a plain JSON-able dict (one sweep cell)."""
        return {
            "backend": self.backend,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_by_reason": dict(self.shed_by_reason),
            "completed": self.completed,
            "failed": self.failed,
            "in_slo": self.in_slo,
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "makespan_s": self.makespan_s,
            "achieved_qps": self.achieved_qps,
            "goodput_qps": self.goodput_qps,
            "replicas_final": self.replicas_final,
        }


class _OnlineService:
    """Internal wiring for one serving session (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        backend: Backend,
        config: ServiceConfig,
        expected: int,
        plan=None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.backend = backend
        self.config = config
        self.plan = plan
        # Not `registry or ...`: an empty registry is falsy (__len__).
        self.registry = (
            registry if registry is not None
            else MetricsRegistry(enabled=False)
        )
        self.dispatch = Stream(
            sim,
            depth=config.dispatch_depth,
            name=f"serve.{backend.name}.dispatch",
        )
        self.batcher = DynamicBatcher(
            sim, config.batch, self.dispatch,
            name=f"serve.{backend.name}.batcher",
        )
        self.admission = AdmissionController(
            config.admission, backend, self.batcher
        )
        self._expected = expected
        self._accounted = 0
        self._latencies: list[int] = []
        self._in_slo = 0
        self._failed = 0
        self._last_done_ps = 0
        self._waiters: dict[int, Any] = {}
        # Idle replicas re-check termination at this cadence; it only
        # sets how quickly the run winds down, never the results.
        self._poll_ps = max(
            1,
            config.batch.max_wait_ps,
            backend.batch_service_ps(backend.max_batch),
        )
        # Metrics instruments (no-ops when the registry is disabled).
        reg = self.registry
        self._m_latency = reg.histogram("serve.latency_ps",
                                        backend=backend.name)
        self._m_wait = reg.histogram("serve.batch_wait_ps",
                                     backend=backend.name)
        self._m_admitted = reg.counter("serve.admitted", backend=backend.name)
        self._m_shed = reg.counter("serve.shed", backend=backend.name)
        self._m_completed = reg.counter("serve.completed",
                                        backend=backend.name)
        self._m_failed = reg.counter("serve.failed", backend=backend.name)
        self._m_batches = reg.counter("serve.batches", backend=backend.name)
        self._m_replicas = reg.gauge("serve.replicas", backend=backend.name)
        self.replica_target = 0
        self._live = 0
        self._next_rid = 0
        self.autoscaler: ReplicaAutoscaler | None = None
        self.set_replicas(config.replicas)
        if config.autoscaler is not None:
            self.autoscaler = ReplicaAutoscaler(config.autoscaler, self)
            sim.spawn(self.autoscaler.run(),
                      name=f"serve.{backend.name}.autoscaler")

    # -- state the admission controller / autoscaler read ------------------

    @property
    def queued(self) -> int:
        """Queue pressure: batcher occupancy plus undelivered batches."""
        return (
            self.batcher.depth
            + len(self.dispatch) * self.config.batch.max_batch
        )

    @property
    def finished(self) -> bool:
        return self._accounted >= self._expected

    # -- replica management -------------------------------------------------

    def set_replicas(self, target: int) -> None:
        """Steer the live replica count (autoscaler hook)."""
        if target < 1:
            raise ValueError("replica target must be >= 1")
        self.replica_target = target
        self._m_replicas.set(target)
        while self._live < target:
            rid = self._next_rid
            self._next_rid += 1
            self._live += 1
            self.sim.spawn(
                self._replica(rid),
                name=f"serve.{self.backend.name}.r{rid}",
            )

    def _replica(self, rid: int):
        sim = self.sim
        backend = self.backend
        site = f"serve.{backend.name}.r{rid}"
        while True:
            if self._live > self.replica_target and self.dispatch.empty:
                self._live -= 1
                return
            if self.finished or (
                self.batcher.drained and self.dispatch.empty
            ):
                self._live -= 1
                return
            try:
                batch = yield self.dispatch.get(timeout=self._poll_ps)
            except StreamTimeout:
                continue
            service_ps = backend.batch_service_ps(len(batch))
            dropped = False
            if self.plan is not None:
                service_ps += self.plan.spike_delay_ps(site)
                dropped = self.plan.drop(site)
            yield sim.timeout(int(service_ps))
            self._m_batches.inc()
            for req, submit_ps in zip(batch.items, batch.submit_ps):
                self._m_wait.observe(batch.formed_ps - submit_ps)
                if dropped:
                    self._record_failure(req)
                else:
                    self._record_completion(req)

    # -- request accounting --------------------------------------------------

    def offer(self, req: Request) -> bool:
        """Run admission for ``req``; queue it or account the shed."""
        admitted, _reason = self.admission.admit(req, self.replica_target)
        if admitted:
            self._m_admitted.inc()
            self.batcher.submit(req)
        else:
            self._m_shed.inc()
            self._accounted += 1
            self._wake(req.rid)
        return admitted

    def _record_completion(self, req: Request) -> None:
        now = self.sim.now
        latency = now - req.arrival_ps
        self._latencies.append(latency)
        self._m_latency.observe(latency)
        self._m_completed.inc()
        if now <= req.deadline_ps:
            self._in_slo += 1
        self._last_done_ps = max(self._last_done_ps, now)
        self._accounted += 1
        self._wake(req.rid)

    def _record_failure(self, req: Request) -> None:
        self._failed += 1
        self._m_failed.inc()
        self._last_done_ps = max(self._last_done_ps, self.sim.now)
        self._accounted += 1
        self._wake(req.rid)

    def _wake(self, rid: int) -> None:
        waiter = self._waiters.pop(rid, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed()

    # -- report --------------------------------------------------------------

    def report(self, offered: int) -> ServiceReport:
        assert self._accounted == offered, (
            f"accounting leak: {self._accounted} accounted, "
            f"{offered} offered"
        )
        lat_us = np.array(self._latencies, dtype=np.float64) / 1e6
        if lat_us.size:
            p50, p95, p99 = (
                float(np.percentile(lat_us, q)) for q in (50, 95, 99)
            )
        else:
            p50 = p95 = p99 = 0.0
        makespan_s = self._last_done_ps / _PS_PER_S
        completed = len(self._latencies)
        batches = self.batcher.batches
        return ServiceReport(
            backend=self.backend.name,
            offered=offered,
            admitted=self.admission.admitted,
            shed=self.admission.shed_total,
            shed_by_reason=dict(self.admission.shed),
            completed=completed,
            failed=self._failed,
            in_slo=self._in_slo,
            batches=batches,
            mean_batch=(
                self.batcher.items_in / batches if batches else 0.0
            ),
            p50_us=p50,
            p95_us=p95,
            p99_us=p99,
            makespan_s=makespan_s,
            achieved_qps=completed / makespan_s if makespan_s else 0.0,
            goodput_qps=self._in_slo / makespan_s if makespan_s else 0.0,
            replicas_final=self.replica_target,
            autoscale_decisions=tuple(
                self.autoscaler.decisions
            ) if self.autoscaler else (),
        )


def _open_loop_arrivals(service: _OnlineService, requests: list[Request]):
    sim = service.sim
    for req in requests:
        gap = req.arrival_ps - sim.now
        if gap > 0:
            yield sim.timeout(gap)
        service.offer(req)
    service.batcher.close()


def _closed_loop_client(
    service: _OnlineService,
    cfg: ClosedLoopConfig,
    cid: int,
    tenants: np.ndarray,
    done: list[int],
):
    sim = service.sim
    prio = frozenset(cfg.priority_tenants)
    for j in range(cfg.requests_per_client):
        rid = cid * cfg.requests_per_client + j
        tenant = int(tenants[j])
        req = Request(
            rid=rid,
            tenant=tenant,
            arrival_ps=sim.now,
            deadline_ps=sim.now + cfg.slo_ps,
            priority=tenant in prio,
        )
        waiter = sim.event()
        service._waiters[rid] = waiter
        if service.offer(req):
            yield waiter
        if cfg.think_ps:
            yield sim.timeout(cfg.think_ps)
    done[0] += 1
    if done[0] == cfg.n_clients:
        service.batcher.close()


def simulate_service(
    backend: Backend,
    traffic: OpenLoopConfig | ClosedLoopConfig,
    config: ServiceConfig,
    seed: int = 0,
    plan=None,
    registry: MetricsRegistry | None = None,
    tracer=None,
) -> ServiceReport:
    """Run one serving session; see the module docstring for the wiring."""
    sim = Simulator(tracer=tracer)
    service = _OnlineService(
        sim, backend, config,
        expected=traffic.n_requests,
        plan=plan,
        registry=registry,
    )
    if isinstance(traffic, OpenLoopConfig):
        requests = generate_requests(traffic, seed)
        sim.spawn(
            _open_loop_arrivals(service, requests),
            name=f"serve.{backend.name}.arrivals",
        )
    else:
        rng = np.random.default_rng(seed)
        tenants = ZipfSampler(
            traffic.n_tenants, traffic.tenant_skew, rng
        ).sample(traffic.n_requests).reshape(
            traffic.n_clients, traffic.requests_per_client
        )
        done = [0]
        for cid in range(traffic.n_clients):
            sim.spawn(
                _closed_loop_client(service, traffic, cid, tenants[cid],
                                    done),
                name=f"serve.{backend.name}.client{cid}",
            )
    sim.run()
    return service.report(traffic.n_requests)
