"""Online serving layer (``repro.serve``).

The paper's use cases — FANNS vector search (SC'23), MicroRec
recommendation inference (MLSys'21), Farview memory offload — are all
*online services* in their original deployments, yet the experiment
suite runs them as offline swept batches.  This package drives the
simulated accelerators under live traffic instead:

* :mod:`repro.serve.traffic` — open-loop (Poisson / bursty) and
  closed-loop load generators with Zipf-skewed tenants, reusing the
  :mod:`repro.workloads` samplers;
* :mod:`repro.serve.backend` — one :class:`Backend` protocol in front
  of the FANNS, MicroRec, and Farview performance models (plus a
  synthetic backend for tests and demos);
* :mod:`repro.serve.batcher` — a dynamic batcher (max-batch-size +
  max-wait-time) feeding replicated backend instances;
* :mod:`repro.serve.admission` — SLO-aware admission control and load
  shedding, plus a replica-autoscaler hook;
* :mod:`repro.serve.service` — the event-driven serving loop tying the
  pieces together, with latency accounting through
  :mod:`repro.obs` histograms and degradation under
  :mod:`repro.faults` plans.

Experiment **e24** (``repro run e24``) sweeps offered load per backend
and renders the latency-percentile / goodput saturation knee;
``python -m repro serve`` runs one-off sessions interactively.
"""

from .admission import (
    AdmissionController,
    AdmissionPolicy,
    AutoscalerPolicy,
    ReplicaAutoscaler,
)
from .backend import (
    Backend,
    FannsBackend,
    FarviewBackend,
    MicroRecBackend,
    SyntheticBackend,
    capacity_qps,
)
from .batcher import Batch, BatchPolicy, DynamicBatcher
from .service import ServiceConfig, ServiceReport, simulate_service
from .traffic import (
    ClosedLoopConfig,
    OpenLoopConfig,
    Request,
    generate_requests,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AutoscalerPolicy",
    "Backend",
    "Batch",
    "BatchPolicy",
    "ClosedLoopConfig",
    "DynamicBatcher",
    "FannsBackend",
    "FarviewBackend",
    "MicroRecBackend",
    "OpenLoopConfig",
    "ReplicaAutoscaler",
    "Request",
    "ServiceConfig",
    "ServiceReport",
    "SyntheticBackend",
    "capacity_qps",
    "generate_requests",
    "simulate_service",
]
