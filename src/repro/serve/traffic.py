"""Load generators: open-loop arrivals and closed-loop clients.

Open-loop traffic is the serving-systems default: requests arrive on
their own schedule whether or not the service keeps up, which is what
exposes a saturation knee (a closed-loop client politely waits, hiding
overload).  Arrivals are **pre-drawn** from a seeded generator, so a
traffic config + seed pins the byte-exact schedule — the property the
e24 determinism tests rely on.

Two arrival shapes:

* **Poisson** — i.i.d. exponential gaps at the offered rate;
* **bursty** — the same mean rate modulated by an on/off phase (an
  MMPP-flavoured model): blocks of ``burst_len`` requests alternate
  between a hot phase (gaps shrunk by ``burst_factor``) and a cold
  phase (gaps stretched to preserve the overall mean).

Tenants are drawn Zipf(``tenant_skew``) — a few hot tenants dominate,
mirroring the multi-tenant smart-NIC setting — and tenants listed in
``priority_tenants`` carry a priority flag the admission controller
honours under shedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads import ZipfSampler

__all__ = [
    "ClosedLoopConfig",
    "OpenLoopConfig",
    "Request",
    "generate_requests",
]

_PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True, slots=True)
class Request:
    """One inbound query: identity, tenant, timing budget."""

    rid: int
    tenant: int
    arrival_ps: int
    deadline_ps: int          # absolute simulated time; the SLO edge
    priority: bool = False


@dataclass(frozen=True)
class OpenLoopConfig:
    """An open-loop arrival schedule.

    Parameters
    ----------
    offered_qps:
        Mean arrival rate (requests per simulated second).
    n_requests:
        Total requests in the schedule.
    slo_ps:
        Relative latency budget; a request arriving at ``t`` must
        complete by ``t + slo_ps`` to count toward goodput.
    n_tenants / tenant_skew:
        Zipf-skewed tenant population.
    burst_factor:
        1.0 = pure Poisson; >1 alternates hot/cold phases of
        ``burst_len`` requests while preserving the mean rate.
    priority_tenants:
        Tenant ids whose requests carry the priority flag.
    """

    offered_qps: float
    n_requests: int
    slo_ps: int
    n_tenants: int = 8
    tenant_skew: float = 1.1
    burst_factor: float = 1.0
    burst_len: int = 32
    priority_tenants: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.offered_qps <= 0:
            raise ValueError(f"offered_qps must be > 0, got {self.offered_qps}")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.slo_ps < 1:
            raise ValueError("slo_ps must be >= 1")
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1.0")
        if self.burst_len < 1:
            raise ValueError("burst_len must be >= 1")


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Closed-loop clients: each waits for its reply, thinks, reissues.

    ``n_clients * requests_per_client`` requests total; the offered
    rate self-limits to the service's completion rate, so closed-loop
    runs measure capacity rather than overload behaviour.
    """

    n_clients: int
    requests_per_client: int
    think_ps: int
    slo_ps: int
    n_tenants: int = 8
    tenant_skew: float = 1.1
    priority_tenants: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.requests_per_client < 1:
            raise ValueError("requests_per_client must be >= 1")
        if self.think_ps < 0:
            raise ValueError("think_ps must be >= 0")
        if self.slo_ps < 1:
            raise ValueError("slo_ps must be >= 1")

    @property
    def n_requests(self) -> int:
        return self.n_clients * self.requests_per_client


def _gaps_ps(cfg: OpenLoopConfig, rng: np.random.Generator) -> np.ndarray:
    """Inter-arrival gaps (float ps) honouring the burst phase plan."""
    mean_gap = _PS_PER_S / cfg.offered_qps
    gaps = rng.exponential(mean_gap, size=cfg.n_requests)
    if cfg.burst_factor > 1.0:
        # Hot blocks compress gaps by burst_factor; cold blocks stretch
        # them so hot+cold average back to mean_gap.
        hot = (np.arange(cfg.n_requests) // cfg.burst_len) % 2 == 0
        cold_scale = 2.0 - 1.0 / cfg.burst_factor
        gaps = np.where(hot, gaps / cfg.burst_factor, gaps * cold_scale)
    return gaps


def generate_requests(cfg: OpenLoopConfig, seed: int) -> list[Request]:
    """Pre-draw the full open-loop schedule for ``(cfg, seed)``."""
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(_gaps_ps(cfg, rng)).astype(np.int64)
    tenants = ZipfSampler(cfg.n_tenants, cfg.tenant_skew, rng).sample(
        cfg.n_requests
    )
    prio = frozenset(cfg.priority_tenants)
    return [
        Request(
            rid=i,
            tenant=int(tenants[i]),
            arrival_ps=int(arrivals[i]),
            deadline_ps=int(arrivals[i]) + cfg.slo_ps,
            priority=int(tenants[i]) in prio,
        )
        for i in range(cfg.n_requests)
    ]
