"""The dynamic batcher: max-batch-size + max-wait-time dispatch.

The classic serving trade-off (MicroRec serves at batch 1 for latency;
Diba's stream processor re-batches for throughput): larger batches
amortise fixed costs, but the first request in a batch pays the wait
for the last.  :class:`DynamicBatcher` implements the standard policy —
dispatch as soon as ``max_batch`` requests are queued **or** the oldest
queued request has waited ``max_wait_ps``, whichever comes first.

Invariants (locked in by the hypothesis suite in
``tests/serve/test_batcher_properties.py``):

* every submitted item is dispatched exactly once, in submit order
  (global FIFO, hence per-tenant FIFO);
* no batch exceeds ``max_batch``;
* absent downstream backpressure, no item sits in the batcher longer
  than ``max_wait_ps`` — the wait clock starts at the *head's* submit
  time, not at the batcher's loop turn;
* batches are never empty.

The batcher is item-agnostic (the service feeds it
:class:`~repro.serve.traffic.Request` objects; the property tests feed
it plain tuples) and pushes :class:`Batch` records into a bounded
:class:`~repro.core.stream.Stream`, so a slow consumer backpressures
batch formation instead of growing an unbounded private queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from ..core.sim import Simulator, any_of
from ..core.stream import Stream

__all__ = ["Batch", "BatchPolicy", "DynamicBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Dispatch when ``max_batch`` items queue or the head waits
    ``max_wait_ps``."""

    max_batch: int
    max_wait_ps: int

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ps < 0:
            raise ValueError(
                f"max_wait_ps must be >= 0, got {self.max_wait_ps}"
            )


@dataclass(frozen=True)
class Batch:
    """One dispatched batch: the items, their submit times, formation time."""

    items: tuple[Any, ...]
    submit_ps: tuple[int, ...]
    formed_ps: int

    def __len__(self) -> int:
        return len(self.items)


class DynamicBatcher:
    """Collects submitted items into batches on a (size, wait) policy.

    ``submit`` is non-blocking (admission control bounds the queue);
    the batcher's own process forms batches and blocks on ``out.put``
    when the dispatch stream is full.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: BatchPolicy,
        out: Stream,
        name: str = "batcher",
    ) -> None:
        self.sim = sim
        self.policy = policy
        self.out = out
        self.name = name
        self.batches = 0
        self.items_in = 0
        self._pending: deque[tuple[Any, int]] = deque()
        self._arrival = None
        self._closed = False
        self._forming = False
        self.process = sim.spawn(self._run(), name=name)

    # -- producer side -----------------------------------------------------

    @property
    def depth(self) -> int:
        """Items currently queued (not yet formed into a batch)."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def drained(self) -> bool:
        """True once closed with nothing queued or mid-dispatch."""
        return self._closed and not self._pending and not self._forming

    def submit(self, item: Any) -> None:
        """Queue ``item`` (non-blocking); timestamps it at ``sim.now``."""
        if self._closed:
            raise RuntimeError(f"batcher {self.name!r} is closed")
        self._pending.append((item, self.sim.now))
        self.items_in += 1
        self._kick()

    def close(self) -> None:
        """No more submissions; pending items flush as partial batches."""
        self._closed = True
        self._kick()

    def _kick(self) -> None:
        wake, self._arrival = self._arrival, None
        if wake is not None and not wake.triggered:
            wake.succeed()

    # -- batcher process ---------------------------------------------------

    def _run(self):
        sim, policy = self.sim, self.policy
        while True:
            if not self._pending:
                if self._closed:
                    return
                self._arrival = sim.event()
                yield self._arrival
                continue
            # The wait clock runs from the head's submit time, so a
            # request left over from a full dispatch keeps its place in
            # the wait budget.
            deadline = self._pending[0][1] + policy.max_wait_ps
            while (
                len(self._pending) < policy.max_batch
                and not self._closed
                and sim.now < deadline
            ):
                self._arrival = sim.event()
                timer = sim.timeout(deadline - sim.now)
                yield any_of(sim, [self._arrival, timer])
                self._arrival = None
                # An unfired guard timer must not keep the clock alive.
                timer.cancel()
            take = min(policy.max_batch, len(self._pending))
            entries = [self._pending.popleft() for _ in range(take)]
            batch = Batch(
                items=tuple(item for item, _ in entries),
                submit_ps=tuple(t for _, t in entries),
                formed_ps=sim.now,
            )
            self._forming = True
            yield self.out.put(batch)
            self._forming = False
            self.batches += 1
