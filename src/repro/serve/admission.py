"""SLO-aware admission control, load shedding, replica autoscaling.

An open-loop service that admits everything converts overload into an
unbounded queue and an unbounded p99.  The controller sheds instead,
on two criteria evaluated at arrival time (both O(1), both
deterministic):

* **queue depth** — a hard cap on batcher occupancy; priority tenants
  get ``priority_headroom`` times the cap before they too are shed;
* **deadline feasibility** — a first-order wait estimate (batches
  ahead of this request, at full-batch service time, spread over the
  live replicas); if the estimated completion already misses the
  request's SLO deadline, admitting it would only waste a slot.
  Priority tenants skip this check — they are shed on queue depth
  only.

:class:`ReplicaAutoscaler` is the scaling hook: a monitor that samples
queue pressure every ``interval_ps`` and asks the service to add or
retire a replica, recording every decision (time, depth, replica
count) so tests and traces can audit the policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from .backend import Backend
from .batcher import DynamicBatcher
from .traffic import Request

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AutoscalerPolicy",
    "ReplicaAutoscaler",
]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Shedding thresholds for one backend's queue."""

    max_queue: int
    priority_headroom: float = 2.0
    deadline_aware: bool = True

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.priority_headroom < 1.0:
            raise ValueError("priority_headroom must be >= 1.0")


class AdmissionController:
    """Admit-or-shed decisions at request arrival time."""

    def __init__(
        self,
        policy: AdmissionPolicy,
        backend: Backend,
        batcher: DynamicBatcher,
    ) -> None:
        self.policy = policy
        self.backend = backend
        self.batcher = batcher
        self.admitted = 0
        self.shed: dict[str, int] = {}

    def _estimated_done_ps(self, now: int, depth: int, replicas: int) -> int:
        """First-order completion estimate for a request joining now."""
        max_batch = self.backend.max_batch
        batch_ps = self.backend.batch_service_ps(max_batch)
        batches_ahead = depth // max_batch
        queue_ps = batches_ahead * batch_ps // max(1, replicas)
        return now + queue_ps + batch_ps

    def admit(self, req: Request, replicas: int) -> tuple[bool, str | None]:
        """Decide for ``req``; returns ``(admitted, shed_reason)``."""
        depth = self.batcher.depth
        cap = self.policy.max_queue
        if req.priority:
            cap = int(cap * self.policy.priority_headroom)
        if depth >= cap:
            self._count("queue")
            return False, "queue"
        if self.policy.deadline_aware and not req.priority:
            now = self.batcher.sim.now
            if self._estimated_done_ps(now, depth, replicas) > req.deadline_ps:
                self._count("deadline")
                return False, "deadline"
        self.admitted += 1
        return True, None

    def _count(self, reason: str) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Queue-pressure autoscaling bounds and cadence."""

    min_replicas: int
    max_replicas: int
    interval_ps: int
    scale_up_depth: float = 8.0    # queued items per replica
    scale_down_depth: float = 1.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.interval_ps < 1:
            raise ValueError("interval_ps must be >= 1")
        if self.scale_down_depth >= self.scale_up_depth:
            raise ValueError("scale_down_depth must be < scale_up_depth")


class ReplicaAutoscaler:
    """Samples queue pressure and steers the service's replica target.

    The autoscaler never touches replicas itself; it calls the
    service's ``set_replicas`` hook, which spawns or retires replica
    processes at safe points.  ``decisions`` records
    ``(t_ps, queued, replicas)`` after every sample for audit.
    """

    def __init__(self, policy: AutoscalerPolicy, service) -> None:
        self.policy = policy
        self.service = service
        self.decisions: list[tuple[int, int, int]] = []

    def run(self):
        """The monitor process (spawned by the service)."""
        sim = self.service.sim
        policy = self.policy
        while not self.service.finished:
            yield sim.timeout(policy.interval_ps)
            queued = self.service.queued
            replicas = self.service.replica_target
            per_replica = queued / max(1, replicas)
            if (per_replica > policy.scale_up_depth
                    and replicas < policy.max_replicas):
                self.service.set_replicas(replicas + 1)
            elif (per_replica < policy.scale_down_depth
                    and replicas > policy.min_replicas):
                self.service.set_replicas(replicas - 1)
            self.decisions.append(
                (sim.now, queued, self.service.replica_target)
            )
