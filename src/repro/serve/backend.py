"""The ``Backend`` protocol: one batch-costing surface per use case.

A serving backend is anything that can price a batch: given ``b``
queued requests, how many simulated picoseconds does one replica need
to finish them?  The three paper use cases map onto it through their
existing performance models, so the serving layer adds *no* second
cost model — it schedules the ones the offline experiments already
validate:

* :class:`FannsBackend` — the staged IVF-PQ pipeline
  (:class:`~repro.fanns.accelerator.FannsAccelerator`): a batch fills
  the pipeline, so cost = one full latency + ``(b-1)`` initiation
  intervals.  Strongly sub-linear — batching wins big.
* :class:`MicroRecBackend` — MicroRec's lookup/DNN stages
  (:class:`~repro.microrec.accelerator.MicroRecAccelerator`), with the
  stages overlapped exactly as ``infer()`` charges them.
* :class:`FarviewBackend` — one offloaded query plan on a Farview node
  (:class:`~repro.farview.server.FarviewServer`): the scan dominates
  and does not amortise, only the request/response overhead does —
  batching helps least, which is itself a finding the e24 table shows.
* :class:`SyntheticBackend` — a fixed ``overhead + b * per_item`` cost
  for unit tests, property tests, and CLI demos.

``capacity_qps`` converts a backend + replica count into the maximum
sustainable throughput at full batches; experiment e24 sweeps offered
load as a fraction of it, which is what puts the saturation knee at a
predictable position for every backend.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = [
    "Backend",
    "FannsBackend",
    "FarviewBackend",
    "MicroRecBackend",
    "SyntheticBackend",
    "capacity_qps",
]

_PS_PER_S = 1_000_000_000_000


@runtime_checkable
class Backend(Protocol):
    """Anything the serving layer can schedule batches onto."""

    name: str
    max_batch: int

    def batch_service_ps(self, batch: int) -> int:
        """Simulated ps one replica needs to serve ``batch`` requests."""
        ...


def _check_batch(backend: "Backend", batch: int) -> None:
    if not 1 <= batch <= backend.max_batch:
        raise ValueError(
            f"{backend.name}: batch must be in 1..{backend.max_batch}, "
            f"got {batch}"
        )


def capacity_qps(backend: Backend, replicas: int = 1) -> float:
    """Max sustainable request rate at full batches on ``replicas``."""
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    full = backend.batch_service_ps(backend.max_batch)
    return replicas * backend.max_batch * _PS_PER_S / full


class SyntheticBackend:
    """A fixed-cost backend: ``overhead + batch * per_item`` ps."""

    def __init__(
        self,
        service_ps: int = 1_000_000,
        per_item_ps: int = 100_000,
        max_batch: int = 8,
        name: str = "synthetic",
    ) -> None:
        if service_ps < 0 or per_item_ps < 0:
            raise ValueError("costs must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if service_ps + per_item_ps <= 0:
            raise ValueError("a batch must take positive time")
        self.name = name
        self.max_batch = max_batch
        self.overhead_ps = service_ps
        self.per_item_ps = per_item_ps

    def batch_service_ps(self, batch: int) -> int:
        _check_batch(self, batch)
        return self.overhead_ps + batch * self.per_item_ps


class FannsBackend:
    """FANNS ANN search as a servable backend.

    A batch of queries streams through the staged pipeline: the first
    result lands after the full stage latency, each further query one
    initiation interval (the bottleneck stage) later.
    """

    def __init__(
        self,
        index,
        nprobe: int = 16,
        max_batch: int = 16,
        list_scale: int = 1,
        config=None,
    ) -> None:
        from ..fanns.accelerator import FannsAccelerator, FannsConfig

        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.name = "fanns"
        self.max_batch = max_batch
        self.nprobe = nprobe
        accel = FannsAccelerator(
            index, config or FannsConfig(), list_scale=list_scale
        )
        stages = accel.stage_times(nprobe)
        self._latency_ps = max(1, int(stages.latency_s * _PS_PER_S))
        self._ii_ps = max(1, int(stages.bottleneck_s * _PS_PER_S))

    def batch_service_ps(self, batch: int) -> int:
        _check_batch(self, batch)
        return self._latency_ps + (batch - 1) * self._ii_ps


class MicroRecBackend:
    """MicroRec CTR inference as a servable backend.

    Batch cost follows ``MicroRecAccelerator.infer``: the lookup and
    DNN stages overlap, so a batch pays the slower stage plus one pass
    through the faster one.
    """

    def __init__(self, tables, max_batch: int = 32, config=None) -> None:
        from ..microrec.accelerator import MicroRecAccelerator, MicroRecConfig

        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.name = "microrec"
        self.max_batch = max_batch
        self._accel = MicroRecAccelerator(
            tables, config=config or MicroRecConfig()
        )
        self._cache: dict[int, int] = {}

    def batch_service_ps(self, batch: int) -> int:
        _check_batch(self, batch)
        cached = self._cache.get(batch)
        if cached is None:
            accel = self._accel
            lookup = accel.lookup_time_s(batch)
            dnn = accel.dnn_time_s(batch)
            overlap_s = max(lookup, dnn) + min(
                accel.lookup_time_s(1), accel.dnn_time_s(1)
            )
            cached = max(1, int(overlap_s * _PS_PER_S))
            self._cache[batch] = cached
        return cached


class FarviewBackend:
    """One offloaded query plan on a Farview memory node.

    Every request re-runs the node-side scan, so only the per-request
    protocol overhead amortises across a batch; service time is nearly
    linear in the batch size.
    """

    _REQUEST_BYTES = 128

    def __init__(self, server, plan, table_name: str,
                 max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.name = "farview"
        self.max_batch = max_batch
        execution = server.execute(plan, table_name)
        protocol = server.protocol
        overhead_ps = (
            protocol.message_ps(self._REQUEST_BYTES) + protocol.message_ps(0)
        )
        self._overhead_ps = max(1, int(overhead_ps))
        self._per_query_ps = max(1, int(execution.processing_s * _PS_PER_S))

    def batch_service_ps(self, batch: int) -> int:
        _check_batch(self, batch)
        return self._overhead_ps + batch * self._per_query_ps
