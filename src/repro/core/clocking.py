"""Clock domains: converting between cycles and simulated nanoseconds.

The event engine (:mod:`repro.core.sim`) counts abstract integer time
units that the hardware layers interpret as **picoseconds**.  Working in
picoseconds (rather than nanoseconds) keeps cycle durations of common
fabric clocks exact integers: 300 MHz -> 3334 ps would not be exact, so
we round the *period* to an integer picosecond count once at clock
construction and document the tiny (<0.03%) frequency error.

Typical FPGA clocks used throughout the reproduction:

* ``FABRIC_300MHZ`` — the general kernel clock assumed by the tutorial's
  HLS examples (Alveo kernels commonly close timing at 200-400 MHz).
* ``HBM_450MHZ`` — the HBM AXI channel clock on Alveo U280/U55C.
* ``NETWORK_322MHZ`` — the 100 GbE MAC user clock (512-bit datapath).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ClockDomain",
    "FABRIC_200MHZ",
    "FABRIC_300MHZ",
    "FABRIC_400MHZ",
    "HBM_450MHZ",
    "NETWORK_322MHZ",
    "PS_PER_NS",
    "PS_PER_US",
    "PS_PER_MS",
    "PS_PER_S",
]

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True, slots=True)
class ClockDomain:
    """A clock with an integer period in picoseconds.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports.
    period_ps:
        Clock period in picoseconds (must be positive).
    """

    name: str
    period_ps: int

    def __post_init__(self) -> None:
        if self.period_ps <= 0:
            raise ValueError(f"clock period must be positive, got {self.period_ps}")

    @classmethod
    def from_mhz(cls, name: str, freq_mhz: float) -> "ClockDomain":
        """Build a clock from a frequency in MHz (period rounded to ps)."""
        if freq_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_mhz}")
        period_ps = round(PS_PER_S / (freq_mhz * 1e6))
        return cls(name, period_ps)

    @property
    def freq_mhz(self) -> float:
        """Effective frequency in MHz after period rounding."""
        return PS_PER_S / self.period_ps / 1e6

    @property
    def freq_hz(self) -> float:
        """Effective frequency in Hz after period rounding."""
        return PS_PER_S / self.period_ps

    def cycles_to_ps(self, cycles: int | float) -> int:
        """Duration of ``cycles`` clock cycles, in picoseconds."""
        return round(cycles * self.period_ps)

    def ps_to_cycles(self, ps: int) -> int:
        """Number of *complete* cycles in ``ps`` picoseconds."""
        return int(ps // self.period_ps)

    def cycles_to_seconds(self, cycles: int | float) -> float:
        """Duration of ``cycles`` clock cycles, in seconds."""
        return cycles * self.period_ps / PS_PER_S


FABRIC_200MHZ = ClockDomain.from_mhz("fabric-200", 200.0)
FABRIC_300MHZ = ClockDomain.from_mhz("fabric-300", 300.0)
FABRIC_400MHZ = ClockDomain.from_mhz("fabric-400", 400.0)
HBM_450MHZ = ClockDomain.from_mhz("hbm-450", 450.0)
NETWORK_322MHZ = ClockDomain.from_mhz("net-322", 322.265625)
