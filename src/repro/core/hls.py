"""A miniature High-Level Synthesis front end.

The tutorial's *Programming* section teaches how ``#pragma HLS
pipeline`` and ``#pragma HLS unroll`` turn a sequential loop into a
spatial datapath.  This module reproduces that lesson as an executable
model: describe a loop nest (:class:`LoopNest`) with per-iteration
operation counts, choose pragmas (:class:`Pragmas`), and
:func:`synthesize` returns the :class:`~repro.core.kernel.KernelSpec`
the "compiler" would produce — including a first-order resource
estimate, so unrolling visibly spends LUTs/DSPs to buy throughput.

The temporal (CPU-style) execution cost of the same loop is available
from :meth:`LoopNest.sequential_cycles` for side-by-side comparison;
bench E1 sweeps II and unroll and regenerates the spatial-vs-temporal
argument of the tutorial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .clocking import FABRIC_300MHZ, ClockDomain
from .device import ResourceVector
from .kernel import KernelSpec

__all__ = ["LoopNest", "Pragmas", "synthesize"]

# First-order per-operation costs used by the resource estimator.  The
# absolute values are rough (they mimic Vitis HLS reports for 32-bit
# ops) but their *ratios* are what the design-space arguments rely on.
_OP_COSTS: dict[str, tuple[int, ResourceVector]] = {
    # op -> (latency cycles, resources per parallel instance)
    "add": (1, ResourceVector(lut=32, ff=32)),
    "mul": (3, ResourceVector(dsp=3, lut=20, ff=60)),
    "div": (30, ResourceVector(lut=1200, ff=1800)),
    "cmp": (1, ResourceVector(lut=16, ff=16)),
    "logic": (1, ResourceVector(lut=8, ff=8)),
    "mem_read": (2, ResourceVector(lut=40, ff=40)),
    "mem_write": (1, ResourceVector(lut=40, ff=40)),
}


@dataclass(frozen=True, slots=True)
class LoopNest:
    """A perfect loop nest with per-iteration operation counts.

    Parameters
    ----------
    name:
        Kernel name.
    trip_count:
        Total iterations of the flattened nest.
    ops:
        Mapping from op kind (see module source for the supported set)
        to how many of that op one iteration performs.
    dependence_distance:
        0 for fully parallel iterations; ``d > 0`` means iteration ``i``
        depends on iteration ``i - d`` (a loop-carried dependence, e.g.
        an accumulator), which bounds the achievable II.
    """

    name: str
    trip_count: int
    ops: dict[str, int] = field(default_factory=dict)
    dependence_distance: int = 0

    def __post_init__(self) -> None:
        if self.trip_count < 0:
            raise ValueError(f"trip_count must be >= 0, got {self.trip_count}")
        for op, count in self.ops.items():
            if op not in _OP_COSTS:
                raise ValueError(
                    f"unknown op {op!r}; supported: {sorted(_OP_COSTS)}"
                )
            if count < 0:
                raise ValueError(f"op count for {op!r} must be >= 0")

    def iteration_latency(self) -> int:
        """Cycles for one iteration's dependency chain (ops in sequence)."""
        return max(
            1,
            sum(_OP_COSTS[op][0] * count for op, count in self.ops.items()),
        )

    def min_ii(self) -> int:
        """The smallest II a pipeline can achieve given loop-carried deps.

        Without a carried dependence the II can reach 1; with distance
        ``d`` the recurrence forces ``II >= ceil(latency / d)``.
        """
        if self.dependence_distance <= 0:
            return 1
        return max(1, math.ceil(self.iteration_latency() / self.dependence_distance))

    def sequential_cycles(self) -> int:
        """Temporal-architecture cost: every iteration runs start-to-finish."""
        return self.trip_count * self.iteration_latency()


@dataclass(frozen=True, slots=True)
class Pragmas:
    """The pragma set applied to a loop nest.

    ``pipeline_ii`` is the *requested* II (the achieved II also honors
    loop-carried dependences); ``unroll`` replicates the datapath.
    """

    pipeline: bool = True
    pipeline_ii: int = 1
    unroll: int = 1

    def __post_init__(self) -> None:
        if self.pipeline_ii < 1:
            raise ValueError(f"pipeline_ii must be >= 1, got {self.pipeline_ii}")
        if self.unroll < 1:
            raise ValueError(f"unroll must be >= 1, got {self.unroll}")


def _base_resources(loop: LoopNest) -> ResourceVector:
    total = ResourceVector()
    for op, count in loop.ops.items():
        total = total + _OP_COSTS[op][1] * count
    # Control logic floor for any synthesized loop.
    return total + ResourceVector(lut=200, ff=300)


def synthesize(
    loop: LoopNest,
    pragmas: Pragmas = Pragmas(),
    clock: ClockDomain = FABRIC_300MHZ,
) -> KernelSpec:
    """"Synthesize" a loop nest under the given pragmas into a KernelSpec.

    Without ``pipeline`` the kernel degenerates to a temporal engine:
    II equals the full iteration latency (one iteration at a time).
    With it, II is ``max(requested, min_ii)``; ``unroll`` multiplies
    both throughput and resources.
    """
    depth = loop.iteration_latency()
    if pragmas.pipeline:
        # Honor the requested II and loop-carried dependences, but never
        # exceed the iteration latency: a pipeline with II == depth is
        # already the sequential schedule.
        ii = min(depth, max(pragmas.pipeline_ii, loop.min_ii()))
    else:
        ii = depth
    resources = _base_resources(loop) * pragmas.unroll
    return KernelSpec(
        name=loop.name,
        ii=ii,
        depth=depth,
        unroll=pragmas.unroll,
        clock=clock,
        resources=resources,
    )
