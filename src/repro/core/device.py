"""FPGA device catalog and resource accounting.

The tutorial's use cases target AMD/Xilinx Alveo data-center cards
(U250, U280, U55C).  Accelerator designs in this reproduction declare
the resources they consume as a :class:`ResourceVector`; a
:class:`Device` checks feasibility and reports utilization, exactly the
role the place-and-route resource report plays for a real bitstream.

Catalog numbers are the public datasheet values (available logic after
shell overhead is handled via ``usable_fraction``, defaulting to the
~80% a typical Vitis shell leaves for user kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = [
    "Device",
    "ResourceVector",
    "ALVEO_U250",
    "ALVEO_U280",
    "ALVEO_U55C",
    "DEVICE_CATALOG",
]


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """A bundle of FPGA fabric resources.

    Units: ``lut``/``ff`` in individual cells, ``bram_36k`` in RAMB36
    blocks, ``uram`` in URAM288 blocks, ``dsp`` in DSP48/DSP58 slices,
    ``hbm_channels`` in HBM pseudo-channels.
    """

    lut: int = 0
    ff: int = 0
    bram_36k: int = 0
    uram: int = 0
    dsp: int = 0
    hbm_channels: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"resource {f.name} must be >= 0")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            **{f.name: getattr(self, f.name) + getattr(other, f.name)
               for f in fields(self)}
        )

    def __mul__(self, k: int) -> "ResourceVector":
        if k < 0:
            raise ValueError(f"resource multiplier must be >= 0, got {k}")
        return ResourceVector(
            **{f.name: getattr(self, f.name) * k for f in fields(self)}
        )

    __rmul__ = __mul__

    def fits_in(self, budget: "ResourceVector") -> bool:
        """True if every component is within ``budget``."""
        return all(
            getattr(self, f.name) <= getattr(budget, f.name) for f in fields(self)
        )

    def utilization(self, budget: "ResourceVector") -> dict[str, float]:
        """Per-resource utilization fractions against ``budget``.

        Resources with a zero budget and zero demand report 0.0;
        demanding a resource the budget lacks reports ``inf``.
        """
        result: dict[str, float] = {}
        for f in fields(self):
            demand = getattr(self, f.name)
            avail = getattr(budget, f.name)
            if avail == 0:
                result[f.name] = 0.0 if demand == 0 else float("inf")
            else:
                result[f.name] = demand / avail
        return result

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True, slots=True)
class Device:
    """An FPGA card: fabric resources plus its memory system parameters.

    ``usable_fraction`` models the shell (PCIe/DMA/network) overhead; the
    feasibility check compares against ``budget`` (resources scaled by
    that fraction, HBM channels excepted — those are hard-partitioned).
    """

    name: str
    resources: ResourceVector
    hbm_capacity_bytes: int = 0
    hbm_channel_bandwidth: float = 0.0  # bytes/s per pseudo-channel
    ddr_channels: int = 0
    ddr_channel_bandwidth: float = 0.0  # bytes/s per DDR4 channel
    ddr_capacity_bytes: int = 0
    bram_bytes: int = 0
    uram_bytes: int = 0
    usable_fraction: float = 0.8
    notes: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ValueError("usable_fraction must be in (0, 1]")

    @property
    def budget(self) -> ResourceVector:
        """Resources actually available to user kernels."""
        r = self.resources
        return ResourceVector(
            lut=int(r.lut * self.usable_fraction),
            ff=int(r.ff * self.usable_fraction),
            bram_36k=int(r.bram_36k * self.usable_fraction),
            uram=int(r.uram * self.usable_fraction),
            dsp=int(r.dsp * self.usable_fraction),
            hbm_channels=r.hbm_channels,
        )

    @property
    def hbm_total_bandwidth(self) -> float:
        """Aggregate HBM bandwidth in bytes/s."""
        return self.resources.hbm_channels * self.hbm_channel_bandwidth

    @property
    def ddr_total_bandwidth(self) -> float:
        """Aggregate DDR bandwidth in bytes/s."""
        return self.ddr_channels * self.ddr_channel_bandwidth

    @property
    def onchip_sram_bytes(self) -> int:
        """Total on-chip SRAM (BRAM + URAM) in bytes."""
        return self.bram_bytes + self.uram_bytes

    def fits(self, demand: ResourceVector) -> bool:
        """True if ``demand`` fits the user-kernel budget."""
        return demand.fits_in(self.budget)

    def utilization_report(self, demand: ResourceVector) -> dict[str, float]:
        """Utilization of ``demand`` against the user-kernel budget."""
        return demand.utilization(self.budget)


_GIB = 1024 ** 3

ALVEO_U250 = Device(
    name="Alveo U250",
    resources=ResourceVector(
        lut=1_728_000, ff=3_456_000, bram_36k=2_688, uram=1_280, dsp=12_288,
        hbm_channels=0,
    ),
    ddr_channels=4,
    ddr_channel_bandwidth=19_200_000_000,  # DDR4-2400, 64-bit
    ddr_capacity_bytes=64 * _GIB,
    bram_bytes=2_688 * 36 * 1024 // 8,
    uram_bytes=1_280 * 288 * 1024 // 8,
    notes="Largest fabric, DDR4-only (no HBM).",
)

ALVEO_U280 = Device(
    name="Alveo U280",
    resources=ResourceVector(
        lut=1_304_000, ff=2_607_000, bram_36k=2_016, uram=960, dsp=9_024,
        hbm_channels=32,
    ),
    hbm_capacity_bytes=8 * _GIB,
    hbm_channel_bandwidth=14_375_000_000,  # 460 GB/s aggregate / 32 channels
    ddr_channels=2,
    ddr_channel_bandwidth=19_200_000_000,
    ddr_capacity_bytes=32 * _GIB,
    bram_bytes=2_016 * 36 * 1024 // 8,
    uram_bytes=960 * 288 * 1024 // 8,
    notes="HBM2 (8 GiB, 32 pseudo-channels) + DDR4; MicroRec's board.",
)

ALVEO_U55C = Device(
    name="Alveo U55C",
    resources=ResourceVector(
        lut=1_304_000, ff=2_607_000, bram_36k=2_016, uram=960, dsp=9_024,
        hbm_channels=32,
    ),
    hbm_capacity_bytes=16 * _GIB,
    hbm_channel_bandwidth=14_375_000_000,
    ddr_channels=0,
    bram_bytes=2_016 * 36 * 1024 // 8,
    uram_bytes=960 * 288 * 1024 // 8,
    notes="HBM2 (16 GiB) only, dual QSFP28; the HACC cluster card (FANNS).",
)

DEVICE_CATALOG: dict[str, Device] = {
    "u250": ALVEO_U250,
    "u280": ALVEO_U280,
    "u55c": ALVEO_U55C,
}
