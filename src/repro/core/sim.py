"""Discrete-event simulation kernel.

This module implements a small, dependency-free discrete-event engine in
the style of SimPy: *processes* are Python generators that ``yield``
:class:`Event` objects and are resumed when those events fire.  The
engine keeps simulated time in abstract *time units*; higher layers
interpret one unit as one nanosecond (see :mod:`repro.core.clocking`).

The engine is deliberately minimal but complete enough to model FPGA
dataflow regions, memory ports, and network links:

* :class:`Simulator` — the event loop (a binary heap of scheduled
  events).
* :class:`Event` — a one-shot occurrence that processes can wait on.
* :class:`Timeout` — an event that fires after a fixed delay.
* :class:`Process` — a running generator; it is itself an event that
  fires when the generator returns, so processes can join each other.
* :func:`all_of` / :func:`any_of` — composite waits.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker(sim, "a", 5))
>>> _ = sim.spawn(worker(sim, "b", 3))
>>> sim.run()
>>> log
[(3, 'b'), (5, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator, Iterable
from typing import Any

from ..obs.trace import get_default_tracer

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "all_of",
    "any_of",
]


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation API."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries an arbitrary payload supplied by the
    interrupting party.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or
    :meth:`fail`) schedules it to fire, waking every process that
    yielded it.  Events can only be triggered once.
    """

    __slots__ = ("sim", "_value", "_ok", "_triggered", "_fired", "callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._fired = False
        self.callbacks: list[Any] = []

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def fired(self) -> bool:
        """True once the event has fired and callbacks have run."""
        return self._fired

    @property
    def value(self) -> Any:
        """The event payload (valid after the event fired)."""
        return self._value

    @property
    def ok(self) -> bool:
        """False if the event carries an exception."""
        return self._ok

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Schedule the event to fire with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Schedule the event to fire carrying an exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exc
        self._ok = False
        self.sim._schedule(self, delay)
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running generator-based process.

    A process is itself an :class:`Event` that fires when the generator
    returns; its value is the generator's return value.  Yielding a
    process from another process therefore *joins* it.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        # Kick the process off at the current simulation time.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waited = self._waiting_on
        if waited is not None and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._waiting_on = None
        wake = Event(self.sim)
        wake.callbacks.append(lambda ev: self._step(Interrupt(cause), throw=True))
        wake.succeed()

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.process_resumed(self.name, self.sim._now)
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            if tracer is not None:
                tracer.process_finished(self.name, self.sim._now, ok=True)
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as failure.
            if tracer is not None:
                tracer.process_finished(self.name, self.sim._now, ok=False)
            self.fail(SimulationError(f"process {self.name!r} killed by interrupt"))
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}, "
                    "expected an Event"
                )
            )
            return
        if target._fired:
            # Already fired: resume immediately at the current time.
            immediate = Event(self.sim)
            immediate.callbacks.append(
                lambda ev, tgt=target: self._resume_from_fired(tgt)
            )
            immediate.succeed()
            self._waiting_on = None
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def _resume_from_fired(self, target: Event) -> None:
        if target.ok:
            self._step(target.value, throw=False)
        else:
            self._step(target.value, throw=True)


class _Condition(Event):
    """Base for :func:`all_of` / :func:`any_of` composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise SimulationError("condition members must be Events")
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev._fired:
                self._on_member(ev)
            else:
                ev.callbacks.append(self._on_member)

    def _on_member(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _AllOf(_Condition):
    __slots__ = ()

    def _on_member(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value if isinstance(event.value, BaseException)
                      else SimulationError("condition member failed"))
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev.value for ev in self.events])


class _AnyOf(_Condition):
    __slots__ = ()

    def _on_member(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value if isinstance(event.value, BaseException)
                      else SimulationError("condition member failed"))
            return
        self.succeed(event)


def all_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event that fires once every event in ``events`` has fired.

    Its value is the list of member values, in member order.
    """
    return _AllOf(sim, events)


def any_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event that fires as soon as any member fires (value: that event)."""
    return _AnyOf(sim, events)


class Simulator:
    """The discrete-event loop.

    Time is a non-negative integer in abstract units (interpreted as
    nanoseconds by the hardware layers).  Events scheduled at the same
    time fire in scheduling order (FIFO), which keeps runs deterministic.

    ``tracer`` hooks the engine (and every instrumented component built
    on it) into the observability layer (:mod:`repro.obs`); the default
    ``None`` — unless a process-wide default tracer is installed — runs
    the exact untraced code path.  Tracer hooks only record; they never
    schedule events, so a traced run's event order, ``now`` trajectory
    and process results are identical to an untraced one.
    """

    def __init__(self, tracer: Any = None) -> None:
        self._now = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._processes: list[Process] = []
        self._tracer = tracer if tracer is not None else get_default_tracer()
        if self._tracer is not None:
            self._tracer.bind_clock(lambda: self._now)

    @property
    def now(self) -> int:
        """Current simulated time."""
        return self._now

    @property
    def tracer(self) -> Any:
        """The attached :class:`~repro.obs.trace.Tracer`, or ``None``."""
        return self._tracer

    def attach_tracer(self, tracer: Any) -> None:
        """Attach (or replace) a tracer and bind it to this clock."""
        self._tracer = tracer
        if tracer is not None:
            tracer.bind_clock(lambda: self._now)

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, int(delay), value)

    def spawn(
        self,
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # Alias familiar to SimPy users.
    process = spawn

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + int(delay)
        heapq.heappush(self._heap, (when, next(self._counter), event))
        if self._tracer is not None:
            self._tracer.sim_event_scheduled(event, when)

    def peek(self) -> int | None:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Fire the single next event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        event._fired = True
        if self._tracer is not None:
            self._tracer.sim_event_fired(event, when)
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event.ok and not callbacks and not isinstance(event, Process):
            # A failure nobody waited for must not pass silently.
            raise event.value

    def run(self, until: int | None = None) -> None:
        """Run until the event heap drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_process(self, proc: Process, limit: int | None = None) -> Any:
        """Run until ``proc`` finishes; return its value.

        ``limit`` bounds simulated time to guard against deadlocks; a
        :class:`SimulationError` is raised if the process is still alive
        when the heap drains or the limit is hit.
        """
        while self._heap and not proc._fired:
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(
                    f"process {proc.name!r} did not finish before t={limit}"
                )
            self.step()
        if not proc._fired:
            raise SimulationError(
                f"deadlock: process {proc.name!r} still waiting at t={self._now}"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
