"""Discrete-event simulation kernel.

This module implements a small, dependency-free discrete-event engine in
the style of SimPy: *processes* are Python generators that ``yield``
:class:`Event` objects and are resumed when those events fire.  The
engine keeps simulated time in abstract *time units*; higher layers
interpret one unit as one nanosecond (see :mod:`repro.core.clocking`).

The engine is deliberately minimal but complete enough to model FPGA
dataflow regions, memory ports, and network links:

* :class:`Simulator` — the event loop (a binary heap of scheduled
  events).
* :class:`Event` — a one-shot occurrence that processes can wait on.
* :class:`Timeout` — an event that fires after a fixed delay.
* :class:`Process` — a running generator; it is itself an event that
  fires when the generator returns, so processes can join each other.
* :func:`all_of` / :func:`any_of` — composite waits.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker(sim, "a", 5))
>>> _ = sim.spawn(worker(sim, "b", 3))
>>> sim.run()
>>> log
[(3, 'b'), (5, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator, Iterable
from typing import Any

from ..obs.trace import get_default_tracer

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "WaitTimeout",
    "all_of",
    "any_of",
    "with_timeout",
]


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation API."""


class WaitTimeout(SimulationError):
    """Raised into a process when a :func:`with_timeout` wait expires.

    ``timeout_ps`` is the budget that ran out; ``waited`` the event the
    process abandoned (already unlinked/cancelled where possible).
    """

    def __init__(self, timeout_ps: int, waited: "Event | None" = None) -> None:
        super().__init__(f"wait timed out after {timeout_ps} ps")
        self.timeout_ps = timeout_ps
        self.waited = waited


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries an arbitrary payload supplied by the
    interrupting party.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or
    :meth:`fail`) schedules it to fire, waking every process that
    yielded it.  Events can only be triggered once.

    A pending (or scheduled-but-not-yet-fired) event can be
    :meth:`cancel`-led: it will never fire, its callbacks are dropped,
    and any registered :meth:`on_cancel` hooks run so the event's owner
    (e.g. a :class:`~repro.core.stream.Stream` holding a blocked
    getter) can unlink the abandoned waiter from its own state.
    """

    __slots__ = (
        "sim", "_value", "_ok", "_triggered", "_fired", "_cancelled",
        "_cancel_hooks", "_poolable", "callbacks",
    )

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._fired = False
        self._cancelled = False
        self._cancel_hooks: list[Any] = []
        self._poolable = False
        self.callbacks: list[Any] = []

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def fired(self) -> bool:
        """True once the event has fired and callbacks have run."""
        return self._fired

    @property
    def value(self) -> Any:
        """The event payload (valid after the event fired)."""
        return self._value

    @property
    def ok(self) -> bool:
        """False if the event carries an exception."""
        return self._ok

    @property
    def cancelled(self) -> bool:
        """True once the event has been abandoned via :meth:`cancel`."""
        return self._cancelled

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Schedule the event to fire with ``value`` after ``delay``."""
        if self._cancelled:
            raise SimulationError("cannot trigger a cancelled event")
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Schedule the event to fire carrying an exception."""
        if self._cancelled:
            raise SimulationError("cannot trigger a cancelled event")
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exc
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def on_cancel(self, hook: Any) -> None:
        """Register ``hook(event)`` to run if this event is cancelled.

        Owners of waiter events (streams, ports) use this to unlink an
        abandoned waiter from their internal queues; events carrying a
        hook advertise that they are safe to abandon.
        """
        self._cancel_hooks.append(hook)

    def cancel(self) -> bool:
        """Abandon the event: it will never fire and wakes nobody.

        Pending events simply never trigger; already-scheduled (but not
        yet fired) events — e.g. a no-longer-needed :class:`Timeout` —
        are lazily dropped from the event heap without advancing the
        clock.  Returns False (a no-op) once the event has fired or was
        already cancelled.
        """
        if self._fired or self._cancelled:
            return False
        self._cancelled = True
        self.callbacks.clear()
        hooks, self._cancel_hooks = self._cancel_hooks, []
        for hook in hooks:
            hook(self)
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.sim_event_cancelled(self)
        return True


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running generator-based process.

    A process is itself an :class:`Event` that fires when the generator
    returns; its value is the generator's return value.  Yielding a
    process from another process therefore *joins* it.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_generation", "_defused",
                 "_unobserved", "_bootstrap")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        # Resumption token: every armed resumption (callback or queued
        # immediate) belongs to one generation; interrupt() bumps the
        # generation so a stale queued resume cannot step the generator
        # a second time after the Interrupt throw.
        self._generation = 0
        self._defused = False
        self._unobserved = False
        # Kick the process off at the current simulation time.  The
        # bootstrap registers as the awaited event so the staleness
        # guard in _resume recognises it as a live resumption.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        self._waiting_on = bootstrap
        self._bootstrap = bootstrap
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def defuse(self) -> None:
        """Mark this process's failure as handled.

        A failed process nobody joined makes :meth:`Simulator.run`
        raise at exit; a supervisor that deliberately kills workers
        (e.g. a retry loop abandoning a timed-out attempt) defuses them
        to declare the failure expected.
        """
        self._defused = True

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waited = self._waiting_on
        if waited is not None and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
            if (not waited.callbacks and not waited._triggered
                    and waited._cancel_hooks):
                # Sole waiter on an abandonable event (a stream getter /
                # putter): cancel it so the owner unlinks the orphan and
                # no item is handed to a dead consumer.
                waited.cancel()
        self._waiting_on = None
        self._generation += 1
        token = self._generation
        wake = self.sim._acquire_event()
        wake.callbacks.append(
            lambda ev: self._deliver_interrupt(Interrupt(cause), token)
        )
        wake.succeed()

    # -- internal ---------------------------------------------------------

    def _deliver_interrupt(self, exc: Interrupt, token: int) -> None:
        if token != self._generation or not self.is_alive:
            # Superseded by a later interrupt, or the process finished
            # before delivery.
            return
        self._step(exc, throw=True)

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            # Stale wake: the wait was abandoned (interrupt) after this
            # event's callbacks were already snapshotted for firing.
            return
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.process_resumed(self.name, self.sim._now)
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            if tracer is not None:
                tracer.process_finished(self.name, self.sim._now, ok=True)
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as failure.
            if tracer is not None:
                tracer.process_finished(self.name, self.sim._now, ok=False)
            self.fail(SimulationError(f"process {self.name!r} killed by interrupt"))
            return
        except SimulationError as exc:
            # A modelled failure (dropped transfer, dead node, ...) the
            # process chose not to handle fails the process, so joiners —
            # retry loops above all — see it thrown at their yield.  Any
            # other exception is a programming error and still propagates
            # synchronously out of run().
            if tracer is not None:
                tracer.process_finished(self.name, self.sim._now, ok=False)
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}, "
                    "expected an Event"
                )
            )
            return
        if target._fired:
            # Already fired: resume immediately at the current time.
            if isinstance(target, Process):
                self.sim._defuse(target)
            self._generation += 1
            token = self._generation
            immediate = self.sim._acquire_event()
            immediate.callbacks.append(
                lambda ev, tgt=target, tok=token: self._resume_from_fired(tgt, tok)
            )
            immediate.succeed()
            self._waiting_on = None
        else:
            self._generation += 1
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def _resume_from_fired(self, target: Event, token: int) -> None:
        if token != self._generation or not self.is_alive:
            # An interrupt invalidated this queued resumption; without
            # the token the process would be stepped twice.
            return
        if target.ok:
            self._step(target.value, throw=False)
        else:
            self._step(target.value, throw=True)


class _Condition(Event):
    """Base for :func:`all_of` / :func:`any_of` composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise SimulationError("condition members must be Events")
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev._fired:
                if isinstance(ev, Process):
                    sim._defuse(ev)
                self._on_member(ev)
            else:
                ev.callbacks.append(self._on_member)

    def _on_member(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _AllOf(_Condition):
    __slots__ = ()

    def _on_member(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value if isinstance(event.value, BaseException)
                      else SimulationError("condition member failed"))
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev.value for ev in self.events])


class _AnyOf(_Condition):
    __slots__ = ()

    def _on_member(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value if isinstance(event.value, BaseException)
                      else SimulationError("condition member failed"))
            return
        self.succeed(event)


def all_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event that fires once every event in ``events`` has fired.

    Its value is the list of member values, in member order.
    """
    return _AllOf(sim, events)


def any_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event that fires as soon as any member fires (value: that event)."""
    return _AnyOf(sim, events)


def with_timeout(sim: "Simulator", event: Event, timeout_ps: int) -> Event:
    """Wait on ``event`` for at most ``timeout_ps``.

    Returns an event that mirrors ``event`` (same value / exception) if
    it fires within the budget, and fails with :class:`WaitTimeout`
    otherwise.  On expiry the wait is *abandoned cleanly*: the
    wrapper's callback is unlinked from ``event`` and, if that leaves
    an abandonable waiter (one carrying :meth:`Event.on_cancel` hooks,
    e.g. a blocked stream getter) with no other listeners, the waiter
    is cancelled so its owner can unlink it — FIFO state stays intact.
    The guard timer is likewise cancelled when ``event`` wins, so an
    unused long timeout never extends the simulated run.
    """
    if not isinstance(event, Event):
        raise SimulationError(
            f"with_timeout requires an Event, got {type(event).__name__}"
        )
    timeout_ps = int(timeout_ps)
    if timeout_ps < 0:
        raise SimulationError(f"negative timeout: {timeout_ps}")
    wrapper = Event(sim)
    if event._fired:
        if event.ok:
            wrapper.succeed(event.value)
        else:
            wrapper.fail(event.value)
        return wrapper
    timer = Timeout(sim, timeout_ps)

    def _won(ev: Event) -> None:
        if wrapper._triggered:
            return
        timer.cancel()
        if ev.ok:
            wrapper.succeed(ev.value)
        else:
            wrapper.fail(ev.value)

    def _expired(_timer: Event) -> None:
        if wrapper._triggered:
            return
        if _won in event.callbacks:
            event.callbacks.remove(_won)
        if (not event.callbacks and not event._triggered
                and event._cancel_hooks):
            event.cancel()
        wrapper.fail(WaitTimeout(timeout_ps, waited=event))

    event.callbacks.append(_won)
    timer.callbacks.append(_expired)
    return wrapper


class Simulator:
    """The discrete-event loop.

    Time is a non-negative integer in abstract units (interpreted as
    nanoseconds by the hardware layers).  Events scheduled at the same
    time fire in scheduling order (FIFO), which keeps runs deterministic.

    ``tracer`` hooks the engine (and every instrumented component built
    on it) into the observability layer (:mod:`repro.obs`); the default
    ``None`` — unless a process-wide default tracer is installed — runs
    the exact untraced code path.  Tracer hooks only record; they never
    schedule events, so a traced run's event order, ``now`` trajectory
    and process results are identical to an untraced one.
    """

    #: upper bound on each free list — enough to absorb the churn of a
    #: large pipeline without pinning unbounded memory.
    _POOL_CAP = 4096

    def __init__(self, tracer: Any = None) -> None:
        self._now = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._processes: list[Process] = []
        # Free lists for the two hottest allocation sites: the engine's
        # own immediate-resume/interrupt wake events and the pooled
        # Timeouts handed out by :meth:`delay`.  Pooled events carry
        # ``_poolable`` and are recycled by the dispatch loop right
        # after their callbacks ran — by contract nobody retains them.
        self._event_pool: list[Event] = []
        self._timeout_pool: list[Timeout] = []
        # Dataflow components (Source/Sink/kernels) register here; the
        # analytic fast-forward pass (:mod:`repro.core.fastpath`)
        # inspects them at ``run()`` entry.
        self._pipeline_components: list[Any] = []
        self._fastpath_attempted = False
        self._tracer = tracer if tracer is not None else get_default_tracer()
        if self._tracer is not None:
            self._tracer.bind_clock(lambda: self._now)

    @property
    def now(self) -> int:
        """Current simulated time."""
        return self._now

    @property
    def tracer(self) -> Any:
        """The attached :class:`~repro.obs.trace.Tracer`, or ``None``."""
        return self._tracer

    def attach_tracer(self, tracer: Any) -> None:
        """Attach (or replace) a tracer and bind it to this clock."""
        self._tracer = tracer
        if tracer is not None:
            tracer.bind_clock(lambda: self._now)

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, int(delay), value)

    def delay(self, delay: int, value: Any = None) -> Timeout:
        """A pooled :class:`Timeout` for hot loops (yield-once contract).

        Semantically identical to :meth:`timeout`, but the returned
        event is recycled through a free list the moment it fires and
        its callbacks have run.  Callers must therefore yield it once
        and drop it — never store it, re-check ``fired``/``value``
        later, or hand it to a second waiter.  The dataflow kernels use
        this for their per-burst busy waits, which otherwise dominate
        allocation churn.
        """
        delay = int(delay)
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            ev.delay = delay
            ev._value = value
            ev._triggered = True
            self._schedule(ev, delay)
            return ev
        ev = Timeout(self, delay, value)
        ev._poolable = True
        return ev

    def _acquire_event(self) -> Event:
        """A pooled plain Event for internal one-shot wakes."""
        pool = self._event_pool
        if pool:
            return pool.pop()
        ev = Event(self)
        ev._poolable = True
        return ev

    def _release(self, event: Event) -> None:
        """Return a fired poolable event to its free list."""
        event._value = None
        event._ok = True
        event._triggered = False
        event._fired = False
        event._cancelled = False
        if event._cancel_hooks:
            event._cancel_hooks.clear()
        event.callbacks = []
        cls = type(event)
        if cls is Timeout:
            if len(self._timeout_pool) < self._POOL_CAP:
                self._timeout_pool.append(event)
        elif cls is Event:
            if len(self._event_pool) < self._POOL_CAP:
                self._event_pool.append(event)

    def spawn(
        self,
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # Alias familiar to SimPy users.
    process = spawn

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + int(delay)
        heapq.heappush(self._heap, (when, next(self._counter), event))
        if self._tracer is not None:
            self._tracer.sim_event_scheduled(event, when)

    def _prune_cancelled(self) -> None:
        # Cancelled events are dropped lazily from the heap top so an
        # abandoned guard timer never advances the clock.
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)

    @staticmethod
    def _defuse(event: Event) -> None:
        """Joining a fired process counts as observing its failure."""
        if isinstance(event, Process):
            event._defused = True

    def peek(self) -> int | None:
        """Time of the next scheduled event, or None if the heap is empty."""
        self._prune_cancelled()
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Fire the single next event."""
        self._prune_cancelled()
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        event._fired = True
        if self._tracer is not None:
            self._tracer.sim_event_fired(event, when)
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if event._ok:
            if event._poolable:
                self._release(event)
        elif not callbacks:
            if not isinstance(event, Process):
                # A failure nobody waited for must not pass silently.
                raise event.value
            if not event._defused:
                # A failed process nobody joined: remember it so run()
                # can surface the failure instead of swallowing it.
                event._unobserved = True

    def _raise_unjoined_failures(self) -> None:
        pending = [
            p for p in self._processes if p._unobserved and not p._defused
        ]
        if not pending:
            return
        for proc in pending:
            proc._unobserved = False
            if self._tracer is not None:
                self._tracer.process_failed_unjoined(proc.name, self._now)
        raise pending[0].value

    def run(self, until: int | None = None) -> None:
        """Run until the event heap drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier.

        A process that *failed* (was killed by an interrupt, or yielded
        a non-event) and was never joined re-raises its exception here
        once the heap drains — silently lost workers would otherwise
        let fault-injection tests pass vacuously.  Supervisors that
        kill workers on purpose call :meth:`Process.defuse` first.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        if (
            until is None
            and not self._fastpath_attempted
            and self._pipeline_components
        ):
            # Analytic fast-forward: solve eligible Source->kernel->Sink
            # chains in closed form instead of stepping per item (falls
            # back to the event loop for anything it cannot prove safe).
            self._fastpath_attempted = True
            from .fastpath import try_fast_forward

            try_fast_forward(self)
        # Inlined dispatch loop: events at one timestamp are drained in
        # a single batch (one ``now`` update, one tracer fetch), and
        # pooled one-shot events are recycled as soon as they fire.
        heap = self._heap
        pop = heapq.heappop
        while heap:
            top = heap[0]
            if top[2]._cancelled:
                pop(heap)
                continue
            when = top[0]
            if until is not None and when > until:
                break
            self._now = when
            tracer = self._tracer
            while heap and heap[0][0] == when:
                event = pop(heap)[2]
                if event._cancelled:
                    continue
                event._fired = True
                if tracer is not None:
                    tracer.sim_event_fired(event, when)
                callbacks = event.callbacks
                event.callbacks = []
                for callback in callbacks:
                    callback(event)
                if event._ok:
                    if event._poolable:
                        self._release(event)
                elif not callbacks:
                    if not isinstance(event, Process):
                        raise event.value
                    if not event._defused:
                        event._unobserved = True
        if until is not None:
            self._now = max(self._now, until)
        if not self._heap:
            # Only at true end-of-run: with events still pending a
            # joiner may yet observe the failure.
            self._raise_unjoined_failures()

    def run_until_process(self, proc: Process, limit: int | None = None) -> Any:
        """Run until ``proc`` finishes; return its value.

        ``limit`` bounds simulated time to guard against deadlocks; a
        :class:`SimulationError` is raised if the process is still alive
        when the heap drains or the limit is hit.
        """
        while not proc._fired:
            self._prune_cancelled()
            if not self._heap:
                break
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(
                    f"process {proc.name!r} did not finish before t={limit}"
                )
            self.step()
        if not proc._fired:
            raise SimulationError(
                f"deadlock: process {proc.name!r} still waiting at t={self._now}"
            )
        if not proc.ok:
            proc._defused = True
            raise proc.value
        return proc.value
