"""Stream topology helpers: fork, split, merge, zip.

Real dataflow regions are rarely straight lines: a scanned column is
broadcast to several operators, partitioned across parallel PEs, or
joined with a sibling stream.  These processes provide the plumbing
between kernels, with the same backpressure semantics as the kernels
themselves (a slow consumer stalls the fork; a stalled merge input
never blocks the others from making progress... it does, actually —
merges here are *fair* round-robin with skip-on-empty, matching a
non-blocking stream switch).

All helpers forward :data:`~repro.core.stream.END_OF_STREAM`
correctly: forks replicate it, splits/merges deliver it exactly once
after their inputs drain.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from .sim import Simulator
from .stream import END_OF_STREAM, Stream

__all__ = ["Fork", "Merge", "RoundRobinSplit", "Zip"]


class Fork:
    """Broadcast every input item to all output streams."""

    def __init__(self, sim: Simulator, inp: Stream,
                 outs: list[Stream]) -> None:
        if not outs:
            raise ValueError("fork needs at least one output")
        self.sim = sim
        self.inp = inp
        self.outs = outs
        self.items = 0
        self.process = sim.spawn(self._run(), name="fork")

    def _run(self):
        while True:
            item = yield self.inp.get()
            if item is END_OF_STREAM:
                for out in self.outs:
                    yield out.put(END_OF_STREAM)
                return
            self.items += 1
            for out in self.outs:
                yield out.put(item)


class RoundRobinSplit:
    """Distribute input items over outputs in round-robin order.

    The partitioner in front of a PE array: item ``i`` goes to output
    ``i mod n``.
    """

    def __init__(self, sim: Simulator, inp: Stream,
                 outs: list[Stream]) -> None:
        if not outs:
            raise ValueError("split needs at least one output")
        self.sim = sim
        self.inp = inp
        self.outs = outs
        self.items = 0
        self.process = sim.spawn(self._run(), name="rr-split")

    def _run(self):
        index = 0
        while True:
            item = yield self.inp.get()
            if item is END_OF_STREAM:
                for out in self.outs:
                    yield out.put(END_OF_STREAM)
                return
            yield self.outs[index].put(item)
            self.items += 1
            index = (index + 1) % len(self.outs)


class Merge:
    """Merge several input streams into one, round-robin-fair.

    Ends after *every* input has delivered its END_OF_STREAM (forwarded
    exactly once).
    """

    def __init__(self, sim: Simulator, inps: list[Stream],
                 out: Stream) -> None:
        if not inps:
            raise ValueError("merge needs at least one input")
        self.sim = sim
        self.inps = inps
        self.out = out
        self.items = 0
        self.process = sim.spawn(self._run(), name="merge")

    def _run(self):
        open_inputs = list(self.inps)
        index = 0
        while open_inputs:
            index %= len(open_inputs)
            stream = open_inputs[index]
            # Fairness with progress: take from the next input that has
            # data; if all are empty, block on the current one.
            chosen = None
            for offset in range(len(open_inputs)):
                candidate = open_inputs[(index + offset) % len(open_inputs)]
                if not candidate.empty:
                    chosen = candidate
                    break
            if chosen is None:
                chosen = stream
            item = yield chosen.get()
            if item is END_OF_STREAM:
                open_inputs.remove(chosen)
                continue
            self.items += 1
            yield self.out.put(item)
            index += 1
        yield self.out.put(END_OF_STREAM)


class Zip:
    """Combine one item from each input with ``fn`` per output item.

    Ends as soon as any input ends (remaining partners are unread, as
    with ``hls::stream`` joins that stop at the shorter stream).
    """

    def __init__(
        self,
        sim: Simulator,
        inps: list[Stream],
        out: Stream,
        fn: Callable[..., Any] | None = None,
    ) -> None:
        if len(inps) < 2:
            raise ValueError("zip needs at least two inputs")
        self.sim = sim
        self.inps = inps
        self.out = out
        self.fn = fn or (lambda *items: tuple(items))
        self.items = 0
        self.process = sim.spawn(self._run(), name="zip")

    def _run(self):
        while True:
            gathered = []
            ended = False
            for stream in self.inps:
                item = yield stream.get()
                if item is END_OF_STREAM:
                    ended = True
                    break
                gathered.append(item)
            if ended:
                yield self.out.put(END_OF_STREAM)
                return
            self.items += 1
            yield self.out.put(self.fn(*gathered))
