"""HLS kernel cost model and pipelined kernel processes.

A kernel in this reproduction is what a single HLS function becomes
after synthesis: a pipelined datapath characterised by

* ``ii`` — initiation interval: cycles between accepting consecutive
  inputs (``#pragma HLS pipeline II=n``);
* ``depth`` — pipeline depth: cycles from accepting an input to
  producing its output;
* ``unroll`` — spatial replication: how many items enter per initiation
  (``#pragma HLS unroll factor=n``).

The classic HLS latency formula for a loop of ``n`` iterations,

    ``cycles = depth + (ceil(n / unroll) - 1) * ii``,

is exposed by :meth:`KernelSpec.latency_cycles` and drives all timing.

Two execution granularities share the same spec:

* :class:`ItemKernel` processes one item per event — exact but slow;
  used by tests and the E1 timing ablation.
* :class:`BurstKernel` processes a :class:`~repro.core.stream.Burst` per
  event, charging the initiation-limited occupancy for the whole burst
  (plus the pipeline depth once, for the first burst).  This is the
  granularity the use-case systems run at.

:class:`Source` and :class:`Sink` bracket a dataflow region.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from .clocking import FABRIC_300MHZ, ClockDomain
from .device import ResourceVector
from .sim import Simulator
from .stream import Burst, END_OF_STREAM, Stream

__all__ = [
    "BurstKernel",
    "ItemKernel",
    "KernelSpec",
    "Sink",
    "Source",
]


@dataclass(frozen=True, slots=True)
class KernelSpec:
    """Static characteristics of a synthesized HLS kernel.

    Parameters
    ----------
    name:
        Identifier used in dataflow reports.
    ii:
        Initiation interval in cycles (>= 1).
    depth:
        Pipeline depth in cycles (>= 1).
    unroll:
        Spatial replication factor (>= 1); ``unroll`` items are accepted
        per initiation.
    clock:
        The clock domain the kernel runs in.
    resources:
        Fabric resources one instance consumes.
    """

    name: str
    ii: int = 1
    depth: int = 1
    unroll: int = 1
    clock: ClockDomain = FABRIC_300MHZ
    resources: ResourceVector = field(default_factory=ResourceVector)

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise ValueError(f"ii must be >= 1, got {self.ii}")
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")
        if self.unroll < 1:
            raise ValueError(f"unroll must be >= 1, got {self.unroll}")

    def initiations(self, n_items: int) -> int:
        """Number of pipeline initiations needed for ``n_items`` inputs."""
        return math.ceil(n_items / self.unroll)

    def occupancy_cycles(self, n_items: int) -> int:
        """Cycles the kernel's input is busy accepting ``n_items``."""
        return self.initiations(n_items) * self.ii

    def latency_cycles(self, n_items: int) -> int:
        """End-to-end cycles to process ``n_items`` (classic HLS formula)."""
        if n_items <= 0:
            return 0
        return self.depth + (self.initiations(n_items) - 1) * self.ii

    def latency_seconds(self, n_items: int) -> float:
        """End-to-end latency for ``n_items`` in seconds."""
        return self.clock.cycles_to_seconds(self.latency_cycles(n_items))

    def throughput_items_per_sec(self) -> float:
        """Steady-state throughput (items/s) ignoring pipeline fill."""
        return self.clock.freq_hz * self.unroll / self.ii

    def replicate(self, factor: int) -> "KernelSpec":
        """A spec for ``factor`` parallel instances (unroll and resources scale)."""
        if factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {factor}")
        return KernelSpec(
            name=f"{self.name}x{factor}",
            ii=self.ii,
            depth=self.depth,
            unroll=self.unroll * factor,
            clock=self.clock,
            resources=self.resources * factor,
        )


class BurstKernel:
    """A pipelined kernel that consumes and produces bursts.

    ``fn`` maps an input :class:`Burst` to an output ``Burst`` (or
    ``None`` to emit nothing, e.g. a fully-selective filter).  Timing:
    the kernel is busy ``occupancy_cycles(burst.count)`` per burst, plus
    ``depth`` cycles once before its first output — so a chain of burst
    kernels reproduces the fill-then-stream behaviour of a real dataflow
    pipeline without simulating every item.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: KernelSpec,
        fn: Callable[[Burst], Burst | None],
        inp: Stream,
        out: Stream,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.fn = fn
        self.inp = inp
        self.out = out
        self.items_in = 0
        self.items_out = 0
        self.busy_ps = 0
        self.stall_in_ps = 0
        self.stall_out_ps = 0
        self._first = True
        sim._pipeline_components.append(self)
        sim._fastpath_attempted = False
        self.process = sim.spawn(self._run(), name=spec.name)

    def _run(self):
        sim = self.sim
        spec = self.spec
        inp, out = self.inp, self.out
        name = spec.name
        while True:
            tracer = sim._tracer
            # Uncontended fast path: take/emit without allocating wait
            # events; fall back to the blocking path on contention.
            ok, burst = inp.try_get()
            if not ok:
                wait_start = sim.now
                burst = yield inp.get()
                stalled = sim.now - wait_start
                self.stall_in_ps += stalled
                if tracer is not None and stalled:
                    tracer.kernel_stall(name, wait_start, stalled, "input")
            if burst is END_OF_STREAM:
                if not out.try_put(END_OF_STREAM):
                    put_start = sim.now
                    yield out.put(END_OF_STREAM)
                    stalled = sim.now - put_start
                    self.stall_out_ps += stalled
                    if tracer is not None and stalled:
                        tracer.kernel_stall(name, put_start, stalled, "output")
                return
            if not isinstance(burst, Burst):
                raise TypeError(
                    f"kernel {self.spec.name!r} expected Burst, got "
                    f"{type(burst).__name__}"
                )
            self.items_in += burst.count
            if self._first:
                # The first burst pays the full HLS latency (pipeline fill
                # included); later bursts only pay initiation occupancy.
                cycles = spec.latency_cycles(burst.count)
                self._first = False
            else:
                cycles = spec.occupancy_cycles(burst.count)
            delay = spec.clock.cycles_to_ps(cycles)
            self.busy_ps += delay
            busy_start = sim.now
            if delay:
                yield sim.delay(delay)
            if tracer is not None:
                tracer.kernel_busy(name, busy_start, delay, burst.count)
            result = self.fn(burst)
            if result is None:
                continue
            self.items_out += result.count
            if not out.try_put(result):
                put_start = sim.now
                yield out.put(result)
                stalled = sim.now - put_start
                self.stall_out_ps += stalled
                if tracer is not None and stalled:
                    tracer.kernel_stall(name, put_start, stalled, "output")


class ItemKernel:
    """A pipelined kernel that consumes and produces individual items.

    Exact per-item timing: one initiation every ``ii`` cycles, an output
    ``depth`` cycles after its input.  ``fn`` maps an item to an item or
    ``None`` (dropped).  Used by unit tests and the E1 burst-vs-item
    ablation; burst mode must agree with it on total cycles.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: KernelSpec,
        fn: Callable[[Any], Any],
        inp: Stream,
        out: Stream,
    ) -> None:
        if spec.unroll != 1:
            raise ValueError("ItemKernel models unroll=1 kernels only")
        self.sim = sim
        self.spec = spec
        self.fn = fn
        self.inp = inp
        self.out = out
        self.items_in = 0
        self.items_out = 0
        self.busy_ps = 0
        self.stall_in_ps = 0
        self.stall_out_ps = 0
        self._first = True
        sim._pipeline_components.append(self)
        sim._fastpath_attempted = False
        self.process = sim.spawn(self._run(), name=spec.name)

    def _run(self):
        sim = self.sim
        spec = self.spec
        inp, out = self.inp, self.out
        clock = spec.clock
        name = spec.name
        # Model: input accepted every II cycles; the matching output is
        # emitted depth cycles later.  We approximate the skid with a
        # one-shot depth delay before the first emission (equivalent in
        # total cycles for a full stream).
        while True:
            tracer = sim._tracer
            ok, item = inp.try_get()
            if not ok:
                wait_start = sim.now
                item = yield inp.get()
                stalled = sim.now - wait_start
                self.stall_in_ps += stalled
                if tracer is not None and stalled:
                    tracer.kernel_stall(name, wait_start, stalled, "input")
            if item is END_OF_STREAM:
                if not out.try_put(END_OF_STREAM):
                    put_start = sim.now
                    yield out.put(END_OF_STREAM)
                    stalled = sim.now - put_start
                    self.stall_out_ps += stalled
                    if tracer is not None and stalled:
                        tracer.kernel_stall(name, put_start, stalled, "output")
                return
            self.items_in += 1
            cycles = spec.ii
            if self._first:
                cycles += spec.depth - spec.ii
                self._first = False
            delay = clock.cycles_to_ps(cycles)
            self.busy_ps += delay
            busy_start = sim.now
            yield sim.delay(delay)
            if tracer is not None:
                tracer.kernel_busy(name, busy_start, delay, 1)
            result = self.fn(item)
            if result is None:
                continue
            self.items_out += 1
            if not out.try_put(result):
                put_start = sim.now
                yield out.put(result)
                stalled = sim.now - put_start
                self.stall_out_ps += stalled
                if tracer is not None and stalled:
                    tracer.kernel_stall(name, put_start, stalled, "output")


class Source:
    """Feeds a sequence of items (or bursts) into a stream.

    ``interval_ps`` spaces successive puts; 0 means the source is only
    limited by downstream backpressure (a line-rate producer).
    """

    def __init__(
        self,
        sim: Simulator,
        out: Stream,
        items: Iterable[Any],
        interval_ps: int = 0,
        name: str = "source",
    ) -> None:
        self.sim = sim
        self.out = out
        self.items = items
        self.interval_ps = interval_ps
        self.count = 0
        sim._pipeline_components.append(self)
        sim._fastpath_attempted = False
        self.process = sim.spawn(self._run(), name=name)

    def _run(self):
        sim = self.sim
        out = self.out
        interval = self.interval_ps
        for item in self.items:
            if interval:
                yield sim.delay(interval)
            if not out.try_put(item):
                yield out.put(item)
            self.count += item.count if isinstance(item, Burst) else 1
        if not out.try_put(END_OF_STREAM):
            yield out.put(END_OF_STREAM)


class Sink:
    """Drains a stream, recording items and the completion timestamp."""

    def __init__(self, sim: Simulator, inp: Stream, name: str = "sink") -> None:
        self.sim = sim
        self.inp = inp
        self.received: list[Any] = []
        self.items = 0
        self.done_at_ps: int | None = None
        sim._pipeline_components.append(self)
        sim._fastpath_attempted = False
        self.process = sim.spawn(self._run(), name=name)

    def _run(self):
        sim = self.sim
        inp = self.inp
        while True:
            ok, item = inp.try_get()
            if not ok:
                item = yield inp.get()
            if item is END_OF_STREAM:
                self.done_at_ps = sim.now
                return
            self.received.append(item)
            self.items += item.count if isinstance(item, Burst) else 1

    @property
    def payloads(self) -> list[Any]:
        """Payloads of received bursts (or the raw items in item mode)."""
        return [
            item.payload if isinstance(item, Burst) else item
            for item in self.received
        ]
