"""Static dataflow graphs and the steady-state throughput solver.

An HLS *dataflow region* (``#pragma HLS dataflow``) is a DAG of kernels
connected by FIFO streams; in steady state its throughput is set by the
slowest stage, after accounting for how the data volume changes along
the graph (a filter with selectivity 0.1 presents its successor with a
tenth of the items).

:class:`DataflowGraph` captures exactly that: nodes are
:class:`~repro.core.kernel.KernelSpec`-characterised stages (or
fixed-rate stages such as a memory port or a network link), edges carry
a *gain* — items emitted downstream per item consumed (selectivity < 1
for filters, > 1 for expanders such as a Cartesian product).

The solver answers, analytically:

* sustainable source rate (items/s at the region input),
* the bottleneck stage,
* fill latency (sum of pipeline depths along the critical path),
* total time to process ``n`` source items,
* aggregate resource demand.

This analytic model and the event-driven burst simulation are two views
of the same machinery; test ``tests/core/test_dataflow.py`` and bench
E1 check that they agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from .kernel import KernelSpec

__all__ = ["DataflowGraph", "RateStage", "StageReport", "ThroughputReport"]


@dataclass(frozen=True, slots=True)
class RateStage:
    """A stage limited by a fixed item rate rather than a kernel pipeline.

    Used for memory ports and network links: ``rate_items_per_sec`` is
    how many items the stage can move per second; ``latency_seconds`` is
    its constant fill latency contribution.
    """

    name: str
    rate_items_per_sec: float
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_items_per_sec <= 0:
            raise ValueError(
                f"stage {self.name!r}: rate must be positive, "
                f"got {self.rate_items_per_sec}"
            )
        if self.latency_seconds < 0:
            raise ValueError(f"stage {self.name!r}: negative latency")


@dataclass(frozen=True, slots=True)
class StageReport:
    """Per-stage solver output."""

    name: str
    gain_from_source: float
    local_rate: float
    source_rate_bound: float


@dataclass(frozen=True, slots=True)
class ThroughputReport:
    """Solver output for a whole dataflow region."""

    source_rate: float          # sustainable items/s at the region input
    bottleneck: str             # name of the limiting stage
    fill_latency_seconds: float  # critical-path pipeline-fill latency
    stages: tuple[StageReport, ...]

    def time_for_items(self, n_items: int) -> float:
        """Seconds to stream ``n_items`` through the region (fill + drain)."""
        if n_items <= 0:
            return 0.0
        return self.fill_latency_seconds + n_items / self.source_rate


class DataflowGraph:
    """A DAG of kernel/rate stages with per-edge data-volume gains."""

    def __init__(self, name: str = "dataflow") -> None:
        self.name = name
        self._stages: dict[str, KernelSpec | RateStage] = {}
        self._edges: dict[str, list[tuple[str, float]]] = {}
        self._preds: dict[str, list[str]] = {}
        self._sources: list[str] = []

    def add(self, stage: KernelSpec | RateStage, source: bool = False) -> str:
        """Add a stage; returns its name. ``source=True`` marks region inputs."""
        if stage.name in self._stages:
            raise ValueError(f"duplicate stage name {stage.name!r}")
        self._stages[stage.name] = stage
        self._edges[stage.name] = []
        self._preds[stage.name] = []
        if source:
            self._sources.append(stage.name)
        return stage.name

    def connect(self, upstream: str, downstream: str, gain: float = 1.0) -> None:
        """Add an edge; ``gain`` is items emitted per upstream item consumed."""
        if upstream not in self._stages:
            raise KeyError(f"unknown stage {upstream!r}")
        if downstream not in self._stages:
            raise KeyError(f"unknown stage {downstream!r}")
        if gain < 0:
            raise ValueError(f"edge gain must be >= 0, got {gain}")
        self._edges[upstream].append((downstream, gain))
        self._preds[downstream].append(upstream)

    @property
    def stage_names(self) -> list[str]:
        return list(self._stages)

    def stage(self, name: str) -> KernelSpec | RateStage:
        return self._stages[name]

    def total_resources(self):
        """Sum of resource vectors over kernel stages."""
        from .device import ResourceVector

        total = ResourceVector()
        for stage in self._stages.values():
            if isinstance(stage, KernelSpec):
                total = total + stage.resources
        return total

    # -- solver -----------------------------------------------------------

    def _toposort(self) -> list[str]:
        indeg = {name: len(preds) for name, preds in self._preds.items()}
        ready = [name for name, d in indeg.items() if d == 0]
        order: list[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for succ, _ in self._edges[name]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._stages):
            raise ValueError(f"dataflow graph {self.name!r} has a cycle")
        return order

    def _gains_from_source(self, order: Iterable[str]) -> dict[str, float]:
        """Items arriving at each stage per item entering the region.

        For stages with several predecessors the arriving volumes add
        (a merge); gains multiply along paths.
        """
        sources = self._sources or [
            name for name, preds in self._preds.items() if not preds
        ]
        if not sources:
            raise ValueError("dataflow graph has no source stage")
        gain = {name: 0.0 for name in self._stages}
        for src in sources:
            gain[src] += 1.0
        for name in order:
            stage_gain = gain[name]
            if stage_gain == 0.0:
                continue
            for succ, edge_gain in self._edges[name]:
                gain[succ] += stage_gain * edge_gain
        return gain

    @staticmethod
    def _stage_rate(stage: KernelSpec | RateStage) -> float:
        if isinstance(stage, KernelSpec):
            return stage.throughput_items_per_sec()
        return stage.rate_items_per_sec

    @staticmethod
    def _stage_latency(stage: KernelSpec | RateStage) -> float:
        if isinstance(stage, KernelSpec):
            return stage.clock.cycles_to_seconds(stage.depth)
        return stage.latency_seconds

    def solve(self, tracer=None) -> ThroughputReport:
        """Compute the region's sustainable source rate and bottleneck.

        ``tracer`` (a :class:`~repro.obs.trace.Tracer`) records per-stage
        steady-state utilisation — at the sustainable source rate, what
        fraction of each stage's local rate is consumed — which is the
        analytic counterpart of the event-driven busy fraction.
        """
        order = self._toposort()
        gains = self._gains_from_source(order)
        reports: list[StageReport] = []
        best_rate = math.inf
        bottleneck = ""
        for name in order:
            g = gains[name]
            local = self._stage_rate(self._stages[name])
            bound = math.inf if g == 0 else local / g
            reports.append(StageReport(name, g, local, bound))
            if bound < best_rate:
                best_rate = bound
                bottleneck = name
        if math.isinf(best_rate):
            raise ValueError("no stage constrains the source rate")
        fill = self._critical_path_latency(order)
        if tracer is not None:
            tracer.dataflow_solved(
                self.name,
                bottleneck,
                {
                    r.name: (
                        best_rate * r.gain_from_source / r.local_rate
                        if r.local_rate
                        else 0.0
                    )
                    for r in reports
                },
            )
        return ThroughputReport(
            source_rate=best_rate,
            bottleneck=bottleneck,
            fill_latency_seconds=fill,
            stages=tuple(reports),
        )

    def _critical_path_latency(self, order: Iterable[str]) -> float:
        finish: dict[str, float] = {}
        for name in order:
            preds = self._preds[name]
            start = max((finish[p] for p in preds), default=0.0)
            finish[name] = start + self._stage_latency(self._stages[name])
        return max(finish.values(), default=0.0)
