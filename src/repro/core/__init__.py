"""Core FPGA execution model: event engine, streams, kernels, devices.

This package is the reproduction's substitute for the FPGA itself: a
cycle-approximate spatial-dataflow simulator whose vocabulary mirrors
HLS (initiation interval, pipeline depth, unroll, dataflow regions,
bounded FIFO streams) and whose resource model mirrors the Alveo cards
the tutorial uses.
"""

from .clocking import (
    FABRIC_200MHZ,
    FABRIC_300MHZ,
    FABRIC_400MHZ,
    HBM_450MHZ,
    NETWORK_322MHZ,
    ClockDomain,
)
from .dataflow import DataflowGraph, RateStage, ThroughputReport
from .device import (
    ALVEO_U250,
    ALVEO_U280,
    ALVEO_U55C,
    DEVICE_CATALOG,
    Device,
    ResourceVector,
)
from .hls import LoopNest, Pragmas, synthesize
from .kernel import BurstKernel, ItemKernel, KernelSpec, Sink, Source
from .sim import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    WaitTimeout,
    all_of,
    any_of,
    with_timeout,
)
from .stream import Burst, END_OF_STREAM, Stream, StreamTimeout
from .topology import Fork, Merge, RoundRobinSplit, Zip

__all__ = [
    "ALVEO_U250",
    "ALVEO_U280",
    "ALVEO_U55C",
    "Burst",
    "BurstKernel",
    "ClockDomain",
    "DEVICE_CATALOG",
    "DataflowGraph",
    "Device",
    "END_OF_STREAM",
    "Event",
    "FABRIC_200MHZ",
    "FABRIC_300MHZ",
    "FABRIC_400MHZ",
    "Fork",
    "HBM_450MHZ",
    "Interrupt",
    "ItemKernel",
    "KernelSpec",
    "LoopNest",
    "Merge",
    "NETWORK_322MHZ",
    "Pragmas",
    "Process",
    "RateStage",
    "ResourceVector",
    "RoundRobinSplit",
    "SimulationError",
    "Simulator",
    "Sink",
    "Source",
    "Stream",
    "StreamTimeout",
    "ThroughputReport",
    "Timeout",
    "WaitTimeout",
    "Zip",
    "all_of",
    "any_of",
    "synthesize",
    "with_timeout",
]
