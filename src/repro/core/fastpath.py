"""Analytic fast-forward for steady-state dataflow pipeline segments.

The event engine steps every item of every burst through the heap, so a
long pipeline run costs hundreds of Python-level operations per item.
But a linear ``Source -> kernel... -> Sink`` chain with bounded FIFO
streams is a *deterministic max-plus system*: every get, busy interval
and put resolves at a time given by a recurrence over earlier times —

* a consumer's get resolves at ``max(ask, avail)``;
* a kernel is busy for a delay that depends only on its
  :class:`~repro.core.kernel.KernelSpec` (II, depth, unroll) and the
  item/burst size;
* a producer's put into a depth-``d`` FIFO resolves at
  ``max(ready, get_time[n - d])`` — backpressure in closed form.

This module solves that recurrence directly (no events, no heap, no
generator resumptions) and, once the chain reaches *steady state* —
every stage advancing by the same period ``lambda`` per item for several
consecutive items — stops computing maxima entirely and jumps the clock
arithmetically.  The functional side (each kernel's ``fn``) is still
applied to every item in order, so payloads, drops and per-stage
counters are identical to the stepped simulation.

Eligibility — :func:`try_fast_forward` falls back to the event loop
unless it can prove the closed form safe:

* fast-forward is enabled (``REPRO_FASTPATH`` / :func:`set_fast_forward`);
* no tracer is attached (observability wants per-event hooks);
* every process in the simulator belongs to a registered pipeline
  component, and none has started yet (``run(until=...)``, faults,
  timeouts, extra processes, or armed stream guards all disqualify);
* components form linear chains of exactly one ``Source``, zero or
  more ``ItemKernel``/``BurstKernel`` stages, and one ``Sink``, over
  plain single-producer/single-consumer :class:`~repro.core.stream.Stream`
  instances that are empty and waiter-free;
* the source's item sequence is a concrete ``list``/``tuple``/``range``.

Guarantees when it engages: payloads and their order, ``done_at_ps``,
``sim.now``, per-kernel ``items_in/out``, ``busy_ps``,
``stall_in_ps``/``stall_out_ps``, per-stream put/get/item counts and
stall durations are identical to the event-driven run.  The two purely
diagnostic stream counters (``*_stall_events``, ``high_watermark``) are
reconstructed analytically and can differ on zero-duration
same-timestamp races; everything a result table reports is exact.
Kernels' ``fn`` callables must not read the simulation clock or share
mutable state across stages (none in this repo do).
"""

from __future__ import annotations

import os
from collections import deque
from typing import Any

from .stream import Burst, Stream

__all__ = [
    "analytic_pipeline_estimate",
    "counters",
    "is_enabled",
    "set_fast_forward",
    "try_fast_forward",
]

_override: bool | None = None

#: Module-wide instrumentation: how many ``run()`` entries engaged the
#: analytic path vs fell back to event stepping (tests reset freely).
counters = {"applied": 0, "fallback": 0}

# Steady-state machinery: consecutive identical-delta items required
# before jumping, and the minimum remaining work that makes a jump
# worthwhile.
_STEADY_WINDOW = 3
_MIN_JUMP_ITEMS = 16


def set_fast_forward(enabled: bool | None) -> None:
    """Force fast-forward on/off; ``None`` restores the env default."""
    global _override
    _override = enabled


def is_enabled() -> bool:
    """True when the analytic fast-forward may engage (default: yes)."""
    if _override is not None:
        return _override
    return os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def analytic_pipeline_estimate(specs, n_items: int, interval_ps: int = 0) -> int:
    """Closed-form completion time (ps) for ``n_items`` through a chain.

    The textbook answer the solver converges to for an uncontended
    per-item chain: fill latency (sum of pipeline depths) plus
    ``n_items`` initiations of the bottleneck stage —
    ``sum(depth_k) + n * max(interval, II_k ...)``.  Exposed for
    documentation, sizing and sanity tests; the solver itself derives
    the same period empirically, so it also covers bursts, filters and
    backpressure transients exactly.
    """
    if n_items <= 0:
        return 0
    fill = sum(s.clock.cycles_to_ps(s.depth) for s in specs)
    period = max(
        [int(interval_ps)] + [s.clock.cycles_to_ps(s.ii) for s in specs]
    )
    return fill + n_items * period


# -- eligibility -----------------------------------------------------------


def _eligible_chains(sim) -> list[list[Any]] | None:
    """Partition the sim's components into linear chains, or ``None``."""
    from .kernel import BurstKernel, ItemKernel, Sink, Source

    comps = sim._pipeline_components
    if not comps:
        return None
    allowed = (Source, Sink, ItemKernel, BurstKernel)
    comp_procs: set[int] = set()
    for comp in comps:
        # Exact types only: a subclass may override timing behaviour.
        if type(comp) not in allowed:
            return None
        comp_procs.add(id(comp.process))
    procs = sim._processes
    if len(procs) != len(comps):
        return None
    for proc in procs:
        if id(proc) not in comp_procs:
            return None
        if not proc.is_alive or proc._waiting_on is not proc._bootstrap:
            return None
    bootstraps = {id(p._bootstrap) for p in procs}
    if len(sim._heap) != len(bootstraps):
        return None
    for _, _, event in sim._heap:
        if id(event) not in bootstraps or event._cancelled:
            return None

    producers: dict[int, Any] = {}
    consumers: dict[int, Any] = {}
    streams: dict[int, Stream] = {}
    for comp in comps:
        out = getattr(comp, "out", None)
        if out is not None:
            if id(out) in producers:
                return None
            producers[id(out)] = comp
            streams[id(out)] = out
        inp = getattr(comp, "inp", None)
        if inp is not None:
            if id(inp) in consumers:
                return None
            consumers[id(inp)] = comp
            streams[id(inp)] = inp
    for sid, stream in streams.items():
        if type(stream) is not Stream:
            return None
        if stream._queue or stream._getters or stream._putters or stream._guards:
            return None
        if sid not in producers or sid not in consumers:
            return None

    chains: list[list[Any]] = []
    used: set[int] = set()
    for src in comps:
        if not isinstance(src, Source):
            continue
        if not isinstance(src.items, (list, tuple, range)):
            return None
        chain = [src]
        used.add(id(src))
        cur = consumers.get(id(src.out))
        for _ in range(len(comps)):
            if not isinstance(cur, (ItemKernel, BurstKernel)):
                break
            if id(cur) in used:
                return None
            chain.append(cur)
            used.add(id(cur))
            cur = consumers.get(id(cur.out))
        if not isinstance(cur, Sink) or id(cur) in used:
            return None
        chain.append(cur)
        used.add(id(cur))
        chains.append(chain)
    if not chains or len(used) != len(comps):
        return None
    return chains


# -- the solver ------------------------------------------------------------


def _count(item: Any) -> int:
    return item.count if isinstance(item, Burst) else 1


class _StreamState:
    """Per-stream recurrence state and deferred diagnostics."""

    __slots__ = (
        "stream", "depth", "recent_gets", "puts", "gets", "items",
        "p_stall_events", "c_stall_events", "p_stall_ps", "c_stall_ps",
        "merge_puts", "merge_gets", "occ", "watermark",
    )

    def __init__(self, stream: Stream) -> None:
        self.stream = stream
        self.depth = stream.depth
        # Sliding window of the consumer's last ``depth`` get times:
        # putting item n into a depth-d FIFO waits for get_time[n-d],
        # which is exactly the head of this deque once it is full.
        self.recent_gets: deque[int] = deque(maxlen=stream.depth)
        self.puts = 0
        self.gets = 0
        self.items = 0
        self.p_stall_events = 0
        self.c_stall_events = 0
        self.p_stall_ps = 0
        self.c_stall_ps = 0
        # Enqueue/dequeue instants of items that actually transited the
        # FIFO (direct consumer handoffs never occupy a slot), merged
        # into an occupancy walk for the high-watermark diagnostic.
        self.merge_puts: list[int] = []
        self.merge_gets: list[int] = []
        self.occ = 0
        self.watermark = 0

    def put_time(self, ready: int) -> int:
        """When a put that is ready at ``ready`` resolves (backpressure)."""
        gets = self.recent_gets
        if len(gets) == self.depth:
            space = gets[0]
            if space > ready:
                self.p_stall_events += 1
                self.p_stall_ps += space - ready
                return space
        return ready

    def merge_watermark(self) -> None:
        """Fold pending enqueue/dequeue instants into the watermark."""
        puts, gets = self.merge_puts, self.merge_gets
        occ, peak = self.occ, self.watermark
        i = j = 0
        n_puts, n_gets = len(puts), len(gets)
        while i < n_puts:
            # Ties release the slot first (get before put), matching the
            # engine's drain-then-enqueue order for blocked producers.
            if j < n_gets and gets[j] <= puts[i]:
                occ -= 1
                j += 1
                continue
            occ += 1
            if occ > peak:
                peak = occ
            i += 1
        self.occ = occ - (n_gets - j)
        self.watermark = peak
        puts.clear()
        gets.clear()

    def flush(self) -> None:
        """Apply accumulated state to the live ``StreamStats``."""
        self.merge_watermark()
        stats = self.stream.stats
        stats.puts += self.puts
        stats.gets += self.gets
        stats.items += self.items
        stats.producer_stall_events += self.p_stall_events
        stats.consumer_stall_events += self.c_stall_events
        stats.producer_stall_ps += self.p_stall_ps
        stats.consumer_stall_ps += self.c_stall_ps
        if self.watermark > stats.high_watermark:
            stats.high_watermark = self.watermark


class _KernelState:
    """Per-kernel recurrence state."""

    __slots__ = (
        "kernel", "is_burst", "fn", "spec", "free_at", "get_at", "busy_until",
        "items_in", "items_out", "busy_ps", "stall_in_ps", "stall_out_ps",
        "first", "_delay_cache",
    )

    def __init__(self, kernel: Any, is_burst: bool, now: int) -> None:
        self.kernel = kernel
        self.is_burst = is_burst
        self.fn = kernel.fn
        self.spec = kernel.spec
        self.free_at = now
        self.get_at = now
        self.busy_until = now
        self.items_in = 0
        self.items_out = 0
        self.busy_ps = 0
        self.stall_in_ps = 0
        self.stall_out_ps = 0
        self.first = kernel._first
        self._delay_cache: dict[tuple[bool, int], int] = {}

    def delay_for(self, count: int) -> int:
        key = (self.first, count)
        delay = self._delay_cache.get(key)
        if delay is None:
            spec = self.spec
            if self.is_burst:
                cycles = (
                    spec.latency_cycles(count)
                    if self.first
                    else spec.occupancy_cycles(count)
                )
            else:
                cycles = spec.depth if self.first else spec.ii
            delay = spec.clock.cycles_to_ps(cycles)
            self._delay_cache[key] = delay
        return delay

    def flush(self) -> None:
        k = self.kernel
        k.items_in += self.items_in
        k.items_out += self.items_out
        k.busy_ps += self.busy_ps
        k.stall_in_ps += self.stall_in_ps
        k.stall_out_ps += self.stall_out_ps
        k._first = self.first


class _ChainSolver:
    """Solves one Source -> kernels -> Sink chain without events."""

    def __init__(self, sim, chain: list[Any]) -> None:
        from .kernel import BurstKernel

        self.sim = sim
        self.source = chain[0]
        self.sink = chain[-1]
        now = sim._now
        self.kernels = [
            _KernelState(k, isinstance(k, BurstKernel), now)
            for k in chain[1:-1]
        ]
        # streams[i] is the output stream of stage i (source = stage 0).
        self.streams = [_StreamState(comp.out) for comp in chain[:-1]]
        self.t_src = now
        self.t_sink = now
        self.src_count = 0
        self.sink_items = 0
        self.received: list[Any] = []
        self.done_at: int | None = None

    # -- one item through every stage -----------------------------------

    def _cascade(self, item: Any, precomputed: list[Any] | None = None) -> None:
        """Advance every stage by one item, exactly.

        ``precomputed`` carries per-stage ``fn`` results already applied
        by a bailed steady run, so no ``fn`` ever runs twice on the same
        item (they may be impure or mutate bursts in place).
        """
        interval = self.source.interval_ps
        ready = self.t_src + interval if interval else self.t_src
        stream = self.streams[0]
        p = stream.put_time(ready)
        self.t_src = p
        self.src_count += _count(item)
        stream.puts += 1
        stream.items += _count(item)
        value: Any = item
        avail = p
        for idx, ks in enumerate(self.kernels):
            stream = self.streams[idx]
            ask = ks.free_at
            if avail > ask:
                stream.c_stall_events += 1
                stream.c_stall_ps += avail - ask
                ks.stall_in_ps += avail - ask
                g = avail
            else:
                g = ask
                stream.merge_puts.append(avail)
                stream.merge_gets.append(g)
            stream.gets += 1
            stream.recent_gets.append(g)
            ks.get_at = g
            if ks.is_burst and not isinstance(value, Burst):
                raise TypeError(
                    f"kernel {ks.spec.name!r} expected Burst, got "
                    f"{type(value).__name__}"
                )
            count = _count(value)
            ks.items_in += count
            delay = ks.delay_for(count)
            ks.first = False
            ks.busy_ps += delay
            b = g + delay
            ks.busy_until = b
            if precomputed is not None and idx < len(precomputed):
                result = precomputed[idx]
            else:
                result = ks.fn(value)
            if result is None:
                ks.free_at = b
                return
            ks.items_out += _count(result)
            out_stream = self.streams[idx + 1]
            p = out_stream.put_time(b)
            ks.stall_out_ps += p - b
            ks.free_at = p
            out_stream.puts += 1
            out_stream.items += _count(result)
            value = result
            avail = p
        stream = self.streams[-1]
        ask = self.t_sink
        if avail > ask:
            stream.c_stall_events += 1
            stream.c_stall_ps += avail - ask
            g = avail
        else:
            g = ask
            stream.merge_puts.append(avail)
            stream.merge_gets.append(g)
        stream.gets += 1
        stream.recent_gets.append(g)
        self.t_sink = g
        self.received.append(value)
        self.sink_items += _count(value)

    def _eos(self) -> None:
        """Propagate END_OF_STREAM and stamp completion."""
        stream = self.streams[0]
        p = stream.put_time(self.t_src)
        self.t_src = p
        stream.puts += 1
        stream.items += 1
        avail = p
        for idx, ks in enumerate(self.kernels):
            stream = self.streams[idx]
            ask = ks.free_at
            if avail > ask:
                stream.c_stall_events += 1
                stream.c_stall_ps += avail - ask
                ks.stall_in_ps += avail - ask
                g = avail
            else:
                g = ask
                stream.merge_puts.append(avail)
                stream.merge_gets.append(g)
            stream.gets += 1
            stream.recent_gets.append(g)
            out_stream = self.streams[idx + 1]
            p = out_stream.put_time(g)
            ks.stall_out_ps += p - g
            ks.free_at = p
            out_stream.puts += 1
            out_stream.items += 1
            avail = p
        stream = self.streams[-1]
        ask = self.t_sink
        if avail > ask:
            stream.c_stall_events += 1
            stream.c_stall_ps += avail - ask
            g = avail
        else:
            g = ask
            stream.merge_puts.append(avail)
            stream.merge_gets.append(g)
        stream.gets += 1
        stream.recent_gets.append(g)
        self.t_sink = g
        self.done_at = g

    # -- steady-state jump ----------------------------------------------

    def _state_vector(self) -> list[int]:
        vec = [self.t_src]
        for ks in self.kernels:
            vec.append(ks.get_at)
            vec.append(ks.busy_until)
            vec.append(ks.free_at)
        vec.append(self.t_sink)
        return vec

    def _stat_vector(self) -> list[int]:
        vec: list[int] = []
        for ks in self.kernels:
            vec += [ks.items_in, ks.items_out, ks.busy_ps,
                    ks.stall_in_ps, ks.stall_out_ps]
        for ss in self.streams:
            vec += [ss.puts, ss.gets, ss.items, ss.p_stall_events,
                    ss.c_stall_events, ss.p_stall_ps, ss.c_stall_ps]
        vec.append(self.sink_items)
        vec.append(self.src_count)
        return vec

    def _apply_jump(self, n: int, lam: int, stat_delta: list[int]) -> None:
        """Advance every stage by ``n`` steady periods arithmetically."""
        shift = n * lam
        self.t_src += shift
        self.t_sink += shift
        for ks in self.kernels:
            ks.get_at += shift
            ks.busy_until += shift
            ks.free_at += shift
        it = iter(stat_delta)
        for ks in self.kernels:
            ks.items_in += n * next(it)
            ks.items_out += n * next(it)
            ks.busy_ps += n * next(it)
            ks.stall_in_ps += n * next(it)
            ks.stall_out_ps += n * next(it)
        for ss in self.streams:
            ss.puts += n * next(it)
            ss.gets += n * next(it)
            ss.items += n * next(it)
            ss.p_stall_events += n * next(it)
            c_ev = next(it)
            ss.c_stall_events += n * c_ev
            ss.p_stall_ps += n * next(it)
            ss.c_stall_ps += n * next(it)
            # The consumer's recent get times advance one period per
            # item; rebuild the sliding window arithmetically.
            gets = ss.recent_gets
            if gets:
                last = gets[-1]
                d = ss.depth
                if n >= d:
                    rebuilt = [last + (n - d + 1 + j) * lam for j in range(d)]
                else:
                    rebuilt = (list(gets)
                               + [last + (j + 1) * lam for j in range(n)])[-d:]
                gets.clear()
                gets.extend(rebuilt)
            # Steady occupancy is periodic: fold what we know, then note
            # the one-slot transit of enqueue-mode items (no consumer
            # stall per item means each item crossed the FIFO).
            ss.merge_watermark()
            if c_ev == 0 and ss.watermark < ss.occ + 1:
                ss.watermark = ss.occ + 1
        self.sink_items += n * next(it)
        self.src_count += n * next(it)

    def solve(self) -> None:
        items = self.source.items
        n = len(items)
        prev_vec: list[int] | None = None
        prev_delta: list[int] | None = None
        prev_stats: list[int] | None = None
        stat_delta: list[int] | None = None
        streak = 0
        i = 0
        while i < n:
            self._cascade(items[i])
            i += 1
            vec = self._state_vector()
            if prev_vec is not None:
                delta = [a - b for a, b in zip(vec, prev_vec)]
                stats = self._stat_vector()
                if prev_delta == delta and len(set(delta)) == 1:
                    sdelta = [a - b for a, b in zip(stats, prev_stats)]
                    if streak and sdelta == stat_delta:
                        streak += 1
                    else:
                        streak = 1
                        stat_delta = sdelta
                else:
                    streak = 0
                prev_delta = delta
                prev_stats = stats
            else:
                prev_stats = self._stat_vector()
            prev_vec = vec
            if streak >= _STEADY_WINDOW and n - i > _MIN_JUMP_ITEMS:
                taken, partial = self._steady_run(
                    items, i, n, prev_delta[0], stat_delta
                )
                i += taken
                if partial is not None:
                    # The steady pattern broke mid-chain; finish that
                    # item exactly, reusing the fn results already
                    # computed for its earlier stages.
                    self._cascade(items[i], precomputed=partial)
                    i += 1
                prev_vec = None
                prev_delta = None
                prev_stats = None
                stat_delta = None
                streak = 0
        self._eos()

    def _steady_run(
        self, items, start: int, n: int, lam: int, stat_delta: list[int]
    ) -> tuple[int, list[Any] | None]:
        """Absorb items arithmetically while the timing pattern holds.

        Returns ``(taken, partial)``: how many items were absorbed, and
        — when the pattern broke mid-chain — the per-stage ``fn``
        results already computed for the breaking item, so the exact
        cascade can finish it without re-running impure ``fn``s.
        """
        it = iter(stat_delta)
        steady_in: list[int] = []
        steady_out: list[int] = []
        for _ in self.kernels:
            steady_in.append(next(it))
            steady_out.append(next(it))
            next(it)
            next(it)
            next(it)
        kernels = self.kernels
        received = self.received
        taken = 0
        i = start
        partial: list[Any] | None = None
        while i < n:
            value = items[i]
            ok = True
            results: list[Any] = []
            for idx, ks in enumerate(kernels):
                if _count(value) != steady_in[idx] or (
                    ks.is_burst and not isinstance(value, Burst)
                ):
                    ok = False
                    break
                result = ks.fn(value)
                results.append(result)
                if result is None or _count(result) != steady_out[idx]:
                    ok = False
                    break
                value = result
            if not ok:
                partial = results
                break
            received.append(value)
            taken += 1
            i += 1
        if taken:
            self._apply_jump(taken, lam, stat_delta)
        return taken, partial

    def flush(self) -> None:
        """Apply accumulated state to the live components."""
        for ks in self.kernels:
            ks.flush()
        for ss in self.streams:
            ss.flush()
        self.source.count += self.src_count
        sink = self.sink
        sink.received.extend(self.received)
        sink.items += self.sink_items
        if self.done_at is not None:
            sink.done_at_ps = self.done_at


def _finish_process(proc) -> None:
    """Mark a component process completed without scheduling events."""
    proc._waiting_on = None
    proc.generator.close()
    proc._value = None
    proc._ok = True
    proc._triggered = True
    proc._fired = True


def try_fast_forward(sim) -> bool:
    """Solve the sim's pipeline chains analytically when provably safe.

    Returns True when the chains were solved and the event heap was
    drained (the subsequent ``run()`` loop finds nothing to do); False
    leaves the simulator untouched for ordinary event stepping.
    """
    if not is_enabled() or sim._tracer is not None:
        counters["fallback"] += 1
        return False
    chains = _eligible_chains(sim)
    if chains is None:
        counters["fallback"] += 1
        return False
    solvers = [_ChainSolver(sim, chain) for chain in chains]
    # Solve every chain before committing any state: a TypeError from a
    # mis-wired kernel leaves the simulator untouched so the event path
    # reports it with ordinary semantics.
    for solver in solvers:
        solver.solve()
    for solver in solvers:
        solver.flush()
    for chain in chains:
        for comp in chain:
            _finish_process(comp.process)
    sim._heap.clear()
    sim._pipeline_components.clear()
    end = max(solver.done_at for solver in solvers)
    if end > sim._now:
        sim._now = end
    counters["applied"] += 1
    return True
