"""Bounded streams with backpressure — the HLS ``hls::stream`` analogue.

Streams connect kernels in a dataflow region.  They are bounded FIFOs:
a ``put`` into a full stream blocks the producer and a ``get`` from an
empty stream blocks the consumer, which is exactly the backpressure
behaviour of FIFO channels between HLS dataflow stages.

Two granularities are supported:

* **item streams** (:class:`Stream`) carry individual Python/numpy
  objects; used by fine-grained tests and the per-item timing ablation.
* **burst streams** — the same class with items that are
  :class:`Burst` records (a payload plus a count); the performance
  layers move bursts so that simulating a million tuples costs a
  handful of events rather than a million.

``END_OF_STREAM`` is the conventional last-token sentinel (HLS designs
use a side-band ``last`` flag; a sentinel keeps the Python API simple).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .sim import Event, SimulationError, Simulator, Timeout

__all__ = ["Burst", "END_OF_STREAM", "Stream", "StreamStats", "StreamTimeout"]


class StreamTimeout(SimulationError):
    """Raised into a process whose bounded stream wait expired.

    ``side`` is ``"consumer"`` (a ``get`` that found no item in time)
    or ``"producer"`` (a ``put`` that found no space in time).
    """

    def __init__(self, stream: str, side: str, timeout_ps: int) -> None:
        super().__init__(
            f"{side} wait on stream {stream!r} timed out after {timeout_ps} ps"
        )
        self.stream = stream
        self.side = side
        self.timeout_ps = timeout_ps


class _EndOfStream:
    """Sentinel type for :data:`END_OF_STREAM` (singleton)."""

    _instance: "_EndOfStream | None" = None

    def __new__(cls) -> "_EndOfStream":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "END_OF_STREAM"


END_OF_STREAM = _EndOfStream()


@dataclass(slots=True)
class Burst:
    """A batch of ``count`` logical items moving through a stream as one unit.

    ``payload`` is typically a numpy array slice; ``meta`` carries
    side-band information (e.g. a query id or a last-burst flag).
    """

    payload: Any
    count: int
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"burst count must be >= 0, got {self.count}")


@dataclass(slots=True)
class StreamStats:
    """Counters a stream keeps for bottleneck analysis.

    ``*_stall_ps`` accumulate how long blocked puts/gets waited before
    resolving — the stream-side view of backpressure that the profiler
    (:mod:`repro.obs.profile`) reports as stall time.
    """

    #: ``gets`` counts every *resolved* get — whether the item came off
    #: the queue or was handed directly to a blocked consumer — so on a
    #: fully drained stream ``gets == puts`` regardless of event order.
    puts: int = 0
    gets: int = 0
    items: int = 0
    producer_stall_events: int = 0
    consumer_stall_events: int = 0
    producer_stall_ps: int = 0
    consumer_stall_ps: int = 0
    high_watermark: int = 0


class Stream:
    """A bounded FIFO with blocking put/get, usable from processes.

    Parameters
    ----------
    sim:
        The owning simulator.
    depth:
        Maximum number of queued entries (HLS FIFO depth).  Must be at
        least 1.
    name:
        Identifier for diagnostics.
    """

    def __init__(self, sim: Simulator, depth: int = 2, name: str = "stream") -> None:
        if depth < 1:
            raise SimulationError(f"stream depth must be >= 1, got {depth}")
        self.sim = sim
        self.depth = depth
        self.name = name
        self.stats = StreamStats()
        self._queue: deque[Any] = deque()
        # Blocked waiters carry the time they queued so the stall
        # duration can be accounted when they resolve.
        self._getters: deque[tuple[Event, int]] = deque()
        self._putters: deque[tuple[Event, Any, int]] = deque()
        # Guard timers for bounded waits, disarmed when the wait
        # resolves (kept out of the waiter's callback list so an
        # interrupted waiter still counts as "sole waiter" and gets
        # cancelled/unlinked).
        self._guards: dict[Event, Event] = {}

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """True if a put would block."""
        return len(self._queue) >= self.depth

    @property
    def empty(self) -> bool:
        """True if a get would block."""
        return not self._queue

    def put(self, item: Any, timeout: int | None = None) -> Event:
        """Return an event that fires once ``item`` has been enqueued.

        With ``timeout`` (simulated time units), a put still blocked
        after that long is abandoned: the item is *not* enqueued and
        the event fails with :class:`StreamTimeout`.
        """
        done = Event(self.sim)
        tracer = self.sim._tracer
        waiter = self._pop_getter()
        if waiter is not None:
            # Hand the item straight to the longest-waiting consumer.
            getter, since = waiter
            getter.succeed(item)
            done.succeed()
            self._account_put(item)
            self.stats.gets += 1
            self._end_consumer_stall(since)
            if tracer is not None:
                tracer.stream_put(
                    self.name, self._count(item), len(self._queue),
                    blocked=False,
                )
        elif len(self._queue) < self.depth:
            self._queue.append(item)
            done.succeed()
            self._account_put(item)
            if tracer is not None:
                tracer.stream_put(
                    self.name, self._count(item), len(self._queue),
                    blocked=False,
                )
        else:
            self.stats.producer_stall_events += 1
            self._putters.append((done, item, self.sim.now))
            done.on_cancel(self._unlink_putter)
            if timeout is not None:
                self._arm_timeout(done, int(timeout), "producer")
            if tracer is not None:
                tracer.stream_put(
                    self.name, self._count(item), len(self._queue),
                    blocked=True,
                )
        return done

    def get(self, timeout: int | None = None) -> Event:
        """Return an event that fires with the next item.

        With ``timeout`` (simulated time units), a get still blocked
        after that long is abandoned: the waiter is unlinked from the
        stream (no later ``put`` can hand an item to it) and the event
        fails with :class:`StreamTimeout`.
        """
        got = Event(self.sim)
        tracer = self.sim._tracer
        if self._queue:
            item = self._queue.popleft()
            got.succeed(item)
            self._account_get(item)
            self._drain_putters()
            if tracer is not None:
                tracer.stream_get(self.name, blocked=False)
        else:
            self.stats.consumer_stall_events += 1
            self._getters.append((got, self.sim.now))
            got.on_cancel(self._unlink_getter)
            if timeout is not None:
                self._arm_timeout(got, int(timeout), "consumer")
            if tracer is not None:
                tracer.stream_get(self.name, blocked=True)
        return got

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._queue:
            item = self._queue.popleft()
            self._account_get(item)
            self._drain_putters()
            tracer = self.sim._tracer
            if tracer is not None:
                tracer.stream_get(self.name, blocked=False)
            return True, item
        return False, None

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: True if ``item`` was accepted immediately.

        Symmetric to :meth:`try_get`: the item is handed to the
        longest-waiting consumer (or enqueued) exactly as an unblocked
        :meth:`put` would, but without allocating a completion event.
        Returns False — and leaves the stream untouched — when the put
        would have blocked.
        """
        waiter = self._pop_getter()
        if waiter is not None:
            getter, since = waiter
            getter.succeed(item)
            self._account_put(item)
            self.stats.gets += 1
            self._end_consumer_stall(since)
        elif len(self._queue) < self.depth:
            self._queue.append(item)
            self._account_put(item)
        else:
            return False
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.stream_put(
                self.name, self._count(item), len(self._queue),
                blocked=False,
            )
        return True

    # -- internal ---------------------------------------------------------

    @staticmethod
    def _count(item: Any) -> int:
        return item.count if isinstance(item, Burst) else 1

    def _pop_getter(self) -> tuple[Event, int] | None:
        """Next live blocked consumer (skipping abandoned waiters)."""
        while self._getters:
            getter, since = self._getters.popleft()
            if not (getter._cancelled or getter._triggered):
                self._disarm(getter)
                return getter, since
        return None

    def _unlink_getter(self, event: Event) -> bool:
        """Remove an abandoned blocked consumer from the wait queue."""
        self._disarm(event)
        for i, (getter, since) in enumerate(self._getters):
            if getter is event:
                del self._getters[i]
                self._end_consumer_stall(since)
                return True
        return False

    def _unlink_putter(self, event: Event) -> bool:
        """Remove an abandoned blocked producer (its item is discarded)."""
        self._disarm(event)
        for i, (done, _item, since) in enumerate(self._putters):
            if done is event:
                del self._putters[i]
                self._end_producer_stall(since)
                return True
        return False

    def _disarm(self, waiter: Event) -> None:
        timer = self._guards.pop(waiter, None)
        if timer is not None:
            timer.cancel()

    def _arm_timeout(self, waiter: Event, timeout_ps: int, side: str) -> None:
        timer = Timeout(self.sim, timeout_ps)
        self._guards[waiter] = timer

        def _expire(_timer: Event) -> None:
            self._guards.pop(waiter, None)
            if waiter._triggered or waiter._cancelled:
                return
            if side == "consumer":
                self._unlink_getter(waiter)
            else:
                self._unlink_putter(waiter)
            tracer = self.sim._tracer
            if tracer is not None:
                tracer.stream_timeout(self.name, side, timeout_ps)
            waiter.fail(StreamTimeout(self.name, side, timeout_ps))

        timer.callbacks.append(_expire)

    def _drain_putters(self) -> None:
        while len(self._queue) < self.depth:
            entry = self._pop_putter()
            if entry is None:
                return
            done, item, since = entry
            waiter = self._pop_getter()
            if waiter is not None:
                getter, gsince = waiter
                getter.succeed(item)
                self.stats.gets += 1
                self._end_consumer_stall(gsince)
            else:
                self._queue.append(item)
            done.succeed()
            self._account_put(item)
            self._end_producer_stall(since)

    def _pop_putter(self) -> tuple[Event, Any, int] | None:
        """Next live blocked producer (skipping abandoned waiters)."""
        while self._putters:
            done, item, since = self._putters.popleft()
            if not (done._cancelled or done._triggered):
                self._disarm(done)
                return done, item, since
        return None

    def _end_producer_stall(self, since: int) -> None:
        dur = self.sim.now - since
        self.stats.producer_stall_ps += dur
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.stream_stall(self.name, "producer", since, dur)

    def _end_consumer_stall(self, since: int) -> None:
        dur = self.sim.now - since
        self.stats.consumer_stall_ps += dur
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.stream_stall(self.name, "consumer", since, dur)

    def _account_put(self, item: Any) -> None:
        self.stats.puts += 1
        self.stats.items += item.count if isinstance(item, Burst) else 1
        self.stats.high_watermark = max(self.stats.high_watermark, len(self._queue))

    def _account_get(self, item: Any) -> None:
        self.stats.gets += 1

    def __repr__(self) -> str:
        return (
            f"Stream({self.name!r}, depth={self.depth}, "
            f"occupancy={len(self._queue)})"
        )
