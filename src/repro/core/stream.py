"""Bounded streams with backpressure — the HLS ``hls::stream`` analogue.

Streams connect kernels in a dataflow region.  They are bounded FIFOs:
a ``put`` into a full stream blocks the producer and a ``get`` from an
empty stream blocks the consumer, which is exactly the backpressure
behaviour of FIFO channels between HLS dataflow stages.

Two granularities are supported:

* **item streams** (:class:`Stream`) carry individual Python/numpy
  objects; used by fine-grained tests and the per-item timing ablation.
* **burst streams** — the same class with items that are
  :class:`Burst` records (a payload plus a count); the performance
  layers move bursts so that simulating a million tuples costs a
  handful of events rather than a million.

``END_OF_STREAM`` is the conventional last-token sentinel (HLS designs
use a side-band ``last`` flag; a sentinel keeps the Python API simple).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .sim import Event, SimulationError, Simulator

__all__ = ["Burst", "END_OF_STREAM", "Stream", "StreamStats"]


class _EndOfStream:
    """Sentinel type for :data:`END_OF_STREAM` (singleton)."""

    _instance: "_EndOfStream | None" = None

    def __new__(cls) -> "_EndOfStream":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "END_OF_STREAM"


END_OF_STREAM = _EndOfStream()


@dataclass(slots=True)
class Burst:
    """A batch of ``count`` logical items moving through a stream as one unit.

    ``payload`` is typically a numpy array slice; ``meta`` carries
    side-band information (e.g. a query id or a last-burst flag).
    """

    payload: Any
    count: int
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"burst count must be >= 0, got {self.count}")


@dataclass(slots=True)
class StreamStats:
    """Counters a stream keeps for bottleneck analysis.

    ``*_stall_ps`` accumulate how long blocked puts/gets waited before
    resolving — the stream-side view of backpressure that the profiler
    (:mod:`repro.obs.profile`) reports as stall time.
    """

    puts: int = 0
    gets: int = 0
    items: int = 0
    producer_stall_events: int = 0
    consumer_stall_events: int = 0
    producer_stall_ps: int = 0
    consumer_stall_ps: int = 0
    high_watermark: int = 0


class Stream:
    """A bounded FIFO with blocking put/get, usable from processes.

    Parameters
    ----------
    sim:
        The owning simulator.
    depth:
        Maximum number of queued entries (HLS FIFO depth).  Must be at
        least 1.
    name:
        Identifier for diagnostics.
    """

    def __init__(self, sim: Simulator, depth: int = 2, name: str = "stream") -> None:
        if depth < 1:
            raise SimulationError(f"stream depth must be >= 1, got {depth}")
        self.sim = sim
        self.depth = depth
        self.name = name
        self.stats = StreamStats()
        self._queue: deque[Any] = deque()
        # Blocked waiters carry the time they queued so the stall
        # duration can be accounted when they resolve.
        self._getters: deque[tuple[Event, int]] = deque()
        self._putters: deque[tuple[Event, Any, int]] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """True if a put would block."""
        return len(self._queue) >= self.depth

    @property
    def empty(self) -> bool:
        """True if a get would block."""
        return not self._queue

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` has been enqueued."""
        done = Event(self.sim)
        tracer = self.sim._tracer
        if self._getters:
            # Hand the item straight to the longest-waiting consumer.
            getter, since = self._getters.popleft()
            getter.succeed(item)
            done.succeed()
            self._account_put(item)
            self._end_consumer_stall(since)
            if tracer is not None:
                tracer.stream_put(
                    self.name, self._count(item), len(self._queue),
                    blocked=False,
                )
        elif len(self._queue) < self.depth:
            self._queue.append(item)
            done.succeed()
            self._account_put(item)
            if tracer is not None:
                tracer.stream_put(
                    self.name, self._count(item), len(self._queue),
                    blocked=False,
                )
        else:
            self.stats.producer_stall_events += 1
            self._putters.append((done, item, self.sim.now))
            if tracer is not None:
                tracer.stream_put(
                    self.name, self._count(item), len(self._queue),
                    blocked=True,
                )
        return done

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        got = Event(self.sim)
        tracer = self.sim._tracer
        if self._queue:
            item = self._queue.popleft()
            got.succeed(item)
            self._account_get(item)
            self._drain_putters()
            if tracer is not None:
                tracer.stream_get(self.name, blocked=False)
        else:
            self.stats.consumer_stall_events += 1
            self._getters.append((got, self.sim.now))
            if tracer is not None:
                tracer.stream_get(self.name, blocked=True)
        return got

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._queue:
            item = self._queue.popleft()
            self._account_get(item)
            self._drain_putters()
            return True, item
        return False, None

    # -- internal ---------------------------------------------------------

    @staticmethod
    def _count(item: Any) -> int:
        return item.count if isinstance(item, Burst) else 1

    def _drain_putters(self) -> None:
        while self._putters and len(self._queue) < self.depth:
            done, item, since = self._putters.popleft()
            if self._getters:
                getter, gsince = self._getters.popleft()
                getter.succeed(item)
                self._end_consumer_stall(gsince)
            else:
                self._queue.append(item)
            done.succeed()
            self._account_put(item)
            self._end_producer_stall(since)

    def _end_producer_stall(self, since: int) -> None:
        dur = self.sim.now - since
        self.stats.producer_stall_ps += dur
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.stream_stall(self.name, "producer", since, dur)

    def _end_consumer_stall(self, since: int) -> None:
        dur = self.sim.now - since
        self.stats.consumer_stall_ps += dur
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.stream_stall(self.name, "consumer", since, dur)

    def _account_put(self, item: Any) -> None:
        self.stats.puts += 1
        self.stats.items += item.count if isinstance(item, Burst) else 1
        self.stats.high_watermark = max(self.stats.high_watermark, len(self._queue))

    def _account_get(self, item: Any) -> None:
        self.stats.gets += 1

    def __repr__(self) -> str:
        return (
            f"Stream({self.name!r}, depth={self.depth}, "
            f"occupancy={len(self._queue)})"
        )
