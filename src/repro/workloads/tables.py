"""Relational workload generator: tables with controllable selectivity.

Farview's offload experiments need tables where a predicate's
selectivity is a *dial*: ``lineitems``-style wide rows with a uniform
``key`` column lets ``key < s * max_key`` select exactly the fraction
``s``.  Columns come back as a dict of numpy arrays, matching the
columnar layout of :mod:`repro.relational`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["orders_table", "uniform_table", "grouped_table"]


def uniform_table(
    n_rows: int,
    n_payload_cols: int = 4,
    key_max: int = 1_000_000,
    seed: int = 11,
) -> dict[str, np.ndarray]:
    """A table with a uniform int64 ``key`` plus float64 payload columns.

    ``key < selectivity * key_max`` selects ~``selectivity`` of rows.
    """
    if n_rows < 0:
        raise ValueError("n_rows must be >= 0")
    if n_payload_cols < 0:
        raise ValueError("n_payload_cols must be >= 0")
    rng = np.random.default_rng(seed)
    table: dict[str, np.ndarray] = {
        "key": rng.integers(0, key_max, size=n_rows, dtype=np.int64),
    }
    for i in range(n_payload_cols):
        table[f"val{i}"] = rng.random(n_rows)
    return table


def orders_table(n_rows: int, n_customers: int = 1000,
                 seed: int = 13) -> dict[str, np.ndarray]:
    """An orders-style fact table for group-by and join workloads."""
    if n_rows < 0:
        raise ValueError("n_rows must be >= 0")
    if n_customers < 1:
        raise ValueError("need at least one customer")
    rng = np.random.default_rng(seed)
    return {
        "order_id": np.arange(n_rows, dtype=np.int64),
        "customer_id": rng.integers(0, n_customers, size=n_rows, dtype=np.int64),
        "amount": np.round(rng.exponential(100.0, size=n_rows), 2),
        "quantity": rng.integers(1, 50, size=n_rows, dtype=np.int64),
        "discount": rng.random(n_rows) * 0.1,
    }


def grouped_table(
    n_rows: int, n_groups: int, skew: float = 0.0, seed: int = 17
) -> dict[str, np.ndarray]:
    """A (group, value) table, optionally Zipf-skewed over groups."""
    if n_rows < 0:
        raise ValueError("n_rows must be >= 0")
    if n_groups < 1:
        raise ValueError("need at least one group")
    rng = np.random.default_rng(seed)
    if skew > 0:
        from .zipf import ZipfSampler

        groups = ZipfSampler(n_groups, skew, rng).sample(n_rows)
    else:
        groups = rng.integers(0, n_groups, size=n_rows, dtype=np.int64)
    return {
        "group": groups.astype(np.int64),
        "value": rng.random(n_rows),
    }
