"""Zipf-distributed sampling for skewed access traces.

Recommendation workloads hit embedding rows with heavy skew (a few hot
items dominate).  :class:`ZipfSampler` draws ids from a bounded Zipf
distribution with exponent ``s``; ``s = 0`` degenerates to uniform.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Draw integers in ``[0, n)`` with Zipf(s) probabilities.

    Parameters
    ----------
    n:
        Universe size.
    s:
        Skew exponent (0 = uniform; ~0.99 is a common web-trace fit).
    rng:
        Numpy random generator (required: determinism is explicit).
    """

    def __init__(self, n: int, s: float, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"universe size must be >= 1, got {n}")
        if s < 0:
            raise ValueError(f"skew exponent must be >= 0, got {s}")
        self.n = n
        self.s = s
        self._rng = rng
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-s)
        self._probs = weights / weights.sum()
        self._cdf = np.cumsum(self._probs)
        # Float cumsum can leave cdf[-1] slightly below 1.0; a uniform
        # draw landing in that gap would searchsorted to n — one past
        # the last valid id.  Pin the top of the distribution.
        self._cdf[-1] = 1.0

    @property
    def probabilities(self) -> np.ndarray:
        """Per-id probabilities, descending by rank."""
        return self._probs.copy()

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` ids (int64)."""
        if size < 0:
            raise ValueError("size must be >= 0")
        u = self._rng.random(size)
        idx = np.searchsorted(self._cdf, u)
        # Clamp as a second line of defence (e.g. an rng returning
        # exactly 1.0 would still land one past the end).
        return np.minimum(idx, self.n - 1).astype(np.int64)

    def hot_set_fraction(self, top_k: int) -> float:
        """Probability mass carried by the ``top_k`` hottest ids."""
        if top_k <= 0:
            return 0.0
        return float(self._probs[: min(top_k, self.n)].sum())
