"""Synthetic workload generators (see DESIGN.md §1 for what each
substitutes and why the substitution preserves the relevant behaviour).
"""

from .tables import grouped_table, orders_table, uniform_table
from .traces import RecModelSpec, lookup_trace, production_like_model
from .vectors import VectorDataset, brute_force_knn, clustered_dataset
from .zipf import ZipfSampler

__all__ = [
    "RecModelSpec",
    "VectorDataset",
    "ZipfSampler",
    "brute_force_knn",
    "clustered_dataset",
    "grouped_table",
    "lookup_trace",
    "orders_table",
    "production_like_model",
    "uniform_table",
]
