"""Recommendation-inference workloads: model shapes and lookup traces.

MicroRec's production workloads (Alibaba CTR models) are proprietary;
the substitute preserves what the accelerator design exploits:

* **many tables** (tens to hundreds) of wildly different cardinalities
  (a log-uniform spread from tens of rows to millions);
* **one lookup per table per inference**;
* **skew** in which rows are hit (Zipf), which drives the SRAM-vs-HBM
  placement decision.

:class:`RecModelSpec` describes a model (table cardinalities, embedding
dimension, MLP layer widths); :func:`lookup_trace` draws a batch of
per-table row ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .zipf import ZipfSampler

__all__ = ["RecModelSpec", "lookup_trace", "production_like_model"]


@dataclass(frozen=True)
class RecModelSpec:
    """The shape of a deep recommendation model.

    ``table_rows[i]`` is the cardinality of embedding table ``i``; every
    inference looks up exactly one row per table, concatenates the
    embeddings, and runs them through fully-connected layers of widths
    ``mlp_layers`` down to a single CTR logit.
    """

    table_rows: tuple[int, ...]
    embedding_dim: int = 16
    mlp_layers: tuple[int, ...] = (1024, 512, 256)
    bytes_per_value: int = 4
    extra_dense_features: int = 0

    def __post_init__(self) -> None:
        if not self.table_rows:
            raise ValueError("a recommendation model needs at least one table")
        if any(r < 1 for r in self.table_rows):
            raise ValueError("every table needs at least one row")
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        if self.bytes_per_value < 1:
            raise ValueError("bytes_per_value must be >= 1")

    @property
    def n_tables(self) -> int:
        return len(self.table_rows)

    @property
    def embedding_bytes(self) -> int:
        """Bytes of one embedding vector."""
        return self.embedding_dim * self.bytes_per_value

    def table_bytes(self, table: int) -> int:
        """Total bytes of one table."""
        return self.table_rows[table] * self.embedding_bytes

    @property
    def total_embedding_bytes(self) -> int:
        return sum(self.table_bytes(t) for t in range(self.n_tables))

    @property
    def concat_width(self) -> int:
        """Input width of the first FC layer."""
        return self.n_tables * self.embedding_dim + self.extra_dense_features

    def mlp_flops(self) -> int:
        """Multiply-accumulate count of one inference through the MLP."""
        widths = (self.concat_width, *self.mlp_layers, 1)
        return sum(a * b for a, b in zip(widths[:-1], widths[1:]))


def production_like_model(
    n_tables: int = 47,
    embedding_dim: int = 16,
    max_rows: int = 2_000_000,
    min_rows: int = 10,
    seed: int = 23,
) -> RecModelSpec:
    """A model with a log-uniform spread of table cardinalities.

    47 tables / dim-16 embeddings mirrors the smaller production model
    MicroRec reports; cardinalities span ``min_rows``..``max_rows``.
    """
    if n_tables < 1:
        raise ValueError("need at least one table")
    if not 1 <= min_rows <= max_rows:
        raise ValueError("need 1 <= min_rows <= max_rows")
    rng = np.random.default_rng(seed)
    log_rows = rng.uniform(np.log(min_rows), np.log(max_rows), size=n_tables)
    rows = tuple(int(round(np.exp(x))) for x in sorted(log_rows))
    return RecModelSpec(table_rows=rows, embedding_dim=embedding_dim)


def lookup_trace(
    spec: RecModelSpec,
    batch_size: int,
    skew: float = 0.8,
    seed: int = 29,
) -> np.ndarray:
    """Draw a ``(batch_size, n_tables)`` matrix of row ids.

    Each column is a Zipf(``skew``) draw over that table's rows.
    """
    if batch_size < 0:
        raise ValueError("batch_size must be >= 0")
    rng = np.random.default_rng(seed)
    trace = np.empty((batch_size, spec.n_tables), dtype=np.int64)
    for t, rows in enumerate(spec.table_rows):
        sampler = ZipfSampler(rows, skew, rng)
        trace[:, t] = sampler.sample(batch_size)
    return trace
