"""Vector-search workloads: clustered datasets, queries, ground truth.

FANNS evaluates on SIFT-style billion-scale vector collections, which we
cannot ship; the substitute is a clustered Gaussian generator that
preserves the property IVF indexes exploit — *clusterability* — with a
controllable spread, plus exact brute-force ground truth for recall
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VectorDataset", "brute_force_knn", "clustered_dataset"]


@dataclass(frozen=True)
class VectorDataset:
    """A generated dataset: base vectors, query vectors, ground truth.

    ``ground_truth[i]`` holds the ids of the true ``k`` nearest base
    vectors of ``queries[i]`` in ascending distance order.
    """

    base: np.ndarray          # (n, dim) float32
    queries: np.ndarray       # (q, dim) float32
    ground_truth: np.ndarray  # (q, k) int64

    @property
    def n(self) -> int:
        return self.base.shape[0]

    @property
    def dim(self) -> int:
        return self.base.shape[1]

    @property
    def n_queries(self) -> int:
        return self.queries.shape[0]

    @property
    def gt_k(self) -> int:
        return self.ground_truth.shape[1]


def brute_force_knn(
    base: np.ndarray, queries: np.ndarray, k: int, block: int = 1024
) -> np.ndarray:
    """Exact k-NN by blocked squared-L2 scan; returns (q, k) ids.

    Blocked over queries to bound the distance-matrix footprint.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > base.shape[0]:
        raise ValueError(f"k={k} exceeds dataset size {base.shape[0]}")
    base = np.ascontiguousarray(base, dtype=np.float32)
    queries = np.ascontiguousarray(queries, dtype=np.float32)
    base_sq = (base ** 2).sum(axis=1)
    out = np.empty((queries.shape[0], k), dtype=np.int64)
    for start in range(0, queries.shape[0], block):
        q = queries[start:start + block]
        # ||q - b||^2 = ||q||^2 - 2 q.b + ||b||^2 ; ||q||^2 constant per row.
        dists = base_sq[None, :] - 2.0 * (q @ base.T)
        idx = np.argpartition(dists, k - 1, axis=1)[:, :k]
        row_d = np.take_along_axis(dists, idx, axis=1)
        order = np.argsort(row_d, axis=1, kind="stable")
        out[start:start + q.shape[0]] = np.take_along_axis(idx, order, axis=1)
    return out


def clustered_dataset(
    n: int,
    dim: int,
    n_queries: int,
    gt_k: int = 10,
    n_clusters: int = 64,
    cluster_std: float = 0.15,
    seed: int = 7,
) -> VectorDataset:
    """Generate a clustered Gaussian dataset with exact ground truth.

    Cluster centers are uniform in the unit cube; base vectors are
    Gaussian around a random center; queries are perturbed base vectors
    (so every query has natural near neighbors, as in real embedding
    collections).
    """
    if n < 1 or dim < 1 or n_queries < 1:
        raise ValueError("n, dim and n_queries must all be >= 1")
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, dim), dtype=np.float32)
    assignment = rng.integers(0, n_clusters, size=n)
    base = centers[assignment] + rng.normal(
        0.0, cluster_std, size=(n, dim)
    ).astype(np.float32)
    picks = rng.integers(0, n, size=n_queries)
    queries = base[picks] + rng.normal(
        0.0, cluster_std / 2, size=(n_queries, dim)
    ).astype(np.float32)
    gt = brute_force_knn(base, queries, gt_k)
    return VectorDataset(base=base, queries=queries, ground_truth=gt)
