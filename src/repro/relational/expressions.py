"""Predicate expressions evaluable against columnar tables.

A tiny expression AST — columns, constants, comparisons, boolean
connectives, arithmetic — enough to express the selection predicates
Farview offloads ("``key < 42 AND val0 >= 0.5``").  Expressions
evaluate vectorised over a :class:`~repro.relational.table.Table` and
report an operation count used by the cost models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .table import Table

__all__ = ["BinOp", "Col", "Const", "Expr", "and_", "col", "lit", "not_", "or_"]

_COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}
_ARITHMETIC = {"+", "-", "*", "/"}
_LOGICAL = {"and", "or"}


class Expr:
    """Base class of all expressions."""

    def evaluate(self, table: Table) -> np.ndarray:  # pragma: no cover
        """Vectorised evaluation over a table."""
        raise NotImplementedError

    def op_count(self) -> int:  # pragma: no cover
        """Element operations per row (for cost models)."""
        raise NotImplementedError

    def columns_used(self) -> set[str]:  # pragma: no cover
        """Names of referenced columns."""
        raise NotImplementedError

    # -- operator sugar -----------------------------------------------------

    def _bin(self, op: str, other: Any) -> "BinOp":
        rhs = other if isinstance(other, Expr) else Const(other)
        return BinOp(op, self, rhs)

    def __lt__(self, other: Any) -> "BinOp":
        return self._bin("<", other)

    def __le__(self, other: Any) -> "BinOp":
        return self._bin("<=", other)

    def __gt__(self, other: Any) -> "BinOp":
        return self._bin(">", other)

    def __ge__(self, other: Any) -> "BinOp":
        return self._bin(">=", other)

    def __eq__(self, other: Any) -> "BinOp":  # type: ignore[override]
        return self._bin("==", other)

    def __ne__(self, other: Any) -> "BinOp":  # type: ignore[override]
        return self._bin("!=", other)

    __hash__ = None  # type: ignore[assignment]

    def __add__(self, other: Any) -> "BinOp":
        return self._bin("+", other)

    def __sub__(self, other: Any) -> "BinOp":
        return self._bin("-", other)

    def __mul__(self, other: Any) -> "BinOp":
        return self._bin("*", other)

    def __truediv__(self, other: Any) -> "BinOp":
        return self._bin("/", other)

    def __and__(self, other: "Expr") -> "BinOp":
        return BinOp("and", self, other)

    def __or__(self, other: "Expr") -> "BinOp":
        return BinOp("or", self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True, eq=False)
class Col(Expr):
    """A column reference."""

    name: str

    def evaluate(self, table: Table) -> np.ndarray:
        return table.column(self.name)

    def op_count(self) -> int:
        return 0

    def columns_used(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """A literal constant."""

    value: Any

    def evaluate(self, table: Table) -> np.ndarray:
        return np.asarray(self.value)

    def op_count(self) -> int:
        return 0

    def columns_used(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    """A binary operation (comparison, arithmetic, or logical)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS | _ARITHMETIC | _LOGICAL:
            raise ValueError(f"unsupported operator {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        lhs = self.left.evaluate(table)
        rhs = self.right.evaluate(table)
        match self.op:
            case "<":
                return lhs < rhs
            case "<=":
                return lhs <= rhs
            case ">":
                return lhs > rhs
            case ">=":
                return lhs >= rhs
            case "==":
                return lhs == rhs
            case "!=":
                return lhs != rhs
            case "+":
                return lhs + rhs
            case "-":
                return lhs - rhs
            case "*":
                return lhs * rhs
            case "/":
                return lhs / rhs
            case "and":
                return np.logical_and(lhs, rhs)
            case "or":
                return np.logical_or(lhs, rhs)
        raise AssertionError("unreachable")

    def op_count(self) -> int:
        return 1 + self.left.op_count() + self.right.op_count()

    def columns_used(self) -> set[str]:
        return self.left.columns_used() | self.right.columns_used()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class Not(Expr):
    """Logical negation."""

    child: Expr

    def evaluate(self, table: Table) -> np.ndarray:
        return np.logical_not(self.child.evaluate(table))

    def op_count(self) -> int:
        return 1 + self.child.op_count()

    def columns_used(self) -> set[str]:
        return self.child.columns_used()

    def __repr__(self) -> str:
        return f"~{self.child!r}"


def col(name: str) -> Col:
    """Shorthand column reference."""
    return Col(name)


def lit(value: Any) -> Const:
    """Shorthand literal."""
    return Const(value)


def and_(*exprs: Expr) -> Expr:
    """Conjunction of one or more expressions."""
    if not exprs:
        raise ValueError("and_ needs at least one expression")
    result = exprs[0]
    for e in exprs[1:]:
        result = BinOp("and", result, e)
    return result


def or_(*exprs: Expr) -> Expr:
    """Disjunction of one or more expressions."""
    if not exprs:
        raise ValueError("or_ needs at least one expression")
    result = exprs[0]
    for e in exprs[1:]:
        result = BinOp("or", result, e)
    return result


def not_(expr: Expr) -> Not:
    """Negation."""
    return Not(expr)
