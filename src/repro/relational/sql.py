"""A miniature SQL front end for query plans.

Farview-style offload demos live or die by how easy it is to pose a
query; this parses the subset the engines support into a
:class:`~repro.relational.operators.QueryPlan`:

.. code-block:: sql

    SELECT key, val0 WHERE key < 1000 AND val0 > 0.5
    SELECT sum(amount) AS total, count(amount) WHERE quantity >= 10
    SELECT sum(value) GROUP BY group WHERE value > 0.1

Grammar (case-insensitive keywords)::

    query      := SELECT select_list [WHERE predicate] [GROUP BY name]
    select_list:= '*' | item (',' item)*
    item       := name | func '(' name ')' [AS name]
    predicate  := disjunction of conjunctions of comparisons,
                  with NOT and parentheses
    comparison := operand op operand      (op: < <= > >= = == != <>)
    operand    := name | number

The resulting plan orders operators filter -> project/aggregate, which
is the only shape the linear pipeline supports (and the right one).
"""

from __future__ import annotations

import re

from .expressions import BinOp, Expr, Not, col, lit
from .operators import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    GroupByAggregate,
    Operator,
    Project,
    QueryPlan,
)

__all__ = ["SqlError", "parse_query"]

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+\.\d+|-?\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|==|!=|<>|[<>=(),*])"
    r")"
)

_KEYWORDS = {"select", "where", "group", "by", "as", "and", "or", "not"}
_AGG_FUNCS = {f.value: f for f in AggFunc}
_COMPARISONS = {"<", "<=", ">", ">=", "=", "==", "!=", "<>"}


class SqlError(ValueError):
    """Raised for queries outside the supported subset."""


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            rest = text[position:].strip()
            if not rest:
                break
            raise SqlError(f"cannot tokenize near {rest[:20]!r}")
        position = match.end()
        token = match.group("number") or match.group("name") \
            or match.group("op")
        tokens.append(token)
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def peek_keyword(self) -> str | None:
        token = self.peek()
        return token.lower() if token and token.lower() in _KEYWORDS else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of query")
        self.position += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.take()
        if token.lower() != keyword:
            raise SqlError(f"expected {keyword.upper()}, got {token!r}")

    def expect(self, symbol: str) -> None:
        token = self.take()
        if token != symbol:
            raise SqlError(f"expected {symbol!r}, got {token!r}")

    # -- select list ---------------------------------------------------------

    def parse_select_list(self):
        if self.peek() == "*":
            self.take()
            return None, []  # no projection, no aggregates
        columns: list[str] = []
        aggs: list[AggSpec] = []
        while True:
            token = self.take()
            if token.lower() in _AGG_FUNCS and self.peek() == "(":
                self.take()
                column = self.take()
                self.expect(")")
                alias = ""
                if self.peek_keyword() == "as":
                    self.take()
                    alias = self.take()
                aggs.append(
                    AggSpec(_AGG_FUNCS[token.lower()], column, alias)
                )
            else:
                if token.lower() in _KEYWORDS:
                    raise SqlError(f"unexpected keyword {token!r} in "
                                   "select list")
                columns.append(token)
            if self.peek() == ",":
                self.take()
                continue
            break
        if columns and aggs:
            raise SqlError(
                "mixing plain columns and aggregates needs GROUP BY; "
                "put the group key in GROUP BY instead"
            )
        return columns or None, aggs

    # -- predicates -----------------------------------------------------------

    def parse_predicate(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.peek_keyword() == "or":
            self.take()
            left = BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.peek_keyword() == "and":
            self.take()
            left = BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.peek_keyword() == "not":
            self.take()
            return Not(self._parse_not())
        if self.peek() == "(":
            self.take()
            inner = self._parse_or()
            self.expect(")")
            return inner
        return self._parse_comparison()

    def _parse_operand(self) -> Expr:
        token = self.take()
        if re.fullmatch(r"-?\d+\.\d+", token):
            return lit(float(token))
        if re.fullmatch(r"-?\d+", token):
            return lit(int(token))
        if token.lower() in _KEYWORDS:
            raise SqlError(f"unexpected keyword {token!r} in predicate")
        return col(token)

    def _parse_comparison(self) -> Expr:
        left = self._parse_operand()
        operator = self.take()
        if operator not in _COMPARISONS:
            raise SqlError(f"expected a comparison operator, got "
                           f"{operator!r}")
        if operator in ("=",):
            operator = "=="
        if operator == "<>":
            operator = "!="
        right = self._parse_operand()
        return BinOp(operator, left, right)


def parse_query(text: str) -> QueryPlan:
    """Parse the supported SQL subset into a :class:`QueryPlan`."""
    parser = _Parser(_tokenize(text))
    parser.expect_keyword("select")
    columns, aggs = parser.parse_select_list()

    predicate: Expr | None = None
    group_key: str | None = None
    while parser.peek() is not None:
        keyword = parser.take().lower()
        if keyword == "where":
            if predicate is not None:
                raise SqlError("duplicate WHERE clause")
            predicate = parser.parse_predicate()
        elif keyword == "group":
            parser.expect_keyword("by")
            group_key = parser.take()
        else:
            raise SqlError(f"unexpected token {keyword!r}")

    operators: list[Operator] = []
    if predicate is not None:
        operators.append(Filter(predicate))
    if group_key is not None:
        if not aggs:
            raise SqlError("GROUP BY requires aggregate functions")
        operators.append(GroupByAggregate(group_key, tuple(aggs)))
    elif aggs:
        operators.append(Aggregate(tuple(aggs)))
    elif columns is not None:
        operators.append(Project(tuple(columns)))
    return QueryPlan(tuple(operators))
