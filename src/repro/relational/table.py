"""Columnar tables backed by numpy arrays."""

from __future__ import annotations

import numpy as np

from .schema import ColumnType, Schema

__all__ = ["Table"]


class Table:
    """An immutable-by-convention columnar table.

    Columns are numpy arrays of equal length; the schema is derived
    from (and checked against) the arrays.
    """

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {name: len(col) for name, col in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"ragged columns: {lengths}")
        self._columns = {
            name: np.asarray(col) for name, col in columns.items()
        }
        self.schema = Schema(
            tuple(
                (name, ColumnType.from_dtype(col.dtype))
                for name, col in self._columns.items()
            )
        )

    @property
    def n_rows(self) -> int:
        return len(next(iter(self._columns.values())))

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.names

    def column(self, name: str) -> np.ndarray:
        """The backing array of a column."""
        if name not in self._columns:
            raise KeyError(f"no column {name!r}; have {self.column_names}")
        return self._columns[name]

    __getitem__ = column

    @property
    def nbytes(self) -> int:
        """Total payload bytes."""
        return sum(col.nbytes for col in self._columns.values())

    def project(self, names: list[str] | tuple[str, ...]) -> "Table":
        """A table with only ``names`` (validates they exist)."""
        return Table({name: self.column(name) for name in names})

    def filter(self, mask: np.ndarray) -> "Table":
        """A table with rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self.n_rows,):
            raise ValueError(
                f"mask must be bool of shape ({self.n_rows},), "
                f"got {mask.dtype} {mask.shape}"
            )
        return Table({name: col[mask] for name, col in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Table":
        """A table with the rows at ``indices`` (gather)."""
        return Table(
            {name: col[indices] for name, col in self._columns.items()}
        )

    def equals(self, other: "Table") -> bool:
        """Exact equality of schema and data."""
        if self.column_names != other.column_names:
            return False
        return all(
            np.array_equal(self._columns[name], other._columns[name])
            for name in self.column_names
        )

    def __repr__(self) -> str:
        return f"Table({self.n_rows} rows, columns={list(self.column_names)})"
