"""Hash joins: functional engine + the CIDR'20 FPGA-vs-CPU analysis.

The tutorial cites Chen et al., *"Is FPGA Useful for Hash Joins?"*
(CIDR 2020) — a deliberately nuanced study: for standalone in-memory
joins both platforms end up memory-bound and the FPGA's advantage is
situational (small build sides that fit on-chip, or joins fused into a
streaming pipeline).  This module reproduces both sides:

* :func:`hash_join` — the exact inner equi-join (vectorised numpy,
  duplicate-safe) both cost models describe;
* :func:`cpu_join_time_s` — radix-style CPU join costs;
* :class:`FpgaJoinModel` — build into BRAM when it fits (probe at
  line rate) or into HBM (probe bound by random-access rate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines.cpu import CpuModel
from ..core.clocking import FABRIC_300MHZ, ClockDomain
from ..core.device import ALVEO_U280, Device
from ..memory.technologies import hbm2_channel
from .table import Table

__all__ = ["FpgaJoinModel", "JoinTiming", "cpu_join_time_s", "hash_join"]


def hash_join(
    probe: Table,
    build: Table,
    probe_key: str,
    build_key: str,
    suffix: str = "_r",
) -> Table:
    """Inner equi-join; duplicate build keys expand (one-to-many).

    Output columns: all probe columns, then build columns (key column
    dropped; name collisions get ``suffix``).  Row order follows the
    probe side (then build order within duplicates).
    """
    probe_keys = probe.column(probe_key)
    build_keys = build.column(build_key)
    if probe_keys.dtype.kind not in "iu" or build_keys.dtype.kind not in "iu":
        raise TypeError("join keys must be integer columns")
    order = np.argsort(build_keys, kind="stable")
    sorted_keys = build_keys[order]
    left = np.searchsorted(sorted_keys, probe_keys, side="left")
    right = np.searchsorted(sorted_keys, probe_keys, side="right")
    counts = right - left
    probe_idx = np.repeat(np.arange(probe.n_rows), counts)
    if probe_idx.size:
        build_pos = np.concatenate(
            [np.arange(lo, hi) for lo, hi in zip(left, right) if hi > lo]
        )
        build_idx = order[build_pos]
    else:
        build_idx = np.zeros(0, dtype=np.int64)
    columns: dict[str, np.ndarray] = {
        name: probe.column(name)[probe_idx] for name in probe.column_names
    }
    for name in build.column_names:
        if name == build_key:
            continue
        out_name = name if name not in columns else f"{name}{suffix}"
        columns[out_name] = build.column(name)[build_idx]
    return Table(columns)


def cpu_join_time_s(
    cpu: CpuModel,
    n_probe: int,
    n_build: int,
    probe_row_bytes: int,
    build_row_bytes: int,
    parallel: bool = True,
) -> float:
    """A radix-partitioned CPU hash join, roofline-priced.

    Two partitioning passes (each reads and writes both inputs) plus
    the cache-resident probe pass, and ~25 scalar ops per tuple of
    hashing/partition bookkeeping/probing — calibrated to land in the
    ~1 G tuples/s range published for large in-memory radix joins on
    two-socket servers.
    """
    if min(n_probe, n_build) < 0:
        raise ValueError("row counts must be >= 0")
    total_bytes = n_probe * probe_row_bytes + n_build * build_row_bytes
    memory = 5 * cpu.stream_time_s(total_bytes, parallel)
    compute = cpu.compute_time_s(
        25 * (n_probe + n_build), element_bytes=cpu.simd_bytes,
        parallel=parallel,
    )
    return max(memory, compute)


@dataclass(frozen=True)
class JoinTiming:
    """The FPGA join's phase times and placement decision."""

    build_s: float
    probe_s: float
    placement: str  # "bram" or "hbm"

    @property
    def total_s(self) -> float:
        return self.build_s + self.probe_s


class FpgaJoinModel:
    """The FPGA hash join of the CIDR'20 study.

    The build side lands in on-chip BRAM when it fits (with a hash
    table overhead factor); probes then pipeline at II=1.  Otherwise it
    lands in HBM and every probe is a random channel access — the
    memory-bound regime where FPGAs stop being special.
    """

    def __init__(
        self,
        device: Device = ALVEO_U280,
        clock: ClockDomain = FABRIC_300MHZ,
        n_hbm_channels: int = 32,
        n_probe_pipelines: int = 16,
        bram_fraction: float = 0.5,
        hash_table_overhead: float = 1.5,
    ) -> None:
        if not 0 < bram_fraction <= 1:
            raise ValueError("bram_fraction must be in (0, 1]")
        if n_hbm_channels < 1:
            raise ValueError("need at least one HBM channel")
        if n_probe_pipelines < 1:
            raise ValueError("need at least one probe pipeline")
        if hash_table_overhead < 1.0:
            raise ValueError("hash table overhead must be >= 1")
        self.device = device
        self.clock = clock
        self.n_hbm_channels = n_hbm_channels
        self.n_probe_pipelines = n_probe_pipelines
        self.bram_budget = int(device.onchip_sram_bytes * bram_fraction)
        self.overhead = hash_table_overhead
        self._hbm = hbm2_channel()

    @property
    def _bram_replicas(self) -> int:
        """Dual-ported BRAM serves two pipelines per table replica."""
        return max(1, math.ceil(self.n_probe_pipelines / 2))

    def placement_of(self, n_build: int, build_row_bytes: int) -> str:
        """Where the build-side hash table lives (replicas included)."""
        table_bytes = (
            n_build * build_row_bytes * self.overhead * self._bram_replicas
        )
        return "bram" if table_bytes <= self.bram_budget else "hbm"

    def join_time(
        self,
        n_probe: int,
        n_build: int,
        probe_row_bytes: int,
        build_row_bytes: int,
    ) -> JoinTiming:
        """Phase times for a standalone join on the accelerator."""
        if min(n_probe, n_build) < 0:
            raise ValueError("row counts must be >= 0")
        placement = self.placement_of(n_build, build_row_bytes)
        if placement == "bram":
            # Build: inserts broadcast to all replicas, one per cycle;
            # probe: the pipelines share the replicas, II=1 each.
            build_s = self.clock.cycles_to_seconds(n_build)
            probe_s = self.clock.cycles_to_seconds(
                math.ceil(n_probe / self.n_probe_pipelines)
            )
        else:
            # Build and probe are HBM random accesses spread over the
            # channels (bucket read ~64 B).
            per_channel_build = math.ceil(n_build / self.n_hbm_channels)
            per_channel_probe = math.ceil(n_probe / self.n_hbm_channels)
            build_s = self._hbm.batch_random_time_ps(
                per_channel_build, 64
            ) / 1e12
            probe_s = self._hbm.batch_random_time_ps(
                per_channel_probe, 64
            ) / 1e12
        return JoinTiming(build_s=build_s, probe_s=probe_s,
                          placement=placement)

    def streaming_probe_rate(self, n_build: int,
                             build_row_bytes: int) -> float:
        """Probe tuples/s when the join is fused into a stream pipeline
        (the regime the CIDR paper finds FPGAs genuinely useful in)."""
        if self.placement_of(n_build, build_row_bytes) == "bram":
            return self.clock.freq_hz
        per_access = self._hbm.batch_random_time_ps(1, 64) \
            - self._hbm.latency_ps
        hbm_rate = self.n_hbm_channels * 1e12 / max(1, per_access)
        # The probe datapath itself issues at most one tuple per cycle.
        return min(self.clock.freq_hz, hbm_rate)
