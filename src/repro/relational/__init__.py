"""Columnar relational substrate: tables, predicates, operators, engines.

The functional ground truth is the numpy CPU engine
(:func:`~repro.relational.engine.execute`); the FPGA stream operators
(:mod:`repro.relational.fpga_ops`) compute the same results inside the
dataflow simulator and are what Farview offloads to smart memory.
"""

from .engine import cpu_cost_s, execute
from .expressions import BinOp, Col, Const, Expr, and_, col, lit, not_, or_
from .fpga_ops import (
    OperatorKernel,
    make_operator_kernel,
    make_table_bursts,
    plan_kernels,
    rows_per_cycle,
)
from .join import FpgaJoinModel, JoinTiming, cpu_join_time_s, hash_join
from .operators import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    GroupByAggregate,
    Operator,
    Project,
    QueryPlan,
    Transform,
)
from .schema import ColumnType, Schema
from .sql import SqlError, parse_query
from .table import Table

__all__ = [
    "AggFunc",
    "AggSpec",
    "Aggregate",
    "BinOp",
    "Col",
    "ColumnType",
    "Const",
    "Expr",
    "Filter",
    "FpgaJoinModel",
    "GroupByAggregate",
    "JoinTiming",
    "Operator",
    "OperatorKernel",
    "Project",
    "QueryPlan",
    "Schema",
    "SqlError",
    "Table",
    "Transform",
    "and_",
    "col",
    "cpu_cost_s",
    "cpu_join_time_s",
    "execute",
    "hash_join",
    "lit",
    "make_operator_kernel",
    "make_table_bursts",
    "not_",
    "or_",
    "parse_query",
    "plan_kernels",
    "rows_per_cycle",
]
