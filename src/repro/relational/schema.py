"""Schemas for the columnar relational substrate.

A :class:`Schema` is an ordered mapping of column names to
:class:`ColumnType`.  It knows byte widths — the quantity every
offload-vs-fetch argument is ultimately about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["ColumnType", "Schema"]


class ColumnType(enum.Enum):
    """Supported column storage types."""

    INT64 = "int64"
    FLOAT64 = "float64"
    FLOAT32 = "float32"
    INT32 = "int32"
    BOOL = "bool"

    @property
    def nbytes(self) -> int:
        """Bytes per value."""
        return np.dtype(self.value).itemsize

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype."""
        return np.dtype(self.value)

    @classmethod
    def from_dtype(cls, dtype: np.dtype) -> "ColumnType":
        """Map a numpy dtype to a column type."""
        name = np.dtype(dtype).name
        for member in cls:
            if member.value == name:
                return member
        raise TypeError(f"unsupported column dtype: {dtype}")


@dataclass(frozen=True)
class Schema:
    """An ordered set of typed columns."""

    columns: tuple[tuple[str, ColumnType], ...]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in schema: {names}")

    @classmethod
    def of(cls, **cols: ColumnType) -> "Schema":
        """Build a schema from keyword arguments."""
        return cls(tuple(cols.items()))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.columns)

    def type_of(self, name: str) -> ColumnType:
        """Type of a column; raises ``KeyError`` for unknown names."""
        for col, ctype in self.columns:
            if col == name:
                return ctype
        raise KeyError(f"no column {name!r} in schema {self.names}")

    def __contains__(self, name: str) -> bool:
        return any(col == name for col, _ in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    @property
    def row_nbytes(self) -> int:
        """Bytes of one row across all columns."""
        return sum(ctype.nbytes for _, ctype in self.columns)

    def project(self, names: list[str] | tuple[str, ...]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        return Schema(tuple((n, self.type_of(n)) for n in names))
