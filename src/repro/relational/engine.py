"""The CPU relational engine: numpy data plane + roofline costing.

:func:`execute` runs a :class:`~repro.relational.operators.QueryPlan`
over a :class:`~repro.relational.table.Table` and returns the result
table — this is the functional ground truth every other engine
(Farview's offload pipeline included) is checked against.

:func:`cpu_cost_s` prices the same plan on a
:class:`~repro.baselines.cpu.CpuModel`, which gives the CPU side of the
line-rate comparisons (E2).
"""

from __future__ import annotations

import numpy as np

from ..baselines.cpu import CpuModel
from .operators import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    GroupByAggregate,
    Operator,
    Project,
    QueryPlan,
    Transform,
)
from .table import Table

__all__ = ["cpu_cost_s", "execute"]


def _apply_agg(func: AggFunc, values: np.ndarray) -> float:
    if func is AggFunc.COUNT:
        return float(len(values))
    if len(values) == 0:
        raise ValueError(f"{func.value} over zero rows is undefined")
    match func:
        case AggFunc.SUM:
            return float(values.sum())
        case AggFunc.MIN:
            return float(values.min())
        case AggFunc.MAX:
            return float(values.max())
        case AggFunc.MEAN:
            return float(values.mean())
    raise AssertionError("unreachable")


def _grouped_aggregate(table: Table, key: str,
                       aggs: tuple[AggSpec, ...]) -> Table:
    keys = table.column(key)
    if keys.dtype.kind not in "iu":
        raise TypeError(f"group key {key!r} must be an integer column")
    uniques, inverse = np.unique(keys, return_inverse=True)
    out: dict[str, np.ndarray] = {key: uniques}
    counts = np.bincount(inverse, minlength=len(uniques))
    for agg in aggs:
        values = table.column(agg.column)
        match agg.func:
            case AggFunc.COUNT:
                result = counts.astype(np.float64)
            case AggFunc.SUM:
                result = np.bincount(
                    inverse, weights=values, minlength=len(uniques)
                )
            case AggFunc.MEAN:
                sums = np.bincount(
                    inverse, weights=values, minlength=len(uniques)
                )
                result = sums / counts
            case AggFunc.MIN:
                result = np.full(len(uniques), np.inf)
                np.minimum.at(result, inverse, values)
            case AggFunc.MAX:
                result = np.full(len(uniques), -np.inf)
                np.maximum.at(result, inverse, values)
            case _:
                raise AssertionError("unreachable")
        out[agg.alias] = result
    return Table(out)


def _apply(op: Operator, table: Table) -> Table:
    if isinstance(op, Filter):
        mask = np.asarray(op.predicate.evaluate(table), dtype=bool)
        return table.filter(mask)
    if isinstance(op, Project):
        return table.project(op.columns)
    if isinstance(op, Transform):
        return table  # value-preserving stand-in (cost model only)
    if isinstance(op, Aggregate):
        return Table(
            {
                agg.alias: np.array(
                    [_apply_agg(agg.func, table.column(agg.column))]
                )
                for agg in op.aggs
            }
        )
    if isinstance(op, GroupByAggregate):
        return _grouped_aggregate(table, op.key, op.aggs)
    raise TypeError(f"unknown operator {type(op).__name__}")


def execute(plan: QueryPlan, table: Table) -> Table:
    """Run ``plan`` over ``table``; returns the result table."""
    result = table
    for op in plan.operators:
        result = _apply(op, result)
    return result


def cpu_cost_s(
    plan: QueryPlan,
    table: Table,
    cpu: CpuModel,
    parallel: bool = True,
) -> float:
    """Roofline cost of running ``plan`` over ``table`` on ``cpu``.

    Charges a streaming pass over the touched columns per pipeline
    (vectorised engines fuse filter+project+agg into one pass) plus the
    per-row operation counts of predicates, transforms and aggregates.
    """
    touched = plan.columns_needed(table.column_names)
    scan_bytes = sum(table.column(c).nbytes for c in touched)
    n = table.n_rows
    ops = 0.0
    rows_alive = float(n)
    for op in plan.operators:
        if isinstance(op, Filter):
            ops += op.predicate.op_count() * rows_alive
            mask = np.asarray(op.predicate.evaluate(table), dtype=bool)
            rows_alive = float(mask.sum())
        elif isinstance(op, Transform):
            row_bytes = sum(table.column(c).nbytes for c in touched) / max(n, 1)
            ops += op.ops_per_byte * row_bytes * rows_alive
        elif isinstance(op, Aggregate):
            ops += len(op.aggs) * rows_alive
        elif isinstance(op, GroupByAggregate):
            # Hash/group maintenance: ~4 ops/row plus the aggregates.
            ops += (4 + len(op.aggs)) * rows_alive
    return max(
        cpu.stream_time_s(scan_bytes, parallel),
        cpu.compute_time_s(int(ops), element_bytes=8, parallel=parallel),
    )
