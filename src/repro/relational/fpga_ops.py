"""Relational operators as FPGA stream kernels.

Each logical operator becomes a pipelined kernel processing a stream of
row bursts at line rate: a 512-bit datapath accepts ``64 //
row_bytes`` rows per cycle (at least one), with II=1 — the "process the
stream as it leaves memory, for free" property the tutorial emphasises.

Functionally, burst payloads are :class:`~repro.relational.table.Table`
slices and the kernels reuse the CPU engine's numpy implementations, so
the offloaded pipeline provably computes the same result (tested).

Aggregations are stateful: they consume every burst and emit a single
result burst when the input's ``last`` flag arrives.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..core.clocking import FABRIC_300MHZ, ClockDomain
from ..core.device import ResourceVector
from ..core.kernel import KernelSpec
from ..core.stream import Burst
from .engine import _apply
from .operators import (
    Aggregate,
    Filter,
    GroupByAggregate,
    Operator,
    Project,
    QueryPlan,
    Transform,
)
from .table import Table

__all__ = [
    "OperatorKernel",
    "make_operator_kernel",
    "make_table_bursts",
    "plan_kernels",
    "rows_per_cycle",
]

_DATAPATH_BYTES = 64  # 512-bit AXI stream


def rows_per_cycle(row_nbytes: int, datapath_bytes: int = _DATAPATH_BYTES) -> int:
    """Rows a 512-bit datapath accepts per cycle (>= 1)."""
    if row_nbytes < 1:
        raise ValueError("row size must be >= 1 byte")
    return max(1, datapath_bytes // row_nbytes)


@dataclass
class OperatorKernel:
    """A synthesized operator: HLS spec + functional burst transform.

    ``fn`` maps a burst to a burst or ``None``; stateful operators keep
    their state in the closure.
    """

    spec: KernelSpec
    fn: Callable[[Burst], Burst | None]
    estimated_gain: float = 1.0


def _spec(name: str, op_depth: int, row_nbytes: int, clock: ClockDomain,
          resources: ResourceVector) -> KernelSpec:
    return KernelSpec(
        name=name,
        ii=1,
        depth=op_depth,
        unroll=rows_per_cycle(row_nbytes),
        clock=clock,
        resources=resources,
    )


def _stateless_fn(op: Operator) -> Callable[[Burst], Burst | None]:
    def fn(burst: Burst) -> Burst | None:
        table: Table = burst.payload
        result = _apply(op, table)
        if result.n_rows == 0 and not burst.meta.get("last"):
            return None
        return Burst(payload=result, count=result.n_rows, meta=dict(burst.meta))

    return fn


def _aggregating_fn(op: Aggregate | GroupByAggregate) -> Callable[[Burst], Burst | None]:
    pending: list[Table] = []

    def fn(burst: Burst) -> Burst | None:
        table: Table = burst.payload
        if table.n_rows:
            pending.append(table)
        if not burst.meta.get("last"):
            return None
        if not pending:
            raise ValueError("aggregation over an empty stream")
        merged = Table(
            {
                name: np.concatenate([t.column(name) for t in pending])
                for name in pending[0].column_names
            }
        )
        pending.clear()
        result = _apply(op, merged)
        meta = dict(burst.meta)
        return Burst(payload=result, count=result.n_rows, meta=meta)

    return fn


def make_operator_kernel(
    op: Operator,
    row_nbytes: int,
    clock: ClockDomain = FABRIC_300MHZ,
    estimated_selectivity: float = 1.0,
) -> OperatorKernel:
    """Synthesize one operator into an :class:`OperatorKernel`.

    ``estimated_selectivity`` feeds the analytic dataflow gain for
    filters (the functional path measures the real one).
    """
    if isinstance(op, Filter):
        n_cmp = max(1, op.predicate.op_count())
        return OperatorKernel(
            spec=_spec(
                "filter", 4 + n_cmp, row_nbytes, clock,
                ResourceVector(lut=2_000 * n_cmp, ff=3_000 * n_cmp),
            ),
            fn=_stateless_fn(op),
            estimated_gain=estimated_selectivity,
        )
    if isinstance(op, Project):
        return OperatorKernel(
            spec=_spec(
                "project", 2, row_nbytes, clock,
                ResourceVector(lut=1_500, ff=2_000),
            ),
            fn=_stateless_fn(op),
            estimated_gain=1.0,
        )
    if isinstance(op, Transform):
        depth = 8 + int(4 * op.ops_per_byte)
        return OperatorKernel(
            spec=_spec(
                f"transform-{op.name}", depth, row_nbytes, clock,
                ResourceVector(lut=12_000, ff=18_000, dsp=16),
            ),
            fn=_stateless_fn(op),
            estimated_gain=1.0,
        )
    if isinstance(op, Aggregate):
        return OperatorKernel(
            spec=_spec(
                "aggregate", 8, row_nbytes, clock,
                ResourceVector(lut=4_000, ff=6_000, dsp=8 * len(op.aggs)),
            ),
            fn=_aggregating_fn(op),
            estimated_gain=0.0,
        )
    if isinstance(op, GroupByAggregate):
        return OperatorKernel(
            spec=_spec(
                "groupby", 16, row_nbytes, clock,
                ResourceVector(
                    lut=25_000, ff=35_000, bram_36k=32,
                    dsp=8 * len(op.aggs),
                ),
            ),
            fn=_aggregating_fn(op),
            estimated_gain=0.0,
        )
    raise TypeError(f"unknown operator {type(op).__name__}")


def plan_kernels(
    plan: QueryPlan,
    row_nbytes: int,
    clock: ClockDomain = FABRIC_300MHZ,
    estimated_selectivity: float = 1.0,
) -> list[OperatorKernel]:
    """Synthesize every operator of a plan."""
    return [
        make_operator_kernel(op, row_nbytes, clock, estimated_selectivity)
        for op in plan.operators
    ]


def make_table_bursts(table: Table, burst_rows: int) -> list[Burst]:
    """Slice a table into row bursts with a ``last`` flag on the final one.

    An empty table still yields one empty last burst so that stateful
    aggregation kernels terminate.
    """
    if burst_rows < 1:
        raise ValueError("burst_rows must be >= 1")
    n = table.n_rows
    bounds = list(range(0, n, burst_rows)) or [0]
    bursts = []
    for start in bounds:
        stop = min(start + burst_rows, n)
        slice_table = Table(
            {name: table.column(name)[start:stop] for name in table.column_names}
        )
        bursts.append(
            Burst(
                payload=slice_table,
                count=slice_table.n_rows,
                meta={"last": stop >= n},
            )
        )
    return bursts
