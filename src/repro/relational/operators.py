"""Logical relational operators and query plans.

Operators here are *descriptions*; two engines execute them:

* :mod:`repro.relational.engine` — the CPU engine (numpy data plane +
  roofline costing);
* :mod:`repro.relational.fpga_ops` — stream kernels for the FPGA
  dataflow simulator (the operators Farview pushes into smart memory).

The supported set mirrors what Farview offloads to disaggregated
memory: selection, projection, aggregation, grouped aggregation, and
per-row transforms standing in for compression/encryption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .expressions import Expr

__all__ = [
    "AggFunc",
    "AggSpec",
    "Filter",
    "GroupByAggregate",
    "Aggregate",
    "Operator",
    "Project",
    "QueryPlan",
    "Transform",
]


class AggFunc(enum.Enum):
    """Supported aggregate functions."""

    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    MEAN = "mean"


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``func(column) AS alias``."""

    func: AggFunc
    column: str
    alias: str = ""

    def __post_init__(self) -> None:
        if not self.alias:
            object.__setattr__(
                self, "alias", f"{self.func.value}_{self.column}"
            )


class Operator:
    """Marker base class for plan operators."""


@dataclass(frozen=True)
class Filter(Operator):
    """Keep rows satisfying a boolean predicate."""

    predicate: Expr


@dataclass(frozen=True)
class Project(Operator):
    """Keep only the named columns."""

    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("projection needs at least one column")


@dataclass(frozen=True)
class Aggregate(Operator):
    """Scalar aggregation over the whole input (one output row)."""

    aggs: tuple[AggSpec, ...]

    def __post_init__(self) -> None:
        if not self.aggs:
            raise ValueError("aggregation needs at least one aggregate")


@dataclass(frozen=True)
class GroupByAggregate(Operator):
    """Grouped aggregation by an integer key column."""

    key: str
    aggs: tuple[AggSpec, ...]

    def __post_init__(self) -> None:
        if not self.aggs:
            raise ValueError("aggregation needs at least one aggregate")


@dataclass(frozen=True)
class Transform(Operator):
    """A per-row transform with a compute cost but no data-shape change.

    Stands in for the per-value operators Farview/SAP-HANA-style smart
    storage applies in the datapath (decompression, decryption, type
    decoding).  ``ops_per_byte`` feeds the cost models.
    """

    name: str
    ops_per_byte: float = 1.0

    def __post_init__(self) -> None:
        if self.ops_per_byte < 0:
            raise ValueError("ops_per_byte must be >= 0")


@dataclass(frozen=True)
class QueryPlan:
    """An operator pipeline applied to a scanned table.

    The plan is a straight line: scan -> op1 -> op2 -> ...  (Farview's
    offload pipelines have exactly this shape; the operators execute on
    the data as it streams out of memory.)
    """

    operators: tuple[Operator, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen_agg = False
        for op in self.operators:
            if seen_agg:
                raise ValueError(
                    "no operator may follow an aggregation in a linear plan"
                )
            if isinstance(op, (Aggregate, GroupByAggregate)):
                seen_agg = True

    def then(self, op: Operator) -> "QueryPlan":
        """A new plan with ``op`` appended."""
        return QueryPlan(self.operators + (op,))

    @property
    def has_aggregation(self) -> bool:
        return any(
            isinstance(op, (Aggregate, GroupByAggregate))
            for op in self.operators
        )

    def columns_needed(self, all_columns: tuple[str, ...]) -> tuple[str, ...]:
        """Columns the plan actually touches (for scan pruning).

        Walking backwards: the final projection (or aggregation) fixes
        the output set; predicates add their referenced columns.
        """
        needed: set[str] = set()
        narrowed = False
        for op in reversed(self.operators):
            if isinstance(op, Project) and not narrowed:
                needed |= set(op.columns)
                narrowed = True
            elif isinstance(op, Aggregate) and not narrowed:
                needed |= {a.column for a in op.aggs}
                narrowed = True
            elif isinstance(op, GroupByAggregate) and not narrowed:
                needed |= {a.column for a in op.aggs} | {op.key}
                narrowed = True
            elif isinstance(op, Filter):
                needed |= op.predicate.columns_used()
        if not narrowed:
            return tuple(all_columns)
        return tuple(c for c in all_columns if c in needed)
