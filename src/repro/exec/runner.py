"""Deterministic sweep execution over a process pool.

The runner walks a :class:`SweepSpec`'s ``seeds x grid`` cells in a
fixed order.  Per cell it first consults the
:class:`~repro.exec.cache.ResultCache`; misses are computed — serially
in-process, or fanned out over a ``multiprocessing`` pool — and the
results merged back *in grid order*, so serial, parallel, and cached
runs all produce the identical row list (and therefore identical
assembled tables).

Workers never receive pickled callables: the pool initializer imports
the spec by experiment id and runs ``prepare()`` once per worker, and
each task is just a ``(seed_index, grid_index)`` pair.  The ``fork``
start method is preferred (cheap, inherits the warm import state);
``spawn`` works too since everything workers need is importable.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any

from .cache import ResultCache, cell_key, code_version
from .experiments import ExperimentSpec, build_spec

__all__ = ["SweepResult", "SweepRunner", "SweepSpec"]

# Public alias: the runner consumes specs, the experiments package
# defines them.
SweepSpec = ExperimentSpec

# Per-worker state, populated by _init_worker after fork/spawn.
_WORKER_SPEC: ExperimentSpec | None = None
_WORKER_CTX: Any = None


def _init_worker(experiment: str) -> None:
    global _WORKER_SPEC, _WORKER_CTX
    _WORKER_SPEC = build_spec(experiment)
    _WORKER_CTX = _WORKER_SPEC.prepare()


def _run_cell(task: tuple[int, int]) -> dict:
    seed_index, grid_index = task
    spec = _WORKER_SPEC
    assert spec is not None, "worker used before _init_worker ran"
    seed = spec.seeds[seed_index]
    config = spec.grid[grid_index]
    return spec.cell(_WORKER_CTX, config, seed)


@dataclass
class SweepResult:
    """Outcome of one sweep: ordered rows plus cache accounting."""

    experiment: str
    rows: list[dict]
    hits: int = 0
    computed: int = 0
    tables: list = field(default_factory=list)

    @property
    def cells(self) -> int:
        return len(self.rows)


class SweepRunner:
    """Runs a sweep spec's grid, optionally in parallel, through the cache.

    Parameters
    ----------
    spec:
        The experiment decomposition to execute.
    parallel:
        Worker process count; ``1`` (default) runs in-process.
    cache:
        Result cache, or ``None`` to recompute every cell.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        parallel: int = 1,
        cache: ResultCache | None = None,
    ) -> None:
        if parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {parallel}")
        self.spec = spec
        self.parallel = parallel
        self.cache = cache

    def run(self) -> SweepResult:
        """Execute the full grid and assemble the experiment's tables."""
        spec = self.spec
        version = code_version()
        tasks = [
            (si, gi)
            for si in range(len(spec.seeds))
            for gi in range(len(spec.grid))
        ]

        rows: list[dict | None] = [None] * len(tasks)
        keys: list[str | None] = [None] * len(tasks)
        misses: list[int] = []
        hits = 0
        for i, (si, gi) in enumerate(tasks):
            if self.cache is None:
                misses.append(i)
                continue
            key = cell_key(
                spec.experiment, spec.grid[gi], spec.seeds[si], version,
                context=spec.context_key,
            )
            keys[i] = key
            cached = self.cache.get(key)
            if cached is None:
                misses.append(i)
            else:
                rows[i] = cached
                hits += 1

        if misses:
            computed = self._compute([tasks[i] for i in misses])
            for i, row in zip(misses, computed):
                rows[i] = row
                if self.cache is not None and keys[i] is not None:
                    si, gi = tasks[i]
                    self.cache.put(
                        keys[i],
                        row,
                        experiment=spec.experiment,
                        config=spec.grid[gi],
                        seed=spec.seeds[si],
                    )

        assert all(row is not None for row in rows)
        result = SweepResult(
            experiment=spec.experiment,
            rows=list(rows),
            hits=hits,
            computed=len(misses),
        )
        result.tables = spec.assemble(result.rows)
        return result

    def _compute(self, tasks: list[tuple[int, int]]) -> list[dict]:
        spec = self.spec
        if self.parallel == 1 or len(tasks) == 1:
            ctx = spec.prepare()
            return [
                spec.cell(ctx, spec.grid[gi], spec.seeds[si])
                for si, gi in tasks
            ]
        try:
            mp_ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            mp_ctx = multiprocessing.get_context("spawn")
        n_workers = min(self.parallel, len(tasks))
        with mp_ctx.Pool(
            processes=n_workers,
            initializer=_init_worker,
            initargs=(spec.experiment,),
        ) as pool:
            # map() preserves task order, so parallel == serial row order.
            return pool.map(_run_cell, tasks)
