"""Parallel sweep execution and result caching (``repro.exec``).

The experiment benches are embarrassingly parallel: a seed x config
grid of independent cells (one nprobe, one cluster size, one fault
rate).  This package fans that grid out over a ``multiprocessing``
pool with deterministic result ordering, and memoises completed cells
in a content-addressed on-disk cache keyed by
``(experiment, config, seed, code-version)`` so re-runs only pay for
what changed.

Entry points:

* :class:`SweepRunner` — executes a :class:`SweepSpec` serially or in
  parallel, consulting the :class:`ResultCache` per cell;
* :func:`build_spec` / :data:`SWEEPABLE` — the registry of experiments
  that expose a cell/assemble decomposition (e5, e11, e22);
* ``python -m repro run <exp> --parallel N`` — the CLI wiring.
"""

from .cache import ResultCache, code_version
from .experiments import SWEEPABLE, build_spec
from .runner import SweepResult, SweepRunner, SweepSpec

__all__ = [
    "ResultCache",
    "SWEEPABLE",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "build_spec",
    "code_version",
]
