"""Parallel sweep execution and result caching (``repro.exec``).

The experiment benches are embarrassingly parallel: a seed x config
grid of independent cells (one nprobe, one cluster size, one fault
rate).  This package fans that grid out over a ``multiprocessing``
pool with deterministic result ordering, and memoises completed cells
in a content-addressed on-disk cache keyed by
``(experiment, config, seed, code-version[, context])`` so re-runs
only pay for what changed.

Entry points:

* :class:`SweepRunner` — executes a :class:`SweepSpec` serially or in
  parallel, consulting the :class:`ResultCache` per cell;
* :func:`build_spec` / :func:`experiment_ids` / :data:`SWEEPABLE` —
  the registry of all 23 experiments' prepare/cell/assemble specs
  (``repro.exec.experiments``);
* ``python -m repro run <exp>|all --parallel N`` and
  ``python -m repro list`` — the CLI wiring.
"""

from .cache import ResultCache, cell_key, code_version
from .experiments import (
    ExperimentSpec,
    SWEEPABLE,
    build_spec,
    experiment_ids,
)

# Legacy per-experiment re-exports (PR 3 public surface): bench code
# imported these from repro.exec / repro.exec.experiments by name.
from .experiments import (  # noqa: F401
    e5_assemble,
    e5_cell,
    e5_prepare,
    e11_assemble,
    e11_cell,
    e22_assemble,
    e22_cell,
    e22_rates,
)
from .runner import SweepResult, SweepRunner, SweepSpec

__all__ = [
    "ExperimentSpec",
    "ResultCache",
    "SWEEPABLE",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "build_spec",
    "cell_key",
    "code_version",
    "e5_assemble",
    "e5_cell",
    "e5_prepare",
    "e11_assemble",
    "e11_cell",
    "e22_assemble",
    "e22_cell",
    "e22_rates",
    "experiment_ids",
]
