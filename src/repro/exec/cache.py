"""Content-addressed result cache for sweep cells.

A cell result is memoised under the SHA-256 of its *identity*: the
experiment id, the cell's config dict, its seed, and a hash of the
``repro`` package sources (the code version).  Any edit to the package
invalidates every cached cell, so the cache can never serve results
produced by different model code; tweaking one config only recomputes
the cells that use it.

Entries are one JSON file per key in a flat directory (default
``results/cache/``), written atomically so a crashed run never leaves
a truncated entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["ResultCache", "cell_key", "code_version"]

_CODE_VERSION: str | None = None


def _jsonable(obj: Any) -> Any:
    """Convert numpy scalars/arrays (and containers) to plain JSON types."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "tolist"):  # numpy array or scalar
        return _jsonable(obj.tolist())
    if hasattr(obj, "item") and type(obj).__module__ == "numpy":
        return obj.item()
    return obj


def code_version() -> str:
    """SHA-256 over the ``repro`` package sources (cached per process).

    Hashes every ``.py`` file under the installed package in sorted
    path order, so any source edit — including to this module — yields
    a different version and invalidates prior cache entries.
    """
    global _CODE_VERSION
    if _CODE_VERSION is not None:
        return _CODE_VERSION
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def cell_key(
    experiment: str,
    config: dict,
    seed: int,
    version: str,
    context: dict | None = None,
) -> str:
    """Deterministic cache key for one sweep cell.

    ``context`` is the spec's extra cache identity (e.g. the smoke/full
    dataset scale); it is only folded in when non-empty, so keys minted
    before the field existed stay valid.
    """
    identity: dict[str, Any] = {
        "experiment": experiment,
        "config": _jsonable(config),
        "seed": seed,
        "code_version": version,
    }
    if context:
        identity["context"] = _jsonable(context)
    return hashlib.sha256(
        json.dumps(identity, sort_keys=True,
                   separators=(",", ":")).encode()
    ).hexdigest()


class ResultCache:
    """On-disk memo of completed sweep cells."""

    def __init__(self, root: str | os.PathLike = "results/cache") -> None:
        self.root = Path(root)

    def has(self, key: str) -> bool:
        """True when a readable entry exists for ``key``."""
        return (self.root / f"{key}.json").is_file()

    def get(self, key: str) -> dict | None:
        """The cached payload for ``key``, or ``None``."""
        path = self.root / f"{key}.json"
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return entry.get("payload")

    def put(
        self,
        key: str,
        payload: dict,
        *,
        experiment: str = "",
        config: dict | None = None,
        seed: int = 0,
    ) -> None:
        """Store ``payload`` under ``key`` (atomic rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "experiment": experiment,
            "config": _jsonable(config or {}),
            "seed": seed,
            "code_version": code_version(),
            "payload": _jsonable(payload),
        }
        path = self.root / f"{key}.json"
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed
