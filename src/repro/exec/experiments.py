"""Cell/assemble decompositions of the sweepable experiments.

Each sweepable experiment is factored into three parts the runner can
schedule independently:

* ``prepare()`` — build the (deterministic, seeded) shared context:
  datasets, indexes, clusters.  Runs once per worker process.
* ``cell(ctx, config, seed)`` — one grid point, returning a plain
  JSON-able dict.  Cells are independent, so they parallelise and
  cache freely.
* ``assemble(rows)`` — fold the cell dicts (in grid order) back into
  the experiment's :class:`~repro.bench.ResultTable` list, including
  the bench's shape assertions.

The benchmark files delegate to the same ``cell``/``assemble``
functions, so ``repro run e5 --parallel 4`` produces byte-identical
tables to the pytest path — the decomposition *is* the experiment,
not a parallel re-implementation of it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..bench import ResultTable

__all__ = ["SWEEPABLE", "build_spec"] + [
    "e5_cell", "e5_assemble", "e11_cell", "e11_assemble",
    "e22_cell", "e22_assemble", "e22_rates",
]

# Deployment-scale multiplier for FANNS timing, mirrored from
# benchmarks/conftest.py (see DESIGN.md §1).
FANNS_LIST_SCALE = 2_000

_E5_NPROBES = (1, 2, 4, 8, 16, 32)
_E5_K = 10

_E11_NODES = (2, 4, 8, 16, 32)
_E11_SMALL_FLOATS = 1 << 7
_E11_LARGE_FLOATS = 1 << 20
_E11_CROSSOVER_P = 16
_E11_CROSSOVER_SIZES = (16, 1 << 10, 1 << 14, 1 << 18, 1 << 21)

_PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True)
class ExperimentSpec:
    """A sweepable experiment: its grid and the three phase callables."""

    experiment: str
    grid: tuple[dict, ...]
    seeds: tuple[int, ...]
    prepare: Callable[[], Any]
    cell: Callable[[Any, dict, int], dict]
    assemble: Callable[[list[dict]], list[ResultTable]]


# -- E5: FANNS QPS vs recall ------------------------------------------------


def e5_prepare() -> dict:
    """Dataset + trained index, identical to the bench session fixtures."""
    from ..fanns import build_ivfpq
    from ..workloads import clustered_dataset

    data = clustered_dataset(
        n=20_000, dim=32, n_queries=100, gt_k=10, n_clusters=64,
        cluster_std=0.25, seed=13,
    )
    index = build_ivfpq(data.base, nlist=256, m=16, ksub=256, seed=13)
    return {"data": data, "index": index}


def e5_cell(index, data, nprobe: int, list_scale: int = FANNS_LIST_SCALE) -> dict:
    """One nprobe point: run all three engines, check the SLA triangle."""
    from ..fanns import (
        CpuAnnSearcher,
        FannsAccelerator,
        GpuAnnSearcher,
        recall_at_k,
    )

    accel = FannsAccelerator(index, list_scale=list_scale)
    cpu = CpuAnnSearcher(index, list_scale=list_scale)
    gpu = GpuAnnSearcher(index, list_scale=list_scale)
    f = accel.search(data.queries, _E5_K, nprobe)
    c = cpu.search(data.queries, _E5_K, nprobe)
    g = gpu.search(data.queries, _E5_K, nprobe)
    assert (f.ids == c.ids).all(), "engines must agree exactly"
    assert (f.ids == g.ids).all()
    recall = recall_at_k(f.ids, data.ground_truth)
    return {
        "nprobe": nprobe,
        "recall": float(recall),
        "fpga_qps": float(f.qps),
        "cpu_qps": float(c.qps),
        "gpu_qps": float(g.qps),
        "fpga_lat_us": float(f.query_latency_s * 1e6),
        "cpu_lat_us": float(c.query_latency_s * 1e6),
        "gpu_lat_us": float(g.query_latency_s * 1e6),
        "latency_gain": float(c.query_latency_s / f.query_latency_s),
        "fpga_beats_gpu": bool(f.query_latency_s < g.query_latency_s),
    }


def e5_assemble(rows: list[dict]) -> list[ResultTable]:
    """Rebuild the E5 table (and shape claims) from cell dicts."""
    report = ResultTable(
        "E5: QPS vs recall@10 (FPGA vs CPU vs GPU, modeled 40M vectors)",
        ("nprobe", "recall@10", "FPGA QPS", "CPU QPS", "GPU QPS",
         "FPGA lat us", "CPU lat us", "GPU lat us"),
    )
    recalls, latency_gains = [], []
    for row in rows:
        recalls.append(row["recall"])
        latency_gains.append(row["latency_gain"])
        report.add(
            row["nprobe"], round(row["recall"], 3), row["fpga_qps"],
            row["cpu_qps"], row["gpu_qps"], row["fpga_lat_us"],
            row["cpu_lat_us"], row["gpu_lat_us"],
        )
        # The SLA triangle: FPGA holds the latency edge over both.
        assert row["fpga_beats_gpu"]
    assert recalls == sorted(recalls), "recall monotone in nprobe"
    assert recalls[-1] > 0.85, "high-recall regime reachable"
    assert min(latency_gains) > 5, "FPGA latency advantage holds"
    return [report]


def _e5_spec() -> ExperimentSpec:
    def cell(ctx: dict, config: dict, seed: int) -> dict:
        return e5_cell(ctx["index"], ctx["data"], config["nprobe"])

    return ExperimentSpec(
        experiment="e5",
        grid=tuple({"nprobe": n} for n in _E5_NPROBES),
        seeds=(13,),
        prepare=e5_prepare,
        cell=cell,
        assemble=e5_assemble,
    )


# -- E11: ACCL allreduce scaling -------------------------------------------


def _e11_buffers(p: int, n_floats: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    return [rng.random(n_floats) for _ in range(p)]


def e11_cell(config: dict, seed: int = 0) -> dict:
    """One scaling point (cluster size) or one crossover point (payload)."""
    from ..accl import FpgaCluster

    if config["kind"] == "scaling":
        p = config["p"]
        cluster = FpgaCluster(p)
        small = _e11_buffers(p, _E11_SMALL_FLOATS, seed)
        large = _e11_buffers(p, _E11_LARGE_FLOATS, seed)
        return {
            "kind": "scaling",
            "p": p,
            "tree_small_s": float(
                cluster.allreduce(small, algorithm="tree").time_s
            ),
            "ring_small_s": float(
                cluster.allreduce(small, algorithm="ring").time_s
            ),
            "tree_large_s": float(
                cluster.allreduce(large, algorithm="tree").time_s
            ),
            "ring_large_s": float(
                cluster.allreduce(large, algorithm="ring").time_s
            ),
        }
    p = _E11_CROSSOVER_P
    cluster = FpgaCluster(p)
    buffers = _e11_buffers(p, config["n_floats"], seed)
    ring = cluster.allreduce(buffers, algorithm="ring")
    tree = cluster.allreduce(buffers, algorithm="tree")
    assert np.allclose(ring.buffers[0], tree.buffers[0])
    return {
        "kind": "crossover",
        "n_floats": config["n_floats"],
        "ring_s": float(ring.time_s),
        "tree_s": float(tree.time_s),
        "winner": "ring" if ring.time_s < tree.time_s else "tree",
    }


def e11_assemble(rows: list[dict]) -> list[ResultTable]:
    """Rebuild the E11a/E11b tables (and shape claims) from cell dicts."""
    scaling = [r for r in rows if r["kind"] == "scaling"]
    crossover = [r for r in rows if r["kind"] == "crossover"]
    report_a = ResultTable(
        "E11a: allreduce time vs cluster size (FPGA cluster)",
        ("nodes", "tree small us", "ring small us",
         "tree 8MiB us", "ring 8MiB us"),
    )
    tree_small_series, ring_large_series = [], []
    for row in scaling:
        tree_small_series.append(row["tree_small_s"])
        ring_large_series.append(row["ring_large_s"])
        report_a.add(
            row["p"], row["tree_small_s"] * 1e6, row["ring_small_s"] * 1e6,
            row["tree_large_s"] * 1e6, row["ring_large_s"] * 1e6,
        )
    if scaling:
        # Tree latency grows with log P.
        assert tree_small_series == sorted(tree_small_series)
        # Ring bandwidth time is near-flat: 32 nodes < 2.5x the 2-node time.
        assert ring_large_series[-1] < 2.5 * ring_large_series[0]

    report_b = ResultTable(
        "E11b: ring vs tree crossover (16 nodes)",
        ("floats/node", "ring us", "tree us", "winner"),
    )
    winners = []
    for row in crossover:
        winners.append(row["winner"])
        report_b.add(
            row["n_floats"], row["ring_s"] * 1e6, row["tree_s"] * 1e6,
            row["winner"],
        )
    if crossover:
        assert winners[0] == "tree" and winners[-1] == "ring", \
            "crossover between small and large payloads"
    return [report_a, report_b]


def _e11_spec() -> ExperimentSpec:
    grid = tuple(
        [{"kind": "scaling", "p": p} for p in _E11_NODES]
        + [{"kind": "crossover", "n_floats": n} for n in _E11_CROSSOVER_SIZES]
    )

    def cell(ctx: Any, config: dict, seed: int) -> dict:
        return e11_cell(config, seed)

    return ExperimentSpec(
        experiment="e11",
        grid=grid,
        seeds=(0,),
        prepare=lambda: None,
        cell=cell,
        assemble=e11_assemble,
    )


# -- E22: fault tolerance ---------------------------------------------------

_E22_SEED = 22
_E22_N_CLIENTS = 4
_E22_REQUESTS_PER_CLIENT = 30
_E22_RESULT_BYTES = 64 * 1024
_E22_SCAN_PS = 8_000_000
_E22_N_NODES = 8
_E22_N_ROUNDS = 10
_E22_BUFFER_ELEMS = 64 * 1024


def e22_rates() -> tuple[float, ...]:
    """The fault-rate ladder (``REPRO_FAULT_RATE`` overrides)."""
    override = os.environ.get("REPRO_FAULT_RATE")
    if override:
        return (0.0, float(override))
    return (0.0, 0.001, 0.01)


def _percentiles_us(latencies_ps: list[int]) -> tuple[float, float]:
    arr = np.array(latencies_ps, dtype=np.float64) / 1e6
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def _simulate_farview(rate: float) -> dict:
    """Event-driven: clients retrying scans over one faulty egress."""
    from ..core import Simulator
    from ..faults import FaultPlan, FaultyLink, RetryPolicy, call_with_retries
    from ..network.link import ethernet_100g

    policy = RetryPolicy(
        max_attempts=4,
        timeout_ps=60_000_000,
        backoff_base_ps=2_000_000,
        jitter=0.2,
    )
    sim = Simulator()
    plan = FaultPlan(
        seed=_E22_SEED,
        drop_rate=rate,
        spike_rate=rate,
        spike_ps=(2_000_000, 20_000_000),
    )
    link = FaultyLink(
        sim, ethernet_100g(), plan, name="farview.egress", mode="silent"
    )
    outcomes = []

    def attempt():
        yield sim.timeout(_E22_SCAN_PS)
        nbytes = yield link.transfer(_E22_RESULT_BYTES)
        return nbytes

    def client(cid: int):
        rng = plan.stream(f"client{cid}.backoff")
        for _ in range(_E22_REQUESTS_PER_CLIENT):
            out = yield from call_with_retries(
                sim, attempt, policy, rng, site=f"client{cid}"
            )
            outcomes.append(out)

    for cid in range(_E22_N_CLIENTS):
        sim.spawn(client(cid), name=f"client{cid}")
    sim.run()

    ok = [o for o in outcomes if o.ok]
    p50, p99 = _percentiles_us([o.latency_ps for o in outcomes])
    wall_s = sim.now / _PS_PER_S
    goodput = len(ok) * _E22_RESULT_BYTES / wall_s / 1e6 if wall_s else 0.0
    return {
        "p50_us": p50,
        "p99_us": p99,
        "goodput": f"{goodput:8.1f} MB/s",
        "retries": sum(o.retries for o in outcomes),
        "gave_up": sum(1 for o in outcomes if not o.ok),
        "n": len(outcomes),
    }


def _simulate_allreduce(rate: float) -> dict:
    """Analytic: repeated ring allreduces, with a crash at the 1% rate."""
    from ..accl import FpgaCluster, allreduce_with_faults
    from ..faults import FaultPlan, NodeOutage

    outages = ()
    if rate >= 0.01:
        # Node 3 dies partway through the run and stays down.
        outages = (NodeOutage(node=3, down_at_ps=400_000_000),)
    plan = FaultPlan(seed=_E22_SEED, drop_rate=rate, outages=outages)
    cluster = FpgaCluster(_E22_N_NODES)
    buffers = [
        np.full(_E22_BUFFER_ELEMS, float(i + 1), dtype=np.float64)
        for i in range(_E22_N_NODES)
    ]
    round_ps: list[int] = []
    retries = 0
    reroutes = 0
    reduced_bytes = 0
    t_ps = 0
    for _ in range(_E22_N_ROUNDS):
        result = allreduce_with_faults(cluster, buffers, plan, start_ps=t_ps)
        expected = sum(
            float(i + 1) for i in range(_E22_N_NODES) if i in result.survivors
        )
        assert np.allclose(result.outcome.buffers[0], expected), (
            "allreduce result must be the survivors' sum"
        )
        step_ps = int(result.time_s * _PS_PER_S)
        round_ps.append(step_ps)
        t_ps += step_ps
        retries += result.retries
        reroutes += int(result.rerouted)
        reduced_bytes += len(result.survivors) * buffers[0].nbytes
    p50, p99 = _percentiles_us(round_ps)
    wall_s = t_ps / _PS_PER_S
    goodput = reduced_bytes / wall_s / 1e9 if wall_s else 0.0
    return {
        "p50_us": p50,
        "p99_us": p99,
        "goodput": f"{goodput:8.2f} GB/s",
        "retries": retries,
        "gave_up": 0,
        "reroutes": reroutes,
    }


def e22_cell(config: dict, seed: int = _E22_SEED) -> dict:
    """One (workload, fault-rate) point."""
    rate = config["rate"]
    if config["workload"] == "farview":
        row = _simulate_farview(rate)
    else:
        row = _simulate_allreduce(rate)
    row["workload"] = config["workload"]
    row["rate"] = rate
    return row


def e22_assemble(rows: list[dict]) -> list[ResultTable]:
    """Rebuild the E22 table (and shape claims) from cell dicts."""
    report = ResultTable(
        "E22: tail latency and goodput under injected faults",
        ("workload", "fault %", "p50 us", "p99 us", "goodput",
         "retries", "gave up"),
    )
    farview = {r["rate"]: r for r in rows if r["workload"] == "farview"}
    accl = {r["rate"]: r for r in rows if r["workload"] == "accl"}
    rates = sorted(farview)
    for rate in rates:
        row = farview[rate]
        report.add(
            "farview scans", f"{100 * rate:g}", round(row["p50_us"], 2),
            round(row["p99_us"], 2), row["goodput"], row["retries"],
            row["gave_up"],
        )
    for rate in rates:
        row = accl[rate]
        report.add(
            "accl allreduce", f"{100 * rate:g}", round(row["p50_us"], 2),
            round(row["p99_us"], 2), row["goodput"], row["retries"],
            row["gave_up"],
        )

    clean_fv, clean_ar = farview[rates[0]], accl[rates[0]]
    assert clean_fv["retries"] == 0 and clean_fv["gave_up"] == 0, (
        "the 0% row must be fault-free"
    )
    assert clean_ar["retries"] == 0 and clean_ar["reroutes"] == 0
    worst = max(rates)
    if worst >= 0.01:
        assert farview[worst]["retries"] > 0, (
            "the worst fault rate must actually trigger retries"
        )
        assert accl[worst]["reroutes"] > 0, (
            "the scheduled crash must force a ring->tree reroute"
        )
    for row in list(farview.values()) + list(accl.values()):
        assert row["p99_us"] >= row["p50_us"]
    report.note(
        "farview: 4 clients x 30 scans, silent drops, 60 us attempt "
        "timeout, <=4 attempts; accl: 10 ring allreduces on 8 nodes, "
        "crash at 0.4 ms for the 1% row (ring degrades to survivor tree)"
    )
    return [report]


def _e22_spec() -> ExperimentSpec:
    rates = e22_rates()
    grid = tuple(
        [{"workload": "farview", "rate": r} for r in rates]
        + [{"workload": "accl", "rate": r} for r in rates]
    )

    def cell(ctx: Any, config: dict, seed: int) -> dict:
        return e22_cell(config, seed)

    return ExperimentSpec(
        experiment="e22",
        grid=grid,
        seeds=(_E22_SEED,),
        prepare=lambda: None,
        cell=cell,
        assemble=e22_assemble,
    )


# -- registry ---------------------------------------------------------------

_FACTORIES: dict[str, Callable[[], ExperimentSpec]] = {
    "e5": _e5_spec,
    "e11": _e11_spec,
    "e22": _e22_spec,
}

#: Experiment ids that can run through the sweep runner.
SWEEPABLE: tuple[str, ...] = tuple(_FACTORIES)


def build_spec(experiment: str) -> ExperimentSpec:
    """The :class:`ExperimentSpec` for a sweepable experiment id.

    Built fresh per call so environment knobs (``REPRO_FAULT_RATE``)
    are honoured at invocation time, like the pytest path.
    """
    try:
        factory = _FACTORIES[experiment.lower()]
    except KeyError:
        raise KeyError(
            f"experiment {experiment!r} has no sweep decomposition "
            f"(sweepable: {', '.join(SWEEPABLE)})"
        ) from None
    return factory()
