"""Farview experiments (Use Case I): e3 (offload vs fetch), e4
(multi-operator pipelines), e19 (multi-tenant event simulation)."""

from __future__ import annotations

from typing import Any

from ...bench import ResultTable
from .base import ExperimentSpec, register

# -- E3: offload vs fetch-all (Figure 2) ------------------------------------

_E3_N_ROWS = 2_000_000
_E3_KEY_MAX = 1_000_000
_E3_AGG_SELECTIVITIES = (0.001, 0.01, 0.1, 0.5, 1.0)
_E3_PROJ_SELECTIVITIES = (0.01, 0.25, 0.5, 1.0)


def e3_prepare() -> dict:
    from ...farview import FarviewClient, FarviewServer
    from ...relational import Table
    from ...workloads import uniform_table

    server = FarviewServer()
    server.store(
        "t",
        Table(uniform_table(_E3_N_ROWS, n_payload_cols=4,
                            key_max=_E3_KEY_MAX)),
    )
    return {"client": FarviewClient(server)}


def e3_cell(ctx: dict, config: dict, seed: int) -> dict:
    from ...relational import (
        AggFunc,
        AggSpec,
        Aggregate,
        Filter,
        Project,
        QueryPlan,
        col,
    )

    client = ctx["client"]
    selectivity = config["selectivity"]
    predicate = Filter(col("key") < int(selectivity * _E3_KEY_MAX))
    if config["part"] == "agg":
        plan = QueryPlan((
            predicate, Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
        ))
    else:
        plan = QueryPlan((predicate, Project(("key", "val0"))))
    off = client.query_offload(plan, "t")
    fetch = client.query_fetch(plan, "t")
    if config["part"] == "agg":
        assert off.result.equals(fetch.result)
    return {
        "part": config["part"],
        "selectivity": selectivity,
        "offload_ms": off.latency_s * 1e3,
        "fetch_ms": fetch.latency_s * 1e3,
        "speedup": fetch.latency_s / off.latency_s,
        "offload_bytes": off.bytes_over_network,
        "fetch_bytes": fetch.bytes_over_network,
    }


def e3_assemble(rows: list[dict]) -> list[ResultTable]:
    tables: list[ResultTable] = []
    agg = [r for r in rows if r["part"] == "agg"]
    proj = [r for r in rows if r["part"] == "proj"]
    if agg:
        report = ResultTable(
            "E3a: offload vs fetch, SELECT sum(val0) WHERE key < t",
            ("selectivity", "offload ms", "fetch ms", "speedup",
             "offload B", "fetch B"),
        )
        for row in agg:
            report.add(
                row["selectivity"], row["offload_ms"], row["fetch_ms"],
                row["speedup"], row["offload_bytes"], row["fetch_bytes"],
            )
        assert all(r["speedup"] > 1.0 for r in agg), \
            "offloaded agg always wins"
        tables.append(report)
    if proj:
        report = ResultTable(
            "E3b: crossover, SELECT key, val0 WHERE key < t",
            ("selectivity", "offload ms", "fetch ms", "speedup"),
        )
        for row in proj:
            report.add(
                row["selectivity"], row["offload_ms"], row["fetch_ms"],
                row["speedup"],
            )
        speedups = [r["speedup"] for r in proj]
        assert speedups[0] > speedups[-1], \
            "advantage shrinks with selectivity"
        assert abs(speedups[-1] - 1.0) <= 0.15, "crossover at 1.0"
        tables.append(report)
    return tables


@register("e3")
def _e3_spec() -> ExperimentSpec:
    grid = tuple(
        [{"part": "agg", "selectivity": s} for s in _E3_AGG_SELECTIVITIES]
        + [{"part": "proj", "selectivity": s}
           for s in _E3_PROJ_SELECTIVITIES]
    )
    return ExperimentSpec(
        experiment="e3",
        title="Farview offload vs fetch (Fig 2)",
        bench="bench_e3_farview_offload.py",
        grid=grid,
        seeds=(0,),
        prepare=e3_prepare,
        cell=e3_cell,
        assemble=e3_assemble,
        entries=(("_run_aggregate_sweep", ()),
                 ("_run_projection_crossover", ())),
    )


# -- E4: multi-operator offload pipelines -----------------------------------

_E4_N_ROWS = 1_000_000
_E4_PIPELINES = (
    "filter",
    "filter+project",
    "decrypt+filter+agg",
    "decrypt+filter+groupby",
)


def _e4_plan(name: str):
    from ...relational import (
        AggFunc,
        AggSpec,
        Aggregate,
        Filter,
        GroupByAggregate,
        Project,
        QueryPlan,
        Transform,
        col,
    )

    predicate = Filter(col("value") > 0.5)
    if name == "filter":
        return QueryPlan((predicate,))
    if name == "filter+project":
        return QueryPlan((predicate, Project(("group",))))
    if name == "decrypt+filter+agg":
        return QueryPlan((
            Transform("decrypt", ops_per_byte=2.0),
            predicate,
            Aggregate((AggSpec(AggFunc.SUM, "value"),)),
        ))
    return QueryPlan((
        Transform("decrypt", ops_per_byte=2.0),
        predicate,
        GroupByAggregate("group", (
            AggSpec(AggFunc.SUM, "value"),
            AggSpec(AggFunc.COUNT, "value", alias="n"),
        )),
    ))


def e4_prepare() -> dict:
    from ...farview import FarviewClient, FarviewServer
    from ...relational import Table
    from ...workloads import grouped_table

    server = FarviewServer()
    data = Table(grouped_table(_E4_N_ROWS, n_groups=256, seed=4))
    server.store("t", data)
    return {"server": server, "data": data,
            "client": FarviewClient(server)}


def e4_cell(ctx: dict, config: dict, seed: int) -> dict:
    from ...relational import execute

    name = config["pipeline"]
    plan = _e4_plan(name)
    outcome = ctx["client"].query_offload(plan, "t")
    assert outcome.result.equals(execute(plan, ctx["data"])), name
    resources = ctx["server"].pipeline_resources(plan, "t")
    execution = ctx["server"].execute(plan, "t")
    return {
        "pipeline": name,
        "ops": len(plan.operators),
        "latency_ms": outcome.latency_s * 1e3,
        "lut": resources.lut,
        "bottleneck": execution.report.bottleneck,
    }


def e4_assemble(rows: list[dict]) -> list[ResultTable]:
    report = ResultTable(
        "E4: offload pipelines of growing depth (1M-row table)",
        ("pipeline", "ops", "latency ms", "node LUTs", "bottleneck"),
    )
    latencies = []
    for row in rows:
        latencies.append(row["latency_ms"])
        report.add(
            row["pipeline"], row["ops"], row["latency_ms"], row["lut"],
            row["bottleneck"],
        )
    # Depth must not collapse throughput: the deepest pipeline is within
    # 2x of the shallowest (streaming, not serial re-scans).
    assert max(latencies) < 2.0 * min(latencies)
    report.note("all results verified against the CPU engine")
    return [report]


@register("e4")
def _e4_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e4",
        title="Farview multi-operator pipelines",
        bench="bench_e4_farview_pipelines.py",
        grid=tuple({"pipeline": name} for name in _E4_PIPELINES),
        seeds=(4,),
        prepare=e4_prepare,
        cell=e4_cell,
        assemble=e4_assemble,
        entries=(("_run_pipelines", ()),),
    )


# -- E19: multi-tenant smart memory (event-driven) --------------------------

_E19_CLIENTS = (1, 4, 16)


def e19_prepare() -> dict:
    from ...farview import FarviewServer
    from ...relational import (
        AggFunc,
        AggSpec,
        Aggregate,
        Filter,
        QueryPlan,
        Table,
        col,
    )
    from ...workloads import uniform_table

    server = FarviewServer()
    server.store("t", Table(uniform_table(500_000, n_payload_cols=2)))
    plan = QueryPlan((
        Filter(col("key") < 10_000),
        Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
    ))
    return {"server": server, "plan": plan}


def e19_cell(ctx: dict, config: dict, seed: int) -> dict:
    from ...farview import simulate_clients

    if config["part"] == "load":
        n_clients = config["clients"]
        rows = {}
        for mode in ("offload", "fetch"):
            out = simulate_clients(ctx["server"], ctx["plan"], "t",
                                   n_clients, mode=mode)
            rows[mode] = {
                "qps": out.aggregate_qps,
                "lat_ms": out.mean_latency_s * 1e3,
                "mem_busy": round(out.memory_busy_fraction, 2),
                "net_busy": round(out.network_busy_fraction, 2),
            }
        return {
            "part": "load",
            "clients": n_clients,
            "ratio": rows["offload"]["qps"] / rows["fetch"]["qps"],
            **{f"{mode}_{k}": v
               for mode, vals in rows.items() for k, v in vals.items()},
        }

    # Busy/stall breakdown of the most contended point: a profiled rerun
    # of the 16-client offload case puts the shared DRAM and egress
    # ports on trace tracks.
    from ...obs import Profiler

    prof = Profiler()
    simulate_clients(ctx["server"], ctx["plan"], "t", 16, mode="offload",
                     tracer=prof.tracer)
    profile = prof.report()
    snapshot = {
        key: value
        for key, value in prof.tracer.registry.snapshot().items()
        if key.startswith(("memory.", "sim.events"))
    }
    dram = profile.component("memory:dram-agg")
    assert dram.busy_fraction > 0.5, "offload at 16 clients is DRAM-bound"
    return {"part": "profile", "snapshot": snapshot}


def e19_assemble(rows: list[dict]) -> list[ResultTable]:
    load = [r for r in rows if r["part"] == "load"]
    profile = [r for r in rows if r["part"] == "profile"]
    report = ResultTable(
        "E19: tenants on one smart-memory node (event simulation)",
        ("clients", "mode", "agg QPS", "mean lat ms",
         "mem busy", "net busy"),
    )
    for row in load:
        for mode in ("offload", "fetch"):
            report.add(
                row["clients"], mode, row[f"{mode}_qps"],
                row[f"{mode}_lat_ms"], row[f"{mode}_mem_busy"],
                row[f"{mode}_net_busy"],
            )
    if load:
        assert min(r["ratio"] for r in load) > 3, \
            "offload tenants aggregate much more QPS"
    report.note("offload is DRAM-scan bound; fetch saturates the 100G wire")
    if profile:
        report.add_metrics(profile[0]["snapshot"],
                           title="obs metrics (16-client offload)")
    return [report]


@register("e19")
def _e19_spec() -> ExperimentSpec:
    grid = tuple(
        [{"part": "load", "clients": n} for n in _E19_CLIENTS]
        + [{"part": "profile"}]
    )
    return ExperimentSpec(
        experiment="e19",
        title="multi-tenant smart memory (event-driven)",
        bench="bench_e19_multitenant.py",
        grid=grid,
        seeds=(0,),
        prepare=e19_prepare,
        cell=e19_cell,
        assemble=e19_assemble,
        entries=(("_run_multitenant", ()),),
    )
