"""Reliability/performance experiments: e22 (fault tolerance), e23
(simulator performance — benchmarks the reproduction machinery)."""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from ...bench import ResultTable
from .base import ExperimentSpec, register

_PS_PER_S = 1_000_000_000_000

# -- E22: fault tolerance ---------------------------------------------------

_E22_SEED = 22
_E22_N_CLIENTS = 4
_E22_REQUESTS_PER_CLIENT = 30
_E22_RESULT_BYTES = 64 * 1024
_E22_SCAN_PS = 8_000_000
_E22_N_NODES = 8
_E22_N_ROUNDS = 10
_E22_BUFFER_ELEMS = 64 * 1024


def e22_rates() -> tuple[float, ...]:
    """The fault-rate ladder (``REPRO_FAULT_RATE`` overrides)."""
    override = os.environ.get("REPRO_FAULT_RATE")
    if override:
        return (0.0, float(override))
    return (0.0, 0.001, 0.01)


def _percentiles_us(latencies_ps: list[int]) -> tuple[float, float]:
    arr = np.array(latencies_ps, dtype=np.float64) / 1e6
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def _simulate_farview(rate: float) -> dict:
    """Event-driven: clients retrying scans over one faulty egress."""
    from ...core import Simulator
    from ...faults import FaultPlan, FaultyLink, RetryPolicy, call_with_retries
    from ...network.link import ethernet_100g

    policy = RetryPolicy(
        max_attempts=4,
        timeout_ps=60_000_000,
        backoff_base_ps=2_000_000,
        jitter=0.2,
    )
    sim = Simulator()
    plan = FaultPlan(
        seed=_E22_SEED,
        drop_rate=rate,
        spike_rate=rate,
        spike_ps=(2_000_000, 20_000_000),
    )
    link = FaultyLink(
        sim, ethernet_100g(), plan, name="farview.egress", mode="silent"
    )
    outcomes = []

    def attempt():
        yield sim.timeout(_E22_SCAN_PS)
        nbytes = yield link.transfer(_E22_RESULT_BYTES)
        return nbytes

    def client(cid: int):
        rng = plan.stream(f"client{cid}.backoff")
        for _ in range(_E22_REQUESTS_PER_CLIENT):
            out = yield from call_with_retries(
                sim, attempt, policy, rng, site=f"client{cid}"
            )
            outcomes.append(out)

    for cid in range(_E22_N_CLIENTS):
        sim.spawn(client(cid), name=f"client{cid}")
    sim.run()

    ok = [o for o in outcomes if o.ok]
    p50, p99 = _percentiles_us([o.latency_ps for o in outcomes])
    wall_s = sim.now / _PS_PER_S
    goodput = len(ok) * _E22_RESULT_BYTES / wall_s / 1e6 if wall_s else 0.0
    return {
        "p50_us": p50,
        "p99_us": p99,
        "goodput": f"{goodput:8.1f} MB/s",
        "retries": sum(o.retries for o in outcomes),
        "gave_up": sum(1 for o in outcomes if not o.ok),
        "n": len(outcomes),
    }


def _simulate_allreduce(rate: float) -> dict:
    """Analytic: repeated ring allreduces, with a crash at the 1% rate."""
    from ...accl import FpgaCluster, allreduce_with_faults
    from ...faults import FaultPlan, NodeOutage

    outages = ()
    if rate >= 0.01:
        # Node 3 dies partway through the run and stays down.
        outages = (NodeOutage(node=3, down_at_ps=400_000_000),)
    plan = FaultPlan(seed=_E22_SEED, drop_rate=rate, outages=outages)
    cluster = FpgaCluster(_E22_N_NODES)
    buffers = [
        np.full(_E22_BUFFER_ELEMS, float(i + 1), dtype=np.float64)
        for i in range(_E22_N_NODES)
    ]
    round_ps: list[int] = []
    retries = 0
    reroutes = 0
    reduced_bytes = 0
    t_ps = 0
    for _ in range(_E22_N_ROUNDS):
        result = allreduce_with_faults(cluster, buffers, plan, start_ps=t_ps)
        expected = sum(
            float(i + 1) for i in range(_E22_N_NODES) if i in result.survivors
        )
        assert np.allclose(result.outcome.buffers[0], expected), (
            "allreduce result must be the survivors' sum"
        )
        step_ps = int(result.time_s * _PS_PER_S)
        round_ps.append(step_ps)
        t_ps += step_ps
        retries += result.retries
        reroutes += int(result.rerouted)
        reduced_bytes += len(result.survivors) * buffers[0].nbytes
    p50, p99 = _percentiles_us(round_ps)
    wall_s = t_ps / _PS_PER_S
    goodput = reduced_bytes / wall_s / 1e9 if wall_s else 0.0
    return {
        "p50_us": p50,
        "p99_us": p99,
        "goodput": f"{goodput:8.2f} GB/s",
        "retries": retries,
        "gave_up": 0,
        "reroutes": reroutes,
    }


def e22_cell(config: dict, seed: int = _E22_SEED) -> dict:
    """One (workload, fault-rate) point."""
    rate = config["rate"]
    if config["workload"] == "farview":
        row = _simulate_farview(rate)
    else:
        row = _simulate_allreduce(rate)
    row["workload"] = config["workload"]
    row["rate"] = rate
    return row


def e22_assemble(rows: list[dict]) -> list[ResultTable]:
    """Rebuild the E22 table (and shape claims) from cell dicts."""
    report = ResultTable(
        "E22: tail latency and goodput under injected faults",
        ("workload", "fault %", "p50 us", "p99 us", "goodput",
         "retries", "gave up"),
    )
    farview = {r["rate"]: r for r in rows if r["workload"] == "farview"}
    accl = {r["rate"]: r for r in rows if r["workload"] == "accl"}
    rates = sorted(farview)
    for rate in rates:
        row = farview[rate]
        report.add(
            "farview scans", f"{100 * rate:g}", round(row["p50_us"], 2),
            round(row["p99_us"], 2), row["goodput"], row["retries"],
            row["gave_up"],
        )
    for rate in rates:
        row = accl[rate]
        report.add(
            "accl allreduce", f"{100 * rate:g}", round(row["p50_us"], 2),
            round(row["p99_us"], 2), row["goodput"], row["retries"],
            row["gave_up"],
        )

    clean_fv, clean_ar = farview[rates[0]], accl[rates[0]]
    assert clean_fv["retries"] == 0 and clean_fv["gave_up"] == 0, (
        "the 0% row must be fault-free"
    )
    assert clean_ar["retries"] == 0 and clean_ar["reroutes"] == 0
    worst = max(rates)
    if worst >= 0.01:
        assert farview[worst]["retries"] > 0, (
            "the worst fault rate must actually trigger retries"
        )
        assert accl[worst]["reroutes"] > 0, (
            "the scheduled crash must force a ring->tree reroute"
        )
    for row in list(farview.values()) + list(accl.values()):
        assert row["p99_us"] >= row["p50_us"]
    report.note(
        "farview: 4 clients x 30 scans, silent drops, 60 us attempt "
        "timeout, <=4 attempts; accl: 10 ring allreduces on 8 nodes, "
        "crash at 0.4 ms for the 1% row (ring degrades to survivor tree)"
    )
    return [report]


@register("e22")
def _e22_spec() -> ExperimentSpec:
    rates = e22_rates()
    grid = tuple(
        [{"workload": "farview", "rate": r} for r in rates]
        + [{"workload": "accl", "rate": r} for r in rates]
    )

    def cell(ctx: Any, config: dict, seed: int) -> dict:
        return e22_cell(config, seed)

    return ExperimentSpec(
        experiment="e22",
        title="fault tolerance: tail latency under injected faults",
        bench="bench_e22_fault_tolerance.py",
        grid=grid,
        seeds=(_E22_SEED,),
        prepare=lambda: None,
        cell=cell,
        assemble=e22_assemble,
        # The rate ladder is part of the grid, so REPRO_FAULT_RATE runs
        # key separately from the default ladder.
        entries=(("_run_fault_tolerance", ()),),
    )


# -- E23: simulator performance ---------------------------------------------

_E23_PIPE_KERNELS = 8
_E23_SWEEP_WORKERS = 4

# Seed-engine throughput on this workload shape, measured before the
# hot-path/fast-forward work landed ("before" for the JSON's speedup
# block; the committed "after" numbers live next to it).
E23_SEED_BASELINE = {
    "timeout_storm_events_per_sec": 348_622,
    "pipeline_item_stages_per_sec": 69_593,
    "pipeline_done_at_ps": 66_763_323,
}


def e23_smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE")
                or os.environ.get("REPRO_SMOKE"))


def _e23_timeout_storm(procs: int, timeouts: int) -> dict:
    """Events/sec through the heap with nothing but pooled timeouts."""
    import time

    from ...core import Simulator

    sim = Simulator()

    def sleeper(pid: int):
        # Vary the delay so heap order actually churns.
        step = 100 + (pid % 7) * 13
        for _ in range(timeouts):
            yield sim.delay(step)

    for pid in range(procs):
        sim.spawn(sleeper(pid), name=f"sleeper{pid}")
    events = procs * timeouts
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
    }


def _e23_build_pipeline(sim, n_items: int):
    from ...core import ItemKernel, KernelSpec, Sink, Source, Stream

    streams = [
        Stream(sim, depth=4, name=f"s{i}")
        for i in range(_E23_PIPE_KERNELS + 1)
    ]
    Source(sim, streams[0], range(n_items))
    for i in range(_E23_PIPE_KERNELS):
        ItemKernel(
            sim,
            KernelSpec(name=f"k{i}", ii=1, depth=4),
            lambda x: x,
            streams[i],
            streams[i + 1],
        )
    return Sink(sim, streams[-1])


def _e23_deep_pipeline(n_items: int) -> dict:
    """Item-stages/sec for the same pipeline, engine vs fast-forward."""
    import time

    from ...core import Simulator
    from ...core.fastpath import set_fast_forward

    item_stages = n_items * _E23_PIPE_KERNELS
    modes = {}
    for mode, enabled in (("engine", False), ("fastpath", True)):
        set_fast_forward(enabled)
        try:
            sim = Simulator()
            sink = _e23_build_pipeline(sim, n_items)
            t0 = time.perf_counter()
            sim.run()
            wall = time.perf_counter() - t0
        finally:
            set_fast_forward(None)
        assert sink.items == n_items
        modes[mode] = {
            "wall_s": wall,
            "item_stages_per_sec": item_stages / wall,
            "done_at_ps": sink.done_at_ps,
        }
    assert modes["engine"]["done_at_ps"] == modes["fastpath"]["done_at_ps"], (
        "fast-forward must preserve the exact completion time"
    )
    return {"item_stages": item_stages, **modes}


def _e23_sweep_runner() -> dict:
    """e22 grid: serial vs parallel wall clock, identical rows."""
    import time

    from ..runner import SweepRunner
    from .base import build_spec

    t0 = time.perf_counter()
    serial = SweepRunner(build_spec("e22")).run()
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = SweepRunner(build_spec("e22"),
                      parallel=_E23_SWEEP_WORKERS).run()
    parallel_s = time.perf_counter() - t0
    assert par.rows == serial.rows, "parallel sweep must match serial"
    return {
        "experiment": "e22",
        "cells": serial.cells,
        "workers": _E23_SWEEP_WORKERS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "rows_match": True,
    }


def _e23_cached_rerun(exp_id: str) -> dict:
    """Cold compute vs warm cached re-run for one experiment."""
    import tempfile
    import time

    from ..cache import ResultCache
    from ..runner import SweepRunner
    from .base import build_spec

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        t0 = time.perf_counter()
        cold = SweepRunner(build_spec(exp_id), cache=cache).run()
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = SweepRunner(build_spec(exp_id), cache=cache).run()
        warm_s = time.perf_counter() - t0
    assert cold.rows == warm.rows
    assert warm.hits == warm.cells and warm.computed == 0
    return {
        "cold_s": cold_s,
        "cached_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def e23_cell(ctx: Any, config: dict, seed: int) -> dict:
    storm = _e23_timeout_storm(config["storm_procs"],
                               config["storm_timeouts"])
    pipe = _e23_deep_pipeline(config["pipe_items"])
    sweep = _e23_sweep_runner()
    e2e = {
        "e11": _e23_cached_rerun("e11"),
        "e22": _e23_cached_rerun("e22"),
    }
    return {"storm": storm, "pipe": pipe, "sweep": sweep, "e2e": e2e}


def e23_assemble(rows: list[dict]) -> list[ResultTable]:
    row = rows[0]
    storm, pipe, sweep, e2e = (row["storm"], row["pipe"], row["sweep"],
                               row["e2e"])
    report = ResultTable(
        "E23: simulator performance (events/sec and sweep wall clock)",
        ("workload", "metric", "value"),
    )
    report.add("timeout storm", "events/sec",
               round(storm["events_per_sec"]))
    report.add("deep pipeline (engine)", "item-stages/sec",
               round(pipe["engine"]["item_stages_per_sec"]))
    report.add("deep pipeline (fastpath)", "item-stages/sec",
               round(pipe["fastpath"]["item_stages_per_sec"]))
    report.add("e22 sweep serial", "seconds",
               round(sweep["serial_s"], 3))
    report.add(f"e22 sweep x{sweep['workers']}", "seconds",
               round(sweep["parallel_s"], 3))
    report.add("e11 end-to-end cached", "speedup",
               round(e2e["e11"]["speedup"], 1))
    report.add("e22 end-to-end cached", "speedup",
               round(e2e["e22"]["speedup"], 1))
    report.note(
        "fastpath and engine agree on done_at_ps="
        f"{pipe['engine']['done_at_ps']}; sweep rows byte-identical "
        "serial vs parallel"
    )
    return [report]


@register("e23")
def _e23_spec() -> ExperimentSpec:
    smoke = e23_smoke()
    config = {
        "storm_procs": 200 if smoke else 1_000,
        "storm_timeouts": 50 if smoke else 400,
        "pipe_items": 2_000 if smoke else 20_000,
    }
    return ExperimentSpec(
        experiment="e23",
        title="simulator performance: engine, fast-forward, sweeps",
        bench="bench_e23_sim_perf.py",
        grid=(config,),
        seeds=(23,),
        prepare=lambda: None,
        cell=e23_cell,
        assemble=e23_assemble,
        entries=(("_run_smoke", ()),),
        context_key={"mode": "smoke" if smoke else "full"},
        deterministic=False,
    )
