"""Core-model experiments: e1 (HLS pipelining), e2 (line rate), e12
(resource utilization)."""

from __future__ import annotations

from typing import Any

from ...bench import ResultTable
from .base import ExperimentSpec, register

# -- E1: HLS pipelining study -----------------------------------------------

_E1_SWEEPS = (
    ("temporal", False, 1, 1),
    ("II=4", True, 4, 1),
    ("II=2", True, 2, 1),
    ("II=1", True, 1, 1),
    ("II=1 x4", True, 1, 4),
    ("II=1 x16", True, 1, 16),
    ("II=1 x64", True, 1, 64),
)
_E1_ABLATION_ITEMS = 20_000


def _e1_loop():
    from ...core import LoopNest

    return LoopNest(
        name="stream-op",
        trip_count=1_000_000,
        ops={"mem_read": 2, "mul": 1, "add": 1, "mem_write": 1},
    )


def e1_cell(ctx: Any, config: dict, seed: int) -> dict:
    from ...core import (
        Burst,
        BurstKernel,
        DataflowGraph,
        ItemKernel,
        Pragmas,
        Simulator,
        Sink,
        Source,
        Stream,
        synthesize,
    )

    loop = _e1_loop()
    if config["part"] == "sweep":
        temporal = synthesize(loop, Pragmas(pipeline=False))
        base_rate = temporal.throughput_items_per_sec()
        spec = synthesize(loop, Pragmas(
            pipeline=config["pipeline"], pipeline_ii=config["ii"],
            unroll=config["unroll"],
        ))
        rate = spec.throughput_items_per_sec()
        return {
            "part": "sweep",
            "label": config["label"],
            "ii": spec.ii,
            "unroll": spec.unroll,
            "rate": rate,
            "speedup": rate / base_rate,
            "lut": spec.resources.lut,
        }

    # Ablation: the three timing models must agree on the same kernel.
    spec = synthesize(loop, Pragmas(pipeline=True, pipeline_ii=2))
    n = _E1_ABLATION_ITEMS

    sim_item = Simulator()
    a_in, a_out = Stream(sim_item, 4), Stream(sim_item, 4)
    Source(sim_item, a_in, range(n))
    ItemKernel(sim_item, spec, lambda x: x, a_in, a_out)
    sink_item = Sink(sim_item, a_out)
    sim_item.run()
    t_item = sink_item.done_at_ps / 1e6

    sim_burst = Simulator()
    b_in, b_out = Stream(sim_burst, 4), Stream(sim_burst, 4)
    Source(sim_burst, b_in, [Burst(payload=None, count=n)])
    BurstKernel(sim_burst, spec, lambda b: b, b_in, b_out)
    sink_burst = Sink(sim_burst, b_out)
    sim_burst.run()
    t_burst = sink_burst.done_at_ps / 1e6

    graph = DataflowGraph()
    graph.add(spec, source=True)
    t_solver = graph.solve().time_for_items(n) * 1e6

    assert t_item == t_burst, "burst abstraction changed total cycles"
    assert abs(t_solver - t_item) / t_item < 0.01
    return {
        "part": "ablation",
        "t_item_us": t_item,
        "t_burst_us": t_burst,
        "t_solver_us": t_solver,
    }


def e1_assemble(rows: list[dict]) -> list[ResultTable]:
    tables: list[ResultTable] = []
    sweep = [r for r in rows if r["part"] == "sweep"]
    ablation = [r for r in rows if r["part"] == "ablation"]
    if sweep:
        table = ResultTable(
            "E1: throughput vs pragmas (1M-item streaming operator)",
            ("pragmas", "II", "unroll", "M items/s", "speedup vs temporal",
             "LUTs"),
        )
        rates = []
        for row in sweep:
            rates.append(row["rate"])
            table.add(
                row["label"], row["ii"], row["unroll"], row["rate"] / 1e6,
                row["speedup"], row["lut"],
            )
        assert rates == sorted(rates), "more parallelism must not slow down"
        assert rates[-1] / rates[0] > 100, "unrolled pipeline >100x temporal"
        tables.append(table)
    if ablation:
        table = ResultTable(
            "E1b: timing-model ablation (same kernel, three models)",
            ("model", "time for 20k items (us)"),
        )
        row = ablation[0]
        table.add("per-item events", row["t_item_us"])
        table.add("burst events", row["t_burst_us"])
        table.add("analytic solver", row["t_solver_us"])
        tables.append(table)
    return tables


@register("e1")
def _e1_spec() -> ExperimentSpec:
    grid = tuple(
        [{"part": "sweep", "label": label, "pipeline": pipeline,
          "ii": ii, "unroll": unroll}
         for label, pipeline, ii, unroll in _E1_SWEEPS]
        + [{"part": "ablation"}]
    )
    return ExperimentSpec(
        experiment="e1",
        title="HLS pipelining study (§2 Programming)",
        bench="bench_e1_hls_pipeline.py",
        grid=grid,
        seeds=(0,),
        prepare=lambda: None,
        cell=e1_cell,
        assemble=e1_assemble,
        entries=(("_run_pipeline_sweep", ()), ("_run_timing_ablation", ())),
    )


# -- E2: line-rate stream processing ----------------------------------------

_E2_N_ROWS = 4_000_000


def e2_cell(ctx: Any, config: dict, seed: int) -> dict:
    from ...baselines import xeon_server
    from ...network import ethernet_100g, fpga_tcp, kernel_tcp
    from ...relational import (
        Filter,
        Project,
        QueryPlan,
        Table,
        col,
        cpu_cost_s,
        make_operator_kernel,
    )
    from ...workloads import uniform_table

    table_data = Table(uniform_table(_E2_N_ROWS, n_payload_cols=2, seed=2))
    row_bytes = table_data.schema.row_nbytes
    plan = QueryPlan((
        Filter(col("key") < 500_000),
        Project(("key", "val0")),
    ))
    line = ethernet_100g()
    stream_bytes = table_data.nbytes

    # FPGA: operator kernels in the network datapath.
    filter_kernel = make_operator_kernel(plan.operators[0], row_bytes)
    fpga_rate_rows = filter_kernel.spec.throughput_items_per_sec()
    fpga_goodput = min(
        fpga_rate_rows * row_bytes,
        fpga_tcp().goodput_bytes_per_sec(64 * 1024),
    )

    # CPU: frames cross the kernel stack, then the engine scans.
    cpu = xeon_server()
    stack_goodput = kernel_tcp().goodput_bytes_per_sec(64 * 1024)
    engine_s = cpu_cost_s(plan, table_data, cpu)
    engine_goodput = stream_bytes / engine_s
    cpu_goodput = min(stack_goodput, engine_goodput)

    return {
        "wire": line.bandwidth_bytes_per_sec,
        "fpga_goodput": fpga_goodput,
        "cpu_goodput": cpu_goodput,
    }


def e2_assemble(rows: list[dict]) -> list[ResultTable]:
    row = rows[0]
    wire = row["wire"]
    fpga_goodput = row["fpga_goodput"]
    cpu_goodput = row["cpu_goodput"]
    report = ResultTable(
        "E2: sustained goodput for an in-stream filter+project",
        ("engine", "goodput GB/s", "fraction of 100G line rate"),
    )
    report.add("100 GbE line rate", wire / 1e9, 1.0)
    report.add("FPGA datapath", fpga_goodput / 1e9, fpga_goodput / wire)
    report.add("CPU + kernel TCP", cpu_goodput / 1e9, cpu_goodput / wire)
    report.note("FPGA kernel: 512-bit datapath, II=1, 300 MHz")

    assert fpga_goodput >= 0.9 * wire, "FPGA must sustain ~line rate"
    assert cpu_goodput < 0.6 * wire, "kernel stack caps CPU goodput"
    return [report]


@register("e2")
def _e2_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e2",
        title="line-rate stream processing",
        bench="bench_e2_line_rate.py",
        grid=({},),
        seeds=(2,),
        prepare=lambda: None,
        cell=e2_cell,
        assemble=e2_assemble,
        entries=(("_run_line_rate", ()),),
    )


# -- E12: resource utilization across devices -------------------------------

_E12_DESIGNS = (
    "farview offload pipeline",
    "fanns (default config)",
    "fanns (generator max)",
    "microrec",
)


def _e12_demand(name: str):
    from ...core import ResourceVector
    from ...fanns import FannsConfig
    from ...relational import (
        AggFunc,
        AggSpec,
        Filter,
        GroupByAggregate,
        QueryPlan,
        Transform,
        col,
        plan_kernels,
    )

    if name == "farview offload pipeline":
        plan = QueryPlan((
            Transform("decrypt", ops_per_byte=2.0),
            Filter((col("key") < 10) & (col("val0") > 0.5)),
            GroupByAggregate("group", (
                AggSpec(AggFunc.SUM, "value"),
                AggSpec(AggFunc.COUNT, "value", alias="n"),
            )),
        ))
        total = ResourceVector()
        for kernel in plan_kernels(plan, row_nbytes=24):
            total = total + kernel.spec.resources
        return total
    if name == "fanns (default config)":
        return FannsConfig().resources(m=16)
    if name == "fanns (generator max)":
        return FannsConfig(
            n_distance_pes=32, n_lut_pes=32, n_adc_pes=64,
            n_hbm_channels=32,
        ).resources(m=16)
    # Lookup control + DNN systolic array + HBM channels.
    return ResourceVector(
        lut=180_000, ff=260_000, bram_36k=400, uram=320, dsp=2_048,
        hbm_channels=32,
    )


def e12_cell(ctx: Any, config: dict, seed: int) -> dict:
    from ...core import DEVICE_CATALOG

    name = config["design"]
    demand = _e12_demand(name)
    fits = {
        key: device.fits(demand) for key, device in DEVICE_CATALOG.items()
    }
    assert any(fits.values()), f"{name} fits nowhere"
    if demand.hbm_channels > 0:
        assert not fits["u250"], "U250 has no HBM"
    util = demand.utilization(DEVICE_CATALOG["u55c"].budget)
    finite = [v for v in util.values() if v != float("inf")]
    # Fitting designs stay within budget (HBM may be fully used).
    assert max(finite) <= 1.0 or not fits["u55c"]
    return {
        "design": name,
        "lut": demand.lut,
        "dsp": demand.dsp,
        "bram_36k": demand.bram_36k,
        "hbm_channels": demand.hbm_channels,
        "fits": fits,
    }


def e12_assemble(rows: list[dict]) -> list[ResultTable]:
    report = ResultTable(
        "E12: accelerator resource demand vs device budgets",
        ("design", "LUT", "DSP", "BRAM", "HBM ch",
         "u250", "u280", "u55c"),
    )
    for row in rows:
        fits = row["fits"]
        report.add(
            row["design"], row["lut"], row["dsp"], row["bram_36k"],
            row["hbm_channels"],
            "fits" if fits["u250"] else "no",
            "fits" if fits["u280"] else "no",
            "fits" if fits["u55c"] else "no",
        )
    report.note("budgets assume an 80% usable fraction after the shell")
    return [report]


@register("e12")
def _e12_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e12",
        title="resource utilization across devices",
        bench="bench_e12_resources.py",
        grid=tuple({"design": name} for name in _E12_DESIGNS),
        seeds=(0,),
        prepare=lambda: None,
        cell=e12_cell,
        assemble=e12_assemble,
        entries=(("_run_resources", ()),),
    )
