"""Serving experiment (repro.serve): e24 (latency/goodput vs load).

E24 drives each paper use case — FANNS ANN search, MicroRec CTR
inference, a Farview offloaded plan — as an **online service** behind
the dynamic batcher and admission controller, sweeping offered load as
a multiple of the backend's full-batch capacity.  Every backend shows
the same saturation knee: latency percentiles are flat while batching
absorbs the load, then the p99 inflects and the admission controller
starts shedding right as offered load crosses capacity.
"""

from __future__ import annotations

from ...bench import ResultTable
from .base import ExperimentSpec, register
from .contexts import FANNS_LIST_SCALE, scale_key, smoke_scale

_E24_BACKENDS = ("fanns", "microrec", "farview")
_E24_LOADS = (0.4, 0.7, 1.0, 1.4)
_E24_REPLICAS = 2
# SLO and max-wait scale with each backend's own full-batch service
# time, so "overload" means the same thing for a microsecond MicroRec
# batch and a millisecond Farview scan.
_E24_SLO_BATCHES = 12
_E24_WAIT_FRACTION = 2  # max_wait_ps = batch_ps // 2


def _farview_backend():
    from ...farview import FarviewServer
    from ...relational import (
        AggFunc,
        AggSpec,
        Aggregate,
        Filter,
        QueryPlan,
        Table,
        col,
    )
    from ...serve import FarviewBackend
    from ...workloads import uniform_table

    n_rows = 20_000 if smoke_scale() else 200_000
    server = FarviewServer()
    server.store("t", Table(uniform_table(n_rows, n_payload_cols=2)))
    plan = QueryPlan((
        Filter(col("key") < 10_000),
        Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
    ))
    return FarviewBackend(server, plan, "t", max_batch=8)


def build_backend(name: str):
    """One servable backend by name (``repro serve`` uses this too)."""
    if name == "synthetic":
        from ...serve import SyntheticBackend

        return SyntheticBackend()
    if name == "fanns":
        from ...serve import FannsBackend
        from .contexts import fanns_index

        return FannsBackend(
            fanns_index(), nprobe=16, max_batch=16,
            list_scale=FANNS_LIST_SCALE,
        )
    if name == "microrec":
        from ...serve import MicroRecBackend
        from .contexts import microrec_tables

        return MicroRecBackend(microrec_tables(), max_batch=32)
    if name == "farview":
        return _farview_backend()
    raise ValueError(
        f"unknown backend {name!r} "
        "(choose from: synthetic, fanns, microrec, farview)"
    )


def e24_prepare() -> dict:
    return {name: build_backend(name) for name in _E24_BACKENDS}


def e24_cell(ctx: dict, config: dict, seed: int) -> dict:
    from ...serve import (
        AdmissionPolicy,
        BatchPolicy,
        OpenLoopConfig,
        ServiceConfig,
        capacity_qps,
        simulate_service,
    )

    backend = ctx[config["backend"]]
    load = config["load"]
    batch_ps = backend.batch_service_ps(backend.max_batch)
    service = ServiceConfig(
        batch=BatchPolicy(
            max_batch=backend.max_batch,
            max_wait_ps=max(1, batch_ps // _E24_WAIT_FRACTION),
        ),
        admission=AdmissionPolicy(max_queue=4 * backend.max_batch),
        replicas=_E24_REPLICAS,
    )
    traffic = OpenLoopConfig(
        offered_qps=load * capacity_qps(backend, _E24_REPLICAS),
        n_requests=1_000 if smoke_scale() else 3_000,
        slo_ps=_E24_SLO_BATCHES * batch_ps,
        burst_factor=2.0,
    )
    report = simulate_service(backend, traffic, service, seed=seed)
    return {"load": load, **report.row()}


def e24_assemble(rows: list[dict]) -> list[ResultTable]:
    report = ResultTable(
        "E24: online serving — latency percentiles and goodput vs "
        f"offered load ({_E24_REPLICAS} replicas, dynamic batching)",
        ("backend", "load x cap", "p50 us", "p95 us", "p99 us",
         "mean batch", "shed", "goodput QPS", "achieved QPS"),
    )
    for name in _E24_BACKENDS:
        series = sorted(
            (r for r in rows if r["backend"] == name),
            key=lambda r: r["load"],
        )
        assert len(series) == len(_E24_LOADS), name
        for row in series:
            report.add(
                row["backend"], row["load"], row["p50_us"], row["p95_us"],
                row["p99_us"], round(row["mean_batch"], 2), row["shed"],
                round(row["goodput_qps"]), round(row["achieved_qps"]),
            )
        # The saturation knee, per backend: p99 inflects upward past
        # capacity, underload sheds nothing, overload must shed, and
        # the service keeps doing useful work throughout.
        low, high = series[0], series[-1]
        assert high["p99_us"] > 1.5 * low["p99_us"], \
            f"{name}: no p99 knee ({low['p99_us']} -> {high['p99_us']})"
        assert low["shed"] == 0, f"{name}: shedding while underloaded"
        assert high["shed"] > 0, f"{name}: overload must shed"
        assert all(r["goodput_qps"] > 0 for r in series), name
        assert all(r["completed"] + r["shed"] + r["failed"] == r["offered"]
                   for r in series), f"{name}: requests leaked"
    report.note(
        "open-loop Poisson-burst arrivals; SLO = "
        f"{_E24_SLO_BATCHES}x the backend's full-batch service time"
    )
    return [report]


@register("e24")
def _e24_spec() -> ExperimentSpec:
    grid = tuple(
        {"backend": backend, "load": load}
        for backend in _E24_BACKENDS
        for load in _E24_LOADS
    )
    return ExperimentSpec(
        experiment="e24",
        title="online serving: latency/goodput vs offered load",
        bench="bench_e24_online_serving.py",
        grid=grid,
        seeds=(24,),
        prepare=e24_prepare,
        cell=e24_cell,
        assemble=e24_assemble,
        entries=(("_run_online_serving", ()),),
        context_key=scale_key(),
    )
