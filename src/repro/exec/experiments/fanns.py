"""FANNS experiments (Use Case II): e5 (QPS vs recall), e6 (hardware
generator DSE), e16 (scale-out: distributed FANNS + FleetRec)."""

from __future__ import annotations

from typing import Any

import numpy as np

from ...bench import ResultTable
from .base import ExperimentSpec, register
from .contexts import FANNS_LIST_SCALE, fanns_dataset, fanns_index, scale_key

_E5_NPROBES = (1, 2, 4, 8, 16, 32)
_E5_K = 10


# -- E5: QPS vs recall Pareto (Figure 3) ------------------------------------


def e5_prepare() -> dict:
    """Dataset + trained index, identical to the bench session fixtures."""
    return {"data": fanns_dataset(), "index": fanns_index()}


def e5_cell(index, data, nprobe: int,
            list_scale: int = FANNS_LIST_SCALE) -> dict:
    """One nprobe point: run all three engines, check the SLA triangle."""
    from ...fanns import (
        CpuAnnSearcher,
        FannsAccelerator,
        GpuAnnSearcher,
        recall_at_k,
    )

    accel = FannsAccelerator(index, list_scale=list_scale)
    cpu = CpuAnnSearcher(index, list_scale=list_scale)
    gpu = GpuAnnSearcher(index, list_scale=list_scale)
    f = accel.search(data.queries, _E5_K, nprobe)
    c = cpu.search(data.queries, _E5_K, nprobe)
    g = gpu.search(data.queries, _E5_K, nprobe)
    assert (f.ids == c.ids).all(), "engines must agree exactly"
    assert (f.ids == g.ids).all()
    recall = recall_at_k(f.ids, data.ground_truth)
    return {
        "nprobe": nprobe,
        "recall": float(recall),
        "fpga_qps": float(f.qps),
        "cpu_qps": float(c.qps),
        "gpu_qps": float(g.qps),
        "fpga_lat_us": float(f.query_latency_s * 1e6),
        "cpu_lat_us": float(c.query_latency_s * 1e6),
        "gpu_lat_us": float(g.query_latency_s * 1e6),
        "latency_gain": float(c.query_latency_s / f.query_latency_s),
        "fpga_beats_gpu": bool(f.query_latency_s < g.query_latency_s),
    }


def e5_assemble(rows: list[dict]) -> list[ResultTable]:
    """Rebuild the E5 table (and shape claims) from cell dicts."""
    report = ResultTable(
        "E5: QPS vs recall@10 (FPGA vs CPU vs GPU, modeled 40M vectors)",
        ("nprobe", "recall@10", "FPGA QPS", "CPU QPS", "GPU QPS",
         "FPGA lat us", "CPU lat us", "GPU lat us"),
    )
    recalls, latency_gains = [], []
    for row in rows:
        recalls.append(row["recall"])
        latency_gains.append(row["latency_gain"])
        report.add(
            row["nprobe"], round(row["recall"], 3), row["fpga_qps"],
            row["cpu_qps"], row["gpu_qps"], row["fpga_lat_us"],
            row["cpu_lat_us"], row["gpu_lat_us"],
        )
        # The SLA triangle: FPGA holds the latency edge over both.
        assert row["fpga_beats_gpu"]
    assert recalls == sorted(recalls), "recall monotone in nprobe"
    assert recalls[-1] > 0.85, "high-recall regime reachable"
    assert min(latency_gains) > 5, "FPGA latency advantage holds"
    return [report]


@register("e5")
def _e5_spec() -> ExperimentSpec:
    def cell(ctx: dict, config: dict, seed: int) -> dict:
        return e5_cell(ctx["index"], ctx["data"], config["nprobe"])

    return ExperimentSpec(
        experiment="e5",
        title="FANNS QPS vs recall (Fig 3)",
        bench="bench_e5_fanns_qps_recall.py",
        grid=tuple({"nprobe": n} for n in _E5_NPROBES),
        seeds=(13,),
        prepare=e5_prepare,
        cell=cell,
        assemble=e5_assemble,
        entries=(("_run_sweep", ("ivfpq_index", "vector_data")),),
        context_key=scale_key(),
    )


# -- E6: hardware-generator design-space exploration ------------------------

_E6_TARGETS = (0.5, 0.7, 0.8, 0.9)


def e6_cell(ctx: dict, config: dict, seed: int) -> dict:
    from ...core import ALVEO_U55C
    from ...fanns import FannsConfig, HardwareGenerator

    index, data = ctx["index"], ctx["data"]
    generator = HardwareGenerator(
        index, data.queries, data.ground_truth, k=10,
        device=ALVEO_U55C, list_scale=FANNS_LIST_SCALE,
    )
    target = config["target"]
    best, points = generator.explore(recall_target=target)
    assert best is not None, f"target {target} unreachable"
    assert best.fits
    demand = best.config.resources(index.pq.m)
    assert ALVEO_U55C.fits(demand)

    # The resource budget must actually bind somewhere in the space.
    monster = FannsConfig(n_distance_pes=32, n_lut_pes=32,
                          n_adc_pes=4096, n_hbm_channels=32)
    assert not ALVEO_U55C.fits(monster.resources(index.pq.m))

    return {
        "target": target,
        "nprobe": best.nprobe,
        "recall": float(best.recall),
        "qps": float(best.qps),
        "lat_us": float(best.latency_s * 1e6),
        "n_distance_pes": best.config.n_distance_pes,
        "n_adc_pes": best.config.n_adc_pes,
        "n_hbm_channels": best.config.n_hbm_channels,
        "feasible": sum(1 for p in points if p.fits),
        "total": len(points),
    }


def e6_assemble(rows: list[dict]) -> list[ResultTable]:
    report = ResultTable(
        "E6: best feasible U55C design per recall target",
        ("target", "nprobe", "recall", "QPS", "lat us",
         "dist PEs", "ADC PEs", "HBM ch", "feasible/total"),
    )
    qps_series = []
    for row in rows:
        qps_series.append(row["qps"])
        report.add(
            row["target"], row["nprobe"], round(row["recall"], 3),
            row["qps"], row["lat_us"], row["n_distance_pes"],
            row["n_adc_pes"], row["n_hbm_channels"],
            f"{row['feasible']}/{row['total']}",
        )
    assert qps_series == sorted(qps_series, reverse=True), \
        "recall costs QPS"
    return [report]


@register("e6")
def _e6_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e6",
        title="FANNS hardware generator",
        bench="bench_e6_fanns_generator.py",
        grid=tuple({"target": t} for t in _E6_TARGETS),
        seeds=(13,),
        prepare=e5_prepare,
        cell=e6_cell,
        assemble=e6_assemble,
        entries=(("_run_generator", ("ivfpq_index", "vector_data")),),
        context_key=scale_key(),
    )


# -- E16: scale-out (distributed FANNS + FleetRec) --------------------------

_E16_NODES = (1, 2, 4, 8)


def e16_context(index, data) -> dict:
    """The e16 context from the session index/dataset fixtures."""
    single_ids = index.search(data.queries, 10, 16)
    return {"index": index, "data": data, "single_ids": single_ids}


def e16_prepare() -> dict:
    return e16_context(fanns_index(), fanns_dataset())


def e16_cell(ctx: dict, config: dict, seed: int) -> dict:
    if config["part"] == "fanns":
        from ...fanns import DistributedFanns

        nodes = config["nodes"]
        dist = DistributedFanns(
            ctx["index"], n_nodes=nodes, list_scale=FANNS_LIST_SCALE
        )
        out = dist.search(ctx["data"].queries, 10, 16)
        assert np.array_equal(out.ids, ctx["single_ids"]), \
            "sharding changed results"
        return {
            "part": "fanns",
            "nodes": nodes,
            "qps": float(out.qps),
            "lat_us": float(out.query_latency_s * 1e6),
        }

    # FleetRec: a large-MLP model — the regime where a GPU DNN tier
    # pays off.
    from ...microrec import (
        CpuRecommender,
        EmbeddingTables,
        FleetRecCluster,
        MicroRecAccelerator,
        V100,
    )
    from ...workloads import lookup_trace, production_like_model

    spec = production_like_model(n_tables=47, max_rows=500_000, seed=51)
    spec = type(spec)(
        table_rows=spec.table_rows,
        embedding_dim=spec.embedding_dim,
        mlp_layers=(4096, 2048, 1024),
    )
    tables = EmbeddingTables(spec, seed=51)
    trace = lookup_trace(spec, batch_size=512, seed=52)
    cpu_out = CpuRecommender(tables, seed=6).infer(trace)
    micro_out = MicroRecAccelerator(tables, seed=6).infer(trace)
    fleet = FleetRecCluster(tables, n_lookup_nodes=2, n_gpu_nodes=2,
                            gpu=V100, seed=6)
    fleet_out = fleet.infer(trace)
    assert np.allclose(fleet_out.logits, cpu_out.logits, rtol=1e-3,
                       atol=1e-3)
    assert fleet_out.qps > micro_out.qps, \
        "GPU DNN tier lifts throughput for big MLPs"
    assert micro_out.latency_s < cpu_out.latency_s
    return {
        "part": "fleetrec",
        "engines": [
            ("CPU", float(cpu_out.latency_s * 1e6), float(cpu_out.qps)),
            ("MicroRec (1 FPGA)", float(micro_out.latency_s * 1e6),
             float(micro_out.qps)),
            ("FleetRec (2 FPGA + 2 GPU)", float(fleet_out.latency_s * 1e6),
             float(fleet_out.qps)),
        ],
    }


def e16_assemble(rows: list[dict]) -> list[ResultTable]:
    tables: list[ResultTable] = []
    fanns_rows = [r for r in rows if r["part"] == "fanns"]
    fleet_rows = [r for r in rows if r["part"] == "fleetrec"]
    if fanns_rows:
        report = ResultTable(
            "E16a: sharded FANNS scale-out (nprobe=16, modeled 40M vectors)",
            ("nodes", "QPS", "latency us", "speedup vs 1 node"),
        )
        qps_series = []
        for row in fanns_rows:
            qps_series.append(row["qps"])
            report.add(row["nodes"], row["qps"], row["lat_us"],
                       row["qps"] / qps_series[0])
        assert qps_series == sorted(qps_series), "QPS grows with nodes"
        assert qps_series[-1] > 3 * qps_series[0]
        tables.append(report)
    if fleet_rows:
        report = ResultTable(
            "E16b: FleetRec vs MicroRec vs CPU (4096-2048-1024 MLP, "
            "batch 512)",
            ("engine", "latency us", "QPS"),
        )
        for engine, lat_us, qps in fleet_rows[0]["engines"]:
            report.add(engine, lat_us, qps)
        tables.append(report)
    return tables


@register("e16")
def _e16_spec() -> ExperimentSpec:
    grid = tuple(
        [{"part": "fanns", "nodes": n} for n in _E16_NODES]
        + [{"part": "fleetrec"}]
    )
    return ExperimentSpec(
        experiment="e16",
        title="scale-out: distributed FANNS + FleetRec",
        bench="bench_e16_scaleout.py",
        grid=grid,
        seeds=(16,),
        prepare=e16_prepare,
        cell=e16_cell,
        assemble=e16_assemble,
        entries=(("_run_distributed_fanns", ("ivfpq_index", "vector_data")),
                 ("_run_fleetrec", ())),
        context_key=scale_key(),
    )
