"""Operator-study experiments (Resources §): e13 (sketches), e14
(any-precision k-means), e15 (compression offload), e20 (hash joins),
e21 (business-rule matching)."""

from __future__ import annotations

from typing import Any

import numpy as np

from ...bench import ResultTable
from .base import ExperimentSpec, register

# -- E13: sketch operators at line rate -------------------------------------


def e13_cell(ctx: Any, config: dict, seed: int) -> dict:
    if config["part"] == "accuracy":
        from ...operators import CountMinSketch, HyperLogLog
        from ...workloads import ZipfSampler

        rng = np.random.default_rng(7)
        hll_rows = []
        for true_n in (10_000, 1_000_000):
            hll = HyperLogLog(precision=12)
            hll.add(rng.integers(0, 1 << 62, size=true_n))
            est = hll.estimate()
            err = abs(est - true_n) / true_n
            assert err < 4 * hll.relative_error_bound()
            hll_rows.append({"true_n": true_n, "est": est, "err": err})
        stream = ZipfSampler(100_000, 1.1, rng).sample(500_000)
        cm = CountMinSketch(width=8192, depth=4)
        cm.add(stream)
        hot = np.arange(5)
        true = np.array([(stream == key).sum() for key in hot])
        est = cm.query(hot)
        cm_rows = []
        for key in range(5):
            rel = (est[key] - true[key]) / max(1, true[key])
            assert est[key] >= true[key]
            assert est[key] - true[key] <= cm.error_bound()
            cm_rows.append({"key": key, "true": int(true[key]),
                            "est": int(est[key]), "rel": rel})
        return {"part": "accuracy", "hll": hll_rows, "cm": cm_rows}

    from ...baselines import xeon_server
    from ...operators import (
        cpu_insert_time_s,
        cpu_update_time_s,
        hll_kernel_spec,
        sketch_kernel_spec,
    )

    cpu = xeon_server()
    n = 1_000_000_000
    hll_spec = hll_kernel_spec(precision=12)
    fpga_rate = n / hll_spec.latency_seconds(n)
    core_rate = n / cpu_insert_time_s(cpu, n, parallel=False)
    socket_rate = n / cpu_insert_time_s(cpu, n, parallel=True)
    cm_spec = sketch_kernel_spec(counters_per_item=4,
                                 counter_bytes_total=256 * 1024)
    cm_fpga = n / cm_spec.latency_seconds(n)
    cm_core = n / cpu_update_time_s(cpu, n, 4, parallel=False)
    assert fpga_rate > 4 * core_rate
    assert cm_fpga > 4 * cm_core
    return {
        "part": "throughput",
        "fpga_rate": fpga_rate,
        "core_rate": core_rate,
        "socket_rate": socket_rate,
        "cm_fpga": cm_fpga,
        "cm_core": cm_core,
    }


def e13_assemble(rows: list[dict]) -> list[ResultTable]:
    tables: list[ResultTable] = []
    accuracy = [r for r in rows if r["part"] == "accuracy"]
    throughput = [r for r in rows if r["part"] == "throughput"]
    if accuracy:
        report = ResultTable(
            "E13a: sketch accuracy (functional)",
            ("sketch", "workload", "truth", "estimate", "rel err"),
        )
        row = accuracy[0]
        for hll in row["hll"]:
            report.add("HLL p=12", f"{hll['true_n']:,} distinct",
                       hll["true_n"], hll["est"], hll["err"])
        for cm in row["cm"]:
            report.add("CM 8192x4", f"hot key {cm['key']}", cm["true"],
                       cm["est"], cm["rel"])
        tables.append(report)
    if throughput:
        report = ResultTable(
            "E13b: sketch maintenance throughput (1B items)",
            ("engine", "G items/s", "vs 1 CPU core"),
        )
        row = throughput[0]
        report.add("FPGA HLL kernel", row["fpga_rate"] / 1e9,
                   row["fpga_rate"] / row["core_rate"])
        report.add("1 CPU core", row["core_rate"] / 1e9, 1.0)
        report.add("32 CPU cores", row["socket_rate"] / 1e9,
                   row["socket_rate"] / row["core_rate"])
        report.add("FPGA CM kernel", row["cm_fpga"] / 1e9,
                   row["cm_fpga"] / row["cm_core"])
        report.add("1 CPU core (CM)", row["cm_core"] / 1e9, 1.0)
        report.note("FPGA kernels: II=1, 300 MHz, 8-lane (HLL) / "
                    "banked (CM)")
        tables.append(report)
    return tables


@register("e13")
def _e13_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e13",
        title="sketch operators at line rate",
        bench="bench_e13_sketches.py",
        grid=({"part": "accuracy"}, {"part": "throughput"}),
        seeds=(7,),
        prepare=lambda: None,
        cell=e13_cell,
        assemble=e13_assemble,
        entries=(("_run_accuracy", ()), ("_run_throughput", ())),
    )


# -- E14: BiS-KM any-precision k-means --------------------------------------

_E14_BITS = (1, 2, 4, 8, 16, 32)


def _e14_blobs(seed=2):
    rng = np.random.default_rng(seed)
    centers = rng.random((8, 16)).astype(np.float32) * 10
    return np.concatenate(
        [c + rng.normal(0, 0.15, (150, 16)).astype(np.float32)
         for c in centers]
    )


def e14_cell(ctx: Any, config: dict, seed: int) -> dict:
    from ...operators import anyprec_kmeans

    points = _e14_blobs()
    out = anyprec_kmeans(points, k=8, bits=config["bits"], seed=3)
    return {
        "bits": config["bits"],
        "inertia": float(out.full_precision_inertia),
        "traffic_speedup": float(out.traffic_speedup),
        "iterations": out.result.n_iterations,
    }


def e14_assemble(rows: list[dict]) -> list[ResultTable]:
    report = ResultTable(
        "E14: any-precision k-means (k=8, 1200 x 16 points)",
        ("bits", "traffic speedup", "objective vs 32-bit", "iterations"),
    )
    by_bits = {row["bits"]: row for row in rows}
    baseline = max(by_bits[32]["inertia"], 1e-12)
    ratios = []
    for row in rows:
        ratio = row["inertia"] / baseline
        ratios.append(ratio)
        report.add(row["bits"], row["traffic_speedup"], ratio,
                   row["iterations"])
    assert abs(ratios[-1] - 1.0) < 1e-6
    # A handful of bits reaches within 10% of full quality...
    assert min(r for row, r in zip(rows, ratios)
               if row["bits"] >= 8) < 1.1
    # ...while 1-bit data is measurably worse on this geometry.
    assert ratios[0] > ratios[-1]
    report.note("objective = full-precision inertia of learned centroids")
    return [report]


@register("e14")
def _e14_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e14",
        title="any-precision k-means (BiS-KM)",
        bench="bench_e14_anyprec_kmeans.py",
        grid=tuple({"bits": b} for b in _E14_BITS),
        seeds=(3,),
        prepare=lambda: None,
        cell=e14_cell,
        assemble=e14_assemble,
        entries=(("_run_precision_sweep", ()),),
    )


# -- E15: column compression offload (SAP HANA) -----------------------------

_E15_KINDS = ("dict-decode", "dict-encode", "rle-decode", "aes-encrypt")


def e15_cell(ctx: Any, config: dict, seed: int) -> dict:
    if config["part"] == "ratios":
        from ...operators import (
            dict_decode,
            dict_encode,
            rle_decode,
            rle_encode,
        )
        from ...workloads import ZipfSampler, grouped_table

        rng = np.random.default_rng(9)
        low_card = rng.integers(0, 50, size=1_000_000)
        encoded = dict_encode(low_card)
        assert np.array_equal(dict_decode(encoded), low_card)
        assert encoded.ratio > 6

        sorted_col = np.sort(ZipfSampler(200, 1.2, rng).sample(1_000_000))
        rle = rle_encode(sorted_col)
        assert np.array_equal(rle_decode(rle), sorted_col)
        rle_ratio = sorted_col.nbytes / rle.nbytes
        assert rle_ratio > 100

        grouped = grouped_table(1_000_000, n_groups=1000, seed=1)["group"]
        d = dict_encode(grouped)
        return {
            "part": "ratios",
            "columns": [
                ["50 distinct values", 1_000_000, "dict",
                 float(encoded.ratio)],
                ["sorted Zipf keys", 1_000_000, "rle", float(rle_ratio)],
                ["1000-group fact key", 1_000_000, "dict", float(d.ratio)],
            ],
        }

    from ...baselines import xeon_server
    from ...operators import codec_kernel_spec, cpu_codec_time_s

    cpu = xeon_server()
    n_values = 1 << 28  # 2 GiB of int64 values
    nbytes = n_values * 8
    kind = config["kind"]
    spec = codec_kernel_spec(kind)
    fpga = nbytes / spec.latency_seconds(n_values)
    core = nbytes / cpu_codec_time_s(cpu, nbytes, kind, parallel=False)
    socket = nbytes / cpu_codec_time_s(cpu, nbytes, kind, parallel=True)
    if kind in ("dict-encode", "aes-encrypt"):
        # The compute-heavy directions are what HANA offloads.
        assert fpga > core, f"{kind}: datapath beats a core"
    return {"part": "throughput", "kind": kind, "fpga": fpga,
            "core": core, "socket": socket}


def e15_assemble(rows: list[dict]) -> list[ResultTable]:
    tables: list[ResultTable] = []
    ratios = [r for r in rows if r["part"] == "ratios"]
    throughput = [r for r in rows if r["part"] == "throughput"]
    if ratios:
        report = ResultTable(
            "E15a: compression ratios (functional codecs, exact "
            "round-trip)",
            ("column", "rows", "codec", "ratio"),
        )
        for column, n_rows, codec, ratio in ratios[0]["columns"]:
            report.add(column, n_rows, codec, ratio)
        tables.append(report)
    if throughput:
        report = ResultTable(
            "E15b: codec throughput (GB/s of decoded data)",
            ("codec", "FPGA GB/s", "1 core GB/s", "32 cores GB/s",
             "FPGA vs core"),
        )
        for row in throughput:
            report.add(row["kind"], row["fpga"] / 1e9, row["core"] / 1e9,
                       row["socket"] / 1e9, row["fpga"] / row["core"])
        report.note("FPGA codecs: 512-bit datapath, II=1 per 8 values")
        report.note("decode directions are bandwidth-bound on both sides")
        tables.append(report)
    return tables


@register("e15")
def _e15_spec() -> ExperimentSpec:
    grid = tuple(
        [{"part": "ratios"}]
        + [{"part": "throughput", "kind": k} for k in _E15_KINDS]
    )
    return ExperimentSpec(
        experiment="e15",
        title="compression/encryption offload (HANA)",
        bench="bench_e15_compression.py",
        grid=grid,
        seeds=(9,),
        prepare=lambda: None,
        cell=e15_cell,
        assemble=e15_assemble,
        entries=(("_run_ratios", ()), ("_run_throughput", ())),
    )


# -- E20: hash joins (the CIDR'20 question) ---------------------------------

_E20_N_PROBE = 100_000_000
_E20_BUILDS = (100_000, 1_000_000, 100_000_000)


def e20_prepare() -> None:
    """Functional spot check: the modeled join is a real join."""
    from ...relational import Table, hash_join

    rng = np.random.default_rng(2)
    probe = Table({
        "k": rng.integers(0, 1000, size=50_000).astype(np.int64),
        "p": rng.random(50_000),
    })
    build = Table({
        "k": np.arange(1000, dtype=np.int64),
        "b": rng.integers(0, 100, size=1000).astype(np.int64),
    })
    out = hash_join(probe, build, "k", "k")
    assert out.n_rows == probe.n_rows  # unique build keys cover everything
    assert np.array_equal(out["b"], build["b"][probe["k"]])


def e20_cell(ctx: Any, config: dict, seed: int) -> dict:
    from ...baselines import xeon_server
    from ...relational import FpgaJoinModel, cpu_join_time_s

    cpu = xeon_server()
    model = FpgaJoinModel()
    n_build = config["n_build"]
    timing = model.join_time(_E20_N_PROBE, n_build, 16, 16)
    fpga_rate = (_E20_N_PROBE + n_build) / timing.total_s
    cpu_rate = (_E20_N_PROBE + n_build) / cpu_join_time_s(
        cpu, _E20_N_PROBE, n_build, 16, 16
    )
    return {
        "n_build": n_build,
        "placement": timing.placement,
        "fpga_rate": fpga_rate,
        "cpu_rate": cpu_rate,
    }


def e20_assemble(rows: list[dict]) -> list[ResultTable]:
    from ...relational import FpgaJoinModel

    report = ResultTable(
        "E20: hash join, 100M probes (modeled)",
        ("build rows", "placement", "FPGA M tuples/s", "CPU M tuples/s",
         "FPGA/CPU"),
    )
    ratios = {}
    for row in rows:
        ratios[row["placement"]] = row["fpga_rate"] / row["cpu_rate"]
        report.add(row["n_build"], row["placement"],
                   row["fpga_rate"] / 1e6, row["cpu_rate"] / 1e6,
                   row["fpga_rate"] / row["cpu_rate"])
    # The CIDR verdict: small build sides (BRAM) strongly favor the
    # FPGA; huge standalone joins are contested, not dominated.
    assert ratios["bram"] > 2
    assert 0.2 < ratios["hbm"] < 5
    streaming = FpgaJoinModel().streaming_probe_rate(100_000, 16)
    report.note("streaming-fused probes additionally ride at line rate "
                f"({streaming / 1e6:.0f} M/s)")
    return [report]


@register("e20")
def _e20_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e20",
        title="hash joins: the CIDR'20 question",
        bench="bench_e20_hash_join.py",
        grid=tuple({"n_build": n} for n in _E20_BUILDS),
        seeds=(2,),
        prepare=e20_prepare,
        cell=e20_cell,
        assemble=e20_assemble,
        entries=(("_run_join_study", ()),),
    )


# -- E21: business-rule matching (Amadeus) ----------------------------------

_E21_N_ATTRS = 8
_E21_N_QUERIES = 100_000
_E21_RULES = (256, 1024, 4096, 16384)


def e21_prepare() -> None:
    """Functional spot check on a small rule set."""
    from ...operators import random_rules

    rules = random_rules(200, _E21_N_ATTRS, seed=7)
    rng = np.random.default_rng(8)
    queries = rng.random((500, _E21_N_ATTRS))
    best = rules.best_match(queries)
    match = rules.matches(queries)
    assert ((best >= 0) == match.any(axis=1)).all()


def e21_cell(ctx: Any, config: dict, seed: int) -> dict:
    from ...baselines import xeon_server
    from ...core import ALVEO_U250
    from ...operators import cpu_match_time_s, rules_kernel_spec

    cpu = xeon_server()
    n_rules = config["n_rules"]
    spec = rules_kernel_spec(n_rules, _E21_N_ATTRS)
    fpga_s = spec.latency_seconds(_E21_N_QUERIES)
    cpu_s = cpu_match_time_s(cpu, _E21_N_QUERIES, n_rules, _E21_N_ATTRS)
    return {
        "n_rules": n_rules,
        "fpga_s": fpga_s,
        "cpu_s": cpu_s,
        "lut": spec.resources.lut,
        "fits": bool(ALVEO_U250.fits(spec.resources)),
    }


def e21_assemble(rows: list[dict]) -> list[ResultTable]:
    from ...core import ALVEO_U250
    from ...operators import rules_kernel_spec

    report = ResultTable(
        "E21: rule matching, 100k queries over growing rule sets",
        ("rules", "CPU ms (1 core)", "FPGA ms", "speedup",
         "FPGA LUTs", "fits U250"),
    )
    fpga_times = []
    speedups = []
    for row in rows:
        fpga_times.append(row["fpga_s"])
        speedups.append(row["cpu_s"] / row["fpga_s"])
        report.add(row["n_rules"], row["cpu_s"] * 1e3,
                   row["fpga_s"] * 1e3, row["cpu_s"] / row["fpga_s"],
                   row["lut"], "yes" if row["fits"] else "no")
    # Flat FPGA time, linear CPU time -> speedup grows with rules.
    assert max(fpga_times) < 1.02 * min(fpga_times)
    assert speedups == sorted(speedups)
    assert speedups[-1] > 50
    # The fabric eventually caps the rule count.
    assert not ALVEO_U250.fits(
        rules_kernel_spec(300_000, _E21_N_ATTRS).resources
    )
    report.note("spatial evaluation: latency independent of rule count")
    return [report]


@register("e21")
def _e21_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e21",
        title="business-rule matching (Amadeus)",
        bench="bench_e21_business_rules.py",
        grid=tuple({"n_rules": n} for n in _E21_RULES),
        seeds=(7,),
        prepare=e21_prepare,
        cell=e21_cell,
        assemble=e21_assemble,
        entries=(("_run_rules_sweep", ()),),
    )
