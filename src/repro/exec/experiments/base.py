"""The experiment registry: one declarative spec per experiment.

Every experiment e1–e23 is factored into the three phases the sweep
runner schedules independently:

* ``prepare()`` — build the (deterministic, seeded) shared context:
  datasets, indexes, clusters, baselines.  Runs once per worker
  process; never cached, never serialised.
* ``cell(ctx, config, seed)`` — one grid point, returning a plain
  JSON-able dict.  Cells are independent, so they parallelise and
  cache freely.  Single-cell experiments have a one-entry grid.
* ``assemble(rows)`` — fold the cell dicts (in grid order) back into
  the experiment's :class:`~repro.bench.ResultTable` list, including
  the bench's shape-claim assertions.

The benchmark files under ``benchmarks/`` are thin shims that fetch
their spec from this registry and delegate to the same cells and
assembly, so ``repro run eN --parallel K`` produces byte-identical
tables to the pytest path — the decomposition *is* the experiment,
not a parallel re-implementation of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ...bench import ResultTable
from ..cache import _jsonable

__all__ = [
    "ExperimentSpec",
    "build_spec",
    "experiment_ids",
    "register",
]

# Experiment id -> spec factory.  Factories are re-invoked per
# build_spec() call so environment knobs (REPRO_FAULT_RATE,
# REPRO_SMOKE, REPRO_BENCH_SMOKE) are honoured at invocation time,
# like the pytest path.
_FACTORIES: dict[str, Callable[[], "ExperimentSpec"]] = {}


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: its grid, phase callables, and registry metadata.

    Attributes
    ----------
    experiment:
        Registry id (``"e5"``).
    title:
        One-line description, shown by ``repro list``.
    bench:
        The benchmark shim file under ``benchmarks/``.
    grid:
        Config dicts, one per cell.  Single-cell experiments use a
        one-entry grid (often ``({},)``).
    seeds:
        Seeds swept seed-major over the grid.
    prepare / cell / assemble:
        The three phases (see module docstring).  ``cell`` is wrapped
        at construction so its return value is normalised to plain
        JSON types — the in-process row and the cache-roundtripped row
        are therefore always identical.
    entries:
        ``(bench entry-point name, ctx-key args)`` pairs: the shim
        functions that regenerate this experiment's tables, in
        assemble-output order.  The golden-equivalence and smoke
        suites are parameterised off this.
    context_key:
        Extra identity folded into every cell's cache key (e.g. the
        smoke/full dataset scale), so context-dependent results can
        never be served across contexts.
    deterministic:
        False for experiments whose tables contain wall-clock
        measurements (e23); equivalence checks then compare structure,
        not bytes.
    """

    experiment: str
    title: str
    bench: str
    grid: tuple[dict, ...]
    seeds: tuple[int, ...]
    prepare: Callable[[], Any]
    cell: Callable[[Any, dict, int], dict]
    assemble: Callable[[list[dict]], list[ResultTable]]
    entries: tuple[tuple[str, tuple[str, ...]], ...] = ()
    context_key: dict = field(default_factory=dict)
    deterministic: bool = True

    def __post_init__(self) -> None:
        raw_cell = self.cell

        def normalised(ctx: Any, config: dict, seed: int) -> dict:
            return _jsonable(raw_cell(ctx, config, seed))

        object.__setattr__(self, "normalised", normalised)
        object.__setattr__(self, "cell", normalised)

    @property
    def cells(self) -> int:
        """Total cell count (``seeds x grid``)."""
        return len(self.grid) * len(self.seeds)

    @property
    def sweep(self) -> bool:
        """True when the experiment has more than one cell."""
        return self.cells > 1

    def rows(
        self,
        ctx: Any = None,
        configs: Iterable[dict] | None = None,
    ) -> list[dict]:
        """Run cells serially, seed-major / grid-minor (runner order).

        ``ctx=None`` calls :attr:`prepare`; shims with session fixtures
        pass a pre-built context instead.  ``configs`` restricts the
        run to a grid subset (a bench entry point's part).
        """
        if ctx is None:
            ctx = self.prepare()
        grid = self.grid if configs is None else tuple(configs)
        return [
            self.cell(ctx, config, seed)
            for seed in self.seeds
            for config in grid
        ]

    def tables(
        self,
        ctx: Any = None,
        configs: Iterable[dict] | None = None,
    ) -> list[ResultTable]:
        """Assemble the result tables from a serial in-process run."""
        return self.assemble(self.rows(ctx=ctx, configs=configs))

    def part(self, **match: Any) -> tuple[dict, ...]:
        """The grid subset whose configs contain all of ``match``."""
        return tuple(
            config for config in self.grid
            if all(config.get(k) == v for k, v in match.items())
        )


def register(
    experiment: str,
) -> Callable[[Callable[[], ExperimentSpec]], Callable[[], ExperimentSpec]]:
    """Decorator: record a spec factory under an experiment id."""

    def deco(factory: Callable[[], ExperimentSpec]):
        if experiment in _FACTORIES:
            raise ValueError(f"experiment {experiment!r} registered twice")
        _FACTORIES[experiment] = factory
        return factory

    return deco


def experiment_ids() -> tuple[str, ...]:
    """All registered experiment ids, in numeric order."""
    return tuple(sorted(_FACTORIES, key=lambda e: int(e[1:])))


def build_spec(experiment: str) -> ExperimentSpec:
    """The :class:`ExperimentSpec` for an experiment id (fresh build)."""
    try:
        factory = _FACTORIES[experiment.lower()]
    except KeyError:
        known = ", ".join(experiment_ids())
        raise KeyError(
            f"unknown experiment {experiment!r} (registered: {known})"
        ) from None
    spec = factory()
    assert spec.experiment == experiment.lower(), (
        f"factory for {experiment!r} built spec {spec.experiment!r}"
    )
    return spec
