"""The experiment registry package: all 24 experiments as specs.

Importing this package registers every experiment family module.  The
public surface is :func:`build_spec` / :func:`experiment_ids` /
``SWEEPABLE`` plus the per-experiment cell/assemble callables the
benchmark shims delegate to.
"""

from __future__ import annotations

from .base import ExperimentSpec, build_spec, experiment_ids, register
from .contexts import (
    FANNS_LIST_SCALE,
    fanns_dataset,
    fanns_index,
    microrec_model,
    microrec_tables,
    microrec_trace,
    scale_key,
    small_microrec_tables,
    smoke_scale,
)

# Importing the family modules runs their @register decorators.
from . import accl as _accl
from . import core as _core
from . import fanns as _fanns
from . import farview as _farview
from . import microrec as _microrec
from . import operators as _operators
from . import perf as _perf
from . import serving as _serving
from . import storage as _storage

# Legacy re-exports: PR 3 shipped these at repro.exec.experiments
# module scope, and the e5/e11/e22 benches import them by name.
from .accl import (
    _E11_CROSSOVER_SIZES,
    _E11_NODES,
    e11_assemble,
    e11_cell,
)
from .fanns import _E5_NPROBES, e5_assemble, e5_cell, e5_prepare
from .fanns import e16_context
from .microrec import e8_context, e9_context
from .perf import e22_assemble, e22_cell, e22_rates

#: Every registered experiment id — all of them run through the sweep
#: runner now (single-cell experiments are a one-entry grid).
SWEEPABLE: tuple[str, ...] = experiment_ids()

__all__ = [
    "ExperimentSpec",
    "FANNS_LIST_SCALE",
    "SWEEPABLE",
    "build_spec",
    "e5_assemble",
    "e5_cell",
    "e5_prepare",
    "e8_context",
    "e9_context",
    "e11_assemble",
    "e11_cell",
    "e16_context",
    "e22_assemble",
    "e22_cell",
    "e22_rates",
    "experiment_ids",
    "fanns_dataset",
    "fanns_index",
    "microrec_model",
    "microrec_tables",
    "microrec_trace",
    "register",
    "scale_key",
    "small_microrec_tables",
    "smoke_scale",
]
