"""Shared experiment contexts: the expensive seeded artifacts.

These builders are the single source of truth for the dataset, index,
and embedding-table parameters used by both the benchmark fixtures
(``benchmarks/conftest.py`` imports from here) and the specs'
``prepare()`` phases — the two paths can no longer drift.

``REPRO_SMOKE=1`` scales the artifacts down to the bench smoke-suite
sizes so the registry-driven CI jobs and equivalence tests finish in
seconds; the scale is part of every dependent cell's cache identity
(see :func:`scale_key`), so smoke and full results never collide in
``results/cache/``.
"""

from __future__ import annotations

import os
from functools import lru_cache

__all__ = [
    "FANNS_LIST_SCALE",
    "fanns_dataset",
    "fanns_index",
    "microrec_model",
    "microrec_tables",
    "microrec_trace",
    "scale_key",
    "small_microrec_tables",
    "smoke_scale",
]

# Deployment-scale multiplier for FANNS timing (see DESIGN.md §1: the
# functional index is small; the papers' datasets are 1e8-1e9 vectors).
FANNS_LIST_SCALE = 2_000


def smoke_scale() -> bool:
    """True when ``REPRO_SMOKE`` asks for the scaled-down artifacts."""
    return bool(os.environ.get("REPRO_SMOKE"))


def scale_key() -> dict:
    """Cache-identity fragment for specs built on scaled contexts."""
    return {"scale": "smoke" if smoke_scale() else "full"}


@lru_cache(maxsize=None)
def _fanns_dataset(smoke: bool):
    from ...workloads import clustered_dataset

    if smoke:
        # dim=16 with m=16 gives one PQ subquantiser per dimension, so
        # recall stays near-exact and the shape claims still hold.
        return clustered_dataset(
            n=8_000, dim=16, n_queries=64, gt_k=10, n_clusters=32,
            cluster_std=0.25, seed=13,
        )
    return clustered_dataset(
        n=20_000, dim=32, n_queries=100, gt_k=10, n_clusters=64,
        cluster_std=0.25, seed=13,
    )


def fanns_dataset():
    """Clustered dataset + ground truth for the FANNS experiments."""
    return _fanns_dataset(smoke_scale())


@lru_cache(maxsize=None)
def _fanns_index(smoke: bool):
    from ...fanns import build_ivfpq

    data = _fanns_dataset(smoke)
    nlist = 32 if smoke else 256
    return build_ivfpq(data.base, nlist=nlist, m=16, ksub=256, seed=13)


def fanns_index():
    """A trained IVF-PQ index over the session dataset."""
    return _fanns_index(smoke_scale())


@lru_cache(maxsize=None)
def _microrec_model(smoke: bool):
    from ...workloads import production_like_model

    max_rows = 200_000 if smoke else 2_000_000
    return production_like_model(n_tables=47, max_rows=max_rows, seed=21)


def microrec_model():
    """A production-shaped recommendation model spec."""
    return _microrec_model(smoke_scale())


@lru_cache(maxsize=None)
def _microrec_tables(smoke: bool):
    from ...microrec import EmbeddingTables

    return EmbeddingTables(_microrec_model(smoke), seed=21)


def microrec_tables():
    """Materialised embedding tables for the MicroRec experiments."""
    return _microrec_tables(smoke_scale())


@lru_cache(maxsize=None)
def _microrec_trace(smoke: bool):
    from ...workloads import lookup_trace

    batch = 64 if smoke else 256
    return lookup_trace(_microrec_model(smoke), batch_size=batch, seed=22)


def microrec_trace():
    """The session lookup trace (one batch of inferences)."""
    return _microrec_trace(smoke_scale())


@lru_cache(maxsize=None)
def small_microrec_tables():
    """A smaller model/tables pair for the e9 channel sweep."""
    from ...microrec import EmbeddingTables
    from ...workloads import production_like_model

    model = production_like_model(n_tables=32, max_rows=100_000, seed=9)
    return model, EmbeddingTables(model, seed=9)
