"""MicroRec experiments (Use Case III): e7 (end-to-end latency), e8
(Cartesian ablation), e9 (HBM banking / SRAM placement)."""

from __future__ import annotations

from typing import Any

import numpy as np

from ...bench import ResultTable
from .base import ExperimentSpec, register
from .contexts import (
    microrec_model,
    microrec_tables,
    microrec_trace,
    scale_key,
    small_microrec_tables,
)

# -- E7: end-to-end inference latency (Figures 4-5) -------------------------

_E7_BATCHES = (1, 16, 64, 256)


def e7_prepare() -> dict:
    return {"model": microrec_model(), "tables": microrec_tables()}


def e7_cell(ctx: dict, config: dict, seed: int) -> dict:
    from ...microrec import CpuRecommender, MicroRecAccelerator
    from ...obs import Profiler
    from ...workloads import lookup_trace

    prof = Profiler()
    accel = MicroRecAccelerator(ctx["tables"], seed=5, tracer=prof.tracer)
    cpu = CpuRecommender(ctx["tables"], seed=5)
    batch = config["batch"]
    trace = lookup_trace(ctx["model"], batch_size=batch, seed=31)
    c = cpu.infer(trace)
    f = accel.infer(trace)
    assert np.allclose(c.logits, f.logits, rtol=1e-4, atol=1e-4)
    snapshot = prof.tracer.registry.snapshot()
    accesses = sum(
        v for k, v in snapshot.items()
        if k.startswith("memory.bank_accesses")
    )
    conflicts = sum(
        v for k, v in snapshot.items()
        if k.startswith("memory.bank_conflicts")
    )
    return {
        "batch": batch,
        "cpu_lat_us": c.latency_s * 1e6,
        "fpga_lat_us": f.latency_s * 1e6,
        "gain": c.latency_s / f.latency_s,
        "cpu_qps": c.qps,
        "fpga_qps": f.qps,
        "accesses": accesses,
        "conflicts": conflicts,
        "n_tables": ctx["model"].n_tables,
        "embedding_bytes": ctx["model"].total_embedding_bytes,
    }


def e7_assemble(rows: list[dict]) -> list[ResultTable]:
    report = ResultTable(
        "E7: CTR inference latency & throughput, CPU vs MicroRec",
        ("batch", "CPU lat us", "FPGA lat us", "lat speedup",
         "CPU QPS", "FPGA QPS"),
    )
    gains = []
    for row in rows:
        gains.append(row["gain"])
        report.add(row["batch"], row["cpu_lat_us"], row["fpga_lat_us"],
                   row["gain"], row["cpu_qps"], row["fpga_qps"])
    assert min(gains) > 5, "order-of-magnitude-class latency win"
    report.note(
        f"model: {rows[0]['n_tables']} tables, "
        f"{rows[0]['embedding_bytes'] / 1e6:.0f} MB embeddings"
    )
    accesses = sum(row["accesses"] for row in rows)
    conflicts = sum(row["conflicts"] for row in rows)
    assert accesses > 0, "HBM lookups were traced"
    report.add_metrics(
        {"hbm.lookups": accesses, "hbm.bank_conflicts": conflicts},
        title="obs metrics",
    )
    return [report]


@register("e7")
def _e7_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e7",
        title="MicroRec latency (Figs 4-5)",
        bench="bench_e7_microrec_latency.py",
        grid=tuple({"batch": b} for b in _E7_BATCHES),
        seeds=(5,),
        prepare=e7_prepare,
        cell=e7_cell,
        assemble=e7_assemble,
        entries=(("_run_latency", ("rec_model", "rec_tables")),),
        context_key=scale_key(),
    )


# -- E8: Cartesian-product ablation -----------------------------------------

_E8_MULTS = (1.0, 1.5, 2.0, 4.0)


def _e8_config():
    from ...microrec import MicroRecConfig

    return MicroRecConfig(sram_budget_bytes=0, n_hbm_channels=8)


def e8_context(model, tables, trace) -> dict:
    """The e8 context (baseline logits included) from session fixtures."""
    from ...microrec import MicroRecAccelerator

    baseline = MicroRecAccelerator(tables, config=_e8_config(), seed=5)
    base_out = baseline.infer(trace)
    return {"model": model, "tables": tables, "trace": trace,
            "base_logits": base_out.logits}


def e8_prepare() -> dict:
    return e8_context(microrec_model(), microrec_tables(), microrec_trace())


def e8_cell(ctx: dict, config: dict, seed: int) -> dict:
    from ...microrec import MicroRecAccelerator, plan_cartesian

    mult = config["mult"]
    model = ctx["model"]
    plan = plan_cartesian(
        model, byte_budget=int(mult * model.total_embedding_bytes)
    )
    accel = MicroRecAccelerator(
        ctx["tables"], plan=plan, config=_e8_config(), seed=5
    )
    out = accel.infer(ctx["trace"])
    assert np.allclose(out.logits, ctx["base_logits"], rtol=1e-4, atol=1e-4)
    return {
        "mult": mult,
        "lookups": accel.lookups_per_inference,
        "capacity_overhead": round(plan.capacity_overhead, 2),
        "lookup_us": out.lookup_s * 1e6,
        "qps": out.qps,
    }


def e8_assemble(rows: list[dict]) -> list[ResultTable]:
    report = ResultTable(
        "E8: Cartesian budget sweep (8 HBM channels, no SRAM)",
        ("byte budget", "lookups/inf", "capacity overhead",
         "lookup stage us", "batch QPS"),
    )
    lookups, stage_times = [], []
    for row in rows:
        lookups.append(row["lookups"])
        stage_times.append(row["lookup_us"])
        report.add(
            f"{row['mult']:.1f}x", row["lookups"],
            row["capacity_overhead"], row["lookup_us"], row["qps"],
        )
    assert lookups[-1] < lookups[0], "budget buys fewer lookups"
    assert stage_times[-1] < stage_times[0], "fewer lookups -> faster stage"
    assert lookups == sorted(lookups, reverse=True)
    return [report]


@register("e8")
def _e8_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e8",
        title="MicroRec Cartesian ablation",
        bench="bench_e8_microrec_cartesian.py",
        grid=tuple({"mult": m} for m in _E8_MULTS),
        seeds=(5,),
        prepare=e8_prepare,
        cell=e8_cell,
        assemble=e8_assemble,
        entries=(("_run_cartesian",
                  ("rec_model", "rec_tables", "rec_trace")),),
        context_key=scale_key(),
    )


# -- E9: HBM banking sweep and SRAM placement ablation ----------------------

_E9_BATCH = 256
_E9_CHANNELS = (1, 2, 4, 8, 16, 32)
_E9_SRAM_MB = (0, 1, 4, 16, 32)


def e9_context(model, tables) -> dict:
    return {"model": model, "tables": tables}


def e9_prepare() -> dict:
    return e9_context(microrec_model(), microrec_tables())


def e9_cell(ctx: dict, config: dict, seed: int) -> dict:
    from ...microrec import MicroRecAccelerator, MicroRecConfig
    from ...workloads import lookup_trace

    if config["part"] == "channels":
        # A model small enough to fit a single HBM pseudo-channel, so
        # the sweep can start at 1 channel.
        _, small_tables = small_microrec_tables()
        channels = config["channels"]
        cfg = MicroRecConfig(sram_budget_bytes=0, n_hbm_channels=channels)
        accel = MicroRecAccelerator(small_tables, config=cfg, seed=5)
        return {
            "part": "channels",
            "channels": channels,
            "t_s": accel.lookup_time_s(_E9_BATCH),
        }

    budget_mb = config["budget_mb"]
    trace = lookup_trace(ctx["model"], batch_size=_E9_BATCH, seed=33)
    cfg = MicroRecConfig(
        sram_budget_bytes=budget_mb << 20, n_hbm_channels=32
    )
    accel = MicroRecAccelerator(ctx["tables"], config=cfg, seed=5)
    out = accel.infer(trace)
    return {
        "part": "sram",
        "budget_mb": budget_mb,
        "sram_tables": len(accel.placement.sram_tables),
        "hbm_lookups": accel.hbm_lookups_per_inference,
        "lookup_s": out.lookup_s,
    }


def e9_assemble(rows: list[dict]) -> list[ResultTable]:
    tables: list[ResultTable] = []
    channels = [r for r in rows if r["part"] == "channels"]
    sram = [r for r in rows if r["part"] == "sram"]
    if channels:
        report = ResultTable(
            "E9a: lookup stage vs HBM channel count (no SRAM)",
            ("channels", "lookup stage us", "speedup vs 1 channel"),
        )
        times = []
        for row in channels:
            times.append(row["t_s"])
            report.add(row["channels"], row["t_s"] * 1e6,
                       times[0] / row["t_s"])
        assert times == sorted(times, reverse=True), \
            "more channels never hurt"
        assert times[0] / times[-1] > 4, "banking parallelism pays off"
        # Saturation: the last doubling helps less than the first.
        first_gain = times[0] / times[1]
        last_gain = times[-2] / times[-1]
        assert last_gain < first_gain
        tables.append(report)
    if sram:
        report = ResultTable(
            "E9b: SRAM placement ablation (32 HBM channels)",
            ("SRAM budget MB", "tables in SRAM", "HBM lookups/inf",
             "lookup stage us"),
        )
        times = []
        for row in sram:
            times.append(row["lookup_s"])
            report.add(row["budget_mb"], row["sram_tables"],
                       row["hbm_lookups"], row["lookup_s"] * 1e6)
        assert times[-1] <= times[0], "SRAM placement never hurts"
        tables.append(report)
    return tables


@register("e9")
def _e9_spec() -> ExperimentSpec:
    grid = tuple(
        [{"part": "channels", "channels": c} for c in _E9_CHANNELS]
        + [{"part": "sram", "budget_mb": mb} for mb in _E9_SRAM_MB]
    )
    return ExperimentSpec(
        experiment="e9",
        title="MicroRec HBM banking / SRAM placement",
        bench="bench_e9_microrec_hbm.py",
        grid=grid,
        seeds=(9,),
        prepare=e9_prepare,
        cell=e9_cell,
        assemble=e9_assemble,
        entries=(("_run_channel_sweep", ("rec_model", "rec_tables")),
                 ("_run_sram_ablation", ("rec_model", "rec_tables"))),
        context_key=scale_key(),
    )
