"""ACCL experiments (Use Case IV): e10 (collectives vs host-staged),
e11 (allreduce scaling and ring/tree crossover)."""

from __future__ import annotations

from typing import Any

import numpy as np

from ...bench import ResultTable
from .base import ExperimentSpec, register

# -- E10: collective latency vs message size (Figure 1) ----------------------

_E10_NODES = 8
_E10_SIZES = (1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 23)  # bytes per node


def _e10_buffers(nbytes: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    n_floats = max(_E10_NODES, nbytes // 8)
    return [rng.random(n_floats) for _ in range(_E10_NODES)]


def e10_cell(ctx: Any, config: dict, seed: int) -> dict:
    from ...accl import FpgaCluster, HostStagedCluster

    fpga = FpgaCluster(_E10_NODES)
    host = HostStagedCluster(_E10_NODES)
    buffers = _e10_buffers(config["nbytes"])
    fb = fpga.broadcast(buffers)
    hb = host.broadcast(buffers)
    assert np.array_equal(fb.buffers[-1], hb.buffers[-1])
    fa = fpga.allreduce(buffers)
    ha = host.allreduce(buffers)
    assert np.allclose(fa.buffers[0], ha.buffers[0])
    return {
        "nbytes": config["nbytes"],
        "message_bytes": buffers[0].nbytes,
        "bcast_fpga_s": float(fb.time_s),
        "bcast_host_s": float(hb.time_s),
        "allreduce_fpga_s": float(fa.time_s),
        "allreduce_host_s": float(ha.time_s),
    }


def e10_assemble(rows: list[dict]) -> list[ResultTable]:
    report = ResultTable(
        f"E10: collectives on {_E10_NODES} nodes, FPGA-direct vs "
        "host-staged",
        ("collective", "message B", "FPGA us", "host us", "speedup"),
    )
    small_gain = large_gain = None
    for row in rows:
        report.add("broadcast", row["message_bytes"],
                   row["bcast_fpga_s"] * 1e6, row["bcast_host_s"] * 1e6,
                   row["bcast_host_s"] / row["bcast_fpga_s"])
        gain = row["allreduce_host_s"] / row["allreduce_fpga_s"]
        if row["nbytes"] == _E10_SIZES[0]:
            small_gain = gain
        if row["nbytes"] == _E10_SIZES[-1]:
            large_gain = gain
        report.add("allreduce", row["message_bytes"],
                   row["allreduce_fpga_s"] * 1e6,
                   row["allreduce_host_s"] * 1e6, gain)
    assert small_gain is not None and large_gain is not None
    assert small_gain > 3, "stack overheads dominate small messages"
    assert large_gain > 1.5, "PCIe staging still costs at bulk sizes"
    assert small_gain > large_gain, "advantage peaks at small messages"
    return [report]


@register("e10")
def _e10_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e10",
        title="ACCL collectives vs host-staged (Fig 1)",
        bench="bench_e10_accl_collectives.py",
        grid=tuple({"nbytes": n} for n in _E10_SIZES),
        seeds=(0,),
        prepare=lambda: None,
        cell=e10_cell,
        assemble=e10_assemble,
        entries=(("_run_collectives", ()),),
    )


# -- E11: allreduce scaling and ring/tree crossover --------------------------

_E11_NODES = (2, 4, 8, 16, 32)
_E11_SMALL_FLOATS = 1 << 7
_E11_LARGE_FLOATS = 1 << 20
_E11_CROSSOVER_P = 16
_E11_CROSSOVER_SIZES = (16, 1 << 10, 1 << 14, 1 << 18, 1 << 21)


def _e11_buffers(p: int, n_floats: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    return [rng.random(n_floats) for _ in range(p)]


def e11_cell(config: dict, seed: int = 0) -> dict:
    """One scaling point (cluster size) or one crossover point (payload)."""
    from ...accl import FpgaCluster

    if config["kind"] == "scaling":
        p = config["p"]
        cluster = FpgaCluster(p)
        small = _e11_buffers(p, _E11_SMALL_FLOATS, seed)
        large = _e11_buffers(p, _E11_LARGE_FLOATS, seed)
        return {
            "kind": "scaling",
            "p": p,
            "tree_small_s": float(
                cluster.allreduce(small, algorithm="tree").time_s
            ),
            "ring_small_s": float(
                cluster.allreduce(small, algorithm="ring").time_s
            ),
            "tree_large_s": float(
                cluster.allreduce(large, algorithm="tree").time_s
            ),
            "ring_large_s": float(
                cluster.allreduce(large, algorithm="ring").time_s
            ),
        }
    p = _E11_CROSSOVER_P
    cluster = FpgaCluster(p)
    buffers = _e11_buffers(p, config["n_floats"], seed)
    ring = cluster.allreduce(buffers, algorithm="ring")
    tree = cluster.allreduce(buffers, algorithm="tree")
    assert np.allclose(ring.buffers[0], tree.buffers[0])
    return {
        "kind": "crossover",
        "n_floats": config["n_floats"],
        "ring_s": float(ring.time_s),
        "tree_s": float(tree.time_s),
        "winner": "ring" if ring.time_s < tree.time_s else "tree",
    }


def e11_assemble(rows: list[dict]) -> list[ResultTable]:
    """Rebuild the E11a/E11b tables (and shape claims) from cell dicts."""
    scaling = [r for r in rows if r["kind"] == "scaling"]
    crossover = [r for r in rows if r["kind"] == "crossover"]
    report_a = ResultTable(
        "E11a: allreduce time vs cluster size (FPGA cluster)",
        ("nodes", "tree small us", "ring small us",
         "tree 8MiB us", "ring 8MiB us"),
    )
    tree_small_series, ring_large_series = [], []
    for row in scaling:
        tree_small_series.append(row["tree_small_s"])
        ring_large_series.append(row["ring_large_s"])
        report_a.add(
            row["p"], row["tree_small_s"] * 1e6, row["ring_small_s"] * 1e6,
            row["tree_large_s"] * 1e6, row["ring_large_s"] * 1e6,
        )
    if scaling:
        # Tree latency grows with log P.
        assert tree_small_series == sorted(tree_small_series)
        # Ring bandwidth time is near-flat: 32 nodes < 2.5x the 2-node time.
        assert ring_large_series[-1] < 2.5 * ring_large_series[0]

    report_b = ResultTable(
        "E11b: ring vs tree crossover (16 nodes)",
        ("floats/node", "ring us", "tree us", "winner"),
    )
    winners = []
    for row in crossover:
        winners.append(row["winner"])
        report_b.add(
            row["n_floats"], row["ring_s"] * 1e6, row["tree_s"] * 1e6,
            row["winner"],
        )
    if crossover:
        assert winners[0] == "tree" and winners[-1] == "ring", \
            "crossover between small and large payloads"
    return [report_a, report_b]


@register("e11")
def _e11_spec() -> ExperimentSpec:
    grid = tuple(
        [{"kind": "scaling", "p": p} for p in _E11_NODES]
        + [{"kind": "crossover", "n_floats": n} for n in _E11_CROSSOVER_SIZES]
    )

    def cell(ctx: Any, config: dict, seed: int) -> dict:
        return e11_cell(config, seed)

    return ExperimentSpec(
        experiment="e11",
        title="ACCL scaling and ring/tree crossover",
        bench="bench_e11_accl_scaling.py",
        grid=grid,
        seeds=(0,),
        prepare=lambda: None,
        cell=cell,
        assemble=e11_assemble,
        entries=(("_run_scaling", ()), ("_run_crossover", ())),
    )
