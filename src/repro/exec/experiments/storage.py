"""Storage-system experiments: e17 (smart-NIC KV store), e18 (LSM
compaction offload)."""

from __future__ import annotations

from typing import Any

import numpy as np

from ...bench import ResultTable
from .base import ExperimentSpec, register

# -- E17: smart-NIC key-value serving (KV-Direct) ---------------------------

_E17_VALUE_BYTES = (16, 64, 256, 1024)


def _e17_ops(n, seed=0):
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n):
        key = int(rng.integers(0, 10_000))
        if i % 10 == 0:
            ops.append(("put", key, int(rng.integers(0, 1 << 30))))
        else:
            ops.append(("get", key, 0))
    return ops


def e17_prepare() -> dict:
    return {"ops": _e17_ops(20_000)}


def e17_cell(ctx: dict, config: dict, seed: int) -> dict:
    from ...kvstore import HashTable, SmartNicKvServer, SoftwareKvServer

    value_bytes = config["value_bytes"]
    nic = SmartNicKvServer(
        HashTable(1 << 15, 8), value_bytes=value_bytes,
        n_memory_channels=4,
    )
    sw = SoftwareKvServer(HashTable(1 << 15, 8), value_bytes=value_bytes)
    nic_out = nic.serve(ctx["ops"])
    sw_out = sw.serve(ctx["ops"])
    assert nic_out.values == sw_out.values
    return {
        "value_bytes": value_bytes,
        "nic_ops": nic_out.ops_per_sec,
        "sw_ops": sw_out.ops_per_sec,
        "gain": nic_out.ops_per_sec / sw_out.ops_per_sec,
        "nic_lat_us": nic_out.op_latency_s * 1e6,
        "sw_lat_us": sw_out.op_latency_s * 1e6,
    }


def e17_assemble(rows: list[dict]) -> list[ResultTable]:
    report = ResultTable(
        "E17: KV serving, smart NIC vs software server (90% GET)",
        ("value B", "NIC Mops/s", "SW Mops/s", "throughput x",
         "NIC lat us", "SW lat us"),
    )
    gains = []
    for row in rows:
        gains.append(row["gain"])
        report.add(
            row["value_bytes"], row["nic_ops"] / 1e6, row["sw_ops"] / 1e6,
            row["gain"], row["nic_lat_us"], row["sw_lat_us"],
        )
    assert min(gains) > 3, "NIC serving wins at every value size"
    assert max(gains) > 8, "order-of-magnitude regime exists"
    report.note("software server is capped by per-request kernel-stack work")
    return [report]


@register("e17")
def _e17_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="e17",
        title="smart-NIC KV store (KV-Direct)",
        bench="bench_e17_kvdirect.py",
        grid=tuple({"value_bytes": v} for v in _E17_VALUE_BYTES),
        seeds=(0,),
        prepare=e17_prepare,
        cell=e17_cell,
        assemble=e17_assemble,
        entries=(("_run_kvdirect", ()),),
    )


# -- E18: LSM compaction offload (X-Engine) ---------------------------------

_E18_N_WRITES = 60_000_000
_E18_EXECUTORS = (
    "cpu 4 cores",
    "cpu 8 cores",
    "cpu 16 cores",
    "fpga 2 merge trees",
)


def e18_prepare() -> dict:
    """Measure real write amplification from the LSM store."""
    from ...lsm import LsmStore

    store = LsmStore(memtable_limit=512, level0_limit=4, fanout=4)
    rng = np.random.default_rng(3)
    n = 60_000
    keys = rng.integers(0, 20_000, size=n)
    values = rng.integers(0, 1 << 30, size=n)
    store.put_batch(keys, values)
    store.flush()
    assert store.write_amplification > 1.0
    assert store.n_live_keys == len(np.unique(keys))
    return {
        "bytes_flushed": store.bytes_flushed,
        "compactions": len(store.compactions),
        "bytes_compacted": store.bytes_compacted,
        "wa": store.write_amplification,
        "live_keys": store.n_live_keys,
    }


def _e18_executor(name: str):
    from ...baselines import xeon_server
    from ...lsm import (
        CompactionExecutor,
        cpu_compaction_bandwidth,
        fpga_compaction_bandwidth,
    )

    if name == "fpga 2 merge trees":
        return CompactionExecutor(name, fpga_compaction_bandwidth(2), 0)
    cores = int(name.split()[1])
    cpu = xeon_server()
    return CompactionExecutor(
        name, cpu_compaction_bandwidth(cpu, cores), cores
    )


def e18_cell(ctx: dict, config: dict, seed: int) -> dict:
    if config["part"] == "trace":
        return {"part": "trace", **ctx}

    from ...lsm import run_offload_study

    executor = _e18_executor(config["executor"])
    result = run_offload_study(_E18_N_WRITES, ctx["wa"], executor)
    return {
        "part": "offload",
        "executor": config["executor"],
        # Carried so the E18b title can embed the measured WA from any
        # subset of offload rows.
        "wa": ctx["wa"],
        "writes_per_sec": result.sustained_writes_per_sec,
        "stall_pct": result.stall_fraction * 100,
        "total_s": result.total_time_s,
    }


def e18_assemble(rows: list[dict]) -> list[ResultTable]:
    tables: list[ResultTable] = []
    trace = [r for r in rows if r["part"] == "trace"]
    offload = [r for r in rows if r["part"] == "offload"]
    if trace:
        row = trace[0]
        report = ResultTable(
            "E18a: LSM trace (real store, 60k writes, 20k key space)",
            ("metric", "value"),
        )
        report.add("flushes (bytes)", row["bytes_flushed"])
        report.add("compactions", row["compactions"])
        report.add("compacted (bytes)", row["bytes_compacted"])
        report.add("write amplification", row["wa"])
        report.add("live keys", row["live_keys"])
        tables.append(report)
    if offload:
        wa = offload[0]["wa"]
        report = ResultTable(
            f"E18b: sustained writes under compaction (WA={wa:.1f})",
            ("executor", "M writes/s", "stall %", "total s"),
        )
        rates = {}
        for row in offload:
            rates[row["executor"]] = row["writes_per_sec"]
            report.add(row["executor"], row["writes_per_sec"] / 1e6,
                       row["stall_pct"], row["total_s"])
        assert rates["fpga 2 merge trees"] == max(rates.values()), \
            "offload sustains the highest ingest"
        report.note("fpga keeps all foreground cores AND drains at "
                    "19.2 GB/s")
        tables.append(report)
    return tables


@register("e18")
def _e18_spec() -> ExperimentSpec:
    grid = tuple(
        [{"part": "trace"}]
        + [{"part": "offload", "executor": name}
           for name in _E18_EXECUTORS]
    )
    return ExperimentSpec(
        experiment="e18",
        title="LSM compaction offload (X-Engine)",
        bench="bench_e18_lsm_offload.py",
        grid=grid,
        seeds=(3,),
        prepare=e18_prepare,
        cell=e18_cell,
        assemble=e18_assemble,
        entries=(("_run_trace", ()), ("_run_offload", ())),
    )
