"""Analytic CPU cost model used by every CPU baseline.

The tutorial's comparisons are FPGA-vs-CPU, so the reproduction needs a
CPU on the other side of each experiment.  We use a roofline-style
model of a dual-socket server:

* **streaming** work is ``max(compute time, DRAM bandwidth time)``;
* **compute** is ``ops / (cores x freq x lanes x ipc)`` with SIMD lane
  counts per element type;
* **dependent random access** costs a DRAM (or cache) latency per
  access, divided by the achievable memory-level parallelism;
* a last-level-cache capacity check switches between DRAM and LLC
  costs, which is what makes small embedding tables cheap on CPUs too.

The defaults (:func:`xeon_server`) describe a c. 2021 two-socket Xeon —
the class of machine MicroRec and Farview benchmark against.  All
returned times are in **seconds** (CPU baselines do not run inside the
picosecond event simulator; they are endpoints of analytic
comparisons).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CpuModel", "laptop", "xeon_server"]


@dataclass(frozen=True, slots=True)
class CpuModel:
    """A roofline CPU model.

    Parameters
    ----------
    name:
        Identifier for reports.
    cores:
        Physical cores usable by the workload.
    freq_hz:
        Sustained clock frequency.
    simd_bytes:
        SIMD register width in bytes (32 = AVX2, 64 = AVX-512).
    ipc:
        Sustained instructions (SIMD ops) per cycle per core.
    dram_bandwidth:
        Aggregate DRAM bandwidth, bytes/s.
    dram_latency_s:
        Loaded DRAM access latency, seconds.
    llc_bytes:
        Last-level cache capacity.
    llc_latency_s:
        LLC hit latency, seconds.
    mlp:
        Memory-level parallelism: outstanding misses one core sustains.
    """

    name: str
    cores: int = 32
    freq_hz: float = 3.0e9
    simd_bytes: int = 32
    ipc: float = 2.0
    dram_bandwidth: float = 160e9
    dram_latency_s: float = 90e-9
    llc_bytes: int = 48 * 1024 * 1024
    llc_latency_s: float = 20e-9
    mlp: float = 10.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if min(self.freq_hz, self.dram_bandwidth, self.ipc, self.mlp) <= 0:
            raise ValueError("rates must be positive")
        if min(self.dram_latency_s, self.llc_latency_s) < 0:
            raise ValueError("latencies must be >= 0")

    # -- compute -----------------------------------------------------------

    def simd_lanes(self, element_bytes: int) -> int:
        """SIMD lanes for an element size (at least 1)."""
        if element_bytes < 1:
            raise ValueError("element size must be >= 1")
        return max(1, self.simd_bytes // element_bytes)

    def compute_time_s(
        self, n_ops: int, element_bytes: int = 4, parallel: bool = True
    ) -> float:
        """Time for ``n_ops`` element operations, SIMD-vectorised.

        ``parallel=False`` restricts to one core (latency-bound paths
        such as a single recommendation inference).
        """
        if n_ops <= 0:
            return 0.0
        cores = self.cores if parallel else 1
        rate = cores * self.freq_hz * self.ipc * self.simd_lanes(element_bytes)
        return n_ops / rate

    # -- memory ------------------------------------------------------------

    def stream_time_s(self, nbytes: int, parallel: bool = True) -> float:
        """Time to stream ``nbytes`` through the cores (bandwidth-bound)."""
        if nbytes <= 0:
            return 0.0
        bandwidth = self.dram_bandwidth if parallel else self.dram_bandwidth / 4
        return nbytes / bandwidth

    def scan_time_s(
        self,
        nbytes: int,
        ops_per_byte: float = 0.25,
        element_bytes: int = 4,
        parallel: bool = True,
    ) -> float:
        """Roofline for a scan: max of bandwidth time and compute time."""
        if nbytes <= 0:
            return 0.0
        return max(
            self.stream_time_s(nbytes, parallel),
            self.compute_time_s(
                math.ceil(nbytes * ops_per_byte), element_bytes, parallel
            ),
        )

    def random_access_time_s(
        self,
        n_accesses: int,
        bytes_each: int,
        working_set_bytes: int,
        parallel: bool = True,
    ) -> float:
        """Time for ``n_accesses`` independent random reads.

        Each access costs one latency (LLC if the working set fits,
        DRAM otherwise), amortised by memory-level parallelism across
        ``cores`` when ``parallel``; wide reads add line transfers.
        """
        if n_accesses <= 0 or bytes_each <= 0:
            return 0.0
        in_llc = working_set_bytes <= self.llc_bytes
        latency = self.llc_latency_s if in_llc else self.dram_latency_s
        lines = math.ceil(bytes_each / 64)
        effective_mlp = self.mlp * (self.cores if parallel else 1)
        latency_time = n_accesses * lines * latency / effective_mlp
        bandwidth_time = (
            0.0 if in_llc else self.stream_time_s(n_accesses * lines * 64, parallel)
        )
        return max(latency_time, bandwidth_time)

    # -- composite helpers ---------------------------------------------------

    def gemv_time_s(self, rows: int, cols: int, element_bytes: int = 4,
                    parallel: bool = False) -> float:
        """Dense matrix-vector multiply (the FC layers of MicroRec's DNN).

        Counts one multiply-accumulate per element; weights stream from
        wherever they live, so the roofline also applies.
        """
        n_ops = rows * cols
        weight_bytes = n_ops * element_bytes
        return max(
            self.compute_time_s(n_ops, element_bytes, parallel),
            0.0 if weight_bytes <= self.llc_bytes
            else self.stream_time_s(weight_bytes, parallel),
        )


def xeon_server() -> CpuModel:
    """A two-socket, 32-core data-center server (the papers' baseline)."""
    return CpuModel(name="xeon-2s-32c")


def laptop() -> CpuModel:
    """A small 8-core client machine (for scale-sensitivity checks)."""
    return CpuModel(
        name="laptop-8c",
        cores=8,
        freq_hz=2.8e9,
        dram_bandwidth=40e9,
        llc_bytes=16 * 1024 * 1024,
    )
