"""CPU baseline cost models (the other side of every FPGA comparison)."""

from .cpu import CpuModel, laptop, xeon_server

__all__ = ["CpuModel", "laptop", "xeon_server"]
