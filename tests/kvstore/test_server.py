"""Tests for the smart-NIC vs software KV servers."""

import numpy as np
import pytest

from repro.kvstore.hashtable import HashTable
from repro.kvstore.server import SmartNicKvServer, SoftwareKvServer


def _ops(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n):
        key = int(rng.integers(0, 500))
        if i % 3 == 0:
            ops.append(("put", key, int(rng.integers(0, 1000))))
        else:
            ops.append(("get", key, 0))
    return ops


def test_both_servers_compute_identical_results():
    ops = _ops()
    nic = SmartNicKvServer(HashTable(1024, 8))
    sw = SoftwareKvServer(HashTable(1024, 8))
    assert nic.serve(ops).values == sw.serve(ops).values


def test_smartnic_throughput_and_latency_beat_software():
    """The KV-Direct claim: NIC-side serving is ~10x a software server
    in throughput and several-fold in latency."""
    ops = _ops(5000)
    nic_out = SmartNicKvServer(HashTable(4096, 8)).serve(ops)
    sw_out = SoftwareKvServer(HashTable(4096, 8)).serve(ops)
    assert nic_out.ops_per_sec > 5 * sw_out.ops_per_sec
    assert nic_out.op_latency_s < sw_out.op_latency_s


def test_smartnic_latency_microsecond_scale():
    out = SmartNicKvServer(HashTable(1024, 8)).serve(_ops(100))
    assert 1e-6 < out.op_latency_s < 20e-6


def test_more_memory_channels_help_memory_bound_batches():
    ops = _ops(20_000, seed=2)
    narrow = SmartNicKvServer(HashTable(1 << 15, 8), n_memory_channels=1)
    wide = SmartNicKvServer(HashTable(1 << 15, 8), n_memory_channels=8)
    t_narrow = narrow.serve(ops).batch_time_s
    t_wide = wide.serve(ops).batch_time_s
    assert t_wide <= t_narrow


def test_empty_batch():
    out = SmartNicKvServer(HashTable(64, 4)).serve([])
    assert out.values == []
    assert out.batch_time_s == 0.0
    out_sw = SoftwareKvServer(HashTable(64, 4)).serve([])
    assert out_sw.ops_per_sec == 0.0


def test_delete_through_server():
    nic = SmartNicKvServer(HashTable(64, 4))
    out = nic.serve([("put", 1, 10), ("delete", 1, 0), ("get", 1, 0)])
    assert out.values == [10, 1, None]


def test_unknown_op_rejected():
    nic = SmartNicKvServer(HashTable(64, 4))
    with pytest.raises(ValueError):
        nic.serve([("scan", 0, 0)])


def test_validation():
    with pytest.raises(ValueError):
        SmartNicKvServer(HashTable(64, 4), n_memory_channels=0)
    with pytest.raises(ValueError):
        SmartNicKvServer(HashTable(64, 4), value_bytes=0)
    with pytest.raises(ValueError):
        SoftwareKvServer(HashTable(64, 4), value_bytes=0)
