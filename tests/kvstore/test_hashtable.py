"""Unit and property tests for the bucketized hash table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.hashtable import HashTable


def test_put_get_delete_roundtrip():
    table = HashTable(n_buckets=64, slots_per_bucket=4)
    for i in range(100):
        table.put(i, i * 3)
    assert table.n_entries == 100
    for i in range(100):
        assert table.get(i) == i * 3
    assert table.get(12345) is None
    assert table.delete(50)
    assert table.get(50) is None
    assert not table.delete(50)
    assert table.n_entries == 99


def test_overwrite_does_not_grow():
    table = HashTable(n_buckets=16, slots_per_bucket=2)
    table.put(7, 1)
    table.put(7, 2)
    assert table.get(7) == 2
    assert table.n_entries == 1


def test_deleted_slots_are_reused():
    table = HashTable(n_buckets=4, slots_per_bucket=2)
    for i in range(8):
        table.put(i, i)
    with pytest.raises(MemoryError):
        table.put(100, 1)
    table.delete(3)
    table.put(100, 1)  # must fit in the freed slot
    assert table.get(100) == 1


def test_full_table_raises():
    table = HashTable(n_buckets=2, slots_per_bucket=2)
    for i in range(4):
        table.put(i, i)
    assert table.load_factor == 1.0
    with pytest.raises(MemoryError):
        table.put(99, 0)


def test_validation():
    with pytest.raises(ValueError):
        HashTable(n_buckets=0)
    with pytest.raises(ValueError):
        HashTable(n_buckets=3)  # not a power of two
    with pytest.raises(ValueError):
        HashTable(slots_per_bucket=0)
    table = HashTable(16, 2)
    with pytest.raises(ValueError):
        table.put(np.iinfo(np.int64).min, 1)


def test_probe_accounting():
    table = HashTable(n_buckets=64, slots_per_bucket=8)
    assert table.mean_probes_per_op == 0.0
    for i in range(200):
        table.put(i, i)
    for i in range(200):
        table.get(i)
    # Low load factor: almost every op is one bucket probe.
    assert 1.0 <= table.mean_probes_per_op < 1.5


def test_probes_grow_with_load():
    light = HashTable(n_buckets=256, slots_per_bucket=4)
    heavy = HashTable(n_buckets=64, slots_per_bucket=4)
    for i in range(240):
        light.put(i, i)
        heavy.put(i, i)  # ~94% load
    assert heavy.mean_probes_per_op >= light.mean_probes_per_op


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "delete"]),
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=-100, max_value=100),
        ),
        max_size=150,
    )
)
def test_property_matches_dict_model(ops):
    table = HashTable(n_buckets=64, slots_per_bucket=4)
    model: dict[int, int] = {}
    for op, key, value in ops:
        if op == "put":
            table.put(key, value)
            model[key] = value
        elif op == "get":
            assert table.get(key) == model.get(key)
        else:
            assert table.delete(key) == (key in model)
            model.pop(key, None)
    for key in range(41):
        assert table.get(key) == model.get(key)
    assert table.n_entries == len(model)
