"""Unit tests for the Zipf sampler."""

import numpy as np
import pytest

from repro.workloads.zipf import ZipfSampler


def _sampler(n=1000, s=1.0, seed=1):
    return ZipfSampler(n, s, np.random.default_rng(seed))


def test_samples_in_range():
    sampler = _sampler()
    ids = sampler.sample(10_000)
    assert ids.min() >= 0
    assert ids.max() < sampler.n
    assert ids.dtype == np.int64


def test_probabilities_sum_to_one_and_descend():
    sampler = _sampler(s=1.2)
    p = sampler.probabilities
    assert p.sum() == pytest.approx(1.0)
    assert (np.diff(p) <= 0).all()


def test_zero_skew_is_uniform():
    sampler = _sampler(n=10, s=0.0)
    assert np.allclose(sampler.probabilities, 0.1)


def test_skew_concentrates_mass():
    mild = _sampler(s=0.5)
    strong = _sampler(s=1.5)
    assert strong.hot_set_fraction(10) > mild.hot_set_fraction(10)
    assert mild.hot_set_fraction(0) == 0.0
    assert strong.hot_set_fraction(strong.n) == pytest.approx(1.0)


def test_empirical_frequency_matches_skew():
    sampler = _sampler(n=100, s=1.0, seed=3)
    ids = sampler.sample(200_000)
    counts = np.bincount(ids, minlength=100)
    # Hottest id should be roughly n-th root more frequent; check rank-1
    # vs rank-10 ratio approximates 10 (Zipf s=1) within a wide margin.
    ratio = counts[0] / max(counts[9], 1)
    assert 5 < ratio < 20


def test_determinism_with_same_seed():
    a = _sampler(seed=42).sample(100)
    b = _sampler(seed=42).sample(100)
    assert (a == b).all()


def test_invalid_parameters():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0, rng)
    with pytest.raises(ValueError):
        ZipfSampler(10, -0.1, rng)
    with pytest.raises(ValueError):
        _sampler().sample(-1)


def test_draws_above_cdf_top_stay_in_range():
    """Regression: float cumsum can leave cdf[-1] < 1.0; a uniform draw
    landing in the gap used to searchsorted to n — one past the last id."""
    sampler = _sampler(n=1000, s=0.99)
    # Simulate the cumsum undershoot explicitly, then draw above it.
    sampler._cdf = sampler._cdf.copy()
    sampler._cdf[-1] = 1.0 - 1e-9

    class _HighRng:
        def random(self, size):
            return np.full(size, np.nextafter(1.0, 0.0))

    sampler._rng = _HighRng()
    ids = sampler.sample(64)
    assert (ids >= 0).all()
    assert (ids < sampler.n).all()
    assert (ids == sampler.n - 1).all()


def test_cdf_top_is_pinned_to_one():
    """The constructor must not leave a probability gap above cdf[-1]."""
    for n, s in ((10, 0.0), (1000, 0.99), (100_000, 1.2)):
        sampler = _sampler(n=n, s=s)
        assert sampler._cdf[-1] == 1.0
