"""Unit tests for recommendation model specs and lookup traces."""

import numpy as np
import pytest

from repro.workloads.traces import (
    RecModelSpec,
    lookup_trace,
    production_like_model,
)


def test_spec_derived_quantities():
    spec = RecModelSpec(
        table_rows=(100, 1000), embedding_dim=8, mlp_layers=(64, 32)
    )
    assert spec.n_tables == 2
    assert spec.embedding_bytes == 32
    assert spec.table_bytes(1) == 1000 * 32
    assert spec.total_embedding_bytes == (100 + 1000) * 32
    assert spec.concat_width == 16
    # MLP MACs: 16*64 + 64*32 + 32*1.
    assert spec.mlp_flops() == 16 * 64 + 64 * 32 + 32


def test_spec_validation():
    with pytest.raises(ValueError):
        RecModelSpec(table_rows=())
    with pytest.raises(ValueError):
        RecModelSpec(table_rows=(0,))
    with pytest.raises(ValueError):
        RecModelSpec(table_rows=(10,), embedding_dim=0)


def test_production_like_model_shape():
    spec = production_like_model(n_tables=47, max_rows=1_000_000)
    assert spec.n_tables == 47
    rows = spec.table_rows
    assert min(rows) >= 10
    assert max(rows) <= 1_000_000
    # Log-uniform spread: both small and large tables present.
    assert min(rows) < 1000 < max(rows)
    # Sorted ascending by construction.
    assert list(rows) == sorted(rows)


def test_lookup_trace_shape_and_bounds():
    spec = production_like_model(n_tables=5, seed=1)
    trace = lookup_trace(spec, batch_size=64, seed=2)
    assert trace.shape == (64, 5)
    for t in range(5):
        assert trace[:, t].max() < spec.table_rows[t]
        assert trace[:, t].min() >= 0


def test_lookup_trace_deterministic():
    spec = production_like_model(n_tables=3)
    a = lookup_trace(spec, 32, seed=5)
    b = lookup_trace(spec, 32, seed=5)
    assert np.array_equal(a, b)


def test_trace_skew_hits_hot_rows():
    spec = RecModelSpec(table_rows=(10_000,))
    skewed = lookup_trace(spec, 5000, skew=1.2, seed=3)
    uniform = lookup_trace(spec, 5000, skew=0.0, seed=3)
    assert np.median(skewed) < np.median(uniform)


def test_invalid_batch():
    spec = RecModelSpec(table_rows=(10,))
    with pytest.raises(ValueError):
        lookup_trace(spec, -1)
