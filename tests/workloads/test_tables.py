"""Unit tests for relational workload generators."""

import numpy as np
import pytest

from repro.workloads.tables import grouped_table, orders_table, uniform_table


def test_uniform_table_shapes():
    t = uniform_table(1000, n_payload_cols=3)
    assert set(t) == {"key", "val0", "val1", "val2"}
    assert all(col.shape == (1000,) for col in t.values())
    assert t["key"].dtype == np.int64


def test_uniform_table_selectivity_dial():
    t = uniform_table(100_000, key_max=1_000_000, seed=2)
    for s in (0.01, 0.1, 0.5):
        frac = (t["key"] < s * 1_000_000).mean()
        assert frac == pytest.approx(s, abs=0.01)


def test_orders_table_columns():
    t = orders_table(5000, n_customers=100)
    assert t["customer_id"].max() < 100
    assert (t["amount"] >= 0).all()
    assert (t["quantity"] >= 1).all()
    assert len(np.unique(t["order_id"])) == 5000


def test_grouped_table_uniform_vs_skewed():
    uniform = grouped_table(50_000, n_groups=100, skew=0.0, seed=3)
    skewed = grouped_table(50_000, n_groups=100, skew=1.2, seed=3)
    cu = np.bincount(uniform["group"], minlength=100)
    cs = np.bincount(skewed["group"], minlength=100)
    assert cs.max() > 3 * cu.max()
    assert skewed["group"].max() < 100


def test_determinism():
    a = uniform_table(100, seed=7)
    b = uniform_table(100, seed=7)
    assert np.array_equal(a["key"], b["key"])


def test_invalid_parameters():
    with pytest.raises(ValueError):
        uniform_table(-1)
    with pytest.raises(ValueError):
        orders_table(10, n_customers=0)
    with pytest.raises(ValueError):
        grouped_table(10, n_groups=0)


def test_empty_tables_allowed():
    t = uniform_table(0)
    assert t["key"].shape == (0,)
