"""Unit tests for vector dataset generation and exact k-NN."""

import numpy as np
import pytest

from repro.workloads.vectors import brute_force_knn, clustered_dataset


def test_brute_force_agrees_with_naive():
    rng = np.random.default_rng(5)
    base = rng.random((200, 8), dtype=np.float32)
    queries = rng.random((10, 8), dtype=np.float32)
    got = brute_force_knn(base, queries, k=5, block=3)
    for qi in range(queries.shape[0]):
        dists = ((base - queries[qi]) ** 2).sum(axis=1)
        want = np.argsort(dists, kind="stable")[:5]
        assert set(got[qi]) == set(want)
        # Result must also be distance-ordered.
        got_d = dists[got[qi]]
        assert (np.diff(got_d) >= -1e-6).all()


def test_brute_force_k_validation():
    base = np.zeros((5, 2), dtype=np.float32)
    q = np.zeros((1, 2), dtype=np.float32)
    with pytest.raises(ValueError):
        brute_force_knn(base, q, k=0)
    with pytest.raises(ValueError):
        brute_force_knn(base, q, k=6)


def test_clustered_dataset_shapes_and_dtypes():
    ds = clustered_dataset(n=500, dim=16, n_queries=20, gt_k=5, seed=1)
    assert ds.base.shape == (500, 16)
    assert ds.queries.shape == (20, 16)
    assert ds.ground_truth.shape == (20, 5)
    assert ds.base.dtype == np.float32
    assert ds.n == 500 and ds.dim == 16
    assert ds.n_queries == 20 and ds.gt_k == 5


def test_clustered_dataset_deterministic():
    a = clustered_dataset(n=100, dim=4, n_queries=5, seed=9)
    b = clustered_dataset(n=100, dim=4, n_queries=5, seed=9)
    assert np.array_equal(a.base, b.base)
    assert np.array_equal(a.ground_truth, b.ground_truth)


def test_queries_have_close_neighbors():
    """Perturbed-base queries must find their source cluster."""
    ds = clustered_dataset(
        n=1000, dim=8, n_queries=50, gt_k=1, cluster_std=0.05, seed=2
    )
    nn = ds.ground_truth[:, 0]
    d_nn = ((ds.base[nn] - ds.queries) ** 2).sum(axis=1)
    rng = np.random.default_rng(0)
    random_ids = rng.integers(0, ds.n, size=ds.n_queries)
    d_rand = ((ds.base[random_ids] - ds.queries) ** 2).sum(axis=1)
    assert d_nn.mean() < d_rand.mean() / 5


def test_invalid_dataset_parameters():
    with pytest.raises(ValueError):
        clustered_dataset(n=0, dim=4, n_queries=1)
    with pytest.raises(ValueError):
        clustered_dataset(n=10, dim=4, n_queries=1, n_clusters=0)
