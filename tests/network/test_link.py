"""Unit tests for the physical link model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import LinkModel, ethernet_10g, ethernet_100g


def test_bandwidth_conversion():
    link = ethernet_100g()
    assert link.bandwidth_bytes_per_sec == pytest.approx(12.5e9)


def test_serialization_scales_with_size():
    link = ethernet_100g()
    # 12.5 GB at 12.5 GB/s = 1 s, ignoring framing (<2% for 4 KiB MTU).
    t = link.serialization_ps(12_500_000_000)
    assert t == pytest.approx(1e12, rel=0.03)


def test_framing_overhead_dominates_tiny_messages():
    link = ethernet_100g()
    # A 1-byte message still ships a whole frame header.
    assert link.serialization_ps(1) > link.serialization_ps(0) / 2
    assert link.frames_for(0) == 1
    assert link.frames_for(1) == 1
    assert link.frames_for(4096) == 1
    assert link.frames_for(4097) == 2


def test_transfer_includes_propagation():
    link = ethernet_100g(propagation_ps=1_000_000)
    assert link.transfer_ps(0) >= 1_000_000


def test_goodput_approaches_line_rate_for_large_messages():
    link = ethernet_100g()
    small = link.goodput_bytes_per_sec(64)
    large = link.goodput_bytes_per_sec(16 * 1024 * 1024)
    assert small < large
    assert large == pytest.approx(link.bandwidth_bytes_per_sec, rel=0.05)
    assert link.goodput_bytes_per_sec(0) == 0.0


def test_100g_is_10x_10g():
    big = ethernet_100g().serialization_ps(1_000_000)
    small = ethernet_10g().serialization_ps(1_000_000)
    assert small == pytest.approx(10 * big, rel=0.01)


def test_invalid_link_parameters():
    with pytest.raises(ValueError):
        LinkModel("bad", bandwidth_bits_per_sec=0)
    with pytest.raises(ValueError):
        LinkModel("bad", bandwidth_bits_per_sec=1e9, mtu_bytes=0)
    with pytest.raises(ValueError):
        LinkModel("bad", bandwidth_bits_per_sec=1e9, propagation_ps=-1)


@settings(max_examples=50, deadline=None)
@given(nbytes=st.integers(min_value=0, max_value=1 << 28))
def test_property_transfer_time_monotone(nbytes):
    link = ethernet_100g()
    assert link.transfer_ps(nbytes) <= link.transfer_ps(nbytes + 4096)
