"""Unit tests for the switched fabric and node ports."""

import pytest

from repro.core.sim import Simulator
from repro.network.fabric import NodePort, SwitchedFabric
from repro.network.protocol import fpga_rdma


def _fabric(n=4):
    return SwitchedFabric(fpga_rdma(), n_nodes=n)


def test_message_adds_switch_latency():
    fab = _fabric()
    direct = fab.protocol.message_ps(1024)
    assert fab.message_ps(0, 1, 1024) == direct + fab.switch_latency_ps


def test_self_message_free():
    assert _fabric().message_ps(2, 2, 1 << 20) == 0


def test_node_range_checked():
    fab = _fabric(2)
    with pytest.raises(IndexError):
        fab.message_ps(0, 5, 10)
    with pytest.raises(IndexError):
        fab.message_ps(-1, 0, 10)


def test_round_trip():
    fab = _fabric()
    assert fab.round_trip_ps(0, 1, 64, 4096) == fab.message_ps(
        0, 1, 64
    ) + fab.message_ps(1, 0, 4096)


def test_parallel_disjoint_transfers_do_not_add():
    fab = _fabric(8)
    n = 1 << 20
    one = fab.parallel_step_ps([(0, 1, n)])
    four = fab.parallel_step_ps([(0, 1, n), (2, 3, n), (4, 5, n), (6, 7, n)])
    assert four == one


def test_shared_port_serialises():
    fab = _fabric(4)
    n = 1 << 20
    one = fab.parallel_step_ps([(0, 1, n)])
    fan_out = fab.parallel_step_ps([(0, 1, n), (0, 2, n)])
    assert fan_out > one
    # Incast at a destination also serialises.
    fan_in = fab.parallel_step_ps([(1, 0, n), (2, 0, n)])
    assert fan_in > one


def test_empty_and_self_steps_are_free():
    fab = _fabric()
    assert fab.parallel_step_ps([]) == 0
    assert fab.parallel_step_ps([(1, 1, 1 << 20)]) == 0


def test_invalid_fabric():
    with pytest.raises(ValueError):
        SwitchedFabric(fpga_rdma(), n_nodes=0)
    with pytest.raises(ValueError):
        SwitchedFabric(fpga_rdma(), n_nodes=2, switch_latency_ps=-1)


def test_node_port_serialises_sends():
    sim = Simulator()
    fab = _fabric()
    port = NodePort(sim, fab, node=0)
    arrivals = []

    def sender(sim, port):
        ev1 = port.send(1, 1 << 20)
        ev2 = port.send(2, 1 << 20)
        t1 = yield ev1
        arrivals.append(sim.now)
        yield ev2
        arrivals.append(sim.now)

    sim.spawn(sender(sim, port))
    sim.run()
    serialization = fab.protocol.link.serialization_ps(1 << 20)
    # Second message leaves one serialization later than the first.
    assert arrivals[1] - arrivals[0] == serialization
    assert port.messages_sent == 2
    assert port.bytes_sent == 2 << 20
