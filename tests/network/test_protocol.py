"""Unit tests for transport protocol models."""

import pytest

from repro.network.link import ethernet_100g
from repro.network.protocol import ProtocolModel, fpga_rdma, fpga_tcp, kernel_tcp


def test_overhead_ordering_rdma_fpga_kernel():
    """The tutorial's stack argument: RDMA < FPGA TCP << kernel TCP."""
    n = 64
    t_rdma = fpga_rdma().message_ps(n)
    t_ftcp = fpga_tcp().message_ps(n)
    t_ktcp = kernel_tcp().message_ps(n)
    assert t_rdma < t_ftcp < t_ktcp
    assert t_ktcp > 5 * t_rdma


def test_small_message_latency_microseconds():
    # One-sided RDMA small message: ~1.5-2 us end to end.
    t = fpga_rdma().message_ps(64)
    assert 1_000_000 < t < 3_000_000


def test_round_trip_is_two_messages():
    p = fpga_rdma()
    assert p.round_trip_ps(64, 4096) == p.message_ps(64) + p.message_ps(4096)


def test_large_streams_converge_across_stacks():
    """At bulk sizes all 100G stacks approach wire time; the kernel
    stack stays behind because of per-frame CPU work."""
    n = 1 << 30
    wire = ethernet_100g().transfer_ps(n)
    assert fpga_rdma().stream_ps(n) == pytest.approx(wire, rel=0.01)
    assert fpga_tcp().stream_ps(n) == pytest.approx(wire, rel=0.01)


def test_goodput_kernel_tcp_cannot_sustain_line_rate():
    """Per-frame CPU overhead caps kernel TCP goodput well below 100G."""
    msg = 64 * 1024
    g_kernel = kernel_tcp().goodput_bytes_per_sec(msg)
    g_fpga = fpga_tcp().goodput_bytes_per_sec(msg)
    line = ethernet_100g().bandwidth_bytes_per_sec
    assert g_fpga > 0.8 * line
    # A single kernel-TCP flow lands around 30-50 Gbps on 100G hardware.
    assert g_kernel < 0.6 * line
    assert g_kernel < 0.6 * g_fpga


def test_rdma_is_one_sided():
    assert fpga_rdma().one_sided
    assert not fpga_tcp().one_sided


def test_zero_payload_message_still_costs_overheads():
    p = fpga_tcp()
    assert p.message_ps(0) >= p.send_overhead_ps + p.recv_overhead_ps


def test_negative_overhead_rejected():
    with pytest.raises(ValueError):
        ProtocolModel(
            name="bad",
            link=ethernet_100g(),
            send_overhead_ps=-1,
            recv_overhead_ps=0,
        )


def test_goodput_zero_bytes():
    assert fpga_tcp().goodput_bytes_per_sec(0) == 0.0
