"""Functional correctness of the collective schedules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accl.collectives import (
    allgather_ring,
    allreduce_ring,
    allreduce_tree,
    broadcast_flat,
    broadcast_tree,
    expected_steps_ring,
    expected_steps_tree,
    gather_flat,
    reduce_tree,
    scatter_flat,
)


def _buffers(p, n=8, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random(n) for _ in range(p)]


@pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
@pytest.mark.parametrize("algo", [broadcast_tree, broadcast_flat])
def test_broadcast_delivers_root_everywhere(p, algo):
    buffers = _buffers(p)
    out = algo(buffers, root=0)
    for b in out.buffers:
        assert np.array_equal(b, buffers[0])


def test_broadcast_nonzero_root():
    buffers = _buffers(5)
    out = broadcast_tree(buffers, root=3)
    for b in out.buffers:
        assert np.array_equal(b, buffers[3])


def test_broadcast_tree_takes_log_steps():
    for p in (2, 4, 8, 16):
        out = broadcast_tree(_buffers(p))
        assert out.n_steps == math.ceil(math.log2(p))
    flat = broadcast_flat(_buffers(8))
    assert flat.n_steps == 1
    assert len(flat.steps[0]) == 7


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
def test_reduce_tree_sums_to_root(p):
    buffers = _buffers(p, seed=1)
    out = reduce_tree(buffers, root=0)
    want = np.sum(buffers, axis=0)
    assert np.allclose(out.buffers[0], want)


def test_reduce_tree_nonzero_root():
    buffers = _buffers(6, seed=2)
    out = reduce_tree(buffers, root=4)
    assert np.allclose(out.buffers[4], np.sum(buffers, axis=0))


def test_scatter_distributes_chunks():
    buffers = _buffers(4, n=16, seed=3)
    out = scatter_flat(buffers, root=1)
    for node in range(4):
        want = buffers[1][node * 4:(node + 1) * 4]
        assert np.array_equal(out.buffers[node], want)
    with pytest.raises(ValueError):
        scatter_flat(_buffers(3, n=16))  # 16 % 3 != 0


def test_gather_concatenates_in_rank_order():
    buffers = _buffers(4, n=4, seed=4)
    out = gather_flat(buffers, root=2)
    assert np.array_equal(out.buffers[2], np.concatenate(buffers))
    # Non-root buffers untouched.
    assert np.array_equal(out.buffers[0], buffers[0])


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
def test_allgather_every_node_has_everything(p):
    buffers = _buffers(p, n=4, seed=5)
    out = allgather_ring(buffers)
    want = np.concatenate(buffers)
    for b in out.buffers:
        assert np.array_equal(b, want)
    assert out.n_steps == p - 1


@pytest.mark.parametrize("p", [1, 2, 4, 8])
@pytest.mark.parametrize("algo", [allreduce_ring, allreduce_tree])
def test_allreduce_sum_everywhere(p, algo):
    buffers = _buffers(p, n=8, seed=6)
    out = algo(buffers)
    want = np.sum(buffers, axis=0)
    for b in out.buffers:
        assert np.allclose(b, want)


def test_allreduce_ring_needs_divisible_buffers():
    with pytest.raises(ValueError):
        allreduce_ring(_buffers(3, n=8))


def test_allreduce_step_counts():
    for p in (2, 4, 8):
        ring = allreduce_ring(_buffers(p, n=p * 2))
        tree = allreduce_tree(_buffers(p))
        assert ring.n_steps == expected_steps_ring(p)
        assert tree.n_steps == expected_steps_tree(p)


def test_ring_moves_fewer_bytes_per_node_than_tree():
    p, n = 8, 64
    ring = allreduce_ring(_buffers(p, n=n))
    tree = allreduce_tree(_buffers(p, n=n))
    nbytes = _buffers(p, n=n)[0].nbytes
    # Ring: 2(P-1) chunks of n/P per node ~ 2n bytes; tree moves whole
    # buffers every step.
    ring_per_node = ring.bytes_on_wire / p
    assert ring_per_node < 2.1 * nbytes
    assert tree.bytes_on_wire > ring_per_node * p / 2


def test_validation_errors():
    with pytest.raises(ValueError):
        broadcast_tree([])
    with pytest.raises(IndexError):
        broadcast_tree(_buffers(3), root=3)
    with pytest.raises(ValueError):
        reduce_tree([np.zeros(3), np.zeros(4)])


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_allreduce_tree_matches_numpy(p, seed):
    buffers = _buffers(p, n=6, seed=seed)
    out = allreduce_tree(buffers)
    want = np.sum(buffers, axis=0)
    for b in out.buffers:
        assert np.allclose(b, want)


@pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
def test_recursive_doubling_sum_everywhere(p):
    from repro.accl.collectives import allreduce_recursive_doubling

    buffers = _buffers(p, n=8, seed=9)
    out = allreduce_recursive_doubling(buffers)
    want = np.sum(buffers, axis=0)
    for b in out.buffers:
        assert np.allclose(b, want)
    assert out.n_steps == (p - 1).bit_length() if p > 1 else out.n_steps == 0


def test_recursive_doubling_needs_power_of_two():
    from repro.accl.collectives import allreduce_recursive_doubling

    with pytest.raises(ValueError):
        allreduce_recursive_doubling(_buffers(6))


def test_recursive_doubling_halves_tree_steps():
    from repro.accl.collectives import (
        allreduce_recursive_doubling,
        allreduce_tree,
    )

    p = 16
    rd = allreduce_recursive_doubling(_buffers(p))
    tree = allreduce_tree(_buffers(p))
    assert rd.n_steps == tree.n_steps // 2
