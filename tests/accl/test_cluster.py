"""Timing comparisons: FPGA-direct vs host-staged collectives."""

import numpy as np
import pytest

from repro.accl.cluster import FpgaCluster, HostStagedCluster


def _buffers(p, n=1024, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random(n) for _ in range(p)]


def test_cluster_validation():
    with pytest.raises(ValueError):
        FpgaCluster(0)
    cluster = FpgaCluster(4)
    with pytest.raises(ValueError):
        cluster.broadcast(_buffers(3))
    with pytest.raises(ValueError):
        cluster.allreduce(_buffers(4), algorithm="quantum")


def test_broadcast_functional_and_timed():
    cluster = FpgaCluster(8)
    buffers = _buffers(8)
    out = cluster.broadcast(buffers, root=2)
    for b in out.buffers:
        assert np.array_equal(b, buffers[2])
    assert out.time_s > 0


def test_tree_broadcast_beats_flat_on_large_clusters():
    cluster = FpgaCluster(16)
    buffers = _buffers(16, n=1 << 18)
    tree = cluster.broadcast(buffers, algorithm="tree")
    flat = cluster.broadcast(buffers, algorithm="flat")
    assert tree.time_s < flat.time_s


def test_allreduce_fpga_functional():
    cluster = FpgaCluster(4)
    buffers = _buffers(4, n=64)
    out = cluster.allreduce(buffers)
    want = np.sum(buffers, axis=0)
    for b in out.buffers:
        assert np.allclose(b, want)


def test_fpga_beats_host_staged():
    """The ACCL claim: on-card collectives beat host-staged by a wide
    margin for both small (latency) and large (bandwidth) payloads."""
    p = 8
    for n in (256, 1 << 20):
        buffers = _buffers(p, n=n)
        fpga = FpgaCluster(p).allreduce(buffers)
        host = HostStagedCluster(p).allreduce(buffers)
        assert np.allclose(fpga.buffers[0], host.buffers[0])
        assert fpga.time_s < host.time_s
    # Small-message latency gap should be large (stack overheads).
    small_fpga = FpgaCluster(p).allreduce(_buffers(p, 256))
    small_host = HostStagedCluster(p).allreduce(_buffers(p, 256))
    assert small_host.time_s / small_fpga.time_s > 3


def test_ring_vs_tree_crossover():
    """Small payloads favor the tree (fewer steps), large favor the
    ring (less data per step)."""
    p = 16
    cluster = FpgaCluster(p)
    small = _buffers(p, n=p)  # 128 B per node
    large = _buffers(p, n=1 << 20)  # 8 MiB per node
    assert (
        cluster.allreduce(small, algorithm="tree").time_s
        < cluster.allreduce(small, algorithm="ring").time_s
    )
    assert (
        cluster.allreduce(large, algorithm="ring").time_s
        < cluster.allreduce(large, algorithm="tree").time_s
    )


def test_scatter_gather_roundtrip():
    cluster = FpgaCluster(4)
    buffers = _buffers(4, n=16, seed=1)
    scattered = cluster.scatter(buffers, root=0)
    gathered = cluster.gather(scattered.buffers, root=0)
    assert np.array_equal(gathered.buffers[0], buffers[0])
    assert scattered.time_s > 0 and gathered.time_s > 0


def test_allgather_timed():
    cluster = FpgaCluster(4)
    out = cluster.allgather(_buffers(4, n=8))
    assert out.time_s > 0
    assert all(len(b) == 32 for b in out.buffers)


def test_reduce_root_receives_sum():
    cluster = FpgaCluster(6)
    buffers = _buffers(6, n=32, seed=2)
    out = cluster.reduce(buffers, root=5)
    assert np.allclose(out.buffers[5], np.sum(buffers, axis=0))


def test_single_node_collectives_are_free():
    cluster = FpgaCluster(1)
    buffers = _buffers(1, n=8)
    assert cluster.allreduce(buffers).time_s == 0.0
    assert cluster.broadcast(buffers).time_s == 0.0


def test_scaling_more_nodes_costs_more_time_for_tree():
    small = FpgaCluster(4).allreduce(_buffers(4, n=1 << 12), algorithm="tree")
    large = FpgaCluster(32).allreduce(_buffers(32, n=1 << 12), algorithm="tree")
    assert large.time_s > small.time_s


def test_ring_allreduce_time_roughly_constant_in_cluster_size():
    """Bandwidth-optimal ring: per-node bytes ~2n regardless of P, so
    time grows only through latency terms."""
    n = 1 << 22
    t4 = FpgaCluster(4).allreduce(_buffers(4, n=n)).time_s
    t16 = FpgaCluster(16).allreduce(_buffers(16, n=n)).time_s
    assert t16 < 2.5 * t4


def test_recursive_doubling_on_cluster_beats_tree_for_small_messages():
    cluster = FpgaCluster(16)
    buffers = _buffers(16, n=64)
    rd = cluster.allreduce(buffers, algorithm="recursive-doubling")
    tree = cluster.allreduce(buffers, algorithm="tree")
    assert np.allclose(rd.buffers[0], tree.buffers[0])
    assert rd.time_s < tree.time_s
