"""Unit and property tests for banked (multi-channel) memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.banked import BankedMemory
from repro.memory.model import MemoryModel
from repro.memory.technologies import hbm2_channel


def _small_channel(capacity=1000):
    return MemoryModel(
        name="ch",
        capacity_bytes=capacity,
        latency_ps=100,
        bandwidth_bytes_per_sec=1e9,
        min_burst_bytes=1,
        random_efficiency=1.0,
    )


def test_uniform_construction():
    bank = BankedMemory.uniform(_small_channel(), 4)
    assert bank.n_channels == 4
    assert bank.capacity_bytes == 4000
    assert bank.aggregate_bandwidth == pytest.approx(4e9)


def test_least_loaded_allocation_balances_traffic():
    bank = BankedMemory.uniform(_small_channel(), 4)
    for i in range(8):
        bank.allocate(f"t{i}", nbytes=10, expected_traffic=1.0)
    channels = [bank.allocation(f"t{i}").channel for i in range(8)]
    # Two regions per channel.
    assert sorted(channels) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_skewed_traffic_spreads_hot_regions():
    bank = BankedMemory.uniform(_small_channel(), 2)
    bank.allocate("hot", nbytes=10, expected_traffic=100.0)
    bank.allocate("cold1", nbytes=10, expected_traffic=1.0)
    bank.allocate("cold2", nbytes=10, expected_traffic=1.0)
    hot_ch = bank.allocation("hot").channel
    assert bank.allocation("cold1").channel != hot_ch
    assert bank.allocation("cold2").channel != hot_ch


def test_explicit_channel_placement():
    bank = BankedMemory.uniform(_small_channel(), 4)
    alloc = bank.allocate("t", nbytes=10, channel=3)
    assert alloc.channel == 3
    with pytest.raises(IndexError):
        bank.allocate("t2", nbytes=10, channel=9)


def test_capacity_overflow_raises():
    bank = BankedMemory.uniform(_small_channel(capacity=100), 2)
    bank.allocate("a", nbytes=100)
    bank.allocate("b", nbytes=100)
    with pytest.raises(MemoryError):
        bank.allocate("c", nbytes=1)


def test_free_releases_capacity():
    bank = BankedMemory.uniform(_small_channel(capacity=100), 1)
    bank.allocate("a", nbytes=100)
    bank.free("a")
    bank.allocate("b", nbytes=100)  # must not raise
    with pytest.raises(KeyError):
        bank.free("a")


def test_duplicate_key_rejected():
    bank = BankedMemory.uniform(_small_channel(), 1)
    bank.allocate("a", nbytes=1)
    with pytest.raises(ValueError):
        bank.allocate("a", nbytes=1)


def test_batch_lookup_makespan_is_busiest_channel():
    bank = BankedMemory.uniform(_small_channel(), 2)
    bank.allocate("a", nbytes=10, channel=0)
    bank.allocate("b", nbytes=10, channel=0)
    bank.allocate("c", nbytes=10, channel=1)
    ch = bank.channels[0]
    # Channel 0 serves a and b (20 accesses), channel 1 serves c (5).
    t = bank.batch_lookup_time_ps({"a": (10, 8), "b": (10, 8), "c": (5, 8)})
    per_access = ch.batch_random_time_ps(1, 8) - ch.latency_ps
    assert t == ch.latency_ps + 20 * per_access


def test_batch_lookup_unallocated_region_raises():
    bank = BankedMemory.uniform(_small_channel(), 1)
    with pytest.raises(KeyError):
        bank.batch_lookup_time_ps({"ghost": (1, 8)})


def test_empty_batch_costs_nothing():
    bank = BankedMemory.uniform(_small_channel(), 2)
    bank.allocate("a", nbytes=10)
    assert bank.batch_lookup_time_ps({}) == 0
    assert bank.batch_lookup_time_ps({"a": (0, 8)}) == 0


def test_striped_scan_uses_aggregate_bandwidth():
    bank = BankedMemory.uniform(_small_channel(), 4)
    one_channel = bank.channels[0].stream_time_ps(4000)
    striped = bank.striped_scan_time_ps(4000)
    # 4 channels in parallel: ~4x faster (latency aside).
    assert striped < one_channel
    assert striped == bank.channels[0].stream_time_ps(1000)


def test_region_scan_single_channel():
    bank = BankedMemory.uniform(_small_channel(), 2)
    bank.allocate("a", nbytes=500)
    assert bank.region_scan_time_ps("a") == bank.channels[0].stream_time_ps(500)


def test_striped_allocation_spans_channels():
    bank = BankedMemory.uniform(_small_channel(capacity=100), 4)
    shards = bank.allocate_striped("big", nbytes=250)
    assert len(shards) == 3  # ceil(250 / 100)
    assert len({s.channel for s in shards}) == 3
    assert bank.shards_of("big") == ("big.s0", "big.s1", "big.s2")
    bank.free("big")
    assert bank.used_bytes == 0
    with pytest.raises(KeyError):
        bank.shards_of("big")


def test_striped_allocation_too_big_rolls_back():
    bank = BankedMemory.uniform(_small_channel(capacity=100), 2)
    with pytest.raises(MemoryError):
        bank.allocate_striped("huge", nbytes=500)
    assert bank.used_bytes == 0


def test_striped_lookup_spreads_accesses():
    bank = BankedMemory.uniform(_small_channel(capacity=100), 4)
    bank.allocate_striped("big", nbytes=400, n_shards=4)
    spread = bank.batch_lookup_time_ps({"big": (40, 8)})
    single_bank = BankedMemory.uniform(_small_channel(capacity=1000), 4)
    single_bank.allocate("big", nbytes=400)
    concentrated = single_bank.batch_lookup_time_ps({"big": (40, 8)})
    assert spread < concentrated


def test_striped_invalid_parameters():
    bank = BankedMemory.uniform(_small_channel(), 2)
    with pytest.raises(ValueError):
        bank.allocate_striped("r", nbytes=-1)
    with pytest.raises(ValueError):
        bank.allocate_striped("r", nbytes=10, n_shards=3)
    bank.allocate_striped("r", nbytes=10, n_shards=2)
    with pytest.raises(ValueError):
        bank.allocate_striped("r", nbytes=10)


def test_row_cycle_floors_random_occupancy():
    from repro.memory.model import MemoryModel

    fast_bw = MemoryModel(
        name="m", capacity_bytes=1 << 20, latency_ps=1000,
        bandwidth_bytes_per_sec=1e12, min_burst_bytes=32,
        random_efficiency=1.0, row_cycle_ps=47_000,
    )
    # Tiny reads cannot beat the row cycle.
    t = fast_bw.batch_random_time_ps(100, 32)
    assert t == 1000 + 100 * 47_000


@settings(max_examples=30, deadline=None)
@given(
    n_channels=st.integers(min_value=1, max_value=32),
    n_regions=st.integers(min_value=1, max_value=40),
)
def test_property_makespan_shrinks_or_holds_with_more_channels(
    n_channels, n_regions
):
    """Adding channels never makes a balanced lookup batch slower."""

    def build(k):
        bank = BankedMemory.uniform(hbm2_channel(), k)
        for i in range(n_regions):
            bank.allocate(f"t{i}", nbytes=1024, expected_traffic=1.0)
        return bank.batch_lookup_time_ps(
            {f"t{i}": (4, 64) for i in range(n_regions)}
        )

    assert build(n_channels + 1) <= build(n_channels)


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=0, max_value=200), max_size=10))
def test_property_used_bytes_tracks_allocations(sizes):
    bank = BankedMemory.uniform(_small_channel(capacity=10_000), 4)
    for i, size in enumerate(sizes):
        bank.allocate(f"r{i}", nbytes=size)
    assert bank.used_bytes == sum(sizes)


def test_plain_and_striped_namespaces_are_exclusive():
    """Regression: allocate(key) then allocate_striped(key) both used to
    succeed, and free(key) then released only the shards — leaking the
    plain allocation forever."""
    bank = BankedMemory.uniform(_small_channel(capacity=10_000), 4)
    bank.allocate("emb", nbytes=100)
    with pytest.raises(ValueError, match="already allocated"):
        bank.allocate_striped("emb", nbytes=400)
    bank.free("emb")

    bank.allocate_striped("emb", nbytes=400, n_shards=4)
    with pytest.raises(ValueError, match="already allocated"):
        bank.allocate("emb", nbytes=100)
    bank.free("emb")
    assert bank.used_bytes == 0


def test_free_is_symmetric_across_both_namespaces():
    """Every allocate/allocate_striped must be fully undone by one free."""
    bank = BankedMemory.uniform(_small_channel(capacity=10_000), 4)
    bank.allocate("plain", nbytes=300)
    bank.allocate_striped("striped", nbytes=800, n_shards=4)
    assert bank.used_bytes == 300 + 800
    bank.free("striped")
    assert bank.used_bytes == 300
    bank.free("plain")
    assert bank.used_bytes == 0
    assert bank.channel_load_bytes() == [0, 0, 0, 0]
    # Both names are reusable after free, in either namespace.
    bank.allocate_striped("plain", nbytes=400, n_shards=2)
    bank.allocate("striped", nbytes=100)
