"""Unit tests for the base memory model and simulator port."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sim import Simulator
from repro.memory.model import AccessPattern, MemoryModel, MemoryPort

_PS_PER_S = 1_000_000_000_000


def _model(**overrides):
    params = dict(
        name="test",
        capacity_bytes=1 << 30,
        latency_ps=100_000,
        bandwidth_bytes_per_sec=10e9,
        min_burst_bytes=64,
        random_efficiency=0.5,
    )
    params.update(overrides)
    return MemoryModel(**params)


def test_stream_time_latency_plus_bandwidth():
    m = _model()
    t = m.stream_time_ps(10_000_000_000)  # 10 GB at 10 GB/s = 1 s
    assert t == pytest.approx(m.latency_ps + _PS_PER_S, rel=1e-9)


def test_zero_bytes_cost_nothing():
    m = _model()
    assert m.stream_time_ps(0) == 0
    assert m.random_access_time_ps(0) == 0
    assert m.batch_random_time_ps(0, 64) == 0
    assert m.batch_random_time_ps(4, 0) == 0


def test_burst_rounding_charges_full_granule():
    m = _model(min_burst_bytes=64, latency_ps=0)
    assert m.stream_time_ps(1) == m.stream_time_ps(64)
    assert m.stream_time_ps(65) == m.stream_time_ps(128)


def test_random_access_degraded_by_efficiency():
    m = _model(latency_ps=0, random_efficiency=0.5)
    assert m.random_access_time_ps(640) == 2 * m.stream_time_ps(640)


def test_batch_random_pays_latency_once():
    m = _model()
    single = m.random_access_time_ps(64)
    batch = m.batch_random_time_ps(100, 64)
    # 100 dependent accesses would cost 100 latencies; pipelined batch
    # pays one.
    assert batch < 100 * single
    assert batch == m.latency_ps + 100 * (single - m.latency_ps)


def test_access_time_dispatch():
    m = _model()
    assert m.access_time_ps(4096, AccessPattern.SEQUENTIAL) == m.stream_time_ps(4096)
    assert m.access_time_ps(4096, AccessPattern.RANDOM) == m.random_access_time_ps(
        4096
    )


def test_effective_bandwidth():
    m = _model()
    assert m.effective_bandwidth(AccessPattern.SEQUENTIAL) == 10e9
    assert m.effective_bandwidth(AccessPattern.RANDOM) == 5e9


def test_fits_capacity():
    m = _model(capacity_bytes=100)
    assert m.fits(100)
    assert not m.fits(101)
    assert not m.fits(-1)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        _model(bandwidth_bytes_per_sec=0)
    with pytest.raises(ValueError):
        _model(random_efficiency=0.0)
    with pytest.raises(ValueError):
        _model(random_efficiency=1.5)
    with pytest.raises(ValueError):
        _model(min_burst_bytes=0)
    with pytest.raises(ValueError):
        _model(latency_ps=-1)


def test_port_serialises_requests():
    sim = Simulator()
    m = _model()
    port = MemoryPort(sim, m)
    done = []

    def client(sim, port, tag):
        ev = port.request(64_000, AccessPattern.SEQUENTIAL)
        yield ev
        done.append((tag, sim.now))

    sim.spawn(client(sim, port, "a"))
    sim.spawn(client(sim, port, "b"))
    sim.run()
    t_single = m.stream_time_ps(64_000)
    assert done[0] == ("a", t_single)
    assert done[1] == ("b", 2 * t_single)
    assert port.bytes_moved == 128_000
    assert port.requests == 2


def test_port_idle_gap_not_charged():
    sim = Simulator()
    port = MemoryPort(sim, _model())

    def client(sim, port):
        yield sim.timeout(1_000_000)
        ev = port.request(64, AccessPattern.RANDOM)
        yield ev
        return sim.now

    p = sim.spawn(client(sim, port))
    sim.run()
    assert p.value == 1_000_000 + port.model.random_access_time_ps(64)


@settings(max_examples=50, deadline=None)
@given(
    nbytes=st.integers(min_value=1, max_value=1 << 24),
    burst=st.integers(min_value=1, max_value=4096),
)
def test_property_stream_time_monotone_in_bytes(nbytes, burst):
    m = _model(min_burst_bytes=burst)
    assert m.stream_time_ps(nbytes) <= m.stream_time_ps(nbytes + burst)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=1, max_value=1000))
def test_property_batch_random_monotone_in_count(n):
    m = _model()
    assert m.batch_random_time_ps(n, 64) < m.batch_random_time_ps(n + 1, 64)
