"""Sanity checks on the technology parameter sets.

These tests pin the *ordering relations* the use-case arguments depend
on, not exact datasheet values.
"""

import pytest

from repro.memory.model import AccessPattern
from repro.memory.technologies import (
    bram,
    ddr4_channel,
    hbm2_channel,
    host_over_pcie3,
    host_over_pcie4,
    uram,
)


def test_latency_hierarchy_sram_hbm_host():
    assert bram().latency_ps < hbm2_channel().latency_ps
    assert hbm2_channel().latency_ps < host_over_pcie3().latency_ps
    # SRAM is ~single cycle; PCIe is ~microsecond: 2+ orders apart.
    assert host_over_pcie3().latency_ps / bram().latency_ps > 100


def test_aggregate_hbm_bandwidth_beats_ddr_and_pcie():
    hbm_total = 32 * hbm2_channel().bandwidth_bytes_per_sec
    ddr_total = 4 * ddr4_channel().bandwidth_bytes_per_sec
    assert hbm_total > 5 * ddr_total
    assert hbm_total > 30 * host_over_pcie3().bandwidth_bytes_per_sec


def test_single_hbm_channel_slower_than_ddr_channel():
    assert (
        hbm2_channel().bandwidth_bytes_per_sec
        < ddr4_channel().bandwidth_bytes_per_sec
    )


def test_random_access_penalties():
    for make in (hbm2_channel, ddr4_channel, host_over_pcie3):
        m = make()
        assert m.effective_bandwidth(AccessPattern.RANDOM) < m.effective_bandwidth(
            AccessPattern.SEQUENTIAL
        )
    # SRAM has no random penalty.
    assert bram().random_efficiency == 1.0


def test_uram_denser_but_slower_than_bram():
    assert uram().capacity_bytes > bram().capacity_bytes
    assert uram().latency_ps > bram().latency_ps


def test_pcie4_doubles_pcie3():
    assert host_over_pcie4().bandwidth_bytes_per_sec == pytest.approx(
        2 * host_over_pcie3().bandwidth_bytes_per_sec
    )


def test_embedding_lookup_cost_sram_vs_hbm():
    """The MicroRec premise: with a wide (512-bit) port, a 64 B embedding
    read takes ~2 cycles from SRAM but >100 ns from HBM."""
    sram_t = bram(width_bytes=64).random_access_time_ps(64)
    hbm_t = hbm2_channel().random_access_time_ps(64)
    assert hbm_t > 10 * sram_t
