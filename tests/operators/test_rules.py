"""Unit and property tests for the business-rule matcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import xeon_server
from repro.core.device import ALVEO_U250
from repro.operators.rules import (
    RuleSet,
    cpu_match_time_s,
    random_rules,
    rules_kernel_spec,
)


def _tiny_rules():
    return RuleSet(
        lows=np.array([[0.0, 0.0], [0.5, -np.inf]]),
        highs=np.array([[0.4, 0.4], [1.0, np.inf]]),
        priorities=np.array([1.0, 2.0]),
    )


def test_matches_matrix():
    rules = _tiny_rules()
    queries = np.array([
        [0.2, 0.2],   # rule 0 only
        [0.7, 9.0],   # rule 1 only (wildcard second attr)
        [0.45, 0.2],  # neither
    ])
    match = rules.matches(queries)
    assert match.tolist() == [[True, False], [False, True], [False, False]]


def test_best_match_uses_priority():
    rules = RuleSet(
        lows=np.zeros((2, 1)),
        highs=np.ones((2, 1)),
        priorities=np.array([5.0, 9.0]),
    )
    best = rules.best_match(np.array([[0.5]]))
    assert best[0] == 1  # higher priority wins
    none = rules.best_match(np.array([[2.0]]))
    assert none[0] == -1


def test_matches_naive_reference():
    rules = random_rules(30, 4, seed=3)
    rng = np.random.default_rng(4)
    queries = rng.random((20, 4))
    got = rules.matches(queries)
    for qi in range(20):
        for ri in range(30):
            want = bool(
                (queries[qi] >= rules.lows[ri]).all()
                and (queries[qi] <= rules.highs[ri]).all()
            )
            assert got[qi, ri] == want


def test_ruleset_validation():
    with pytest.raises(ValueError):
        RuleSet(np.zeros((2, 3)), np.zeros((3, 2)), np.zeros(2))
    with pytest.raises(ValueError):
        RuleSet(np.ones((1, 1)), np.zeros((1, 1)), np.zeros(1))
    with pytest.raises(ValueError):
        RuleSet(np.zeros((2, 1)), np.ones((2, 1)), np.zeros(3))
    rules = _tiny_rules()
    with pytest.raises(ValueError):
        rules.matches(np.zeros((2, 5)))


def test_random_rules_properties():
    rules = random_rules(100, 6, selectivity=0.25,
                         wildcard_fraction=0.5, seed=5)
    assert rules.n_rules == 100 and rules.n_attrs == 6
    wild = np.isinf(rules.lows)
    assert 0.3 < wild.mean() < 0.7
    finite = ~wild
    widths = (rules.highs - rules.lows)[finite]
    assert np.allclose(widths, 0.25)
    with pytest.raises(ValueError):
        random_rules(0, 1)
    with pytest.raises(ValueError):
        random_rules(1, 1, selectivity=0.0)


def test_kernel_latency_flat_in_rule_count():
    """The SIGMOD'20 point: query latency is (nearly) independent of
    the number of rules — they evaluate in space, not time."""
    few = rules_kernel_spec(64, 8)
    many = rules_kernel_spec(4096, 8)
    assert many.ii == few.ii == 1
    # Depth grows only logarithmically (the priority tree).
    assert many.depth - few.depth <= 8
    # Resources grow linearly: that is where the scaling went.
    assert many.resources.lut > 30 * few.resources.lut


def test_cpu_time_linear_in_rules_fpga_flat():
    cpu = xeon_server()
    n_queries = 100_000
    cpu_small = cpu_match_time_s(cpu, n_queries, 128, 8)
    cpu_large = cpu_match_time_s(cpu, n_queries, 4096, 8)
    assert cpu_large == pytest.approx(32 * cpu_small, rel=0.01)
    fpga_small = rules_kernel_spec(128, 8).latency_seconds(n_queries)
    fpga_large = rules_kernel_spec(4096, 8).latency_seconds(n_queries)
    assert fpga_large < 1.01 * fpga_small
    assert fpga_large < cpu_large


def test_resource_feasibility_bounds_rule_count():
    """The fabric caps how many rules fit — the design's real limit."""
    assert ALVEO_U250.fits(rules_kernel_spec(4096, 8).resources)
    assert not ALVEO_U250.fits(rules_kernel_spec(200_000, 8).resources)


def test_cpu_match_validation():
    cpu = xeon_server()
    with pytest.raises(ValueError):
        cpu_match_time_s(cpu, -1, 1, 1)
    with pytest.raises(ValueError):
        cpu_match_time_s(cpu, 1, 1, 1, short_circuit=0.0)
    assert cpu_match_time_s(cpu, 0, 10, 10) == 0.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_property_best_match_is_a_match(seed):
    rules = random_rules(20, 3, seed=seed)
    rng = np.random.default_rng(seed + 1)
    queries = rng.random((10, 3))
    best = rules.best_match(queries)
    match = rules.matches(queries)
    for qi, rule_id in enumerate(best):
        if rule_id >= 0:
            assert match[qi, rule_id]
            better = rules.priorities > rules.priorities[rule_id]
            assert not match[qi][better].any()
        else:
            assert not match[qi].any()
