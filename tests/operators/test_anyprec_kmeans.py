"""Unit tests for BiS-KM any-precision k-means."""

import numpy as np
import pytest

from repro.operators.anyprec_kmeans import (
    anyprec_kmeans,
    quantize,
    scan_speedup,
)


def _blobs(seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.random((4, 8)).astype(np.float32) * 10
    return np.concatenate(
        [c + rng.normal(0, 0.1, (100, 8)).astype(np.float32)
         for c in centers]
    )


def test_quantize_reduces_distinct_levels():
    points = _blobs()
    q2 = quantize(points, 2)
    q8 = quantize(points, 8)
    assert len(np.unique(q2[:, 0])) <= 4
    assert len(np.unique(q8[:, 0])) > len(np.unique(q2[:, 0]))


def test_quantize_full_precision_is_near_identity():
    points = _blobs()
    q = quantize(points, 32)
    assert np.allclose(q, points, atol=1e-4)


def test_quantize_constant_column_safe():
    points = np.ones((10, 3), dtype=np.float32)
    q = quantize(points, 4)
    assert np.allclose(q, points)


def test_quantize_validation():
    with pytest.raises(ValueError):
        quantize(_blobs(), 0)
    with pytest.raises(ValueError):
        quantize(_blobs(), 33)
    with pytest.raises(ValueError):
        scan_speedup(0)


def test_scan_speedup_inverse_in_bits():
    assert scan_speedup(1) == 32.0
    assert scan_speedup(8) == 4.0
    assert scan_speedup(32) == 1.0


def test_low_precision_preserves_clustering_on_separated_blobs():
    """The BiS-KM claim: a few bits suffice for well-separated data."""
    points = _blobs(seed=1)
    full = anyprec_kmeans(points, k=4, bits=32, seed=2)
    low = anyprec_kmeans(points, k=4, bits=6, seed=2)
    # Quality within 20% of full precision, at >5x less traffic.
    assert low.full_precision_inertia < 1.2 * max(
        full.full_precision_inertia, 1e-9
    ) + 10.0
    assert low.traffic_speedup > 5


def test_quality_improves_with_bits():
    rng = np.random.default_rng(3)
    points = rng.random((400, 6), dtype=np.float32)  # unclustered: harder
    inertias = [
        anyprec_kmeans(points, k=8, bits=b, seed=4).full_precision_inertia
        for b in (1, 4, 16)
    ]
    assert inertias[2] <= inertias[0]


def test_result_carries_kmeans_diagnostics():
    out = anyprec_kmeans(_blobs(), k=4, bits=8, seed=5)
    assert out.result.centroids.shape == (4, 8)
    assert out.bits == 8
    assert out.full_precision_inertia >= 0
