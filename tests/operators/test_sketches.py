"""Unit tests for Count-Min and AGMS sketches."""

import numpy as np
import pytest

from repro.baselines import xeon_server
from repro.operators.sketches import (
    AgmsSketch,
    CountMinSketch,
    cpu_update_time_s,
    sketch_kernel_spec,
)
from repro.workloads import ZipfSampler


def _zipf_stream(n=100_000, universe=10_000, s=1.1, seed=3):
    rng = np.random.default_rng(seed)
    return ZipfSampler(universe, s, rng).sample(n)


def test_cm_never_underestimates():
    stream = _zipf_stream()
    cm = CountMinSketch(width=4096, depth=4)
    cm.add(stream)
    keys = np.arange(100)
    true = np.array([(stream == k).sum() for k in keys])
    est = cm.query(keys)
    assert (est >= true).all()


def test_cm_error_within_bound_for_heavy_hitters():
    stream = _zipf_stream()
    cm = CountMinSketch(width=4096, depth=4)
    cm.add(stream)
    hot = np.arange(10)
    true = np.array([(stream == k).sum() for k in hot])
    est = cm.query(hot)
    assert ((est - true) <= cm.error_bound()).all()


def test_cm_from_error_dimensions():
    cm = CountMinSketch.from_error(eps=0.001, delta=0.01)
    assert cm.width >= 2718
    assert cm.depth >= 5
    with pytest.raises(ValueError):
        CountMinSketch.from_error(eps=0.0, delta=0.5)


def test_cm_merge_is_additive():
    a_vals, b_vals = _zipf_stream(seed=4), _zipf_stream(seed=5)
    a, b, both = (CountMinSketch(1024, 3) for _ in range(3))
    a.add(a_vals)
    b.add(b_vals)
    both.add(a_vals)
    both.add(b_vals)
    merged = a.merge(b)
    assert np.array_equal(merged.counters, both.counters)
    assert merged.total == both.total
    with pytest.raises(ValueError):
        a.merge(CountMinSketch(512, 3))


def test_cm_validation_and_empty():
    with pytest.raises(ValueError):
        CountMinSketch(width=0)
    cm = CountMinSketch(16, 2)
    cm.add(np.array([], dtype=np.int64))
    assert cm.total == 0


def test_agms_estimates_f2():
    stream = _zipf_stream(n=50_000, universe=1_000, s=1.0, seed=6)
    counts = np.bincount(stream, minlength=1_000)
    true_f2 = float((counts.astype(np.float64) ** 2).sum())
    agms = AgmsSketch(n_estimators=256)
    agms.add(stream)
    est = agms.estimate_f2()
    assert abs(est - true_f2) / true_f2 < 0.5


def test_agms_merge_linear():
    a_vals, b_vals = _zipf_stream(seed=7), _zipf_stream(seed=8)
    a, b, both = (AgmsSketch(64) for _ in range(3))
    a.add(a_vals)
    b.add(b_vals)
    both.add(a_vals)
    both.add(b_vals)
    assert np.array_equal(a.merge(b).sums, both.sums)
    with pytest.raises(ValueError):
        a.merge(AgmsSketch(32))


def test_agms_validation():
    with pytest.raises(ValueError):
        AgmsSketch(0)


def test_kernel_spec_line_rate_and_resources():
    narrow = sketch_kernel_spec(counters_per_item=1,
                                counter_bytes_total=8 * 1024)
    wide = sketch_kernel_spec(counters_per_item=8,
                              counter_bytes_total=64 * 1024)
    assert narrow.ii == 1 and wide.ii == 1
    assert wide.resources.lut > narrow.resources.lut
    with pytest.raises(ValueError):
        sketch_kernel_spec(0, 1024)


def test_fpga_beats_cpu_on_sketch_maintenance():
    cpu = xeon_server()
    spec = sketch_kernel_spec(counters_per_item=4,
                              counter_bytes_total=64 * 1024)
    n = 10_000_000
    assert spec.latency_seconds(n) < cpu_update_time_s(
        cpu, n, counters_per_item=4, parallel=False
    )
    assert cpu_update_time_s(cpu, 0, 4) == 0.0
