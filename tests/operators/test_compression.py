"""Unit and property tests for the compression codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import xeon_server
from repro.operators.compression import (
    codec_kernel_spec,
    cpu_codec_time_s,
    dict_decode,
    dict_encode,
    rle_decode,
    rle_encode,
)


def test_dict_roundtrip():
    rng = np.random.default_rng(1)
    column = rng.integers(0, 100, size=10_000)
    encoded = dict_encode(column)
    assert np.array_equal(dict_decode(encoded), column)
    assert encoded.codes.dtype == np.uint8
    assert encoded.ratio > 4  # int64 -> uint8 codes


def test_dict_code_width_grows_with_cardinality():
    wide = dict_encode(np.arange(70_000))
    assert wide.codes.dtype == np.uint32
    medium = dict_encode(np.arange(1_000))
    assert medium.codes.dtype == np.uint16


def test_rle_roundtrip_and_compression():
    column = np.repeat(np.arange(50), 200)
    encoded = rle_encode(column)
    assert np.array_equal(rle_decode(encoded), column)
    assert encoded.values.size == 50
    assert encoded.n_rows == 10_000
    assert encoded.nbytes < column.nbytes / 10


def test_rle_worst_case_no_runs():
    column = np.arange(100)
    encoded = rle_encode(column)
    assert encoded.values.size == 100
    assert np.array_equal(rle_decode(encoded), column)


def test_rle_empty():
    encoded = rle_encode(np.array([], dtype=np.int64))
    assert rle_decode(encoded).size == 0
    assert encoded.n_rows == 0


def test_codec_kernel_specs():
    for kind in ("dict-decode", "rle-decode", "dict-encode", "rle-encode"):
        spec = codec_kernel_spec(kind)
        assert spec.ii == 1
        assert spec.unroll == 8
    assert (codec_kernel_spec("dict-encode").depth
            > codec_kernel_spec("dict-decode").depth)
    with pytest.raises(ValueError):
        codec_kernel_spec("zstd")


def test_cpu_codec_costs():
    cpu = xeon_server()
    n = 1 << 30
    decode = cpu_codec_time_s(cpu, n, "dict-decode", parallel=False)
    encode = cpu_codec_time_s(cpu, n, "dict-encode", parallel=False)
    assert encode > decode
    with pytest.raises(ValueError):
        cpu_codec_time_s(cpu, n, "zstd")


def test_fpga_codec_beats_single_core():
    cpu = xeon_server()
    spec = codec_kernel_spec("dict-encode")
    n_values = 1 << 27  # values, 8 B each
    fpga = spec.latency_seconds(n_values)
    host = cpu_codec_time_s(cpu, n_values * 8, "dict-encode", parallel=False)
    assert fpga < host


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-1000, max_value=1000),
                    max_size=300)
)
def test_property_both_codecs_roundtrip(values):
    column = np.array(values, dtype=np.int64)
    if column.size:
        assert np.array_equal(dict_decode(dict_encode(column)), column)
    assert np.array_equal(rle_decode(rle_encode(column)), column)
