"""Unit and property tests for the HyperLogLog sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import xeon_server
from repro.operators.hll import HyperLogLog, cpu_insert_time_s, hll_kernel_spec


def test_estimate_within_error_bound():
    rng = np.random.default_rng(1)
    for true_n in (1_000, 50_000, 500_000):
        hll = HyperLogLog(precision=12)
        hll.add(rng.integers(0, 1 << 62, size=true_n))
        estimate = hll.estimate()
        bound = 4 * hll.relative_error_bound()  # 4 sigma
        assert abs(estimate - true_n) / true_n < bound


def test_duplicates_do_not_inflate():
    hll = HyperLogLog(precision=12)
    values = np.arange(10_000)
    hll.add(values)
    before = hll.estimate()
    for _ in range(5):
        hll.add(values)
    assert hll.estimate() == before


def test_small_cardinalities_use_linear_counting():
    hll = HyperLogLog(precision=12)
    hll.add(np.arange(50))
    assert abs(hll.estimate() - 50) < 5


def test_empty_sketch_estimates_zero():
    hll = HyperLogLog(precision=8)
    assert hll.estimate() == pytest.approx(0.0, abs=1.0)
    hll.add(np.array([], dtype=np.int64))
    assert hll.estimate() == pytest.approx(0.0, abs=1.0)


def test_merge_equals_union():
    rng = np.random.default_rng(2)
    a_vals = rng.integers(0, 1 << 62, size=20_000)
    b_vals = rng.integers(0, 1 << 62, size=20_000)
    a, b, union = (HyperLogLog(12) for _ in range(3))
    a.add(a_vals)
    b.add(b_vals)
    union.add(a_vals)
    union.add(b_vals)
    merged = a.merge(b)
    assert np.array_equal(merged.registers, union.registers)
    assert merged.estimate() == union.estimate()


def test_merge_precision_mismatch():
    with pytest.raises(ValueError):
        HyperLogLog(10).merge(HyperLogLog(12))


def test_precision_validation():
    with pytest.raises(ValueError):
        HyperLogLog(3)
    with pytest.raises(ValueError):
        HyperLogLog(19)


def test_higher_precision_tightens_error():
    assert (HyperLogLog(14).relative_error_bound()
            < HyperLogLog(10).relative_error_bound())
    assert HyperLogLog(14).nbytes > HyperLogLog(10).nbytes


def test_kernel_is_line_rate():
    spec = hll_kernel_spec(precision=12)
    assert spec.ii == 1
    # 300 M items/s of 8-byte keys = 2.4 GB/s per pipe; beats a CPU's
    # scatter-bound update loop.
    cpu = xeon_server()
    n = 100_000_000
    fpga_s = spec.latency_seconds(n)
    cpu_s = cpu_insert_time_s(cpu, n, parallel=False)
    assert fpga_s < cpu_s


def test_cpu_insert_time_scales():
    cpu = xeon_server()
    assert cpu_insert_time_s(cpu, 0) == 0.0
    assert cpu_insert_time_s(cpu, 2_000) == pytest.approx(
        2 * cpu_insert_time_s(cpu, 1_000)
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_estimate_monotone_under_insertion(seed):
    rng = np.random.default_rng(seed)
    hll = HyperLogLog(10)
    previous = 0.0
    for _ in range(3):
        hll.add(rng.integers(0, 1 << 62, size=2_000))
        estimate = hll.estimate()
        assert estimate >= previous * 0.999  # registers only grow
        previous = estimate
