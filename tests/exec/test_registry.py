"""The experiment registry: completeness, metadata, and spec hygiene.

The registry is the single index every other layer hangs off — the
CLI (``repro run``/``repro list``), the bench shims, the golden
equivalence suite, CI's smoke matrix.  These tests pin the registry's
invariants: all 24 experiments registered, each pointing at a bench
shim that exists and exposes the declared entry points, cells
returning cache-safe plain JSON types, and the smoke/full dataset
scale reflected in the cache identity.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.exec import build_spec, experiment_ids
from repro.exec.experiments import register
from repro.exec.experiments.contexts import scale_key

_REPO = Path(__file__).resolve().parents[2]
_BENCH_DIR = _REPO / "benchmarks"


def test_all_24_experiments_registered():
    assert experiment_ids() == tuple(f"e{n}" for n in range(1, 25))


def test_every_spec_points_at_an_existing_bench():
    on_disk = {p.name for p in _BENCH_DIR.glob("bench_e*.py")}
    registered = {build_spec(e).bench for e in experiment_ids()}
    assert registered == on_disk


@pytest.mark.parametrize("exp_id", experiment_ids())
def test_entries_resolve_in_the_bench_shim(exp_id):
    spec = build_spec(exp_id)
    assert spec.entries, f"{exp_id} declares no bench entry points"
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    mod_spec = importlib.util.spec_from_file_location(
        f"registry_{spec.bench[:-3]}", _BENCH_DIR / spec.bench
    )
    module = importlib.util.module_from_spec(mod_spec)
    mod_spec.loader.exec_module(module)
    for entry, _args in spec.entries:
        assert callable(getattr(module, entry, None)), (
            f"{spec.bench} lacks entry point {entry}"
        )


@pytest.mark.parametrize("exp_id", experiment_ids())
def test_spec_metadata_is_sane(exp_id):
    spec = build_spec(exp_id)
    assert spec.experiment == exp_id
    assert spec.title
    assert spec.seeds and spec.grid
    assert spec.cells == len(spec.grid) * len(spec.seeds)
    json.dumps(spec.grid)  # configs must be cache-key material


def test_cells_return_plain_json_types():
    # e12 is the cheapest sweep with numpy-laden internals; the spec's
    # normalisation wrapper must strip them before rows hit the cache.
    spec = build_spec("e12")
    row = spec.cell(spec.prepare(), spec.grid[0], spec.seeds[0])
    roundtripped = json.loads(json.dumps(row))
    assert roundtripped == row


def test_context_key_tracks_dataset_scale(monkeypatch):
    monkeypatch.delenv("REPRO_SMOKE", raising=False)
    assert scale_key() == {"scale": "full"}
    assert build_spec("e5").context_key == {"scale": "full"}
    monkeypatch.setenv("REPRO_SMOKE", "1")
    assert scale_key() == {"scale": "smoke"}
    assert build_spec("e5").context_key == {"scale": "smoke"}


def test_unknown_experiment_is_a_key_error():
    with pytest.raises(KeyError, match="e99"):
        build_spec("e99")


def test_double_registration_is_rejected():
    with pytest.raises(ValueError, match="registered twice"):
        register("e1")(lambda: None)


def test_part_selects_grid_subsets():
    spec = build_spec("e3")
    agg = spec.part(part="agg")
    proj = spec.part(part="proj")
    assert len(agg) + len(proj) == len(spec.grid)
    assert all(c["part"] == "agg" for c in agg)
