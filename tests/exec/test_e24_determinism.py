"""E24 determinism: byte-identical runs, parallel equivalence, cache.

The serving experiment is the registry's most concurrency-heavy cell
(an event-driven service with replicated consumers), so it gets its
own seeded-determinism gate: repeated runs and ``--parallel 2`` must
produce byte-identical tables, and a warm content-addressed cache must
serve every cell without recompute.

Runs at smoke scale so three full sweeps stay in tier-1 budget.
"""

import pytest

from repro.exec import ResultCache, SweepRunner, build_spec


@pytest.fixture(autouse=True)
def _smoke(monkeypatch):
    monkeypatch.setenv("REPRO_SMOKE", "1")


def _render(result):
    return [t.render() for t in result.tables]


def test_e24_repeat_runs_are_byte_identical():
    first = SweepRunner(build_spec("e24")).run()
    second = SweepRunner(build_spec("e24")).run()
    assert first.rows == second.rows
    assert _render(first) == _render(second)


def test_e24_parallel_matches_serial():
    serial = SweepRunner(build_spec("e24")).run()
    par = SweepRunner(build_spec("e24"), parallel=2).run()
    assert par.rows == serial.rows
    assert _render(par) == _render(serial)


def test_e24_cached_rerun_recomputes_nothing(tmp_path):
    cache = ResultCache(tmp_path)
    cold = SweepRunner(build_spec("e24"), cache=cache).run()
    assert cold.computed == cold.cells and cold.hits == 0
    warm = SweepRunner(build_spec("e24"), cache=cache).run()
    assert warm.hits == warm.cells and warm.computed == 0
    assert _render(warm) == _render(cold)


def test_e24_smoke_and_full_scale_have_distinct_cache_identity():
    smoke_key = build_spec("e24").context_key
    assert smoke_key == {"scale": "smoke"}
