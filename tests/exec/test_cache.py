"""Result cache: keys, atomicity, invalidation."""

import json

import numpy as np
import pytest

from repro.exec import ResultCache, code_version
from repro.exec.cache import _jsonable, cell_key


def test_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    key = cell_key("e5", {"nprobe": 4}, 13, code_version())
    assert cache.get(key) is None
    cache.put(key, {"recall": 0.9}, experiment="e5",
              config={"nprobe": 4}, seed=13)
    assert cache.get(key) == {"recall": 0.9}


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = cell_key("e5", {"nprobe": 4}, 13, code_version())
    cache.put(key, {"v": 1})
    (tmp_path / f"{key}.json").write_text("{truncated")
    assert cache.get(key) is None


def test_key_varies_with_every_identity_field():
    v = code_version()
    base = cell_key("e5", {"nprobe": 4}, 13, v)
    assert cell_key("e11", {"nprobe": 4}, 13, v) != base
    assert cell_key("e5", {"nprobe": 8}, 13, v) != base
    assert cell_key("e5", {"nprobe": 4}, 14, v) != base
    assert cell_key("e5", {"nprobe": 4}, 13, "deadbeef") != base
    # ...and is insensitive to dict ordering.
    assert cell_key("e5", {"a": 1, "b": 2}, 0, v) == \
        cell_key("e5", {"b": 2, "a": 1}, 0, v)


def test_code_version_is_stable_hex():
    v = code_version()
    assert v == code_version()
    assert len(v) == 16
    int(v, 16)


def test_jsonable_handles_numpy():
    payload = _jsonable({
        "arr": np.arange(3),
        "scalar": np.float64(1.5),
        "nested": [np.int32(7), (1, 2)],
    })
    json.dumps(payload)
    assert payload == {"arr": [0, 1, 2], "scalar": 1.5,
                       "nested": [7, [1, 2]]}


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(3):
        cache.put(cell_key("x", {"i": i}, 0, "v"), {"i": i})
    assert cache.clear() == 3
    assert cache.clear() == 0
