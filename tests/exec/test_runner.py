"""Sweep runner: determinism, cache accounting, CLI wiring.

e22 is the workhorse spec here — its grid computes in well under a
second — so the parallel and cached paths are exercised end to end.
"""

import pytest

from repro.exec import (
    ResultCache,
    SWEEPABLE,
    SweepRunner,
    SweepSpec,
    build_spec,
)


def _counting_spec(calls):
    return SweepSpec(
        experiment="toy",
        title="toy counting spec",
        bench="",
        grid=tuple({"x": x} for x in (1, 2, 3)),
        seeds=(0, 1),
        prepare=lambda: {"offset": 100},
        cell=lambda ctx, config, seed: (
            calls.append(1) or
            {"y": ctx["offset"] + config["x"] * 10 + seed}
        ),
        assemble=lambda rows: [],
    )


def test_serial_order_is_seed_major_grid_minor():
    calls = []
    result = SweepRunner(_counting_spec(calls)).run()
    assert [r["y"] for r in result.rows] == [110, 120, 130, 111, 121, 131]
    assert result.computed == 6 and result.hits == 0
    assert len(calls) == 6


def test_cache_skips_completed_cells(tmp_path):
    calls = []
    spec = _counting_spec(calls)
    cache = ResultCache(tmp_path)
    first = SweepRunner(spec, cache=cache).run()
    assert first.hits == 0 and first.computed == 6
    second = SweepRunner(spec, cache=cache).run()
    assert second.hits == 6 and second.computed == 0
    assert second.rows == first.rows
    assert len(calls) == 6, "cached cells must not recompute"


def test_code_version_change_invalidates(tmp_path, monkeypatch):
    calls = []
    spec = _counting_spec(calls)
    cache = ResultCache(tmp_path)
    SweepRunner(spec, cache=cache).run()
    monkeypatch.setattr("repro.exec.cache._CODE_VERSION", "0123456789abcdef")
    stale = SweepRunner(spec, cache=cache).run()
    assert stale.hits == 0 and stale.computed == 6


def test_registry_rejects_unknown_experiment():
    with pytest.raises(KeyError):
        build_spec("e99")
    assert SWEEPABLE == tuple(f"e{n}" for n in range(1, 25))


def test_parallel_must_be_positive():
    with pytest.raises(ValueError):
        SweepRunner(build_spec("e22"), parallel=0)


def test_e22_parallel_matches_serial():
    serial = SweepRunner(build_spec("e22")).run()
    par = SweepRunner(build_spec("e22"), parallel=2).run()
    assert par.rows == serial.rows
    assert [t.render() for t in par.tables] == \
        [t.render() for t in serial.tables]


def test_e22_cached_rerun_is_identical(tmp_path):
    cache = ResultCache(tmp_path)
    cold = SweepRunner(build_spec("e22"), cache=cache).run()
    warm = SweepRunner(build_spec("e22"), cache=cache).run()
    assert warm.hits == warm.cells and warm.computed == 0
    assert [t.render() for t in warm.tables] == \
        [t.render() for t in cold.tables]


def test_cli_parallel_run(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main

    monkeypatch.chdir(tmp_path)  # results/cache lands in the tmp dir
    assert main(["run", "e22", "--parallel", "2"]) == 0
    out = capsys.readouterr().out
    assert "E22: tail latency and goodput under injected faults" in out
    assert "6 cells: 0 cached, 6 computed (2 workers)" in out
    assert main(["run", "e22", "--parallel", "2"]) == 0
    out = capsys.readouterr().out
    assert "6 cells: 6 cached, 0 computed" in out
    assert (tmp_path / "results" / "cache").is_dir()
