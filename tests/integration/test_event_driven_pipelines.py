"""Integration: functional pipelines running live in the event engine.

These tests wire several subsystems together — topology helpers,
kernels, memory ports, and the use-case algorithms — and check both
functional equality with the direct numpy paths and the expected
timing behaviour.
"""

import numpy as np
import pytest

from repro.core import (
    Burst,
    BurstKernel,
    KernelSpec,
    Merge,
    RoundRobinSplit,
    Simulator,
    Sink,
    Source,
    Stream,
)
from repro.fanns.pq import train_pq


def _adc_pipeline(n_pes: int, codes: np.ndarray, table: np.ndarray, pq):
    """Distances of ``codes`` via an ADC PE array in the simulator."""
    sim = Simulator()
    source_stream = Stream(sim, 4, "codes")
    lanes = [Stream(sim, 4, f"lane{i}") for i in range(n_pes)]
    scored = [Stream(sim, 4, f"scored{i}") for i in range(n_pes)]
    merged = Stream(sim, 4, "merged")

    chunk = 64
    bursts = []
    for start in range(0, len(codes), chunk):
        part = codes[start:start + chunk]
        bursts.append(Burst(payload=(start, part), count=len(part)))
    Source(sim, source_stream, bursts)
    RoundRobinSplit(sim, source_stream, lanes)

    spec = KernelSpec("adc-pe", ii=1, depth=12)

    def score(burst):
        start, part = burst.payload
        dists = pq.adc_distances(table, part)
        return Burst(payload=(start, dists), count=len(part))

    for lane, out in zip(lanes, scored):
        BurstKernel(sim, spec, score, lane, out)
    Merge(sim, scored, merged)
    sink = Sink(sim, merged)
    sim.run()

    result = np.empty(len(codes), dtype=np.float32)
    for start, dists in sink.payloads:
        result[start:start + len(dists)] = dists
    return result, sink.done_at_ps


def test_adc_pe_array_matches_direct_adc_and_scales():
    rng = np.random.default_rng(3)
    vectors = rng.random((600, 16), dtype=np.float32)
    pq = train_pq(vectors, m=4, ksub=32, max_iterations=5)
    codes = pq.encode(vectors)
    table = pq.adc_table(vectors[0])
    want = pq.adc_distances(table, codes)

    got_1, t_1 = _adc_pipeline(1, codes, table, pq)
    got_4, t_4 = _adc_pipeline(4, codes, table, pq)
    assert np.allclose(got_1, want, rtol=1e-5)
    assert np.allclose(got_4, want, rtol=1e-5)
    # More PEs finish sooner (parallel lanes, same work).
    assert t_4 < t_1


def test_offload_four_way_agreement():
    """CPU engine == offload execution == burst-kernel pipeline ==
    fetch-side execution, on one query."""
    from repro.core.kernel import Sink as KSink
    from repro.farview import FarviewClient, FarviewServer
    from repro.relational import (
        Filter,
        Project,
        QueryPlan,
        Table,
        col,
        execute,
        make_table_bursts,
        plan_kernels,
    )
    from repro.workloads import uniform_table

    table = Table(uniform_table(5_000, seed=9))
    plan = QueryPlan((
        Filter(col("key") < 400_000),
        Project(("key", "val0")),
    ))
    reference = execute(plan, table)

    server = FarviewServer()
    server.store("t", table)
    client = FarviewClient(server)
    assert client.query_offload(plan, "t").result.equals(reference)
    assert client.query_fetch(plan, "t").result.equals(reference)

    sim = Simulator()
    kernels = plan_kernels(plan, table.schema.row_nbytes)
    streams = [Stream(sim, 4) for _ in range(len(kernels) + 1)]
    Source(sim, streams[0], make_table_bursts(table, 512))
    for ok, inp, out in zip(kernels, streams[:-1], streams[1:]):
        BurstKernel(sim, ok.spec, ok.fn, inp, out)
    sink = KSink(sim, streams[-1])
    sim.run()
    merged = Table({
        name: np.concatenate([t.column(name) for t in sink.payloads])
        for name in sink.payloads[0].column_names
    })
    assert merged.equals(reference)


def test_distributed_distinct_count_with_sketch_merge():
    """HLL sketches built per cluster node and merged at the root give
    the same estimate as a centralized sketch — the pattern ACCL-style
    reductions enable for mergeable aggregates."""
    from repro.accl import FpgaCluster
    from repro.operators import HyperLogLog

    rng = np.random.default_rng(11)
    n_nodes = 4
    partitions = [
        rng.integers(0, 1 << 60, size=50_000) for _ in range(n_nodes)
    ]

    centralized = HyperLogLog(12)
    for part in partitions:
        centralized.add(part)

    node_sketches = []
    for part in partitions:
        sketch = HyperLogLog(12)
        sketch.add(part)
        node_sketches.append(sketch)
    merged = node_sketches[0]
    for other in node_sketches[1:]:
        merged = merged.merge(other)
    assert np.array_equal(merged.registers, centralized.registers)

    # And the shipping cost is one register array per node: time it
    # through the cluster's gather.
    cluster = FpgaCluster(n_nodes)
    buffers = [s.registers.astype(np.float64) for s in node_sketches]
    outcome = cluster.gather(buffers, root=0)
    assert outcome.time_s > 0
    assert outcome.bytes_on_wire == (n_nodes - 1) * buffers[0].nbytes


def test_memory_port_feeds_kernel_pipeline():
    """A scan paced by a memory port upstream of a kernel: completion
    time respects the slower of port and kernel."""
    from repro.memory.model import AccessPattern, MemoryPort
    from repro.memory.technologies import ddr4_channel

    sim = Simulator()
    port = MemoryPort(sim, ddr4_channel())
    stream = Stream(sim, 2)
    out = Stream(sim, 2)
    spec = KernelSpec("scan-op", ii=1, depth=4, unroll=4)
    BurstKernel(sim, spec, lambda b: b, stream, out)
    sink = Sink(sim, out)

    n_bursts, rows, row_bytes = 16, 4096, 16

    def reader(sim):
        from repro.core.stream import END_OF_STREAM

        for _ in range(n_bursts):
            yield port.request(rows * row_bytes, AccessPattern.SEQUENTIAL)
            yield stream.put(Burst(payload=None, count=rows))
        yield stream.put(END_OF_STREAM)

    sim.spawn(reader(sim))
    sim.run()
    memory_floor = port.model.stream_time_ps(rows * row_bytes) * n_bursts
    assert sink.done_at_ps >= memory_floor
    assert sink.items == n_bursts * rows
