"""Smoke tests: the cheaper example scripts run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "fits an Alveo U280: True" in out
    assert "dataflow simulation" in out


def test_distributed_collectives_runs():
    out = _run("distributed_collectives.py")
    assert "Allreduce" in out
    assert "winner" in out


def test_storage_offload_runs():
    out = _run("storage_offload.py")
    assert "write amplification" in out
    assert "smart NIC" in out


def test_cli_info_and_experiments():
    for args in (["info"], ["experiments"]):
        result = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert result.stdout.strip()


def test_cli_rejects_unknown_experiment(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro", "run", "e99"],
        capture_output=True, text=True, timeout=60,
        cwd=_EXAMPLES.parent,
    )
    assert result.returncode == 2
    assert "unknown experiment" in result.stderr
