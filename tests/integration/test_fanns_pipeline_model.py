"""Integration: the FANNS analytic stage model vs a live pipeline.

Builds the accelerator's five stages as actual BurstKernels connected
by streams (one burst per query per stage, carrying that stage's work
item count) and checks that the event-driven timing agrees with the
analytic :class:`~repro.fanns.accelerator.StageTimes` on both latency
and steady-state throughput — the same kind of model-vs-simulation
ablation E1 does for a single kernel.
"""

import math

import numpy as np
import pytest

from repro.core import (
    Burst,
    BurstKernel,
    KernelSpec,
    Simulator,
    Sink,
    Source,
    Stream,
)
from repro.fanns.accelerator import FannsAccelerator, FannsConfig
from repro.fanns.ivf import build_ivfpq
from repro.workloads.vectors import clustered_dataset

_DS = clustered_dataset(
    n=2000, dim=16, n_queries=10, gt_k=5, n_clusters=16,
    cluster_std=0.2, seed=23,
)
_INDEX = build_ivfpq(_DS.base, nlist=16, m=4, ksub=64, seed=23)
_CONFIG = FannsConfig(
    n_distance_pes=8, n_lut_pes=8, n_adc_pes=16, n_hbm_channels=16
)
_NPROBE = 4


def _build_event_pipeline(n_queries: int):
    """The 5-stage FANNS pipeline as burst kernels; returns done_ps."""
    accel = FannsAccelerator(_INDEX, _CONFIG)
    index, cfg = _INDEX, _CONFIG
    clock = cfg.clock
    candidates = math.ceil(index.expected_candidates(_NPROBE))

    # Per-query work items per stage (matching accelerator.stage_times).
    coarse_work = index.nlist * index.dim
    select_work = index.nlist + 2 * _NPROBE
    lut_work = _NPROBE * index.pq.ksub * index.pq.dsub

    stages = [
        KernelSpec("coarse", ii=1, depth=16, unroll=cfg.n_distance_pes,
                   clock=clock),
        KernelSpec("select", ii=1, depth=8, unroll=1, clock=clock),
        KernelSpec("lut", ii=1, depth=16, unroll=cfg.n_lut_pes,
                   clock=clock),
        KernelSpec("scan", ii=1, depth=24, unroll=cfg.n_adc_pes,
                   clock=clock),
        KernelSpec("topk", ii=1, depth=8, unroll=1, clock=clock),
    ]
    works = [coarse_work, select_work, lut_work, candidates, 64]

    sim = Simulator()
    streams = [Stream(sim, 2) for _ in range(len(stages) + 1)]
    queries = [
        Burst(payload=q, count=works[0]) for q in range(n_queries)
    ]
    Source(sim, streams[0], queries)
    for stage_index, (spec, inp, out) in enumerate(
        zip(stages, streams[:-1], streams[1:])
    ):
        next_work = works[stage_index + 1] if stage_index + 1 < len(works) \
            else 1

        def relabel(burst, next_work=next_work):
            return Burst(payload=burst.payload, count=next_work)

        BurstKernel(sim, spec, relabel, inp, out)
    sink = Sink(sim, streams[-1])
    sim.run()
    return accel, sink


def test_event_pipeline_latency_matches_stage_model():
    accel, sink = _build_event_pipeline(n_queries=1)
    analytic = accel.stage_times(_NPROBE)
    simulated = sink.done_at_ps / 1e12
    # The event pipeline additionally pays each stage's fill depth
    # (~72 cycles here), which the analytic model folds into its coarse
    # constants; the two agree within that margin.
    assert simulated >= analytic.latency_s
    assert simulated == pytest.approx(analytic.latency_s, rel=0.3)


def test_event_pipeline_throughput_matches_bottleneck():
    accel, sink = _build_event_pipeline(n_queries=40)
    analytic = accel.stage_times(_NPROBE)
    simulated_total = sink.done_at_ps / 1e12
    expected = analytic.latency_s + 39 * analytic.bottleneck_s
    assert simulated_total == pytest.approx(expected, rel=0.2)
    assert sink.items > 0


def test_functional_results_unaffected_by_timing_model():
    accel = FannsAccelerator(_INDEX, _CONFIG)
    out = accel.search(_DS.queries, k=5, nprobe=_NPROBE)
    want = _INDEX.search(_DS.queries, 5, _NPROBE)
    assert np.array_equal(out.ids, want)
