"""The README's code snippets must actually run."""

def test_quickstart_snippet():
    from repro.core import LoopNest, Pragmas, synthesize

    loop = LoopNest("vadd", trip_count=1_000_000,
                    ops={"mem_read": 2, "add": 1, "mem_write": 1})
    spec = synthesize(loop, Pragmas(pipeline=True, unroll=8))
    assert spec.throughput_items_per_sec() > 1e9


def test_sql_offload_snippet():
    from repro.farview import FarviewClient, FarviewServer
    from repro.relational import Table, parse_query
    from repro.workloads import uniform_table

    server = FarviewServer()
    server.store("t", Table(uniform_table(100_000)))
    client = FarviewClient(server)
    plan = parse_query("SELECT sum(val0) WHERE key < 10000")
    outcome = client.query_offload(plan, "t")
    assert "node_processing_s" in outcome.breakdown
    assert outcome.result.n_rows == 1
