"""Golden equivalence: one experiment, every execution path, one table.

Two families of byte-identity checks:

* **Fast-forward** — the simulator-driven experiments are rendered
  twice, once with the analytic fast-forward disabled (pure stepped
  engine) and once with it enabled; the tables must match exactly.
  This is the end-to-end counterpart of the unit-level differential
  tests in ``tests/core/test_fastpath.py``.  (e22's event-driven
  workload spawns bare client processes, so it exercises the
  *fallback* leg: enabling fast-forward must be a no-op there, not an
  error.)

* **Runner vs bench** — for *every* registered experiment, the sweep
  runner's assembled tables must equal the bench shim's entry-point
  tables byte-for-byte (rendered).  The case list is parameterised off
  the registry, so adding an experiment automatically extends the
  equivalence matrix; e23's tables contain wall-clock numbers, so it
  is compared structurally instead.
"""

import importlib.util
import sys
from functools import lru_cache
from pathlib import Path

import pytest

from repro.core.fastpath import set_fast_forward
from repro.exec import SweepRunner, build_spec, experiment_ids
from repro.exec.experiments import (
    fanns_dataset,
    fanns_index,
    microrec_model,
    microrec_tables,
    microrec_trace,
)

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

_CONTEXTS = {
    "ivfpq_index": fanns_index,
    "vector_data": fanns_dataset,
    "rec_model": microrec_model,
    "rec_tables": microrec_tables,
    "rec_trace": microrec_trace,
}


@lru_cache(maxsize=None)
def _load(stem: str):
    """Import a benchmark module by file (they are not a package)."""
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        stem, _BENCH_DIR / f"{stem}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

# (module stem, entry point) — simulator-backed, self-contained benches.
_SIM_BENCHES = [
    ("bench_e1_hls_pipeline", "_run_pipeline_sweep"),
    ("bench_e1_hls_pipeline", "_run_timing_ablation"),
    ("bench_e2_line_rate", "_run_line_rate"),
    ("bench_e3_farview_offload", "_run_aggregate_sweep"),
    ("bench_e3_farview_offload", "_run_projection_crossover"),
    ("bench_e4_farview_pipelines", "_run_pipelines"),
    ("bench_e22_fault_tolerance", "_run_fault_tolerance"),
]


@pytest.mark.parametrize(
    "stem,entry",
    _SIM_BENCHES,
    ids=[f"{stem.split('_', 1)[1]}:{entry.lstrip('_')}"
         for stem, entry in _SIM_BENCHES],
)
def test_fast_forward_preserves_table(stem, entry):
    run = getattr(_load(stem), entry)
    set_fast_forward(False)
    try:
        engine = run().render()
    finally:
        set_fast_forward(None)
    set_fast_forward(True)
    try:
        fast = run().render()
    finally:
        set_fast_forward(None)
    assert fast == engine


@pytest.mark.parametrize("exp_id", experiment_ids())
def test_runner_matches_bench_path(exp_id):
    spec = build_spec(exp_id)
    result = SweepRunner(spec).run()

    module = _load(spec.bench[:-3])
    bench_tables = []
    for entry, arg_names in spec.entries:
        args = [_CONTEXTS[name]() for name in arg_names]
        bench_tables.append(getattr(module, entry)(*args))

    assert len(result.tables) == len(bench_tables), (
        f"{exp_id}: runner assembled {len(result.tables)} tables but the "
        f"bench declares {len(bench_tables)} entry points"
    )
    if spec.deterministic:
        assert [t.render() for t in result.tables] == \
            [t.render() for t in bench_tables]
    else:
        # Wall-clock tables (e23): same shape and labels, moving values.
        for runner_t, bench_t in zip(result.tables, bench_tables):
            assert runner_t.title == bench_t.title
            assert len(runner_t.rows) == len(bench_t.rows)
            assert [r[:2] for r in runner_t.rows] == \
                [r[:2] for r in bench_t.rows]
