"""Golden equivalence: fast-forward must not change any result table.

The simulator-driven experiments (e1–e4's dataflow pipelines, e22's
fault-tolerance table) are rendered twice — once with the analytic
fast-forward disabled (pure stepped engine) and once with it enabled —
and the two tables must be byte-identical.  This is the end-to-end
counterpart of the unit-level differential tests in
``tests/core/test_fastpath.py``: whatever the solver does internally,
no experiment output is allowed to move.

(e22's event-driven workload spawns bare client processes, so it
exercises the *fallback* leg: enabling fast-forward must be a no-op
there, not an error.)
"""

import importlib.util
import sys
from functools import lru_cache
from pathlib import Path

import pytest

from repro.core.fastpath import set_fast_forward

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@lru_cache(maxsize=None)
def _load(stem: str):
    """Import a benchmark module by file (they are not a package)."""
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        stem, _BENCH_DIR / f"{stem}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

# (module stem, entry point) — simulator-backed, self-contained benches.
_SIM_BENCHES = [
    ("bench_e1_hls_pipeline", "_run_pipeline_sweep"),
    ("bench_e1_hls_pipeline", "_run_timing_ablation"),
    ("bench_e2_line_rate", "_run_line_rate"),
    ("bench_e3_farview_offload", "_run_aggregate_sweep"),
    ("bench_e3_farview_offload", "_run_projection_crossover"),
    ("bench_e4_farview_pipelines", "_run_pipelines"),
    ("bench_e22_fault_tolerance", "_run_fault_tolerance"),
]


@pytest.mark.parametrize(
    "stem,entry",
    _SIM_BENCHES,
    ids=[f"{stem.split('_', 1)[1]}:{entry.lstrip('_')}"
         for stem, entry in _SIM_BENCHES],
)
def test_fast_forward_preserves_table(stem, entry):
    run = getattr(_load(stem), entry)
    set_fast_forward(False)
    try:
        engine = run().render()
    finally:
        set_fast_forward(None)
    set_fast_forward(True)
    try:
        fast = run().render()
    finally:
        set_fast_forward(None)
    assert fast == engine
