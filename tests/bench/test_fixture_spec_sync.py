"""Bench fixtures and spec ``prepare()`` must share one construction path.

PR 3 shipped the FANNS/MicroRec dataset parameters twice: once in
``benchmarks/conftest.py`` and once (hand-mirrored, including
``FANNS_LIST_SCALE``) in the exec package.  That duplication is gone —
both sides now call the ``lru_cache``'d builders in
``repro.exec.experiments.contexts`` — and these tests fail if it ever
comes back: the bench fixtures must return the *same objects* the
specs' ``prepare()`` uses, not equal-looking reconstructions.
"""

import importlib.util
from pathlib import Path

from repro.exec import build_spec
from repro.exec.experiments import FANNS_LIST_SCALE, contexts

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _bench_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", _BENCH_DIR / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_list_scale_is_defined_once():
    conftest = _bench_conftest()
    assert conftest.FANNS_LIST_SCALE is contexts.FANNS_LIST_SCALE
    assert FANNS_LIST_SCALE == contexts.FANNS_LIST_SCALE


def test_bench_fixtures_return_the_spec_context_objects():
    conftest = _bench_conftest()
    # pytest fixtures expose the undecorated function via __wrapped__;
    # chained fixtures receive their upstream value positionally (the
    # delegating bodies ignore it).
    data = conftest.vector_data.__wrapped__()
    assert data is contexts.fanns_dataset()
    assert conftest.ivfpq_index.__wrapped__(data) is contexts.fanns_index()
    model = conftest.rec_model.__wrapped__()
    assert model is contexts.microrec_model()
    assert conftest.rec_tables.__wrapped__(model) is \
        contexts.microrec_tables()
    assert conftest.rec_trace.__wrapped__(model) is \
        contexts.microrec_trace()


def test_spec_prepare_uses_the_same_contexts():
    e5_ctx = build_spec("e5").prepare()
    assert e5_ctx["data"] is contexts.fanns_dataset()
    assert e5_ctx["index"] is contexts.fanns_index()
    e7_ctx = build_spec("e7").prepare()
    assert e7_ctx["model"] is contexts.microrec_model()
    assert e7_ctx["tables"] is contexts.microrec_tables()
    e16_ctx = build_spec("e16").prepare()
    assert e16_ctx["index"] is contexts.fanns_index()


def test_smoke_and_full_scales_are_distinct_cache_contexts(monkeypatch):
    monkeypatch.delenv("REPRO_SMOKE", raising=False)
    full = contexts.fanns_dataset()
    monkeypatch.setenv("REPRO_SMOKE", "1")
    smoke = contexts.fanns_dataset()
    assert smoke is not full
    assert len(smoke.base) < len(full.base)
