"""Bench-suite plumbing: smoke-scale datasets + wall-clock reporting.

Every test in this directory runs with ``REPRO_SMOKE=1``: the shared
context builders in ``repro.exec.experiments.contexts`` then produce
deliberately tiny datasets/indexes/models, so the whole bench matrix
(smoke + golden equivalence) stays CI-fast while exercising the exact
production code paths.

Each test also gets timed, and a per-experiment wall-clock table is
printed in the terminal summary — so creeping bench cost shows up in
plain ``pytest`` output instead of only in CI duration graphs.
"""

import time

import pytest

_durations: list[tuple[str, float]] = []


@pytest.fixture(autouse=True)
def _smoke_scale(monkeypatch):
    """Scale the fanns/microrec contexts (and e23 sizes) down."""
    monkeypatch.setenv("REPRO_SMOKE", "1")


@pytest.fixture(autouse=True)
def _bench_wall_clock(request):
    t0 = time.perf_counter()
    yield
    _durations.append((request.node.name, time.perf_counter() - t0))


def pytest_terminal_summary(terminalreporter):
    if not _durations:
        return
    terminalreporter.section("bench smoke wall clock")
    for name, seconds in sorted(_durations, key=lambda d: -d[1]):
        terminalreporter.write_line(f"{seconds:8.2f}s  {name}")
    total = sum(seconds for _, seconds in _durations)
    terminalreporter.write_line(f"{total:8.2f}s  total")
