"""Bench-suite plumbing: per-entry wall-clock reporting.

Every test in this directory (the smoke suite and the golden
equivalence checks) gets timed, and a per-experiment wall-clock table
is printed in the terminal summary — so creeping bench cost shows up
in plain ``pytest`` output instead of only in CI duration graphs.
"""

import time

import pytest

_durations: list[tuple[str, float]] = []


@pytest.fixture(autouse=True)
def _bench_wall_clock(request):
    t0 = time.perf_counter()
    yield
    _durations.append((request.node.name, time.perf_counter() - t0))


def pytest_terminal_summary(terminalreporter):
    if not _durations:
        return
    terminalreporter.section("bench smoke wall clock")
    for name, seconds in sorted(_durations, key=lambda d: -d[1]):
        terminalreporter.write_line(f"{seconds:8.2f}s  {name}")
    total = sum(seconds for _, seconds in _durations)
    terminalreporter.write_line(f"{total:8.2f}s  total")
