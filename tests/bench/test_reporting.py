"""Unit tests for the bench reporting helpers."""

import pytest

from repro.bench.reporting import ResultTable, format_quantity, speedup


def test_format_quantity_suffixes():
    assert format_quantity(1_500_000.0) == "1.5M"
    assert format_quantity(2.5e9) == "2.5G"
    assert format_quantity(0.004) == "4m"
    assert format_quantity(3.2e-6) == "3.2u"
    assert format_quantity(1.1e-9) == "1.1n"
    assert format_quantity(0) == "0"
    assert format_quantity(0.0) == "0"
    assert format_quantity(42) == "42"
    assert format_quantity(1234567) == "1,234,567"
    assert format_quantity("text") == "text"
    assert format_quantity(True) == "True"
    assert format_quantity(0.5) == "0.5"


def test_format_quantity_boundary_promotion():
    # values that round across a decade boundary must promote to the
    # next suffix band (the pre-fix fall-through printed "1e+03" here)
    assert format_quantity(999.9996) == "1K"
    assert format_quantity(9.9999e-13) == "1p"
    assert format_quantity(999_999.6) == "1M"
    assert format_quantity(0.0099999) == "0.01"


def test_format_quantity_exact_boundaries():
    assert format_quantity(1000.0) == "1K"
    assert format_quantity(1e-12) == "1p"
    assert format_quantity(0.01) == "0.01"
    assert format_quantity(999.4) == "999"


def test_format_quantity_below_smallest_suffix_is_scientific():
    assert format_quantity(9e-13) == "9e-13"
    assert format_quantity(2.5e-14) == "2.5e-14"


def test_format_quantity_negative_and_digits():
    assert format_quantity(-1500.0) == "-1.5K"
    assert format_quantity(1234.0, digits=4) == "1.234K"


def test_speedup():
    assert speedup(10.0, 2.0) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)


def test_result_table_render():
    table = ResultTable("Demo", ("size", "time"))
    table.add(1024, 1.5e-3)
    table.add(2048, 3.0e-3)
    table.note("synthetic")
    text = table.render()
    assert "Demo" in text
    assert "size" in text and "time" in text
    assert "1.5m" in text
    assert "* synthetic" in text


def test_result_table_row_arity_checked():
    table = ResultTable("Demo", ("a", "b"))
    with pytest.raises(ValueError):
        table.add(1)


def test_empty_table_renders():
    table = ResultTable("Empty", ("col",))
    assert "Empty" in table.render()


def test_result_table_metrics_section_renders():
    table = ResultTable("T", ("x",))
    table.add(1)
    table.add_metrics(
        {
            "kernel.items{kernel=k}": 64,
            "stream.latency": {"count": 2, "sum": 30.0, "mean": 15.0,
                               "buckets": {"le_10": 1, "le_inf": 1}},
        },
        title="obs metrics",
    )
    text = table.render()
    assert "-- obs metrics --" in text
    assert "kernel.items{kernel=k}" in text
    assert "count=2" in text and "mean=15" in text


def test_show_prints(capsys):
    table = ResultTable("T", ("x",))
    table.add(1)
    table.show()
    assert "T" in capsys.readouterr().out
