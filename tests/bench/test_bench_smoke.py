"""Smoke tests: every benchmark entry point runs on a small config.

Each ``benchmarks/bench_e*.py`` exposes its experiment as one or more
``_run_*`` functions (the pytest-benchmark wrappers call them with
session-scale fixtures).  Here we call every entry point directly —
self-contained ones as-is, fixture-driven ones with deliberately tiny
datasets/indexes/models — and assert they return a populated
:class:`~repro.bench.ResultTable` that renders.  This catches import
rot, signature drift, and shape-claim regressions without paying the
full benchmark cost.
"""

import importlib.util
import sys
from functools import lru_cache
from pathlib import Path

import pytest

from repro.bench import ResultTable

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@lru_cache(maxsize=None)
def _load(stem: str):
    """Import a benchmark module by file (they are not a package)."""
    if str(_BENCH_DIR) not in sys.path:
        # bench modules do `from conftest import FANNS_LIST_SCALE`
        sys.path.insert(0, str(_BENCH_DIR))
    spec = importlib.util.spec_from_file_location(stem, _BENCH_DIR / f"{stem}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_bench_module_is_covered():
    """The case list below must track benchmarks/bench_e*.py exactly."""
    on_disk = {p.stem for p in _BENCH_DIR.glob("bench_e*.py")}
    covered = {stem for stem, _, _ in _CASES}
    assert covered == on_disk


# -- tiny stand-ins for the session-scale fixtures ------------------------


@pytest.fixture(scope="module")
def smoke_vectors():
    from repro.workloads import clustered_dataset

    # dim=16 with m=16 below gives near-exact PQ, so the recall-shape
    # asserts inside e5/e6 hold even at this small scale.
    return clustered_dataset(
        n=8_000, dim=16, n_queries=64, gt_k=10, n_clusters=32,
        cluster_std=0.25, seed=13,
    )


@pytest.fixture(scope="module")
def smoke_index(smoke_vectors):
    from repro.fanns import build_ivfpq

    return build_ivfpq(smoke_vectors.base, nlist=32, m=16, ksub=256, seed=13)


@pytest.fixture(scope="module")
def smoke_rec_model():
    from repro.workloads import production_like_model

    # 47 tables (like the session model) so Cartesian products in e8
    # have enough combinable tables; rows scaled down 10x.
    return production_like_model(n_tables=47, max_rows=200_000, seed=21)


@pytest.fixture(scope="module")
def smoke_rec_tables(smoke_rec_model):
    from repro.microrec import EmbeddingTables

    return EmbeddingTables(smoke_rec_model, seed=21)


@pytest.fixture(scope="module")
def smoke_rec_trace(smoke_rec_model):
    from repro.workloads import lookup_trace

    return lookup_trace(smoke_rec_model, batch_size=64, seed=22)


@pytest.fixture(scope="module")
def smoke_write_amplification():
    mod = _load("bench_e18_lsm_offload")
    wa, table = mod._measure_write_amplification()
    assert table.rows
    return wa


# (module stem, entry point, fixture names for its arguments)
_CASES = [
    ("bench_e1_hls_pipeline", "_run_pipeline_sweep", ()),
    ("bench_e1_hls_pipeline", "_run_timing_ablation", ()),
    ("bench_e2_line_rate", "_run_line_rate", ()),
    ("bench_e3_farview_offload", "_run_aggregate_sweep", ()),
    ("bench_e3_farview_offload", "_run_projection_crossover", ()),
    ("bench_e4_farview_pipelines", "_run_pipelines", ()),
    ("bench_e5_fanns_qps_recall", "_run_sweep",
     ("smoke_index", "smoke_vectors")),
    ("bench_e6_fanns_generator", "_run_generator",
     ("smoke_index", "smoke_vectors")),
    ("bench_e7_microrec_latency", "_run_latency",
     ("smoke_rec_model", "smoke_rec_tables")),
    ("bench_e8_microrec_cartesian", "_run_cartesian",
     ("smoke_rec_model", "smoke_rec_tables", "smoke_rec_trace")),
    ("bench_e9_microrec_hbm", "_run_channel_sweep",
     ("smoke_rec_model", "smoke_rec_tables")),
    ("bench_e9_microrec_hbm", "_run_sram_ablation",
     ("smoke_rec_model", "smoke_rec_tables")),
    ("bench_e10_accl_collectives", "_run_collectives", ()),
    ("bench_e11_accl_scaling", "_run_scaling", ()),
    ("bench_e11_accl_scaling", "_run_crossover", ()),
    ("bench_e12_resources", "_run_resources", ()),
    ("bench_e13_sketches", "_run_accuracy", ()),
    ("bench_e13_sketches", "_run_throughput", ()),
    ("bench_e14_anyprec_kmeans", "_run_precision_sweep", ()),
    ("bench_e15_compression", "_run_ratios", ()),
    ("bench_e15_compression", "_run_throughput", ()),
    ("bench_e16_scaleout", "_run_distributed_fanns",
     ("smoke_index", "smoke_vectors")),
    ("bench_e16_scaleout", "_run_fleetrec", ()),
    ("bench_e17_kvdirect", "_run_kvdirect", ()),
    ("bench_e18_lsm_offload", "_run_offload", ("smoke_write_amplification",)),
    ("bench_e19_multitenant", "_run_multitenant", ()),
    ("bench_e20_hash_join", "_run_functional_check", ()),
    ("bench_e20_hash_join", "_run_join_study", ()),
    ("bench_e21_business_rules", "_run_rules_sweep", ()),
    ("bench_e22_fault_tolerance", "_run_fault_tolerance", ()),
    ("bench_e23_sim_perf", "_run_smoke", ()),
]


@pytest.mark.parametrize(
    "stem,entry,fixture_names",
    _CASES,
    ids=[f"{stem.split('_', 1)[1]}:{entry.lstrip('_')}" for stem, entry, _ in _CASES],
)
def test_bench_entry_point_smoke(stem, entry, fixture_names, request):
    module = _load(stem)
    args = [request.getfixturevalue(name) for name in fixture_names]
    result = getattr(module, entry)(*args)
    if result is None:
        # functional checks assert internally and return nothing
        return
    assert isinstance(result, ResultTable)
    assert result.rows, f"{stem}.{entry} produced an empty table"
    rendered = result.render()
    assert result.title in rendered
