"""Smoke tests: every registered bench entry point runs on a small config.

The case list is *derived from the experiment registry*: for every
registered spec, every declared ``entries`` pair is invoked on the
bench shim — fixture-driven entries with the smoke-scale contexts the
``REPRO_SMOKE=1`` knob (set by this directory's conftest) makes the
shared builders produce.  A bench file without a registry entry, a
registry entry whose bench or entry point is missing, or a shape-claim
regression all fail here — nothing is hand-listed.
"""

import importlib.util
import sys
from functools import lru_cache
from pathlib import Path

import pytest

from repro.bench import ResultTable
from repro.exec import build_spec, experiment_ids
from repro.exec.experiments import (
    fanns_dataset,
    fanns_index,
    microrec_model,
    microrec_tables,
    microrec_trace,
)

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

# Entry-argument names (= benchmarks/conftest.py fixture names) mapped
# to the shared smoke-scale context builders.
_CONTEXTS = {
    "ivfpq_index": fanns_index,
    "vector_data": fanns_dataset,
    "rec_model": microrec_model,
    "rec_tables": microrec_tables,
    "rec_trace": microrec_trace,
}


@lru_cache(maxsize=None)
def _load(stem: str):
    """Import a benchmark module by file (they are not a package)."""
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        stem, _BENCH_DIR / f"{stem}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cases():
    cases = []
    for exp_id in experiment_ids():
        spec = build_spec(exp_id)
        for entry, arg_names in spec.entries:
            cases.append((spec.bench[:-3], entry, arg_names))
    return cases


_CASES = _cases()


def test_every_bench_module_is_registered():
    """benchmarks/bench_e*.py and the registry must track each other."""
    on_disk = {p.stem for p in _BENCH_DIR.glob("bench_e*.py")}
    registered = {build_spec(e).bench[:-3] for e in experiment_ids()}
    assert registered == on_disk


@pytest.mark.parametrize(
    "stem,entry,arg_names",
    _CASES,
    ids=[f"{stem.split('_', 1)[1]}:{entry.lstrip('_')}"
         for stem, entry, _ in _CASES],
)
def test_bench_entry_point_smoke(stem, entry, arg_names):
    module = _load(stem)
    args = [_CONTEXTS[name]() for name in arg_names]
    result = getattr(module, entry)(*args)
    assert isinstance(result, ResultTable)
    assert result.rows, f"{stem}.{entry} produced an empty table"
    rendered = result.render()
    assert result.title in rendered
