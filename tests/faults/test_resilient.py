"""Resilient allreduce: retransmissions, crash reroute, correctness."""

import numpy as np
import pytest

from repro.accl import (
    FpgaCluster,
    HostStagedCluster,
    allreduce_with_faults,
    expected_steps_ring,
)
from repro.faults import FaultPlan, NodeOutage


def _buffers(p, elems=512):
    return [
        np.full(elems, float(i + 1), dtype=np.float64) for i in range(p)
    ]


def test_clean_run_matches_plain_ring():
    cluster = FpgaCluster(8)
    bufs = _buffers(8)
    result = allreduce_with_faults(cluster, bufs, FaultPlan(seed=0))
    plain = cluster.allreduce(bufs, algorithm="ring")
    assert not result.rerouted and result.retries == 0
    assert result.survivors == tuple(range(8))
    assert result.outcome.n_steps == expected_steps_ring(8)
    assert result.time_s == pytest.approx(plain.time_s)
    for buf in result.outcome.buffers:
        assert np.allclose(buf, 36.0)  # 1+2+...+8


def test_drops_cost_time_but_not_correctness():
    cluster = FpgaCluster(8)
    bufs = _buffers(8)
    faulty = allreduce_with_faults(
        cluster, bufs, FaultPlan(seed=1, drop_rate=0.3)
    )
    clean = allreduce_with_faults(cluster, bufs, FaultPlan(seed=1))
    assert faulty.retries > 0
    assert faulty.time_s > clean.time_s
    for buf in faulty.outcome.buffers:
        assert np.allclose(buf, 36.0)


def test_crash_reroutes_to_survivor_tree():
    cluster = FpgaCluster(8)
    bufs = _buffers(8)
    plan = FaultPlan(seed=0, outages=(NodeOutage(node=3, down_at_ps=0),))
    result = allreduce_with_faults(cluster, bufs, plan)
    assert result.rerouted
    assert result.survivors == (0, 1, 2, 4, 5, 6, 7)
    # Survivors agree on the sum of the surviving contributions.
    expected = 36.0 - 4.0  # node 3 contributed value 4
    assert len(result.outcome.buffers) == 7
    for buf in result.outcome.buffers:
        assert np.allclose(buf, expected)


def test_mid_run_crash_charges_wasted_ring_time():
    cluster = FpgaCluster(8)
    bufs = _buffers(8, elems=64 * 1024)
    clean = allreduce_with_faults(cluster, bufs, FaultPlan(seed=0))
    # Crash halfway through the clean run's makespan.
    halfway = int(clean.time_s * 1e12 / 2)
    plan = FaultPlan(seed=0, outages=(NodeOutage(node=1, down_at_ps=halfway),))
    result = allreduce_with_faults(cluster, bufs, plan)
    assert result.rerouted
    assert result.wasted_s > 0
    assert result.time_s > result.wasted_s


def test_host_staged_cluster_reroutes_with_same_flavour():
    cluster = HostStagedCluster(4)
    bufs = _buffers(4)
    plan = FaultPlan(seed=0, outages=(NodeOutage(node=0, down_at_ps=0),))
    result = allreduce_with_faults(cluster, bufs, plan)
    assert result.rerouted and result.survivors == (1, 2, 3)
    for buf in result.outcome.buffers:
        assert np.allclose(buf, 2.0 + 3.0 + 4.0)


def test_deterministic_given_seed():
    def run():
        cluster = FpgaCluster(8)
        result = allreduce_with_faults(
            cluster, _buffers(8), FaultPlan(seed=2, drop_rate=0.2)
        )
        return result.retries, result.time_s, result.survivors

    assert run() == run()
