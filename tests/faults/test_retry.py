"""RetryPolicy, the event-driven retry loop, and the analytic variant."""

import random

import pytest

from repro.core import Event, Simulator
from repro.faults import (
    DeadlineExceeded,
    FaultPlan,
    FaultyLink,
    RetryPolicy,
    analytic_retries,
    call_with_retries,
)
from repro.network.link import ethernet_100g


# -- RetryPolicy ----------------------------------------------------------


def test_backoff_grows_exponentially_without_jitter():
    policy = RetryPolicy(
        backoff_base_ps=1000, backoff_multiplier=2.0, jitter=0.0
    )
    rng = random.Random(0)
    assert policy.backoff_ps(1, rng) == 1000
    assert policy.backoff_ps(2, rng) == 2000
    assert policy.backoff_ps(3, rng) == 4000


def test_backoff_jitter_stays_within_band():
    policy = RetryPolicy(
        backoff_base_ps=10_000, backoff_multiplier=1.0, jitter=0.25
    )
    rng = random.Random(7)
    for _ in range(100):
        b = policy.backoff_ps(1, rng)
        assert 7_500 <= b <= 12_500


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_ps=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy().backoff_ps(0, random.Random(0))


# -- call_with_retries (event-driven) -------------------------------------


def _run_call(sim, make_attempt, policy, deadline_ps=None):
    results = []

    def proc():
        out = yield from call_with_retries(
            sim, make_attempt, policy, random.Random(1),
            deadline_ps=deadline_ps, site="t",
        )
        results.append(out)

    sim.spawn(proc())
    sim.run()
    return results[0]


def test_first_attempt_success_has_no_retries():
    sim = Simulator()

    def attempt():
        yield sim.timeout(5)
        return "value"

    out = _run_call(sim, attempt, RetryPolicy(max_attempts=3))
    assert out.ok and out.value == "value"
    assert out.attempts == 1 and out.retries == 0
    assert out.latency_ps == 5


def test_timed_out_attempts_are_retried_and_cleaned_up():
    sim = Simulator()
    launches = []

    def attempt():
        launches.append(sim.now)
        if len(launches) < 3:
            yield Event(sim)  # hangs; only the timeout saves us
        else:
            yield sim.timeout(5)
        return "finally"

    policy = RetryPolicy(
        max_attempts=4, timeout_ps=100, backoff_base_ps=10, jitter=0.0
    )
    out = _run_call(sim, attempt, policy)
    assert out.ok and out.value == "finally"
    assert out.attempts == 3 and out.retries == 2
    assert len(launches) == 3
    # run() finishing proves the killed attempts were defused
    # (an unjoined interrupt-kill would have raised at exit).


def test_exhausted_attempts_give_up():
    sim = Simulator()

    def attempt():
        yield Event(sim)  # never completes

    policy = RetryPolicy(
        max_attempts=2, timeout_ps=100, backoff_base_ps=10, jitter=0.0
    )
    out = _run_call(sim, attempt, policy)
    assert not out.ok and out.value is None
    assert out.attempts == 2 and out.retries == 1


def test_deadline_cuts_the_attempt_budget():
    sim = Simulator()

    def attempt():
        yield Event(sim)

    policy = RetryPolicy(
        max_attempts=100, timeout_ps=100, backoff_base_ps=0, jitter=0.0
    )
    out = _run_call(sim, attempt, policy, deadline_ps=250)
    assert not out.ok and out.deadline_missed
    assert out.attempts == 3  # 100 + 100 + clamped 50
    assert out.latency_ps <= 250


def test_failed_attempts_are_retried_on_simulation_errors():
    sim = Simulator()
    plan = FaultPlan(seed=0, drop_rate=1.0)
    link = FaultyLink(sim, ethernet_100g(), plan, name="l", mode="error")

    def attempt():
        value = yield link.transfer(64)
        return value

    policy = RetryPolicy(
        max_attempts=3, timeout_ps=None, backoff_base_ps=10, jitter=0.0
    )
    out = _run_call(sim, attempt, policy)
    assert not out.ok
    assert out.attempts == 3 and out.retries == 2
    assert link.drops == 3


def test_non_retryable_exceptions_propagate():
    sim = Simulator()

    def attempt():
        yield sim.timeout(1)
        raise KeyError("not a fault")

    def proc():
        yield from call_with_retries(
            sim, attempt, RetryPolicy(timeout_ps=None), random.Random(0)
        )

    sim.spawn(proc())
    with pytest.raises(KeyError):
        sim.run()


# -- analytic_retries -----------------------------------------------------


def test_analytic_happy_path_is_free():
    assert analytic_retries("s", 0.5, None, RetryPolicy()) == (0.5, 1, 0)


def test_analytic_clean_plan_matches_base_latency():
    plan = FaultPlan(seed=0)
    latency, attempts, retries = analytic_retries(
        "s", 0.5, plan, RetryPolicy()
    )
    assert latency == 0.5 and attempts == 1 and retries == 0


def test_analytic_drops_add_timeout_and_backoff():
    plan = FaultPlan(seed=0, drop_rate=1.0)
    policy = RetryPolicy(
        max_attempts=3, timeout_ps=1_000_000, backoff_base_ps=0, jitter=0.0
    )
    with pytest.raises(DeadlineExceeded):
        analytic_retries("s", 0.5, plan, policy)


def test_analytic_deadline_enforced():
    plan = FaultPlan(seed=0, drop_rate=0.0)
    with pytest.raises(DeadlineExceeded):
        analytic_retries("s", 2.0, plan, RetryPolicy(), deadline_s=1.0)


def test_analytic_is_deterministic():
    def run():
        plan = FaultPlan(seed=5, drop_rate=0.4, spike_rate=0.2)
        policy = RetryPolicy(max_attempts=5, timeout_ps=3_000_000)
        rows = []
        for _ in range(50):
            try:
                rows.append(analytic_retries("s", 1e-6, plan, policy))
            except DeadlineExceeded:
                rows.append(("gave-up",))
        return rows

    assert run() == run()
