"""FaultyLink / FaultyNodePort behavior under a forced plan."""

import pytest

from repro.core import Simulator, WaitTimeout, with_timeout
from repro.faults import (
    FaultPlan,
    FaultyLink,
    FaultyNodePort,
    NodeDown,
    NodeOutage,
    TransferDropped,
)
from repro.network.fabric import SwitchedFabric
from repro.network.link import ethernet_100g
from repro.network.protocol import fpga_tcp


def test_clean_plan_behaves_like_a_plain_link():
    sim = Simulator()
    link = FaultyLink(sim, ethernet_100g(), FaultPlan(seed=0), name="l")
    values = []

    def proc():
        values.append((yield link.transfer(4096)))

    sim.spawn(proc())
    sim.run()
    assert values == [4096]
    assert link.drops == 0 and link.spikes == 0


def test_silent_drop_never_delivers():
    sim = Simulator()
    plan = FaultPlan(seed=0, drop_rate=1.0)
    link = FaultyLink(sim, ethernet_100g(), plan, name="l", mode="silent")
    outcomes = []

    def proc():
        try:
            yield with_timeout(sim, link.transfer(4096), 10_000_000)
            outcomes.append("delivered")
        except WaitTimeout:
            outcomes.append("timed out")

    sim.spawn(proc())
    sim.run()
    assert outcomes == ["timed out"]
    assert link.drops == 1
    # The wire was still occupied: the bytes left the sender.
    assert link.busy_ps > 0


def test_error_drop_fails_at_delivery_time():
    sim = Simulator()
    plan = FaultPlan(seed=0, drop_rate=1.0)
    link = FaultyLink(sim, ethernet_100g(), plan, name="l", mode="error")
    outcomes = []

    def proc():
        try:
            yield link.transfer(4096)
        except TransferDropped as exc:
            outcomes.append((sim.now, exc.site))

    sim.spawn(proc())
    sim.run()
    assert len(outcomes) == 1
    at, site = outcomes[0]
    assert site == "l"
    assert at >= link.model.transfer_ps(4096)


def test_latency_spike_delays_delivery():
    sim = Simulator()
    spike = (7_000_000, 7_000_000)
    plan = FaultPlan(seed=0, spike_rate=1.0, spike_ps=spike)
    link = FaultyLink(sim, ethernet_100g(), plan, name="l")
    arrivals = []

    def proc():
        yield link.transfer(4096)
        arrivals.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert arrivals == [link.model.transfer_ps(4096) + 7_000_000]
    assert link.spikes == 1


def test_invalid_mode_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        FaultyLink(sim, ethernet_100g(), FaultPlan(), mode="chaotic")


def test_node_port_outage_drops_sends():
    sim = Simulator()
    fabric = SwitchedFabric(fpga_tcp(), n_nodes=4)
    plan = FaultPlan(outages=(NodeOutage(node=2, down_at_ps=0),))
    port = FaultyNodePort(sim, fabric, node=0, plan=plan, mode="error")
    outcomes = []

    def proc():
        try:
            yield port.send(2, 1024)  # destination is down
        except NodeDown as exc:
            outcomes.append(("down", exc.node))
        value = yield port.send(1, 1024)  # healthy destination
        outcomes.append(("ok", value))

    sim.spawn(proc())
    sim.run()
    assert outcomes == [("down", 2), ("ok", 1024)]
    assert port.drops == 1


def test_node_port_sender_outage():
    sim = Simulator()
    fabric = SwitchedFabric(fpga_tcp(), n_nodes=4)
    plan = FaultPlan(outages=(NodeOutage(node=0, down_at_ps=0),))
    port = FaultyNodePort(sim, fabric, node=0, plan=plan, mode="error")
    outcomes = []

    def proc():
        try:
            yield port.send(1, 1024)
        except NodeDown as exc:
            outcomes.append(exc.node)

    sim.spawn(proc())
    sim.run()
    assert outcomes == [0]
