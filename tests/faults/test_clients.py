"""Fault-aware client layers: Farview queries and KV batches."""

import numpy as np
import pytest

from repro.farview.client import FarviewClient
from repro.farview.server import FarviewServer
from repro.faults import DeadlineExceeded, FaultPlan, RetryPolicy
from repro.kvstore.hashtable import HashTable
from repro.kvstore.server import SmartNicKvServer
from repro.relational.expressions import col
from repro.relational.operators import Filter, Project, QueryPlan
from repro.relational.table import Table
from repro.workloads.tables import uniform_table


def _client(n_rows=5_000):
    server = FarviewServer()
    server.store("t", Table(uniform_table(n_rows, n_payload_cols=2, seed=1)))
    return FarviewClient(server)


def _plan():
    return QueryPlan((
        Filter(col("key") < 50_000),
        Project(("key", "val0")),
    ))


# -- farview ---------------------------------------------------------------


def test_offload_without_faults_is_unchanged():
    client = _client()
    out = client.query_offload(_plan(), "t")
    assert out.breakdown["attempts"] == 1.0
    assert out.breakdown["retries"] == 0.0
    happy = (
        out.breakdown["request_s"]
        + out.breakdown["node_processing_s"]
        + out.breakdown["response_latency_s"]
    )
    assert out.latency_s == pytest.approx(happy)


def test_offload_clean_plan_matches_no_plan():
    client = _client()
    bare = client.query_offload(_plan(), "t")
    clean = client.query_offload(_plan(), "t", faults=FaultPlan(seed=0))
    assert clean.latency_s == pytest.approx(bare.latency_s)
    assert clean.bytes_over_network == bare.bytes_over_network
    assert np.array_equal(
        clean.result.column("key"), bare.result.column("key")
    )


def test_offload_drops_inflate_latency_and_wire_bytes():
    client = _client()
    bare = client.query_offload(_plan(), "t")
    policy = RetryPolicy(max_attempts=8, timeout_ps=2_000_000, jitter=0.0)
    # High drop rate: find a seed whose first offload call retries.
    faulty = client.query_offload(
        _plan(), "t", faults=FaultPlan(seed=1, drop_rate=0.9), retry=policy
    )
    assert faulty.breakdown["retries"] >= 1.0
    assert faulty.latency_s > bare.latency_s
    assert faulty.bytes_over_network > bare.bytes_over_network
    # Functional result is unaffected by the retries.
    assert np.array_equal(
        faulty.result.column("key"), bare.result.column("key")
    )


def test_fetch_retries_resend_the_whole_payload():
    client = _client()
    bare = client.query_fetch(_plan(), "t")
    policy = RetryPolicy(max_attempts=8, timeout_ps=2_000_000, jitter=0.0)
    faulty = client.query_fetch(
        _plan(), "t", faults=FaultPlan(seed=1, drop_rate=0.9), retry=policy
    )
    attempts = int(faulty.breakdown["attempts"])
    assert attempts >= 2
    assert faulty.bytes_over_network == attempts * bare.bytes_over_network


def test_certain_loss_exhausts_the_budget():
    client = _client()
    policy = RetryPolicy(max_attempts=3, timeout_ps=1_000_000, jitter=0.0)
    with pytest.raises(DeadlineExceeded) as info:
        client.query_offload(
            _plan(), "t", faults=FaultPlan(seed=0, drop_rate=1.0),
            retry=policy,
        )
    assert info.value.site == "farview.offload"


def test_tight_deadline_raises():
    client = _client()
    with pytest.raises(DeadlineExceeded):
        client.query_offload(
            _plan(), "t", faults=FaultPlan(seed=0), deadline_s=1e-12
        )


# -- kvstore ---------------------------------------------------------------


def _kv_ops(n=200, seed=0):
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n):
        key = int(rng.integers(0, 100))
        if i % 3 == 0:
            ops.append(("put", key, int(rng.integers(0, 1000))))
        else:
            ops.append(("get", key, 0))
    return ops


def test_kv_clean_plan_matches_base_timing():
    ops = _kv_ops()
    # Serving is stateful (puts mutate the table), so compare against a
    # fresh server running the same batch.
    out = SmartNicKvServer(HashTable(1024, 8)).serve_with_faults(
        ops, FaultPlan(seed=0)
    )
    assert out.base.values == SmartNicKvServer(HashTable(1024, 8)).serve(ops).values
    assert out.retries == 0 and out.deadline_misses == 0
    assert out.p50_s == pytest.approx(out.base.op_latency_s)
    assert out.goodput_ops_per_sec == pytest.approx(out.base.ops_per_sec)


def test_kv_drops_raise_tail_latency_and_cut_goodput():
    server = SmartNicKvServer(HashTable(1024, 8))
    ops = _kv_ops()
    policy = RetryPolicy(max_attempts=4, timeout_ps=20_000_000, jitter=0.0)
    clean = server.serve_with_faults(ops, FaultPlan(seed=3), retry=policy)
    faulty = server.serve_with_faults(
        ops, FaultPlan(seed=3, drop_rate=0.05), retry=policy
    )
    assert faulty.retries > 0
    assert faulty.p99_s > clean.p99_s
    assert faulty.goodput_ops_per_sec < clean.goodput_ops_per_sec
    # The median op is still clean at a 5% drop rate.
    assert faulty.p50_s == pytest.approx(clean.p50_s)


def test_kv_certain_loss_censors_every_op():
    server = SmartNicKvServer(HashTable(1024, 8))
    ops = _kv_ops(50)
    policy = RetryPolicy(max_attempts=2, timeout_ps=10_000_000, jitter=0.0)
    deadline = 1e-3
    out = server.serve_with_faults(
        ops, FaultPlan(seed=0, drop_rate=1.0), retry=policy,
        deadline_s=deadline,
    )
    assert out.deadline_misses == len(ops)
    assert out.goodput_ops_per_sec == 0.0
    assert all(lat == deadline for lat in out.op_latencies_s)


def test_kv_faulty_batch_is_deterministic():
    server = SmartNicKvServer(HashTable(1024, 8))
    ops = _kv_ops()

    def run():
        out = server.serve_with_faults(
            ops, FaultPlan(seed=7, drop_rate=0.1, spike_rate=0.05)
        )
        return out.op_latencies_s, out.retries, out.deadline_misses

    assert run() == run()
