"""FaultPlan determinism, site independence, and outage windows."""

import pytest

from repro.faults import FaultPlan, NodeOutage


def _schedule(plan, site, n=300):
    return [
        (plan.drop(site), plan.spike_delay_ps(site)) for _ in range(n)
    ]


def test_same_seed_same_schedule():
    a = FaultPlan(seed=9, drop_rate=0.1, spike_rate=0.05)
    b = FaultPlan(seed=9, drop_rate=0.1, spike_rate=0.05)
    assert _schedule(a, "link0") == _schedule(b, "link0")


def test_replay_restores_virgin_streams():
    plan = FaultPlan(seed=9, drop_rate=0.1, spike_rate=0.05)
    first = _schedule(plan, "link0")
    assert _schedule(plan, "link0") != first or not any(
        hit for hit, _ in first
    ), "a consumed stream must have advanced"
    again = _schedule(plan.replay(), "link0")
    assert again == first


def test_sites_are_independent_of_consult_order():
    """Drawing from site A must not perturb site B's schedule."""
    solo = FaultPlan(seed=4, drop_rate=0.2)
    expected = _schedule(solo, "b")

    interleaved = FaultPlan(seed=4, drop_rate=0.2)
    for _ in range(500):
        interleaved.drop("a")  # burn draws on another site first
    assert _schedule(interleaved, "b") == expected


def test_different_seeds_diverge():
    a = _schedule(FaultPlan(seed=1, drop_rate=0.3), "x")
    b = _schedule(FaultPlan(seed=2, drop_rate=0.3), "x")
    assert a != b


def test_zero_rates_never_fire():
    plan = FaultPlan(seed=0)
    assert not any(plan.drop("x") for _ in range(100))
    assert all(plan.spike_delay_ps("x") == 0 for _ in range(100))
    assert plan.injected == {}


def test_injected_counts_accumulate():
    plan = FaultPlan(seed=3, drop_rate=1.0)
    for _ in range(5):
        plan.drop("x")
    assert plan.injected == {"drop": 5}


def test_outage_windows():
    plan = FaultPlan(outages=(
        NodeOutage(node=2, down_at_ps=100, up_at_ps=200),
        NodeOutage(node=5, down_at_ps=150),  # never recovers
    ))
    assert not plan.node_down(2, 99)
    assert plan.node_down(2, 100)
    assert plan.node_down(2, 199)
    assert not plan.node_down(2, 200)
    assert plan.node_down(5, 10_000_000)
    assert plan.down_nodes(160) == {2, 5}
    assert plan.down_nodes(0) == frozenset()


def test_invalid_parameters_are_rejected():
    with pytest.raises(ValueError):
        FaultPlan(drop_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(spike_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(spike_ps=(10, 5))
    with pytest.raises(ValueError):
        NodeOutage(node=0, down_at_ps=-1)
    with pytest.raises(ValueError):
        NodeOutage(node=0, down_at_ps=10, up_at_ps=10)
