"""Satellite: deterministic replay of the fault experiment (e22).

The acceptance bar for the fault layer is that a seeded
:class:`~repro.faults.plan.FaultPlan` reproduces the *same* fault
schedule on replay, and that the whole e22 experiment — event-driven
Farview scans plus the resilient allreduce — renders byte-identical
tables across two runs in one process.
"""

import importlib.util
import sys
from functools import lru_cache
from pathlib import Path

from repro.faults import FaultPlan, NodeOutage

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@lru_cache(maxsize=None)
def _bench_e22():
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        "bench_e22_fault_tolerance", _BENCH_DIR / "bench_e22_fault_tolerance.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_fault_schedule_replays_identically():
    plan = FaultPlan(
        seed=42, drop_rate=0.1, spike_rate=0.05,
        outages=(NodeOutage(node=1, down_at_ps=100),),
    )
    sites = ("link.a", "link.b", "node0.egress")
    first = [
        (site, plan.drop(site), plan.spike_delay_ps(site))
        for _ in range(200) for site in sites
    ]
    second = [
        (site, plan.drop(site), plan.spike_delay_ps(site))
        for _ in range(200) for site in sites
    ]
    assert first != second, "streams must advance within a run"
    replayed = plan.replay()
    assert replayed.outages == plan.outages
    again = [
        (site, replayed.drop(site), replayed.spike_delay_ps(site))
        for _ in range(200) for site in sites
    ]
    assert again == first


def test_e22_rows_are_identical_across_runs():
    bench = _bench_e22()
    first = bench._run_fault_tolerance().render()
    second = bench._run_fault_tolerance().render()
    assert first == second
