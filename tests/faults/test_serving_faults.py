"""The serving layer under injected faults (repro.serve x repro.faults).

A seeded :class:`FaultPlan` degrades the service — batch drops fail
their requests, latency spikes stretch service times — and the
serving loop must degrade *gracefully*: every request accounted, the
run terminates (replicas poll with bounded stream gets, so a drained
queue can never deadlock them), goodput stays strictly positive, and
the whole degraded run replays byte-identically from the same plan.

Also pins the stream-timeout race the replica loop leans on: a put
landing at exactly the tick a ``get(timeout)`` expires must resolve
deterministically by FIFO order, without losing the item either way.
"""

import pytest

from repro.core.sim import Simulator
from repro.core.stream import Stream, StreamTimeout
from repro.faults import FaultPlan
from repro.serve import (
    AdmissionPolicy,
    BatchPolicy,
    OpenLoopConfig,
    ServiceConfig,
    SyntheticBackend,
    capacity_qps,
    simulate_service,
)


def _setup(load=1.4, n_requests=2_000, burst=3.0):
    backend = SyntheticBackend()
    config = ServiceConfig(
        batch=BatchPolicy(max_batch=backend.max_batch,
                          max_wait_ps=2_000_000),
        admission=AdmissionPolicy(max_queue=8 * backend.max_batch),
        replicas=2,
    )
    traffic = OpenLoopConfig(
        offered_qps=load * capacity_qps(backend, 2),
        n_requests=n_requests,
        slo_ps=20_000_000,
        burst_factor=burst,
    )
    return backend, traffic, config


def _plan(seed=11):
    return FaultPlan(seed=seed, drop_rate=0.05, spike_rate=0.1,
                     spike_ps=(1_000_000, 5_000_000))


def test_faulted_overload_degrades_gracefully():
    backend, traffic, config = _setup()
    report = simulate_service(backend, traffic, config, seed=7,
                              plan=_plan())
    assert report.completed + report.shed + report.failed == report.offered
    assert report.failed > 0, "5% batch drops must fail some requests"
    assert report.shed > 0, "overload still sheds"
    assert report.goodput_qps > 0, "degraded, never dead"
    assert report.in_slo > 0


def test_faulted_run_replays_byte_identically():
    backend, traffic, config = _setup()
    plan = _plan()
    first = simulate_service(backend, traffic, config, seed=7, plan=plan)
    again = simulate_service(backend, traffic, config, seed=7,
                             plan=plan.replay())
    assert first == again


def test_spikes_inflate_tail_latency_against_clean_baseline():
    backend, traffic, config = _setup(load=0.6, burst=1.0)
    clean = simulate_service(backend, traffic, config, seed=3)
    spiky = simulate_service(
        backend, traffic, config, seed=3,
        plan=FaultPlan(seed=5, spike_rate=0.3,
                       spike_ps=(5_000_000, 10_000_000)),
    )
    assert spiky.failed == 0, "spikes alone never fail requests"
    assert spiky.p99_us > 2 * clean.p99_us
    # Spikes shrink effective capacity, so the admission controller may
    # shed what the clean run absorbed — but nothing may leak.
    assert spiky.completed + spiky.shed == spiky.offered
    assert clean.shed == 0


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("drop_rate", [0.2, 0.6])
def test_heavy_drops_terminate_with_full_accounting(seed, drop_rate):
    backend, traffic, config = _setup(n_requests=600)
    plan = FaultPlan(seed=seed, drop_rate=drop_rate, spike_rate=0.2,
                     spike_ps=(1_000_000, 8_000_000))
    report = simulate_service(backend, traffic, config, seed=seed,
                              plan=plan)
    assert report.completed + report.shed + report.failed == report.offered
    assert report.failed > 0
    assert report.goodput_qps > 0, \
        "even at 60% drops some batches land in SLO"


def test_e24_fault_variant_keeps_the_service_alive(monkeypatch):
    """The registered e24 cell wiring, degraded by a seeded plan."""
    monkeypatch.setenv("REPRO_SMOKE", "1")
    from repro.exec.experiments.serving import build_backend

    backend = build_backend("microrec")
    batch_ps = backend.batch_service_ps(backend.max_batch)
    config = ServiceConfig(
        batch=BatchPolicy(max_batch=backend.max_batch,
                          max_wait_ps=max(1, batch_ps // 2)),
        admission=AdmissionPolicy(max_queue=4 * backend.max_batch),
        replicas=2,
    )
    traffic = OpenLoopConfig(
        offered_qps=1.2 * capacity_qps(backend, 2),
        n_requests=800,
        slo_ps=12 * batch_ps,
        burst_factor=2.0,
    )
    report = simulate_service(backend, traffic, config, seed=24,
                              plan=FaultPlan(seed=24, drop_rate=0.1,
                                             spike_rate=0.1,
                                             spike_ps=(batch_ps,
                                                       4 * batch_ps)))
    assert report.completed + report.shed + report.failed == report.offered
    assert report.failed > 0 and report.goodput_qps > 0


def test_get_timeout_racing_same_tick_put_is_fifo_deterministic():
    """The replica-poll race: put at exactly the timeout expiry tick.

    Whichever event was scheduled first at that tick wins — and in
    neither order may the item be lost or the run deadlock.
    """
    outcomes = {}
    for order in ("put_first", "timeout_first"):
        sim = Simulator()
        stream = Stream(sim, depth=1)
        log = []

        def getter():
            try:
                value = yield stream.get(timeout=10)
                log.append(("got", value))
            except StreamTimeout:
                log.append(("timeout",))

        def putter():
            yield sim.timeout(10)
            yield stream.put("x")
            log.append(("put_done",))

        if order == "put_first":
            sim.spawn(putter(), name="p")
            sim.spawn(getter(), name="g")
        else:
            sim.spawn(getter(), name="g")
            sim.spawn(putter(), name="p")
        sim.run()
        outcomes[order] = (tuple(log), len(stream))

    # Putter spawned first: its put is delivered to the waiting getter.
    assert outcomes["put_first"] == ((("got", "x"), ("put_done",)), 0)
    # Getter spawned first: its timer (armed at t=0) fires before the
    # putter's same-tick put; the item stays buffered, nothing is lost.
    assert outcomes["timeout_first"] == ((("timeout",), ("put_done",)), 1)
