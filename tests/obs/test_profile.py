"""Profiler tests: busy/stall math on a hand-built two-kernel pipeline."""

import pytest

from repro.core import (
    Burst,
    BurstKernel,
    ClockDomain,
    KernelSpec,
    Simulator,
    Sink,
    Source,
    Stream,
)
from repro.memory.banked import BankedMemory
from repro.memory.model import MemoryModel
from repro.obs import Profiler, Tracer

_GHZ = ClockDomain("1ghz", 1000)  # 1000 ps/cycle keeps the math exact


def _pipeline(sim):
    s1 = Stream(sim, depth=2, name="s1")
    s2 = Stream(sim, depth=2, name="s2")
    s3 = Stream(sim, depth=2, name="s3")
    k1 = BurstKernel(
        sim, KernelSpec("k1", ii=1, depth=2, clock=_GHZ), lambda b: b, s1, s2
    )
    k2 = BurstKernel(
        sim, KernelSpec("k2", ii=4, depth=4, clock=_GHZ), lambda b: b, s2, s3
    )
    Source(sim, s1, [Burst(None, 8) for _ in range(3)])
    sink = Sink(sim, s3)
    return k1, k2, sink


def test_two_kernel_pipeline_busy_math():
    sim = Simulator()
    with Profiler(sim) as prof:
        k1, k2, sink = _pipeline(sim)
        sim.run()
    report = prof.report()
    # k1: first burst pays full latency 2+(8-1)*1 = 9 cycles, later
    # bursts occupancy 8 cycles -> 9+8+8 = 25 cycles of 1000 ps.
    assert report.component("kernel:k1").busy_ps == 25_000
    # k2: 4+(8-1)*4 = 32 cycles first, 32 occupancy after -> 96 cycles.
    assert report.component("kernel:k2").busy_ps == 96_000
    assert report.wall_ps == sim.now
    # profiler busy agrees with the kernels' own accounting
    assert report.component("kernel:k1").busy_ps == k1.busy_ps
    assert report.component("kernel:k2").busy_ps == k2.busy_ps
    # the slow kernel dominates the wall; the fast one mostly stalls
    k1p = report.component("kernel:k1")
    k2p = report.component("kernel:k2")
    assert k2p.busy_fraction > 0.8
    assert k1p.stall_fraction > k2p.stall_fraction
    assert k1p.busy_ps + k1p.stall_ps <= report.wall_ps
    assert sink.items == 24


def test_stall_accounting_matches_kernel_counters():
    sim = Simulator()
    with Profiler(sim) as prof:
        k1, k2, _ = _pipeline(sim)
        sim.run()
    report = prof.report()
    assert (
        report.component("kernel:k1").stall_ps
        == k1.stall_in_ps + k1.stall_out_ps
    )
    assert (
        report.component("kernel:k2").stall_ps
        == k2.stall_in_ps + k2.stall_out_ps
    )
    # backpressure from k2 shows up on the connecting stream too
    s2 = k1.out
    assert s2.stats.producer_stall_ps > 0
    assert (
        report.component("stream:s2").stall_ps
        == s2.stats.producer_stall_ps + s2.stats.consumer_stall_ps
    )


def test_component_profile_kind_and_name():
    sim = Simulator()
    with Profiler(sim) as prof:
        _pipeline(sim)
        sim.run()
    comp = prof.report().component("kernel:k1")
    assert comp.kind == "kernel"
    assert comp.name == "k1"
    with pytest.raises(KeyError):
        prof.report().component("kernel:nope")


def test_report_render_lists_components_busiest_first():
    sim = Simulator()
    with Profiler(sim) as prof:
        _pipeline(sim)
        sim.run()
    text = prof.report().render()
    assert text.index("kernel:k2") < text.index("kernel:k1")
    assert "busy/stall profile" in text


def test_analytic_bank_profiling_without_a_simulator():
    model = MemoryModel(
        name="ch", capacity_bytes=1 << 30, latency_ps=100,
        bandwidth_bytes_per_sec=1e9, min_burst_bytes=32,
    )
    prof = Profiler()
    bank = BankedMemory.uniform(model, 4, name="hbm", tracer=prof.tracer)
    bank.allocate("hot", 1 << 20)
    bank.allocate("cold", 1 << 20)
    makespan = bank.batch_lookup_time_ps({"hot": (64, 32), "cold": (8, 32)})
    report = prof.report()
    busiest = max(report.components, key=lambda c: c.busy_ps)
    assert busiest.busy_ps == makespan
    assert report.wall_ps >= makespan
    snap = prof.tracer.registry.snapshot()
    assert snap["memory.bank_accesses{channel=0,memory=hbm}"] == 64
    assert snap["memory.bank_accesses{channel=1,memory=hbm}"] == 8


def test_bank_conflicts_counted_when_regions_share_a_channel():
    model = MemoryModel(
        name="ch", capacity_bytes=1 << 30, latency_ps=100,
        bandwidth_bytes_per_sec=1e9, min_burst_bytes=32,
    )
    tracer = Tracer()
    bank = BankedMemory.uniform(model, 2, name="b", tracer=tracer)
    bank.allocate("a", 1024, channel=0)
    bank.allocate("b", 1024, channel=0)
    bank.batch_lookup_time_ps({"a": (4, 32), "b": (4, 32)})
    snap = tracer.registry.snapshot()
    assert snap["memory.bank_conflicts{channel=0,memory=b}"] == 1


def test_profiler_report_with_explicit_wall():
    tracer = Tracer()
    tracer.kernel_busy("k", 0, 500, 1)
    prof = Profiler(tracer=tracer)
    report = prof.report(wall_ps=1000)
    assert report.component("kernel:k").busy_fraction == pytest.approx(0.5)
    assert "(no instrumented components ran)" in Profiler().report().render()
