"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_semantics():
    reg = MetricsRegistry()
    c = reg.counter("requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_semantics():
    reg = MetricsRegistry()
    g = reg.gauge("occupancy")
    g.set(3.0)
    g.add(-1.0)
    assert g.value == 2.0


def test_histogram_semantics():
    reg = MetricsRegistry()
    h = reg.histogram("latency", bounds=(10, 100, 1000))
    for v in (1, 10, 11, 500, 5000):
        h.observe(v)
    assert h.count == 5
    assert h.sum == 5522
    assert h.mean == pytest.approx(5522 / 5)
    # buckets are inclusive upper bounds; the last slot is overflow
    assert h.counts == [2, 1, 1, 1]


def test_histogram_needs_buckets():
    with pytest.raises(ValueError):
        Histogram("empty", {}, bounds=())


def test_get_or_create_same_instrument():
    reg = MetricsRegistry()
    a = reg.counter("puts", stream="s1")
    b = reg.counter("puts", stream="s1")
    assert a is b
    other = reg.counter("puts", stream="s2")
    assert other is not a
    assert len(reg) == 2


def test_label_canonicalisation_is_order_insensitive():
    reg = MetricsRegistry()
    a = reg.counter("x", kernel="k", port="in")
    b = reg.counter("x", port="in", kernel="k")
    assert a is b
    assert "x{kernel=k,port=in}" in reg


def test_type_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("v")
    with pytest.raises(TypeError):
        reg.gauge("v")
    with pytest.raises(TypeError):
        reg.histogram("v")


def test_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("puts", stream="a").inc(3)
    reg.gauge("depth").set(1.5)
    reg.histogram("lat", bounds=(10.0, 100.0)).observe(50)
    snap = reg.snapshot()
    assert snap["puts{stream=a}"] == 3
    assert snap["depth"] == 1.5
    hist = snap["lat"]
    assert hist["count"] == 1
    assert hist["sum"] == 50
    assert hist["buckets"] == {"le_10": 0, "le_100": 1, "le_inf": 0}


def test_reset_zeroes_but_keeps_instruments():
    reg = MetricsRegistry()
    c = reg.counter("n")
    c.inc(7)
    h = reg.histogram("h", bounds=(1,))
    h.observe(0.5)
    reg.reset()
    assert c.value == 0
    assert h.count == 0 and h.sum == 0.0
    assert reg.counter("n") is c  # still registered
    reg.clear()
    assert len(reg) == 0


def test_disabled_registry_hands_out_shared_nulls():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("a", k="v")
    g = reg.gauge("b")
    h = reg.histogram("c")
    assert c is NULL_COUNTER
    assert g is NULL_GAUGE
    assert h is NULL_HISTOGRAM
    # no-ops, nothing registered
    c.inc(5)
    g.set(3)
    h.observe(1)
    assert c.value == 0 and g.value == 0.0 and h.count == 0
    assert len(reg) == 0
    assert reg.snapshot() == {}


def test_unlabelled_key_is_bare_name():
    reg = MetricsRegistry()
    reg.counter("bare").inc()
    assert reg.get("bare").value == 1
    assert reg.get("missing") is None
