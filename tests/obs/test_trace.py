"""Tracer tests: recording, Chrome export, and the zero-overhead guard."""

import io
import json

import pytest

from repro.core import (
    Burst,
    BurstKernel,
    KernelSpec,
    Simulator,
    Sink,
    Source,
    Stream,
)
from repro.obs import Tracer, get_default_tracer, set_default_tracer
from repro.obs.trace import TraceEvent


def _run_pipeline(sim, n_bursts=4, burst=16):
    s_in = Stream(sim, depth=2, name="in")
    s_out = Stream(sim, depth=2, name="out")
    kernel = BurstKernel(
        sim, KernelSpec("k", ii=2, depth=6), lambda b: b, s_in, s_out
    )
    Source(sim, s_in, [Burst(None, burst) for _ in range(n_bursts)])
    sink = Sink(sim, s_out)
    sim.run()
    return kernel, sink


def test_tracer_records_engine_and_component_activity():
    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    kernel, sink = _run_pipeline(sim)
    snap = tracer.registry.snapshot()
    assert snap["sim.events.scheduled"] > 0
    assert snap["sim.events.fired"] > 0
    assert snap["sim.process.resumes{process=k}"] > 0
    assert snap["kernel.items{kernel=k}"] == 64
    assert snap["stream.puts{stream=in}"] == 5  # 4 bursts + END_OF_STREAM
    busy = tracer.busy_by_track()
    assert busy["kernel:k"] == kernel.busy_ps > 0


def test_traced_off_run_schedules_no_tracer_callbacks(monkeypatch):
    """The obs-disabled overhead guard: with ``tracer=None`` no tracer
    code runs at all — every hook is poisoned and the run still works."""

    def poisoned(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("tracer callback invoked on an untraced run")

    for hook in (
        "sim_event_scheduled", "sim_event_fired", "process_resumed",
        "process_finished", "stream_put", "stream_get", "stream_stall",
        "kernel_busy", "kernel_stall", "link_transfer", "memory_access",
        "bank_access", "bank_conflict", "dataflow_solved", "instant",
        "complete",
    ):
        monkeypatch.setattr(Tracer, hook, poisoned)
    sim = Simulator()
    assert sim.tracer is None
    assert get_default_tracer() is None
    _, sink = _run_pipeline(sim)
    assert sink.items == 64


def test_traced_off_engine_path_schedules_no_tracer_callbacks(monkeypatch):
    """Same guard with analytic fast-forward disabled, so the stepped
    engine — including the try_put/try_get kernel fast paths — runs
    every event with poisoned hooks."""
    from repro.core.fastpath import set_fast_forward

    def poisoned(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("tracer callback invoked on an untraced run")

    for hook in (
        "sim_event_scheduled", "sim_event_fired", "process_resumed",
        "process_finished", "stream_put", "stream_get", "stream_stall",
        "kernel_busy", "kernel_stall", "link_transfer", "memory_access",
        "bank_access", "bank_conflict", "dataflow_solved", "instant",
        "complete",
    ):
        monkeypatch.setattr(Tracer, hook, poisoned)
    set_fast_forward(False)
    try:
        sim = Simulator()
        assert sim.tracer is None
        _, sink = _run_pipeline(sim)
    finally:
        set_fast_forward(None)
    assert sink.items == 64


def test_default_tracer_is_picked_up_and_releasable():
    tracer = Tracer()
    set_default_tracer(tracer)
    try:
        sim = Simulator()
        assert sim.tracer is tracer
        _run_pipeline(sim)
        assert tracer.registry.snapshot()["sim.events.fired"] > 0
    finally:
        set_default_tracer(None)
    assert Simulator().tracer is None


def test_trace_transparency_same_timeline_and_results():
    untraced = Simulator()
    k1, sink1 = _run_pipeline(untraced)
    traced = Simulator(tracer=Tracer(verbose_sim=True))
    k2, sink2 = _run_pipeline(traced)
    assert untraced.now == traced.now
    assert sink1.items == sink2.items
    assert k1.busy_ps == k2.busy_ps
    assert sink1.done_at_ps == sink2.done_at_ps


def test_chrome_export_round_trips_with_wellformed_fields():
    tracer = Tracer(verbose_sim=True)
    sim = Simulator(tracer=tracer)
    _run_pipeline(sim)
    buf = io.StringIO()
    tracer.export_chrome(buf)
    doc = json.loads(buf.getvalue())
    events = doc["traceEvents"]
    assert events, "trace must not be empty"
    phases = set()
    for ev in events:
        assert isinstance(ev["name"], str) and ev["name"]
        assert ev["ph"] in {"X", "i", "M"}
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        phases.add(ev["ph"])
        if ev["ph"] == "M":
            assert ev["name"] in {"process_name", "thread_name"}
            assert "name" in ev["args"]
            continue
        assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
    assert {"X", "M"} <= phases
    # every non-metadata event's tid has thread_name metadata
    named_tids = {
        ev["tid"] for ev in events if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    used_tids = {ev["tid"] for ev in events if ev["ph"] != "M"}
    assert used_tids <= named_tids


def test_chrome_export_to_file(tmp_path):
    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    _run_pipeline(sim)
    out = tmp_path / "trace.json"
    tracer.export_chrome(str(out))
    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ns"
    assert len(doc["traceEvents"]) > 0


def test_chrome_ts_is_microseconds():
    tracer = Tracer()
    tracer.complete("slice", "kernel.busy", "kernel:k", 3_000_000, 1_500_000)
    doc = tracer.to_chrome()
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert slices[0]["ts"] == pytest.approx(3.0)
    assert slices[0]["dur"] == pytest.approx(1.5)


def test_utilisation_summary_math():
    tracer = Tracer()
    tracer.complete("a", "kernel.busy", "kernel:a", 0, 600)
    tracer.complete("a", "kernel.busy", "kernel:a", 600, 200)
    tracer.complete("stall:input", "kernel.stall", "kernel:a", 800, 200)
    assert tracer.busy_by_track() == {"kernel:a": 800}
    assert tracer.stall_by_track() == {"kernel:a": 200}
    assert tracer.span_ps() == 1000
    text = tracer.utilisation_summary()
    assert "kernel:a" in text
    assert "80.0%" in text


def test_utilisation_summary_empty():
    assert "(no slices recorded)" in Tracer().utilisation_summary()


def test_clear_drops_events_and_metrics():
    tracer = Tracer()
    tracer.kernel_busy("k", 0, 10, 1)
    tracer.clear()
    assert tracer.events == []
    assert tracer.registry.snapshot()["kernel.busy_ps{kernel=k}"] == 0


def test_trace_event_defaults():
    ev = TraceEvent("n", "cat", "i", 5, "track")
    assert ev.dur_ps == 0 and ev.args == {}
